"""Before/after benchmarks for the SoA fleet engine.

Times the pooled per-cell lifetime path
(:func:`~repro.system.sweeps.run_lifetime_sweep`, one
``SystemSimulator`` per chip) against the structure-of-arrays
:class:`~repro.system.fleet.FleetSimulator`, which advances the whole
population as ``(n_chips * n_cores, ...)`` tensors in one ufunc pass
per epoch and shares condition / kernel / thermal caches across every
chip of the fleet.

Timings, chips/sec and cache hit counts land in ``BENCH_fleet.json``
at the repo root; the 1024-chip test asserts the PR acceptance
criterion (>= 10x over the pooled sweep at >= 1k chips, with <= 1e-10
per-chip equivalence pinned both here and in
``tests/test_system_fleet.py``).
"""

from __future__ import annotations

import gc
import json
import os
import platform
import time
from pathlib import Path

import numpy as np
import pytest

from repro.solvers import cache_counters
from repro.system.fleet import (
    FleetSimulator,
    FleetVariationSpec,
    run_fleet_lifetime_study,
    state_bytes_per_chip,
)
from repro.system.chip import Chip
from repro.system.scheduler import (
    NoRecoveryPolicy,
    RoundRobinRecoveryPolicy,
)
from repro.system.sweeps import ChipConfig, run_lifetime_sweep
from repro.system.workload import (
    ConstantWorkload,
    DiurnalWorkload,
    PhasedWorkload,
)

from benchmarks.conftest import run_once

RESULTS = {}
SPEEDUP_THRESHOLD_FLEET = 10.0
SPEEDUP_THRESHOLD_HETERO = 5.0
EQUIVALENCE_TOLERANCE = 1e-10


@pytest.fixture(scope="module", autouse=True)
def bench_report():
    """Dump the collected before/after timings to BENCH_fleet.json."""
    yield
    if not RESULTS:
        return
    path = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"
    # Merge into any existing report so running a subset of this
    # suite refreshes its own entries without dropping the others'.
    timings = {}
    if path.exists():
        try:
            timings = json.loads(path.read_text()).get("timings", {})
        except (OSError, ValueError):
            timings = {}
    timings.update(RESULTS)
    payload = {
        "suite": "benchmarks/test_fleet_engine.py",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "units": "seconds, best of the recorded repetitions",
        "timings": timings,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def best_of(fn, reps):
    """Best wall-clock of ``reps`` runs, plus the last return value."""
    best = float("inf")
    value = None
    for _ in range(reps):
        gc.collect()
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def record(name, before_s, after_s, **extra):
    entry = {"before_s": before_s, "after_s": after_s,
             "speedup": before_s / after_s, **extra}
    RESULTS[name] = entry
    return entry


N_CHIPS = 1024
N_EPOCHS = 48
N_CORES = 9


def _policy():
    return RoundRobinRecoveryPolicy(recovery_slots=3,
                                    em_alternate_every=2)


def _workload():
    return ConstantWorkload(n_cores=N_CORES, utilization=0.6)


def test_fleet_vs_pooled_sweep_1k_chips(benchmark):
    """The PR acceptance case: >= 10x over the pooled sweep at 1k chips.

    The pooled path simulates the homogeneous population as 1024
    independent sweep cells -- 1024 chip builds, 1024 epoch loops,
    nothing shared.  The fleet path advances all 1024 chips as one
    stacked state; with the 3-slot / EM-period-2 schedule the epoch
    stream revisits only 6 distinct condition bundles, so after the
    first rotation every epoch is pure ufunc work on the
    ``(9216, 64)`` trap stack.
    """
    chips = [ChipConfig(3, 3, name=f"chip{i:04d}")
             for i in range(N_CHIPS)]

    def pooled():
        # engine="pooled" pins the per-cell baseline: without it the
        # auto router would send this homogeneous grid to the very
        # fleet engine the benchmark measures against.
        return run_lifetime_sweep({"rr3": _policy()},
                                  {"flat06": _workload()}, chips,
                                  n_epochs=N_EPOCHS, seed=7,
                                  engine="pooled")

    def fleet():
        simulator = FleetSimulator(Chip(3, 3), N_CHIPS)
        result = simulator.run(N_EPOCHS, _workload(), _policy())
        return result, simulator

    # Interleave the two timed paths so machine-speed drift (VM steal
    # time) inflates both sides alike instead of skewing the ratio;
    # the pooled baseline takes >10 s per rep at this scale, so two
    # rounds bound the bench runtime while still trimming outliers.
    after_s = before_s = float("inf")
    for _ in range(2):
        a, (result, simulator) = best_of(fleet, reps=2)
        b, sweep = best_of(pooled, reps=1)
        after_s, before_s = min(after_s, a), min(before_s, b)

    # Per-chip equivalence against the pooled cells (all chips are
    # identical without variation, so sample the population edges).
    bands = result.guardbands
    for index in (0, N_CHIPS // 2, N_CHIPS - 1):
        cell = sweep.cells[index]
        assert abs(cell.guardband - bands[index]) \
            <= EQUIVALENCE_TOLERANCE
        assert abs(cell.final_delta_vth_v
                   - result.final_delta_vth_v[index].max()) \
            <= EQUIVALENCE_TOLERANCE

    conditions = simulator._condition_cache
    kernels = simulator.state.bti.kernel_cache
    thermal = simulator.chip.thermal.steady_cache
    entry = record(
        "fleet_vs_pooled_sweep_1024_chips", before_s, after_s,
        n_chips=N_CHIPS, n_cores=N_CORES, n_epochs=N_EPOCHS,
        chips_per_s_before=N_CHIPS / before_s,
        chips_per_s_after=N_CHIPS / after_s,
        condition_cache_hits=conditions.hits,
        condition_cache_misses=conditions.misses,
        bti_kernel_cache_hits=kernels.hits if kernels else 0,
        bti_kernel_cache_misses=kernels.misses if kernels else 0,
        thermal_cache_hits=thermal.hits,
        thermal_cache_misses=thermal.misses)
    run_once(benchmark, lambda: fleet()[0])
    assert entry["speedup"] >= SPEEDUP_THRESHOLD_FLEET


def test_fleet_scaling_with_variation(benchmark):
    """Record-only: 4096 varied chips through the grouped kernel path.

    Process variation splits the population across sub-step-count
    groups, so this exercises the gather/scatter path the homogeneous
    benchmark never touches -- the number to watch is chips/sec
    staying within an order of magnitude of the homogeneous rate.
    """
    n_chips = 4096
    n_epochs = 48
    spec = FleetVariationSpec(capture_sigma=0.06,
                              recovery_sigma=0.08,
                              em_current_sigma=0.05)

    def fleet():
        return run_fleet_lifetime_study(
            (3, 3), n_chips, _workload(), _policy(),
            n_epochs=n_epochs, variation=spec, seed=7)

    elapsed_s, result = best_of(fleet, reps=2)
    RESULTS["fleet_scaling_4096_chips_varied"] = {
        "elapsed_s": elapsed_s,
        "n_chips": n_chips, "n_cores": N_CORES, "n_epochs": n_epochs,
        "chips_per_s": n_chips / elapsed_s,
        "guardband_p50": float(result.guardband_quantile(0.50)),
        "guardband_p99": float(result.guardband_quantile(0.99)),
    }
    run_once(benchmark, fleet)


def test_heterogeneous_grid_fleet_vs_pooled(benchmark):
    """The heterogeneous acceptance case: >= 5x at 1024 mixed cells.

    A 2-policy x 4-phase-shifted-diurnal x 128-chip design grid runs
    once through the pooled per-cell path and once through the fleet
    router (``engine="fleet"``), which stacks all 1024 cells into 8
    policy/workload groups of 128 identical chips.  Distinct phases
    and policies break the single-bundle degeneracy of the
    homogeneous benchmark -- each epoch carries 8 cohort bundles --
    so this measures the grouped scheduling overhead at scale.
    """
    n_grid_chips = 128
    chips = [ChipConfig(3, 3, name=f"unit{i:03d}")
             for i in range(n_grid_chips)]
    policies = {"rr3": _policy(), "none": NoRecoveryPolicy()}
    workloads = {
        f"diurnal+{phase:02d}": PhasedWorkload(
            DiurnalWorkload(n_cores=N_CORES, period_epochs=24), phase)
        for phase in (0, 6, 12, 18)}
    n_cells = len(policies) * len(workloads) * n_grid_chips

    def pooled():
        return run_lifetime_sweep(policies, workloads, chips,
                                  n_epochs=N_EPOCHS, seed=7,
                                  engine="pooled")

    reports = []

    def fleet():
        reports.clear()
        return run_lifetime_sweep(policies, workloads, chips,
                                  n_epochs=N_EPOCHS, seed=7,
                                  engine="fleet",
                                  on_report=reports.append)

    after_s = before_s = float("inf")
    for _ in range(2):
        a, fleet_sweep = best_of(fleet, reps=2)
        b, pooled_sweep = best_of(pooled, reps=1)
        after_s, before_s = min(after_s, a), min(before_s, b)

    # Cell-for-cell equivalence across the mixed grid (sampled at the
    # corners and the policy/workload boundaries).
    assert len(fleet_sweep.cells) == n_cells
    for index in (0, n_grid_chips - 1, n_grid_chips,
                  n_cells // 2, n_cells - 1):
        a, b = fleet_sweep.cells[index], pooled_sweep.cells[index]
        assert (a.policy, a.workload, a.chip) \
            == (b.policy, b.workload, b.chip)
        assert abs(a.guardband - b.guardband) <= EQUIVALENCE_TOLERANCE
        assert abs(a.final_delta_vth_v - b.final_delta_vth_v) \
            <= EQUIVALENCE_TOLERANCE
        assert a.migration_events == b.migration_events

    counters = reports[0].cache_counters
    kernels = counters.get("bti.fleet.kernels", {})
    dedup_in = kernels.get("dedup_rows_in", 0)
    entry = record(
        "hetero_grid_fleet_vs_pooled_1024_cells", before_s, after_s,
        n_cells=n_cells, n_cores=N_CORES, n_epochs=N_EPOCHS,
        n_policies=len(policies), n_workloads=len(workloads),
        cells_per_s_before=n_cells / before_s,
        cells_per_s_after=n_cells / after_s,
        fleet_chips=counters["fleet.engine"].get("chips", 0),
        fleet_cohorts=counters["fleet.engine"].get("cohorts", 0),
        kernel_dedup_ratio=(dedup_in
                            / max(kernels.get("dedup_rows_unique", 1),
                                  1)))
    run_once(benchmark, fleet)
    assert entry["speedup"] >= SPEEDUP_THRESHOLD_HETERO


def test_chunked_fleet_65k_chips(benchmark):
    """Record-only: 65k chips streamed under a 256 MiB state budget.

    The population's trap state alone would be ~1.8 GiB resident;
    the chunked driver streams it in ~9k-chip slabs and the result is
    invariant in the chunking (pinned in tests/test_fleet_hetero.py).
    The numbers to watch are chips/sec staying near the 4096-chip
    rate and the chunk count actually being > 1.
    """
    n_chips = 65_536
    n_epochs = 6
    budget = 256 * 1024 * 1024

    def fleet():
        # max_workers=1 pins the serial chunk stream: this entry is
        # the baseline the parallel executor benchmark divides by.
        return run_fleet_lifetime_study(
            (3, 3), n_chips, _workload(), _policy(),
            n_epochs=n_epochs, record_every=n_epochs,
            state_budget_bytes=budget, max_workers=1)

    before_chunks = cache_counters().get("fleet.engine",
                                         {}).get("chunks", 0)
    start = time.perf_counter()
    result = fleet()
    elapsed_s = time.perf_counter() - start
    n_chunks = cache_counters()["fleet.engine"]["chunks"] \
        - before_chunks
    assert n_chunks > 1
    assert result.n_chips == n_chips
    per_chip = state_bytes_per_chip(N_CORES)
    RESULTS["chunked_fleet_65536_chips"] = {
        "elapsed_s": elapsed_s,
        "n_chips": n_chips, "n_cores": N_CORES, "n_epochs": n_epochs,
        "chips_per_s": n_chips / elapsed_s,
        "state_budget_bytes": budget,
        "state_bytes_per_chip": per_chip,
        "unchunked_state_bytes": per_chip * n_chips,
        "n_chunks": n_chunks,
        "guardband_p99": float(result.guardband_quantile(0.99)),
    }
    run_once(benchmark, lambda: run_fleet_lifetime_study(
        (3, 3), 4096, _workload(), _policy(), n_epochs=n_epochs,
        record_every=n_epochs, state_budget_bytes=budget,
        max_workers=1))


SPEEDUP_THRESHOLD_PARALLEL = 3.0
PARALLEL_WORKERS = 8


def test_parallel_chunked_fleet_65k_chips(benchmark):
    """The parallel acceptance case: >= 3x over the serial chunk
    stream at 65k chips and 8 workers.

    Both paths stream the same ~9k-chip byte-budgeted chunks; the
    parallel run dispatches them across the worker pool and scatters
    rows into the shared-memory slab.  The merged populations are
    asserted bitwise identical.  The >= 3x floor is enforced only
    when the host actually has >= 8 CPUs -- smaller runners record
    honest requested-vs-available numbers without asserting an
    unreachable ratio (pool overhead on a single core makes the
    parallel path *slower* there, which is exactly what the entry
    should show).
    """
    n_chips = 65_536
    n_epochs = 6
    budget = 256 * 1024 * 1024

    def run(workers):
        reports = []
        result = run_fleet_lifetime_study(
            (3, 3), n_chips, _workload(), _policy(),
            n_epochs=n_epochs, record_every=n_epochs,
            state_budget_bytes=budget, max_workers=workers,
            min_chunks_for_pool=1 if workers > 1 else None,
            on_report=reports.append)
        return result, reports[0]

    before_s, (serial_result, serial_report) = best_of(
        lambda: run(1), reps=1)
    after_s, (parallel_result, parallel_report) = best_of(
        lambda: run(PARALLEL_WORKERS), reps=1)

    assert serial_report.mode == "fleet"
    assert np.array_equal(serial_result.final_delta_vth_v,
                          parallel_result.final_delta_vth_v)
    assert np.array_equal(serial_result.worst_degradation,
                          parallel_result.worst_degradation)
    assert np.array_equal(serial_result.final_em_drift_ohm,
                          parallel_result.final_em_drift_ohm)

    available_cpus = os.cpu_count() or 1
    entry = record(
        "parallel_chunked_fleet_65536_chips", before_s, after_s,
        n_chips=n_chips, n_cores=N_CORES, n_epochs=n_epochs,
        state_budget_bytes=budget,
        requested_workers=PARALLEL_WORKERS,
        available_cpus=available_cpus,
        n_chunks=parallel_report.n_chunks,
        mode=parallel_report.mode,
        chips_per_s_serial=n_chips / before_s,
        chips_per_s_parallel=n_chips / after_s)
    run_once(benchmark, lambda: run(min(PARALLEL_WORKERS,
                                        available_cpus)))
    if available_cpus >= PARALLEL_WORKERS:
        assert entry["speedup"] >= SPEEDUP_THRESHOLD_PARALLEL


CHECKPOINT_OVERHEAD_TARGET = 0.05
CHECKPOINT_OVERHEAD_CEILING = 0.50


def test_checkpointed_fleet_65k_chips_overhead(benchmark, tmp_path):
    """Record the durable-snapshot overhead of the 65k-chip chunked
    run at ``checkpoint_every=8``, against the 5% target.

    Same serial chunk stream as ``test_chunked_fleet_65k_chips`` but
    16 epochs, so every chunk persists one mid-lifetime progress
    snapshot (epoch 8) plus its result file -- roughly 28 KiB/chip of
    trap state hashed and written per save.  This workload is the
    checkpointer's worst case: a constant-utilization epoch is a
    single ufunc pass over the same bytes a snapshot must hash+write,
    so the ratio bottoms out near ``save_cost / (every * epoch_cost)``
    with nothing to amortise -- heavier epochs (kernel recomputation,
    many cohorts) shrink it toward zero.  The entry records the
    measured overhead next to the 5% target
    (``overhead_within_target``); the hard assertion is a generous
    ceiling so a loaded runner reports an honest number instead of
    flaking, plus bitwise equality of the checkpointed, plain, and
    resumed-from-cache populations.
    """
    n_chips = 65_536
    n_epochs = 16
    every = 8
    budget = 256 * 1024 * 1024

    def run(checkpoint_dir=None):
        return run_fleet_lifetime_study(
            (3, 3), n_chips, _workload(), _policy(),
            n_epochs=n_epochs, record_every=n_epochs,
            state_budget_bytes=budget, max_workers=1,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=every if checkpoint_dir else None)

    # Interleave the reps and take the best of each side so machine
    # noise on a loaded runner cancels instead of skewing the small
    # overhead ratio; each checkpointed rep needs a fresh directory
    # (replaying a completed one would time the cache, not the saves).
    plain_s = ckpt_s = float("inf")
    for rep in range(2):
        t, plain = best_of(run, reps=1)
        plain_s = min(plain_s, t)
        directory = tmp_path / f"ckpt-{rep}"
        t, checkpointed = best_of(lambda: run(directory), reps=1)
        ckpt_s = min(ckpt_s, t)
    # Replaying a completed directory restores every chunk from its
    # result file -- no epoch work at all.
    resume_s, resumed = best_of(lambda: run(directory), reps=1)

    for result in (checkpointed, resumed):
        assert np.array_equal(plain.final_delta_vth_v,
                              result.final_delta_vth_v)
        assert np.array_equal(plain.worst_degradation,
                              result.worst_degradation)
        assert np.array_equal(plain.final_em_drift_ohm,
                              result.final_em_drift_ohm)

    overhead = ckpt_s / plain_s - 1.0
    snapshot_bytes = sum(
        entry.stat().st_size for entry in directory.iterdir()
        if entry.suffix == ".npz")
    entry = record(
        "checkpointed_fleet_65536_chips", plain_s, ckpt_s,
        n_chips=n_chips, n_cores=N_CORES, n_epochs=n_epochs,
        checkpoint_every=every, state_budget_bytes=budget,
        checkpoint_overhead=overhead,
        target_overhead=CHECKPOINT_OVERHEAD_TARGET,
        overhead_within_target=overhead < CHECKPOINT_OVERHEAD_TARGET,
        resume_from_cache_s=resume_s,
        snapshot_bytes_on_disk=snapshot_bytes,
        state_bytes_per_chip=state_bytes_per_chip(N_CORES))
    run_once(benchmark, lambda: run_fleet_lifetime_study(
        (3, 3), 4096, _workload(), _policy(), n_epochs=n_epochs,
        record_every=n_epochs, state_budget_bytes=budget,
        max_workers=1))
    assert entry["checkpoint_overhead"] < CHECKPOINT_OVERHEAD_CEILING


def test_parallel_fleet_262k_chips_scaling(benchmark):
    """Record-only scaling entry: 262,144 chips through the parallel
    chunk executor.

    Four times the 65k study under the same 256 MiB *per-worker*
    budget -- the road-to-1M data point.  The number to watch is
    chips/sec holding (or growing with worker count) as the
    population quadruples; the chunk count scales with the
    population, so the executor's pipeline depth grows too.
    """
    n_chips = 262_144
    n_epochs = 6
    budget = 256 * 1024 * 1024
    available_cpus = os.cpu_count() or 1
    workers = min(PARALLEL_WORKERS, available_cpus)

    reports = []
    start = time.perf_counter()
    result = run_fleet_lifetime_study(
        (3, 3), n_chips, _workload(), _policy(),
        n_epochs=n_epochs, record_every=n_epochs,
        state_budget_bytes=budget, max_workers=workers,
        min_chunks_for_pool=1 if workers > 1 else None,
        on_report=reports.append)
    elapsed_s = time.perf_counter() - start

    assert result.n_chips == n_chips
    report = reports[0]
    per_chip = state_bytes_per_chip(N_CORES)
    RESULTS["parallel_fleet_262144_chips"] = {
        "elapsed_s": elapsed_s,
        "n_chips": n_chips, "n_cores": N_CORES, "n_epochs": n_epochs,
        "chips_per_s": n_chips / elapsed_s,
        "state_budget_bytes_per_worker": budget,
        "unchunked_state_bytes": per_chip * n_chips,
        "n_chunks": report.n_chunks,
        "workers": workers,
        "requested_workers": PARALLEL_WORKERS,
        "available_cpus": available_cpus,
        "mode": report.mode,
        "guardband_p99": float(result.guardband_quantile(0.99)),
    }
    run_once(benchmark, lambda: run_fleet_lifetime_study(
        (3, 3), 4096, _workload(), _policy(), n_epochs=n_epochs,
        record_every=n_epochs, state_budget_bytes=budget,
        max_workers=workers))
