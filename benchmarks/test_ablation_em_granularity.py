"""Ablation: EM recovery-interval granularity and recovery knobs.

Two studies around the Fig. 7 strategy:

1. **Granularity** -- at a fixed 75 % stress duty cycle, how does the
   nucleation-delay factor depend on how finely the recovery intervals
   are sliced?  (The paper uses "multiple short recovery intervals";
   this quantifies why: coarse slicing lets the stress peak reach the
   critical value inside a single interval.)
2. **Temperature** -- the same reverse-current recovery at lower
   temperature heals more slowly (recovery is thermally activated
   through the atomic diffusivity), which is the paper's "accelerated"
   knob for EM.
"""

import pytest

from benchmarks.conftest import run_once
from repro import units
from repro.analysis.reporting import format_table
from repro.em.line import EmLine, EmStressCondition, PAPER_EM_STRESS
from repro.em.lumped import LumpedEmModel

#: Stress-interval lengths as fractions of the continuous t_nuc.
FRACTIONS = (0.5, 0.25, 0.1, 0.05, 0.02)


def test_ablation_interval_granularity(benchmark):
    lumped = LumpedEmModel()

    def experiment():
        t_nuc = lumped.nucleation_time(PAPER_EM_STRESS)
        rows = []
        for fraction in FRACTIONS:
            stress_s = fraction * t_nuc
            recovery_s = stress_s / 3.0  # 75 % duty cycle
            factor = lumped.nucleation_delay_factor(
                stress_s, recovery_s, PAPER_EM_STRESS)
            rows.append((fraction, stress_s, factor))
        return t_nuc, rows

    t_nuc, rows = run_once(benchmark, experiment)

    print()
    print(format_table(
        ("stress interval (x t_nuc)", "interval (min)",
         "nucleation delay"),
        [(f"{fraction:.2f}",
          f"{units.to_minutes(stress_s):.1f}",
          f"{factor:.2f}x") for fraction, stress_s, factor in rows],
        title="Ablation: recovery granularity at 75 % duty cycle"))

    factors = [factor for _f, _s, factor in rows]
    # Finer slicing delays nucleation strictly more than coarse slicing.
    assert factors[-1] > factors[0] + 0.5
    # Fine intervals approach the mean-drift bound: with net duty
    # (0.75 - 0.25) the bound is (1/0.5)^2 = 4x.
    assert factors[-1] > 3.0
    assert factors[-1] < 4.2


def test_ablation_recovery_temperature(benchmark):
    def experiment():
        results = {}
        for temp_c in (150.0, 190.0, 230.0):
            line = EmLine()
            line.apply(units.minutes(500.0), PAPER_EM_STRESS)
            worn = line.delta_resistance_ohm()
            recovery = EmStressCondition(
                -PAPER_EM_STRESS.current_density_a_m2,
                units.celsius_to_kelvin(temp_c),
                name=f"recovery at {temp_c:.0f}C")
            line.apply(units.minutes(100.0), recovery)
            healed = (worn - line.delta_resistance_ohm()) / worn
            results[temp_c] = healed
        return results

    results = run_once(benchmark, experiment)

    print()
    print(format_table(
        ("recovery temperature", "healed in 100 min"),
        [(f"{temp:.0f} C", f"{fraction:.1%}")
         for temp, fraction in sorted(results.items())],
        title="Ablation: EM recovery temperature (same reverse "
              "current)"))

    # Hotter recovery heals faster (the "accelerated" knob).
    assert results[230.0] > results[190.0] > results[150.0]
