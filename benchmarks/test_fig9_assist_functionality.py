"""Fig. 9: functional simulation of the assist circuitry.

The paper's 28 nm FD-SOI simulation shows:

* (a) under *EM Active Recovery* the VDD-grid current direction is
  reversed while its magnitude is unchanged;
* (b) under *BTI Active Recovery* the load's VDD and VSS node values
  are switched -- roughly 0.223 V on load-VDD and 0.816 V on load-VSS
  at a 1.0 V supply, i.e. ~0.2-0.3 V of pass-device droop, leaving far
  more reverse bias than the -0.3 V used in the Table I experiments.
"""

import pytest

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table
from repro.assist.circuitry import AssistCircuit
from repro.assist.modes import AssistMode


def test_fig9_assist_functionality(benchmark):
    circuit = AssistCircuit()

    def experiment():
        ops = {mode: circuit.solve_mode(mode) for mode in AssistMode}
        transient = circuit.mode_switch_transient(
            AssistMode.NORMAL, AssistMode.BTI_RECOVERY,
            stop_s=100e-9, dt_s=0.5e-9)
        return ops, transient

    ops, transient = run_once(benchmark, experiment)
    normal = ops[AssistMode.NORMAL]
    em = ops[AssistMode.EM_RECOVERY]
    bti = ops[AssistMode.BTI_RECOVERY]

    print()
    print(format_table(("quantity", "paper", "ours"), [
        ("(a) normal grid current", "+I",
         f"{normal.vdd_grid_current_a * 1e3:+.3f} mA"),
        ("(a) EM-mode grid current", "-I (same |I|)",
         f"{em.vdd_grid_current_a * 1e3:+.3f} mA"),
        ("(b) BTI-mode load VDD", "~0.223 V",
         f"{bti.load_vdd_v:.3f} V"),
        ("(b) BTI-mode load VSS", "~0.816 V",
         f"{bti.load_vss_v:.3f} V"),
        ("(b) droop/increase", "0.2-0.3 V",
         f"{1.0 - bti.load_vss_v:.3f} / {bti.load_vdd_v:.3f} V"),
    ], title="Fig. 9: assist-circuit functionality"))

    # (a) reversal at equal magnitude.
    assert em.vdd_grid_current_a < 0.0 < normal.vdd_grid_current_a
    assert abs(em.vdd_grid_current_a) == pytest.approx(
        normal.vdd_grid_current_a, rel=0.01)
    assert em.load_current_a == pytest.approx(normal.load_current_a,
                                              rel=0.01)
    # (b) rail swap at the published levels.
    assert bti.load_vdd_v == pytest.approx(0.223, abs=0.05)
    assert bti.load_vss_v == pytest.approx(0.816, abs=0.05)
    # Reverse bias available for healing far exceeds -0.3 V.
    assert bti.load_vss_v - bti.load_vdd_v > 0.3
    # The transient actually lands on the swapped state.
    assert transient.voltage("lvss")[-1] > \
        transient.voltage("lvdd")[-1]
