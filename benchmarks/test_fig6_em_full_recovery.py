"""Fig. 6: full EM recovery when healing starts early in void growth.

The paper schedules the reverse-current recovery in the *early* period
of the void-growth phase: the resistance returns all the way to its
fresh value ("Full Recovery"), and -- because the reverse current keeps
flowing -- a reverse-current-induced EM buildup appears afterwards.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro import units
from repro.analysis.reporting import format_series, format_table
from repro.em.line import EmLine, PAPER_EM_RECOVERY, PAPER_EM_STRESS

EARLY_STRESS_MIN = 170.0     # nucleation (~110 min) + early growth
RECOVERY_MIN = 420.0         # long reverse-current window


def test_fig6_em_full_recovery(benchmark):
    def experiment():
        line = EmLine()
        stress_t, stress_r = line.apply_trace(
            units.minutes(EARLY_STRESS_MIN), PAPER_EM_STRESS, 11)
        worn = line.delta_resistance_ohm()
        recovery_t, recovery_r = line.apply_trace(
            units.minutes(RECOVERY_MIN), PAPER_EM_RECOVERY, 22)
        return stress_t, stress_r, worn, recovery_t, recovery_r, line

    stress_t, stress_r, worn, recovery_t, recovery_r, line = \
        run_once(benchmark, experiment)

    print()
    print(format_series(
        "Fig. 6 early-growth stress then recovery",
        [units.to_minutes(t) for t in stress_t]
        + [EARLY_STRESS_MIN + units.to_minutes(t) for t in recovery_t],
        list(stress_r) + list(recovery_r),
        x_label="time (min)", y_label="R (ohm)", precision=4))

    fresh = stress_r[0]
    minimum = float(np.min(recovery_r))
    print()
    print(format_table(("quantity", "paper", "ours"), [
        ("void growth before recovery", "> 0", f"{worn:.3f} ohm"),
        ("closest return to fresh", "full recovery",
         f"{minimum - fresh:+.3f} ohm"),
        ("reverse-current EM afterwards", "appears",
         f"{recovery_r[-1] - minimum:+.3f} ohm"),
    ], title="Fig. 6 summary"))

    # The wire had visibly degraded before recovery started.
    assert worn > 0.1
    # Full recovery: the resistance returns essentially to fresh
    # (< 10 % of the accumulated damage remains at the minimum).
    assert minimum - fresh < 0.1 * worn
    # Reverse-current-induced EM: continued reverse current nucleates
    # the opposite end and the resistance rises again.
    assert line.void_end.nucleated
    assert recovery_r[-1] > minimum + 0.05
