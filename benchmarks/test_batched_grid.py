"""Before/after benchmarks for the batched-grid engines.

Two populations, two engines each:

* the Fig. 10 load grid at 64 points -- the pooled per-point runner
  (one DC + one switching transient per grid point) against
  :class:`~repro.circuit.batched.CircuitBatch`, which advances the
  whole grid as one stacked Newton solve per step;
* nucleation-TTF sampling over a wire population -- one serial
  :class:`~repro.em.korhonen.KorhonenSolver` sweep per wire against
  :class:`~repro.em.korhonen.KorhonenBatch`, which advances the
  ``(n_wires, n_nodes)`` stress slab through one vectorized
  tridiagonal back-substitution per implicit step.

Timings, points/sec and the grouped-solve telemetry land in
``BENCH_batched.json`` at the repo root; the asserts pin the PR
acceptance criteria (>= 4x on the 64-point circuit grid, >= 3x on the
>= 256-wire PDE population, batched equivalent to serial within
1e-10 -- the PDE samples are in fact bit-identical).
"""

from __future__ import annotations

import dataclasses
import gc
import json
import platform
import time
from pathlib import Path

import numpy as np
import pytest

from repro.assist.sweeps import sweep_load_size_pooled
from repro.em import PAPER_EM_STRESS
from repro.em.korhonen import KorhonenConfig
from repro.em.statistics import sample_nucleation_ttfs_pde
from repro.solvers import cache_counters

from benchmarks.conftest import run_once

RESULTS = {}
SPEEDUP_THRESHOLD_CIRCUIT = 4.0
SPEEDUP_THRESHOLD_KORHONEN = 3.0
EQUIVALENCE_TOLERANCE = 1e-10


@pytest.fixture(scope="module", autouse=True)
def bench_report():
    """Dump the collected before/after timings to BENCH_batched.json."""
    yield
    if not RESULTS:
        return
    payload = {
        "suite": "benchmarks/test_batched_grid.py",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "units": "seconds, best of the recorded repetitions",
        "timings": RESULTS,
    }
    path = Path(__file__).resolve().parent.parent \
        / "BENCH_batched.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True)
                    + "\n")


def best_of(fn, reps):
    """Best wall-clock of ``reps`` runs, plus the last return value."""
    best = float("inf")
    value = None
    for _ in range(reps):
        gc.collect()
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def record(name, before_s, after_s, **extra):
    entry = {"before_s": before_s, "after_s": after_s,
             "speedup": before_s / after_s, **extra}
    RESULTS[name] = entry
    return entry


N_GRID_POINTS = 64

N_WIRES = 2048
#: Derating the paper's accelerated-test current stretches nucleation
#: across the probe schedule so the sampler has real work per probe.
CURRENT_DERATE = 0.05
MAX_TIME_S = 6e6
PROBE_STEP_S = 1e5
J_SIGMA = 0.05
PDE_CONFIG = KorhonenConfig(n_nodes=301, max_dt_s=1e4)


def test_batched_circuit_grid_vs_pooled(benchmark):
    """Acceptance: >= 4x over the pooled Fig. 10 grid at 64 points.

    Both paths produce the same observables (swing, normalized delay,
    switching time); the pooled runner pays one Python Newton driver
    -- stamping, factorization, damping -- per grid point per step,
    while the batch pays it once for the whole grid.
    """
    loads = list(range(1, N_GRID_POINTS + 1))

    def pooled():
        return sweep_load_size_pooled(loads, engine="pooled",
                                      max_workers=1)

    def batched():
        return sweep_load_size_pooled(loads, engine="batched")

    # Interleave the timed engines so machine-speed drift inflates
    # both sides alike instead of skewing the ratio.
    after_s = before_s = float("inf")
    for _ in range(2):
        a, fast = best_of(batched, reps=2)
        b, slow = best_of(pooled, reps=1)
        after_s, before_s = min(after_s, a), min(before_s, b)

    worst = 0.0
    for fast_point, slow_point in zip(fast, slow):
        assert fast_point.n_loads == slow_point.n_loads
        worst = max(
            worst,
            abs(fast_point.load_swing_v - slow_point.load_swing_v),
            abs(fast_point.delay_normalized
                - slow_point.delay_normalized),
            abs(fast_point.switching_time_s
                - slow_point.switching_time_s),
            abs(fast_point.switching_time_normalized
                - slow_point.switching_time_normalized))
    assert worst <= EQUIVALENCE_TOLERANCE

    counters = cache_counters().get("circuit.lu.batched", {})
    entry = record(
        "circuit_grid_64_points_vs_pooled", before_s, after_s,
        n_grid_points=N_GRID_POINTS,
        points_per_s_before=N_GRID_POINTS / before_s,
        points_per_s_after=N_GRID_POINTS / after_s,
        max_observable_difference=worst,
        batched_solves=counters.get("batched_solves", 0),
        batched_rows=counters.get("batched_rows", 0))
    run_once(benchmark, batched)
    assert entry["speedup"] >= SPEEDUP_THRESHOLD_CIRCUIT


def test_batched_korhonen_vs_serial(benchmark):
    """Acceptance: >= 3x over serial PDE TTF sampling at >= 256 wires.

    The serial sampler steps one :class:`KorhonenSolver` per wire
    (early-exiting at nucleation); the batch advances all surviving
    wires per probe through one vectorized back-substitution per step
    and compacts nucleated wires out, so both sides do the same
    numerical work.  The sampled TTFs must be identical -- the
    vectorized sweep reproduces LAPACK's per-column arithmetic bit for
    bit.
    """
    condition = dataclasses.replace(
        PAPER_EM_STRESS,
        current_density_a_m2=PAPER_EM_STRESS.current_density_a_m2
        * CURRENT_DERATE)
    kwargs = dict(condition=condition, j_sigma=J_SIGMA, seed=7,
                  config=PDE_CONFIG)

    def serial():
        return sample_nucleation_ttfs_pde(
            N_WIRES, MAX_TIME_S, PROBE_STEP_S, engine="serial",
            **kwargs)

    def batched():
        return sample_nucleation_ttfs_pde(
            N_WIRES, MAX_TIME_S, PROBE_STEP_S, engine="batched",
            **kwargs)

    after_s = before_s = float("inf")
    for _ in range(2):
        a, fast = best_of(batched, reps=2)
        b, slow = best_of(serial, reps=1)
        after_s, before_s = min(after_s, a), min(before_s, b)

    assert np.array_equal(fast, slow)
    finite = np.isfinite(fast)
    assert finite.any()

    counters = cache_counters().get("em.korhonen.lu.batched", {})
    entry = record(
        "korhonen_ttf_2048_wires_vs_serial", before_s, after_s,
        n_wires=N_WIRES, n_nodes=PDE_CONFIG.n_nodes,
        n_probes=int(MAX_TIME_S / PROBE_STEP_S),
        wires_per_s_before=N_WIRES / before_s,
        wires_per_s_after=N_WIRES / after_s,
        nucleated_fraction=float(finite.mean()),
        samples_bitwise_equal=True,
        batched_solves=counters.get("batched_solves", 0),
        batched_rows=counters.get("batched_rows", 0))
    run_once(benchmark, batched)
    assert entry["speedup"] >= SPEEDUP_THRESHOLD_KORHONEN
