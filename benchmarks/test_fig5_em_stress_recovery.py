"""Fig. 5: EM stress evolution and accelerated+active recovery.

The paper stresses its Fig. 3 test wire at 230 degC, +7.96 MA/cm^2 and
plots resistance vs time: a flat void-nucleation phase, a rising
void-growth phase (~72.8 -> ~74.6 ohm), then recovery under reversed
current at the same temperature -- "more than 75 % of EM wearout can be
recovered within 1/5 of the stress time", with a stable permanent
component, while passive recovery (current simply removed) barely
moves.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro import units
from repro.analysis.reporting import format_series, format_table
from repro.em.line import (
    EmLine,
    EmStressCondition,
    PAPER_EM_RECOVERY,
    PAPER_EM_STRESS,
)

STRESS_MIN = 600.0
RECOVERY_MIN = 480.0


def test_fig5_em_stress_and_recovery(benchmark):
    def experiment():
        active = EmLine()
        stress_t, stress_r = active.apply_trace(
            units.minutes(STRESS_MIN), PAPER_EM_STRESS, 21)
        worn = active.delta_resistance_ohm()
        passive = active.copy()
        fifth = active.copy()
        fifth.apply(units.minutes(STRESS_MIN / 5.0), PAPER_EM_RECOVERY)
        recovery_t, recovery_r = active.apply_trace(
            units.minutes(RECOVERY_MIN), PAPER_EM_RECOVERY, 17)
        rest = EmStressCondition(0.0, PAPER_EM_STRESS.temperature_k,
                                 name="passive (no current)")
        passive_t, passive_r = passive.apply_trace(
            units.minutes(RECOVERY_MIN), rest, 17)
        return {
            "stress": (stress_t, stress_r),
            "worn": worn,
            "fifth": fifth.delta_resistance_ohm(),
            "active": (recovery_t, recovery_r, active),
            "passive": (passive_t, passive_r),
        }

    data = run_once(benchmark, experiment)

    stress_t, stress_r = data["stress"]
    recovery_t, recovery_r, line = data["active"]
    passive_t, passive_r = data["passive"]
    print()
    print(format_series(
        "Fig. 5 stress phase (230C, +7.96 MA/cm2)",
        [units.to_minutes(t) for t in stress_t], stress_r,
        x_label="time (min)", y_label="R (ohm)", precision=4))
    print()
    print(format_series(
        "Fig. 5 active+accelerated recovery (-7.96 MA/cm2)",
        [units.to_minutes(t) + STRESS_MIN for t in recovery_t],
        recovery_r, x_label="time (min)", y_label="R (ohm)",
        precision=4))
    worn = data["worn"]
    recovered_fifth = (worn - data["fifth"]) / worn
    final_recovered = (worn - (recovery_r[-1] - stress_r[0])) / worn
    passive_recovered = (worn - (passive_r[-1] - stress_r[0])) / worn
    print()
    print(format_table(("quantity", "paper", "ours"), [
        ("fresh R at 230C", "~72.8 ohm", f"{stress_r[0]:.2f} ohm"),
        ("R after stress", "~74.6 ohm", f"{stress_r[-1]:.2f} ohm"),
        ("recovered at 1/5 stress time", ">75 %",
         f"{recovered_fifth:.1%}"),
        ("passive recovery", "~0 %", f"{passive_recovered:.1%}"),
    ], title="Fig. 5 summary"))

    # Shape assertions.
    assert stress_r[0] == pytest.approx(72.8, abs=0.5)
    assert 74.0 < stress_r[-1] < 75.6
    # Flat nucleation phase: negligible change in the first ~60 min.
    assert stress_r[2] - stress_r[0] < 0.1
    # Active recovery heals >70 % within 1/5 of the stress time.
    assert recovered_fifth > 0.70
    # A permanent component survives: resistance stabilizes above
    # fresh even with extended recovery.
    assert line.locked_void_length_m > 0.0
    plateau = recovery_r[8:14]
    assert np.ptp(plateau) < 0.05
    assert plateau.mean() > stress_r[0] + 0.2
    # Passive recovery is ineffective.
    assert passive_recovered < 0.05
