"""Fig. 10: load size vs performance and mode-switching time.

The paper sweeps the number of load units behind one assist circuit
(1..5) and reports that the normalized load delay grows roughly
linearly (to ~1.8 at five loads) because of header/footer droop, while
the mode-switching time *decreases* with load size, at a slower rate.
"""

import pytest

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table
from repro.assist.sizing import sweep_load_size

SIZES = (1, 2, 3, 4, 5)


def test_fig10_load_size_tradeoff(benchmark):
    points = run_once(benchmark, lambda: sweep_load_size(SIZES))

    rows = [(point.n_loads,
             f"{point.load_swing_v:.3f} V",
             f"{point.delay_normalized:.3f}",
             f"{point.switching_time_s * 1e9:.1f} ns",
             f"{point.switching_time_normalized:.3f}")
            for point in points]
    print()
    print(format_table(
        ("loads", "swing", "norm. delay", "switching time",
         "norm. switching"),
        rows, title="Fig. 10: load size vs delay / switching time"))

    delays = [point.delay_normalized for point in points]
    switching = [point.switching_time_normalized for point in points]
    # Delay grows monotonically, roughly linearly, to ~1.8 at 5 loads.
    assert all(b > a for a, b in zip(delays, delays[1:]))
    assert delays[-1] == pytest.approx(1.8, abs=0.3)
    increments = [b - a for a, b in zip(delays, delays[1:])]
    assert max(increments) < 3.0 * min(increments)
    # Switching time falls with load size...
    assert switching[-1] < 0.8
    assert min(switching) == pytest.approx(min(switching[1:]),
                                           rel=1e-9)
    # ... but more slowly than the delay rises.
    assert (1.0 - switching[-1]) < (delays[-1] - 1.0)
