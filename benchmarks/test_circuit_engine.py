"""Before/after benchmarks for the compiled MNA circuit engine.

Times the seed's per-element Python stamping loop (kept verbatim in
:mod:`benchmarks.seed_circuit`) against the compiled
:class:`~repro.circuit.CompiledCircuit` programs on the two transient
workloads the assist studies lean on -- a 1k-step assist mode-switch
transient and a transistor-level ring-oscillator run -- plus the
pooled ring-oscillator fleet from :mod:`repro.assist.sweeps`.

Timings land in ``BENCH_circuit.json`` at the repo root; the assist
and ring tests assert the PR acceptance criteria (>= 5x and >= 3x
respectively, with <= 1e-10 waveform equivalence against the seed
engine checked inside the timed scenarios themselves).
"""

from __future__ import annotations

import gc
import json
import platform
import time
from pathlib import Path

import numpy as np
import pytest

from repro.assist.circuitry import (
    AssistCircuit,
    AssistCircuitConfig,
    mode_switch_waveforms,
)
from repro.assist.modes import AssistMode
from repro.assist.sweeps import ring_oscillator_fleet
from repro.circuit import RingOscillatorNetlist, transient

from benchmarks.conftest import run_once
from benchmarks.seed_circuit import seed_transient

RESULTS = {}
SPEEDUP_THRESHOLD_ASSIST = 5.0
SPEEDUP_THRESHOLD_RING = 3.0
EQUIVALENCE_TOLERANCE = 1e-10


@pytest.fixture(scope="module", autouse=True)
def bench_report():
    """Dump the collected before/after timings to BENCH_circuit.json."""
    yield
    if not RESULTS:
        return
    payload = {
        "suite": "benchmarks/test_circuit_engine.py",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "units": "seconds, best of the recorded repetitions",
        "timings": RESULTS,
    }
    path = Path(__file__).resolve().parent.parent / "BENCH_circuit.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def best_of(fn, reps):
    """Best wall-clock of ``reps`` runs, plus the last return value."""
    best = float("inf")
    value = None
    for _ in range(reps):
        gc.collect()
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def record(name, before_s, after_s, **extra):
    entry = {"before_s": before_s, "after_s": after_s,
             "speedup": before_s / after_s, **extra}
    RESULTS[name] = entry
    return entry


def waveform_difference(result, reference):
    """Worst scaled elementwise difference between two transients."""
    assert np.array_equal(result.times_s, reference.times_s)
    a, b = result.solutions, reference.solutions
    assert a.shape == b.shape
    scale = max(float(np.abs(b).max(initial=0.0)), 1.0)
    return float(np.abs(a - b).max(initial=0.0)) / scale


def _scalar_step_closures(from_mode, to_mode, supply_v, switch_at_s):
    """The seed engine's original gate drives: scalar step closures.

    The compiled path gets the array-aware ``np.where`` waveforms; the
    seed path gets the plain branches it historically evaluated per
    step, so its timing reflects the engine it was, not a penalty for
    calling vectorized waveforms 1000 times with scalars.  Both
    produce identical values at every grid point.
    """
    vectorized = mode_switch_waveforms(from_mode, to_mode, supply_v,
                                       switch_at_s)
    closures = {}
    for name, waveform in vectorized.items():
        lo = float(waveform(0.0))
        hi = float(waveform(2.0 * switch_at_s))

        def closure(t, lo=lo, hi=hi):
            return hi if t >= switch_at_s else lo
        closures[name] = closure
    return closures


def test_assist_mode_switch_1k_steps(benchmark):
    """The PR acceptance case: >= 5x on a 1k-step assist transient."""
    config = AssistCircuitConfig(n_loads=16)
    stop_s, dt_s = 200e-9, 0.2e-9
    from_mode, to_mode = AssistMode.NORMAL, AssistMode.EM_RECOVERY
    n_steps = int(round(stop_s / dt_s))

    def run_compiled():
        assist = AssistCircuit(config)
        return assist.mode_switch_transient(from_mode, to_mode,
                                            stop_s=stop_s, dt_s=dt_s)

    def run_seed():
        assist = AssistCircuit(config)
        waveforms = _scalar_step_closures(from_mode, to_mode,
                                          config.supply_v, 5e-9)
        assist.set_mode(from_mode)
        return seed_transient(assist.circuit, stop_s=stop_s, dt_s=dt_s,
                              waveforms=waveforms)

    # Interleave the two timed paths so machine-speed drift inflates
    # both sides alike instead of skewing the ratio.
    after_s = before_s = float("inf")
    for _ in range(3):
        a, after = best_of(run_compiled, reps=3)
        b, before = best_of(run_seed, reps=1)
        after_s, before_s = min(after_s, a), min(before_s, b)
    assert waveform_difference(after, before) <= EQUIVALENCE_TOLERANCE
    entry = record(
        "circuit_assist_mode_switch_1k_steps", before_s, after_s,
        n_steps=n_steps, n_unknowns=after.solutions.shape[1],
        steps_per_s_before=n_steps / before_s,
        steps_per_s_after=n_steps / after_s)
    run_once(benchmark, run_compiled)
    assert entry["speedup"] >= SPEEDUP_THRESHOLD_ASSIST


def test_ring_oscillator_simulate(benchmark):
    """The PR acceptance case: >= 3x on a ring-oscillator simulate()."""
    netlist = RingOscillatorNetlist(stages=7)
    stop_s, dt_s = netlist.simulation_window()
    n_steps = int(round(stop_s / dt_s))

    def run_compiled():
        return netlist.simulate()

    def run_seed():
        return seed_transient(netlist.build(), stop_s=stop_s,
                              dt_s=dt_s, from_dc=False)

    after_s = before_s = float("inf")
    for _ in range(3):
        a, after = best_of(run_compiled, reps=2)
        b, before = best_of(run_seed, reps=1)
        after_s, before_s = min(after_s, a), min(before_s, b)
    assert waveform_difference(after, before) <= EQUIVALENCE_TOLERANCE
    frequency = netlist.measured_frequency_hz(after)
    entry = record(
        "circuit_ring_oscillator_simulate", before_s, after_s,
        stages=netlist.stages, n_steps=n_steps,
        measured_frequency_hz=frequency,
        steps_per_s_before=n_steps / before_s,
        steps_per_s_after=n_steps / after_s)
    run_once(benchmark, run_compiled)
    assert entry["speedup"] >= SPEEDUP_THRESHOLD_RING


def test_ring_fleet_pooled(benchmark):
    """The work-aware gate keeps a sub-threshold fleet serial.

    BENCH_circuit.json measured this 12-ring fleet at 0.94x when it
    was pooled by default; the gate in
    :func:`~repro.assist.sweeps.ring_oscillator_fleet` now routes it
    through the serial path unless the fleet's total transient steps
    amortize pool startup.  The bench times the default (gated) call
    against a force-pooled run of the same fleet and checks the
    results are identical either way.
    """
    n_rings = 12
    netlist = RingOscillatorNetlist(stages=5)
    reports = []

    def fleet(min_tasks_for_pool):
        return ring_oscillator_fleet(n_rings, delta_vth_v=0.03,
                                     sigma_vth_v=0.01,
                                     netlist=netlist, seed=11,
                                     max_workers=None,
                                     min_tasks_for_pool=min_tasks_for_pool,
                                     on_report=reports.append)

    forced_s, forced = best_of(lambda: fleet(1), reps=2)
    gated_s, gated = best_of(lambda: fleet(None), reps=2)
    assert gated == forced
    assert reports[-1].mode == "serial"
    record("circuit_ring_fleet_gated_12", forced_s, gated_s,
           n_rings=n_rings, gated_mode=reports[-1].mode,
           rings_per_s_forced_pool=n_rings / forced_s,
           rings_per_s_gated=n_rings / gated_s)
    run_once(benchmark, lambda: fleet(None))
