"""Table I: BTI recovery fraction under the four Fig. 2(a) conditions.

Protocol: 24 h accelerated stress, then 6 h recovery.  The paper
reports (measurement / its own model):

=====  ======================  ===========  =====
No.    Condition               Measurement  Model
=====  ======================  ===========  =====
1      20 degC and 0 V         0.66 %       1 %
2      20 degC and -0.3 V      16.7 %       14.4 %
3      110 degC and 0 V        28.7 %       29.2 %
4      110 degC and -0.3 V     72.4 %       72.7 %
=====  ======================  ===========  =====
"""

import pytest

from benchmarks.conftest import run_once
from repro import units
from repro.analysis.reporting import format_table
from repro.bti.calibration import TABLE1_MEASUREMENTS


def test_table1_bti_recovery(benchmark, calibration):
    model = calibration.build_model()

    def experiment():
        return [
            (row, model.recovery_fraction_after(
                units.hours(24.0), units.hours(6.0), row.condition))
            for row in TABLE1_MEASUREMENTS
        ]

    results = run_once(benchmark, experiment)

    rows = [(row.condition.name,
             f"{row.measured_fraction:.2%}",
             f"{row.paper_model_fraction:.2%}",
             f"{ours:.2%}")
            for row, ours in results]
    print()
    print(format_table(
        ("recovery condition", "paper meas.", "paper model", "ours"),
        rows, title="Table I: 24 h stress, 6 h recovery"))

    # Shape: every row within 2 points of the paper's measurement, and
    # the paper's strict ordering preserved.
    fractions = [ours for _row, ours in results]
    for (row, ours) in results:
        assert ours == pytest.approx(row.measured_fraction, abs=0.02)
    assert fractions[0] < fractions[1] < fractions[3]
    assert fractions[0] < fractions[2] < fractions[3]
