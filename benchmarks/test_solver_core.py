"""Before/after benchmarks for the prefactored solver core.

Each test times the seed's original dense/banded re-solve path (kept
here as a verbatim replica) against the shared
:mod:`repro.solvers` path on the three hot workloads:

* Korhonen stress stepping, 10k implicit steps on the paper's
  1201-node line;
* thermal RC ``advance`` over 1k one-second epochs on an 8x8
  floorplan;
* PDN IR-drop re-solve across 100 load patterns on a 24x24 grid.

Timings (best of a few repetitions) and speedups are written to
``BENCH_solvers.json`` at the repo root when the module finishes, and
each test asserts the acceptance threshold (>= 3x) plus numerical
equivalence between the two paths.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np
import pytest
from scipy.linalg import solve_banded

from repro import units
from repro.em.korhonen import BoundaryKind, KorhonenConfig, \
    KorhonenSolver
from repro.em.statistics import WirePopulationSpec, \
    sample_population_ttfs_parallel
from repro.em.wire import COPPER
from repro.pdn.grid import PdnGrid
from repro.pdn.irdrop import solve_ir_drop_batch
from repro.thermal.floorplan import Floorplan
from repro.thermal.network import ThermalRCNetwork

from benchmarks.conftest import run_once

RESULTS = {}
SPEEDUP_THRESHOLD = 3.0


@pytest.fixture(scope="module", autouse=True)
def bench_report():
    """Dump the collected before/after timings to BENCH_solvers.json."""
    yield
    if not RESULTS:
        return
    payload = {
        "suite": "benchmarks/test_solver_core.py",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "units": "seconds, best of the recorded repetitions",
        "timings": RESULTS,
    }
    path = Path(__file__).resolve().parent.parent / "BENCH_solvers.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def best_of(fn, reps):
    """Best wall-clock of ``reps`` runs, plus the last return value."""
    best = float("inf")
    value = None
    for _ in range(reps):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def record(name, before_s, after_s, **extra):
    entry = {"before_s": before_s, "after_s": after_s,
             "speedup": before_s / after_s, **extra}
    RESULTS[name] = entry
    return entry


def relative_error(result, reference):
    reference = np.asarray(reference)
    return float(np.abs(np.asarray(result) - reference).max()
                 / np.abs(reference).max())


class SeedKorhonen:
    """The seed's per-step banded assembly + solve, verbatim."""

    def __init__(self, length_m, n_nodes):
        self.n = n_nodes
        self.dx = length_m / (n_nodes - 1)
        self.stress = np.zeros(n_nodes)

    def step(self, dt, kappa, gradient):
        n, dx = self.n, self.dx
        r = kappa * dt / (dx * dx)
        bands = np.zeros((3, n))
        bands[0, 1:] = -r
        bands[1, :] = 1.0 + 2.0 * r
        bands[2, :-1] = -r
        bands[0, 1] = -2.0 * r
        bands[2, n - 2] = -2.0 * r
        rhs = self.stress.copy()
        rhs[0] += 2.0 * r * dx * gradient
        rhs[n - 1] -= 2.0 * r * dx * gradient
        self.stress = solve_banded((1, 1), bands, rhs,
                                   overwrite_ab=True, overwrite_b=True)


def test_korhonen_10k_step(benchmark):
    length = 2.673e-3
    temperature = units.celsius_to_kelvin(230.0)
    kappa = COPPER.stress_diffusivity_at(temperature)
    gradient = COPPER.wind_stress_gradient(7.96e10, temperature)
    n_steps = 10_000
    dt = 30.0

    def run_new():
        solver = KorhonenSolver(length, KorhonenConfig(n_nodes=1201,
                                                       max_dt_s=dt))
        solver.advance(n_steps * dt, kappa, gradient,
                       BoundaryKind.BLOCKED, BoundaryKind.BLOCKED)
        return solver.stress

    def run_seed():
        reference = SeedKorhonen(length, 1201)
        for _ in range(n_steps):
            reference.step(dt, kappa, gradient)
        return reference.stress

    after_s, after = best_of(run_new, reps=3)
    before_s, before = best_of(run_seed, reps=3)
    assert relative_error(after, before) < 1e-10
    entry = record("korhonen_10k_step", before_s, after_s,
                   n_nodes=1201, n_steps=n_steps)
    run_once(benchmark, run_new)
    assert entry["speedup"] >= SPEEDUP_THRESHOLD


def seed_thermal_advance(network, duration_s, powers, max_dt_s):
    """The seed's advance loop: rebuild + dense-solve every step."""
    remaining = duration_s
    while remaining > 1e-12:
        dt = min(remaining, max_dt_s)
        system = np.diag(network.capacity / dt) + network._conductance
        rhs = network.capacity / dt * network.temperatures_k + powers \
            + network.g_ambient * network.config.ambient_k
        network.temperatures_k = np.linalg.solve(system, rhs)
        remaining -= dt


def make_manycore_floorplan():
    """A 16x16 (256-core) floorplan, Fig. 12a style but full-chip."""
    return Floorplan.grid(16, 16, name_format="core{row}_{col}")


def test_thermal_1k_epoch_advance(benchmark):
    floorplan = make_manycore_floorplan()
    powers = np.linspace(0.2, 1.8, len(floorplan))
    n_epochs = 1_000

    def run_new():
        network = ThermalRCNetwork(make_manycore_floorplan())
        for _ in range(n_epochs):
            network.advance(1.0, powers, max_dt_s=1.0)
        return network.temperatures_k

    def run_seed():
        network = ThermalRCNetwork(make_manycore_floorplan())
        for _ in range(n_epochs):
            seed_thermal_advance(network, 1.0, powers, 1.0)
        return network.temperatures_k

    after_s, after = best_of(run_new, reps=3)
    before_s, before = best_of(run_seed, reps=2)
    assert relative_error(after, before) < 1e-10
    entry = record("thermal_1k_epoch_advance", before_s, after_s,
                   n_blocks=len(floorplan), n_epochs=n_epochs)
    run_once(benchmark, run_new)
    assert entry["speedup"] >= SPEEDUP_THRESHOLD


def seed_pdn_solve(grid):
    """The seed's dense assembly + np.linalg.solve, verbatim."""
    n = grid.n_nodes
    conductance = np.zeros((n, n))
    current = np.zeros(n)
    for segment in grid.segments():
        i = grid.node_index(*segment.a)
        j = grid.node_index(*segment.b)
        g = 1.0 / segment.resistance_ohm
        conductance[i, i] += g
        conductance[j, j] += g
        conductance[i, j] -= g
        conductance[j, i] -= g
    for address, amps in grid.loads_a.items():
        current[grid.node_index(*address)] -= amps
    for address in grid.pads:
        index = grid.node_index(*address)
        conductance[index, :] = 0.0
        conductance[index, index] = 1.0
        current[index] = grid.supply_v
    return np.linalg.solve(conductance, current)


def pdn_load_patterns(rows, cols, n_patterns, loads_per_pattern):
    rng = np.random.default_rng(2024)
    patterns = []
    for _ in range(n_patterns):
        pattern = {}
        for _ in range(loads_per_pattern):
            address = (int(rng.integers(rows)), int(rng.integers(cols)))
            pattern[address] = pattern.get(address, 0.0) \
                + float(rng.uniform(0.05, 0.4))
        patterns.append(pattern)
    return patterns


def test_pdn_100_pattern_resolve(benchmark):
    rows = cols = 24
    patterns = pdn_load_patterns(rows, cols, n_patterns=100,
                                 loads_per_pattern=24)

    def run_new():
        grid = PdnGrid.with_corner_pads(rows, cols)
        solutions = solve_ir_drop_batch(grid, patterns)
        return np.column_stack([s.node_voltages_v for s in solutions])

    def run_seed():
        columns = []
        for pattern in patterns:
            grid = PdnGrid.with_corner_pads(rows, cols)
            for (row, col), amps in pattern.items():
                grid.add_load(row, col, amps)
            columns.append(seed_pdn_solve(grid))
        return np.column_stack(columns)

    after_s, after = best_of(run_new, reps=3)
    before_s, before = best_of(run_seed, reps=2)
    assert relative_error(after, before) < 1e-10
    entry = record("pdn_100_pattern_resolve", before_s, after_s,
                   grid=f"{rows}x{cols}", n_patterns=len(patterns))
    run_once(benchmark, run_new)
    assert entry["speedup"] >= SPEEDUP_THRESHOLD


def test_sweep_runner_population_sampling(benchmark):
    """Record-only: pool vs serial Monte Carlo (identical streams).

    At 4k x 400 = 1.6M lognormal draws this workload sits below the
    sampler's work-aware pool gate (``_MIN_POOL_SAMPLES``), so both
    paths now run serially in-process and the recorded ratio should
    hover around 1.0 -- the earlier 0.37x pooled regression came from
    paying ~100 ms of process startup for ~15 ms of numpy sampling.
    """
    spec = WirePopulationSpec(n_wires=400,
                              median_ttf_s=units.years(30.0),
                              sigma=0.35)
    n_chips = 4_000

    def run_serial():
        return sample_population_ttfs_parallel(spec, n_chips=n_chips,
                                               seed=7, max_workers=1)

    def run_pool():
        return sample_population_ttfs_parallel(spec, n_chips=n_chips,
                                               seed=7, max_workers=4)

    serial_s, serial = best_of(run_serial, reps=2)
    pool_s, pool = best_of(run_pool, reps=2)
    assert np.array_equal(serial, pool)
    RESULTS["sweep_population_sampling"] = {
        "serial_s": serial_s, "pool_s": pool_s,
        "speedup": serial_s / pool_s, "n_chips": n_chips,
        "note": "record-only; below the work-aware pool gate both "
                "paths run serially (determinism still asserted)",
    }
    run_once(benchmark, run_pool)
