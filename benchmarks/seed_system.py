"""Verbatim pre-vectorization replicas of the system epoch loop.

The vectorized epoch engine (condition-kernel lookup tables, memoized
thermal steady state, hoisted/memoized fleet-BTI sub-step kernels,
array-native power/degradation math) must match the original scalar
path to 1e-10 on every ``SystemResult`` field.  These classes keep
that original path alive, byte for byte, as the timing baseline and
the equivalence oracle for ``benchmarks/test_system_engine.py`` and
``tests/test_system_engine.py``:

* :class:`SeedFleetBtiState` -- ``FleetBtiState.step`` as it was: the
  fill/drain/lock-in factors recomputed inside every sub-step, applied
  with boolean fancy indexing.
* :class:`SeedSystemSimulator` -- ``SystemSimulator`` as it was:
  per-core ``BtiStressCondition`` / ``BtiRecoveryCondition`` objects
  and ``math.exp`` per epoch, a per-core power list comprehension, an
  uncached thermal solve, and a scalar ``delay_degradation`` loop.

The only deliberate difference is that the replica also accumulates
``total_demand`` / ``total_dropped_demand`` (two scalar adds per
epoch) so the fixed ``SystemResult.lost_demand_fraction`` compares
field-for-field across both paths.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional

import numpy as np

from repro import units
from repro.bti.calibration import BtiCalibration, default_calibration
from repro.bti.conditions import (
    ACTIVE_RECOVERY_BIAS_V,
    BtiRecoveryCondition,
    BtiStressCondition,
)
from repro.em.line import EmStressCondition
from repro.errors import SimulationError
from repro.system.aging import FleetBtiState, FleetEmState
from repro.system.chip import Chip
from repro.system.simulator import SystemResult


class SeedFleetBtiState(FleetBtiState):
    """The seed's per-sub-step fancy-indexed trap update, verbatim."""

    def step(self, dt_s: float, stressing: np.ndarray,
             capture_acceleration: np.ndarray,
             recovery_acceleration: np.ndarray) -> None:
        if dt_s < 0.0:
            raise SimulationError("dt_s must be non-negative")
        stressing = np.asarray(stressing, dtype=bool)
        capture = np.asarray(capture_acceleration, dtype=float)
        recovery = np.asarray(recovery_acceleration, dtype=float)
        for array in (stressing, capture, recovery):
            if array.shape != (self.n_units,):
                raise SimulationError(
                    f"per-unit arrays must have shape ({self.n_units},)")
        cfg = self.config
        peak_accel = float(capture[stressing].max()) \
            if np.any(stressing) else 1.0
        n_steps = int(np.ceil(dt_s * max(peak_accel, 1e-12)
                              / max(cfg.lock_age_s / 8.0, 1e-9)))
        n_steps = min(max(n_steps, 1), 64)
        step = dt_s / n_steps
        tau_e = cfg.emission_scale * self.tau_c
        for _ in range(n_steps):
            equivalent = np.where(stressing, capture * step, 0.0)
            if np.any(stressing):
                fill = -np.expm1(-equivalent[stressing, None]
                                 / self.tau_c[None, :])
                self.occupancy[stressing] += (
                    (1.0 - self.occupancy[stressing]) * fill)
            resting = ~stressing
            if np.any(resting):
                drain = np.exp(-step * recovery[resting, None]
                               / tau_e[None, :])
                self.occupancy[resting] *= drain
            occupied = self.occupancy >= cfg.age_on_occupancy
            emptied = self.occupancy <= cfg.age_off_occupancy
            self.age_s += np.where(occupied, equivalent[:, None], 0.0)
            self.age_s[emptied] = 0.0
            if cfg.lock_rate_per_s > 0.0 and np.any(stressing):
                aged = (self.age_s > cfg.lock_age_s) \
                    & stressing[:, None]
                if np.any(aged):
                    fraction = -np.expm1(
                        -cfg.lock_rate_per_s * equivalent)[:, None]
                    converted_v = np.where(
                        aged, self.weights * self.occupancy * fraction,
                        0.0)
                    self.permanent_v += converted_v.sum(axis=1)
                    new_weights = np.where(
                        aged,
                        self.weights * (1.0 - self.occupancy * fraction),
                        self.weights)
                    remaining_charge = self.weights * self.occupancy \
                        - converted_v
                    self.occupancy = np.where(
                        aged & (new_weights > 0.0),
                        remaining_charge / np.maximum(new_weights, 1e-300),
                        self.occupancy)
                    self.weights = new_weights
            self.time_s += step


class SeedSystemSimulator:
    """The seed's scalar per-epoch simulator loop, verbatim."""

    def __init__(self, chip: Chip,
                 calibration: Optional[BtiCalibration] = None,
                 em_reference: Optional[EmStressCondition] = None,
                 epoch_s: float = units.hours(1.0)):
        if epoch_s <= 0.0:
            raise SimulationError("epoch_s must be positive")
        self.chip = chip
        self.calibration = calibration or default_calibration()
        self.epoch_s = epoch_s
        n = chip.n_cores
        population = self.calibration.model_config.population
        self.bti = SeedFleetBtiState(
            n, replace(population, n_bins=64))
        self.em_reference = em_reference or EmStressCondition(
            current_density_a_m2=chip.core.grid_current_density_a_m2,
            temperature_k=units.celsius_to_kelvin(85.0),
            name="grid reference")
        self.em = FleetEmState(n, self.em_reference)
        self._accel_params = self.calibration.model_config.acceleration
        self._reference_stress = \
            self.calibration.model_config.reference_stress

    def _capture_acceleration(self, utilization: np.ndarray,
                              temps_k: np.ndarray) -> np.ndarray:
        accel = np.zeros(len(utilization))
        for i, (util, temp) in enumerate(zip(utilization, temps_k)):
            if util <= 0.0:
                continue
            condition = BtiStressCondition(
                voltage=self.chip.core.stress_voltage_v,
                temperature_k=float(temp))
            accel[i] = util * condition.capture_acceleration(
                self._reference_stress)
        return accel

    def _recovery_acceleration(self, bti_recovering: np.ndarray,
                               temps_k: np.ndarray) -> np.ndarray:
        accel = np.ones(len(bti_recovering))
        for i, temp in enumerate(temps_k):
            bias = ACTIVE_RECOVERY_BIAS_V if bti_recovering[i] else 0.0
            condition = BtiRecoveryCondition(
                gate_bias_v=bias, temperature_k=float(temp))
            accel[i] = condition.acceleration(self._accel_params)
        return accel

    def run(self, n_epochs: int, workload, policy,
            record_every: int = 1) -> SystemResult:
        if n_epochs < 1:
            raise SimulationError("n_epochs must be at least 1")
        if record_every < 1:
            raise SimulationError("record_every must be at least 1")
        n = self.chip.n_cores
        oscillator = self.chip.core.oscillator
        previous_utilization: Optional[np.ndarray] = None
        previous_recovering = np.zeros(n, dtype=bool)
        migration_events = 0
        total_demand = 0.0
        total_dropped = 0.0
        times: List[float] = []
        worst: List[float] = []
        mean: List[float] = []
        dropped: List[float] = []
        for epoch in range(n_epochs):
            demand = workload.demand(epoch)
            assignment = policy.assign(
                epoch, demand, self.bti.delta_vth_v(),
                previous_utilization)
            powers = np.array([
                self.chip.core.recovery_power_w
                if assignment.bti_recovering[i]
                else self.chip.core.power_w(
                    float(assignment.utilization[i]))
                for i in range(n)])
            temps = self.chip.thermal.steady_state(powers)
            stressing = ~assignment.bti_recovering
            capture = self._capture_acceleration(
                assignment.utilization, temps)
            active = stressing & (assignment.utilization > 0.0)
            recovery = self._recovery_acceleration(
                assignment.bti_recovering, temps)
            capture_safe = np.where(capture > 0.0, capture, 1.0)
            self.bti.step(self.epoch_s, active, capture_safe, recovery)
            j = (self.chip.core.grid_current_density_a_m2
                 * assignment.utilization)
            j = np.where(assignment.em_recovering, -j, j)
            self.em.step(self.epoch_s, j, temps)
            migration_events += int(np.count_nonzero(
                assignment.bti_recovering & ~previous_recovering))
            previous_recovering = assignment.bti_recovering
            previous_utilization = assignment.utilization
            total_demand += demand
            total_dropped += assignment.dropped_demand
            if (epoch + 1) % record_every == 0 or epoch == n_epochs - 1:
                degradation = np.array([
                    oscillator.delay_degradation(float(dv))
                    for dv in self.bti.delta_vth_v()])
                times.append((epoch + 1) * self.epoch_s)
                worst.append(float(degradation.max()))
                mean.append(float(degradation.mean()))
                dropped.append(assignment.dropped_demand)
        read_t = float(np.max(self.chip.thermal.temperatures_k))
        return SystemResult(
            times_s=np.array(times),
            worst_degradation=np.array(worst),
            mean_degradation=np.array(mean),
            dropped_demand=np.array(dropped),
            final_delta_vth_v=self.bti.delta_vth_v(),
            final_permanent_vth_v=self.bti.permanent_v.copy(),
            final_em_drift_ohm=self.em.delta_resistance_ohm(),
            em_failures=self.em.failed(read_t),
            migration_events=migration_events,
            n_epochs=n_epochs,
            total_demand=total_demand,
            total_dropped_demand=total_dropped)
