"""Sensitivity of the headline results to the calibration parameters.

The substitution models carry calibrated parameters with real
uncertainty.  These tornado studies quantify how much the two headline
EM results move when the material calibration wiggles over generous
spans -- and verify the *conclusions* survive everywhere in the span:

* the Fig. 7 nucleation-delay factor is a *ratio* at fixed material,
  so it is nearly insensitive to the absolute calibration;
* the absolute nucleation time moves strongly with activation energy
  (as Arrhenius physics demands), which is why the reproduction
  matches shapes and ratios rather than wall-clock minutes.
"""

from dataclasses import replace

import pytest

from benchmarks.conftest import run_once
from repro import units
from repro.analysis.reporting import format_table
from repro.analysis.sensitivity import one_at_a_time, tornado_rows
from repro.em.line import PAPER_EM_STRESS
from repro.em.lumped import LumpedEmModel
from repro.em.wire import COPPER, Wire

BASELINE = {
    "activation_energy_ev": COPPER.activation_energy_ev,
    "critical_stress_pa": COPPER.critical_stress_pa,
    "effective_modulus_pa": COPPER.effective_modulus_pa,
}

SPANS = {
    "activation_energy_ev": (1.0, 1.2),
    "critical_stress_pa": (4.5e8, 8.5e8),
    "effective_modulus_pa": (1.5e10, 4.5e10),
}


def _material(params):
    return replace(COPPER,
                   activation_energy_ev=params["activation_energy_ev"],
                   critical_stress_pa=params["critical_stress_pa"],
                   effective_modulus_pa=params["effective_modulus_pa"])


def _delay_factor(params) -> float:
    """Delay of a 3:1 schedule with intervals scaled to t_nuc.

    The Fig. 7 recipe is "short intervals" *relative to the
    nucleation time*; a fixed wall-clock interval would silently
    change granularity as the calibration moves t_nuc, so the metric
    holds the stress interval at ~0.14 t_nuc (the calibrated 15 min).
    """
    model = LumpedEmModel(Wire(material=_material(params)))
    t_nuc = model.nucleation_time(PAPER_EM_STRESS)
    stress_s = 0.138 * t_nuc
    return model.nucleation_delay_factor(stress_s, stress_s / 3.0,
                                         PAPER_EM_STRESS)


def _nucleation_minutes(params) -> float:
    model = LumpedEmModel(Wire(material=_material(params)))
    return units.to_minutes(model.nucleation_time(PAPER_EM_STRESS))


def test_sensitivity_of_delay_factor(benchmark):
    # max_workers=2 fans the metric evaluations out over the
    # repro.solvers sweep pool; results are identical to serial.
    results = run_once(benchmark,
                       lambda: one_at_a_time(_delay_factor, BASELINE,
                                             SPANS, max_workers=2))
    print()
    print(format_table(
        ("parameter", "span", "delay factor range", "rel. swing"),
        tornado_rows(results),
        title="Fig. 7 delay factor vs material calibration"))
    # The headline ratio is robust: it never leaves the "almost 3x"
    # neighbourhood anywhere in the spans.
    for result in results:
        assert 2.3 < result.low_metric < 4.0
        assert 2.3 < result.high_metric < 4.0
    # And it is far less sensitive than the absolute time (below).
    assert max(r.relative_swing for r in results) < 0.5


def test_sensitivity_of_absolute_nucleation_time(benchmark):
    results = run_once(
        benchmark,
        lambda: one_at_a_time(_nucleation_minutes, BASELINE, SPANS,
                              max_workers=2))
    print()
    print(format_table(
        ("parameter", "span", "t_nuc range (min)", "rel. swing"),
        tornado_rows(results),
        title="Absolute nucleation time vs material calibration"))
    # Arrhenius dominates: the activation energy swings the absolute
    # time by far more than any other parameter.
    assert results[0].parameter == "activation_energy_ev"
    assert results[0].relative_swing > 1.0
