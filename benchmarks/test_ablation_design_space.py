"""Extension benches: design-space conclusions the paper states in prose.

1. **Optimal assist sharing** -- Fig. 10's closing remark ("each load
   will have its own optimal design point ... in terms of area and
   other metrics") quantified: amortizing one assist instance over
   more loads wins until the iso-delay header upsizing dominates.
2. **Compensation vs healing** -- Section I's argument ("a solution
   that can fundamentally fix wearout instead of compensating for its
   effects would be clearly preferable") quantified over a 10-year
   lifetime.
3. **Dark-silicon heat assist** -- Section IV-B's claim that a dark
   core "healed by the generated heat from the neighboring active
   elements" recovers faster than an isolated idle core.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro import units
from repro.analysis.reporting import format_table
from repro.assist.area import optimal_sharing
from repro.bti.conditions import BtiRecoveryCondition, \
    BtiStressCondition
from repro.core.compensation import compare_strategies
from repro.thermal.floorplan import Floorplan
from repro.thermal.network import ThermalRCNetwork

USE_STRESS = BtiStressCondition(
    voltage=0.45, temperature_k=units.celsius_to_kelvin(60.0),
    name="use")


def test_optimal_assist_sharing(benchmark):
    points = run_once(benchmark, lambda: optimal_sharing((1, 2, 3,
                                                          4, 5)))
    print()
    print(format_table(
        ("loads per instance", "iso-delay header upsizing",
         "assist area per load"),
        [(p.n_loads, f"{p.header_scale:.2f}x",
          f"{p.area_per_load:.0f}") for p in points],
        title="Optimal assist-sharing design point (Fig. 10 "
              "conclusion)"))
    costs = [p.cost for p in points]
    best = costs.index(min(costs))
    print(f"\noptimal design point: {points[best].n_loads} loads per "
          f"assist instance")
    # Interior optimum: sharing helps, then compensation area wins.
    assert 0 < best < len(points) - 1
    # Upsizing grows super-linearly with shared load.
    scales = [p.header_scale for p in points]
    assert scales[-1] / scales[1] > scales[1] / scales[0]


def test_compensation_vs_healing(benchmark):
    timelines = run_once(
        benchmark,
        lambda: compare_strategies(units.years(10.0), USE_STRESS))
    by_name = {timeline.name: timeline for timeline in timelines}
    print()
    rows = []
    for timeline in timelines:
        final = timeline.final
        rows.append((timeline.name,
                     f"{final.throughput_factor:.3f}",
                     f"{final.power_factor:.3f}",
                     f"{final.residual_shift_v * 1e3:.2f} mV"))
    print(format_table(
        ("strategy", "final throughput", "final power",
         "residual shift"), rows,
        title="Section I: compensating vs fixing (10-year lifetime)"))

    derating = by_name["derating"].final
    boost = by_name["vdd-boost"].final
    healing = by_name["deep-healing"].final
    # Compensation pays forever: derating loses throughput, boosting
    # burns extra power -- "runs sluggish or burns more power".
    assert derating.throughput_factor < 0.99
    assert boost.power_factor > 1.05
    # Healing removes the wearout itself.
    assert healing.residual_shift_v < 0.3 * derating.residual_shift_v


def test_recovery_knob_pareto(benchmark, calibration):
    """The paper's future-work methodology: active recovery as a
    design knob, explored over the temperature x bias grid."""
    from repro.core.design_space import DesignSpaceExplorer

    explorer = DesignSpaceExplorer(calibration)

    def experiment():
        candidates = explorer.sweep(units.years(10.0), USE_STRESS)
        return candidates, explorer.pareto_front(candidates)

    candidates, front = run_once(benchmark, experiment)

    print()
    rows = []
    for candidate in candidates:
        rows.append((
            candidate.recovery.name,
            "yes" if candidate.feasible else "no",
            "-" if not candidate.feasible
            else f"{candidate.margin:.2%}",
            "-" if not candidate.feasible
            else f"{candidate.availability:.1%}",
            "-" if not candidate.feasible
            else f"{candidate.heater_power_w:.2f} W",
        ))
    print(format_table(
        ("recovery knob", "balances?", "margin", "availability",
         "amortized heater"),
        rows, title="Recovery-knob design space (10-year mission)"))
    print(f"\nPareto-optimal: "
          f"{', '.join(c.recovery.name for c in front)}")

    # Only joint bias+temperature knobs balance a lock-safe cadence.
    for candidate in candidates:
        if candidate.feasible:
            assert candidate.recovery.is_active
            assert candidate.recovery.is_accelerated
    # The frontier trades availability against margin and heat.
    assert len(front) >= 2
    availabilities = [c.availability for c in front]
    margins = [c.margin for c in front]
    assert availabilities != sorted(availabilities, reverse=True) \
        or margins == sorted(margins)


def test_dark_silicon_heat_assist(benchmark):
    """An idle core surrounded by busy neighbours heals faster."""
    def experiment():
        plan = Floorplan.grid(3, 3)
        network = ThermalRCNetwork(plan)
        powers = np.full(9, 1.5)
        powers[4] = 0.05        # centre core dark, neighbours busy
        hot_neighbourhood = network.steady_state(powers)[4]
        idle_chip = network.steady_state(np.full(9, 0.05))[4]
        params = None
        from repro.bti.calibration import default_calibration
        calibration = default_calibration()
        params = calibration.model_config.acceleration
        warm = BtiRecoveryCondition(
            -0.3, float(hot_neighbourhood)).acceleration(params)
        cold = BtiRecoveryCondition(
            -0.3, float(idle_chip)).acceleration(params)
        return hot_neighbourhood, idle_chip, warm, cold

    hot_t, cold_t, warm_accel, cold_accel = run_once(benchmark,
                                                     experiment)
    print()
    print(format_table(("scenario", "dark-core temp",
                        "recovery acceleration"), [
        ("neighbours busy (Fig. 12a)",
         f"{units.kelvin_to_celsius(hot_t):.1f} C",
         f"{warm_accel:.3g}x"),
        ("whole chip idle",
         f"{units.kelvin_to_celsius(cold_t):.1f} C",
         f"{cold_accel:.3g}x"),
    ], title="Dark-silicon heat-assisted recovery"))

    # Neighbour heat raises the dark core's temperature substantially
    # and with it the (thermally activated) recovery rate.
    assert hot_t > cold_t + 10.0
    assert warm_accel > 3.0 * cold_accel
