"""Fig. 7: periodic recovery in the nucleation phase extends the TTF.

The paper schedules "multiple short recovery intervals ... in the early
phase of EM stress evolution", which delays void nucleation "almost 3x"
compared to the continuous-stress run of Fig. 5 and extends the overall
time-to-failure; the continuous-stress wire eventually breaks ("metal
broke").
"""

import math

import pytest

from benchmarks.conftest import run_once
from repro import units
from repro.analysis.reporting import format_table
from repro.core.schedule import PeriodicSchedule, run_em_schedule
from repro.em.korhonen import KorhonenConfig
from repro.em.line import EmLine, EmLineConfig, PAPER_EM_STRESS
from repro.em.lumped import LumpedEmModel

STRESS_MIN = 15.0
RECOVERY_MIN = 5.0


def test_fig7_periodic_recovery_extends_ttf(benchmark):
    lumped = LumpedEmModel()

    def experiment():
        t_nuc_continuous = lumped.nucleation_time(PAPER_EM_STRESS)
        estimate = lumped.nucleation_under_periodic_recovery(
            units.minutes(STRESS_MIN), units.minutes(RECOVERY_MIN),
            PAPER_EM_STRESS)
        ttf_continuous = lumped.time_to_failure(PAPER_EM_STRESS)
        growth_s = ttf_continuous - t_nuc_continuous
        duty = STRESS_MIN / (STRESS_MIN + RECOVERY_MIN)
        ttf_scheduled = estimate.time_s + growth_s / duty
        # Mechanistic spot-check with the PDE model: the line must
        # still be void-free at the continuous nucleation time.
        line = EmLine(config=EmLineConfig(
            korhonen=KorhonenConfig(n_nodes=301, max_dt_s=60.0),
            max_step_s=60.0))
        cycles = int(math.ceil(1.2 * t_nuc_continuous
                               / units.minutes(STRESS_MIN
                                               + RECOVERY_MIN)))
        outcome = run_em_schedule(
            line,
            PeriodicSchedule(units.minutes(STRESS_MIN),
                             units.minutes(RECOVERY_MIN), cycles),
            PAPER_EM_STRESS)
        return (t_nuc_continuous, estimate, ttf_continuous,
                ttf_scheduled, outcome)

    (t_nuc, estimate, ttf_cont, ttf_sched, outcome) = \
        run_once(benchmark, experiment)

    delay = estimate.time_s / t_nuc
    print()
    print(format_table(("quantity", "paper", "ours"), [
        ("continuous nucleation", "~2 h",
         f"{units.to_minutes(t_nuc):.0f} min"),
        (f"scheduled nucleation ({STRESS_MIN:.0f}:{RECOVERY_MIN:.0f}"
         " min)", "~3x slower",
         f"{units.to_minutes(estimate.time_s):.0f} min"
         f" ({delay:.2f}x)"),
        ("continuous TTF (metal broke)", "finite",
         f"{units.to_hours(ttf_cont):.1f} h"),
        ("scheduled TTF", "extended",
         f"{units.to_hours(ttf_sched):.1f} h"
         f" ({ttf_sched / ttf_cont:.2f}x)"),
    ], title="Fig. 7: periodic recovery during nucleation"))

    # "Almost 3x" nucleation delay.
    assert 2.3 < delay < 3.8
    # The overall TTF is extended.  (The estimate is conservative: it
    # only credits the recovery intervals with *pausing* void growth,
    # although at the calibrated recovery boost they actually shrink
    # the void, so the real extension is larger.)
    assert ttf_sched > 1.25 * ttf_cont
    # PDE verification: still void-free past the continuous t_nuc.
    assert outcome.survived_nucleation
