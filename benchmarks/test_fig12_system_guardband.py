"""Fig. 12(b): run-time scheduled recovery shrinks the design margin.

The paper's system-level picture: without recovery, performance decays
toward the worst-case margin over the lifetime; with short scheduled
BTI recovery intervals (and EM recovery alternated with operation), the
system "always runs in a 'refreshing' mode" and the necessary wearout
guardbands shrink.

Two complementary reproductions:

1. a multicore fleet simulation (3 weeks, 1 h epochs) comparing a
   no-recovery baseline against round-robin healing on the same
   workload -- the permanent component and the EM drift must both
   shrink;
2. the compact-model 10-year margin comparison -- the "worst-case
   margin" vs "new design margin" arrows of Fig. 12(b).
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro import units
from repro.analysis.reporting import format_series, format_table
from repro.bti.conditions import BtiStressCondition
from repro.core.margins import GuardbandModel
from repro.system.chip import Chip
from repro.system.scheduler import (
    NoRecoveryPolicy,
    RoundRobinRecoveryPolicy,
)
from repro.system.simulator import SystemSimulator
from repro.system.workload import ConstantWorkload

EPOCHS = 24 * 21  # three weeks at one-hour epochs

USE_STRESS = BtiStressCondition(
    voltage=0.45, temperature_k=units.celsius_to_kelvin(60.0),
    name="use")


def test_fig12_system_guardband(benchmark):
    def experiment():
        results = {}
        for name, policy in (
                ("no recovery", NoRecoveryPolicy()),
                ("scheduled recovery", RoundRobinRecoveryPolicy(
                    recovery_slots=2, em_alternate_every=2))):
            chip = Chip(4, 4)
            simulator = SystemSimulator(chip)
            workload = ConstantWorkload(n_cores=chip.n_cores,
                                        utilization=0.6)
            results[name] = simulator.run(EPOCHS, workload, policy,
                                          record_every=12)
        comparison = GuardbandModel().compare(units.years(10.0),
                                              USE_STRESS)
        return results, comparison

    results, comparison = run_once(benchmark, experiment)

    baseline = results["no recovery"]
    healed = results["scheduled recovery"]
    print()
    print(format_series(
        "worst-core degradation, no recovery",
        [units.to_hours(t) for t in baseline.times_s],
        baseline.worst_degradation, x_label="time (h)",
        y_label="delay degradation", precision=4, max_points=12))
    print()
    print(format_series(
        "worst-core degradation, scheduled recovery",
        [units.to_hours(t) for t in healed.times_s],
        healed.worst_degradation, x_label="time (h)",
        y_label="delay degradation", precision=4, max_points=12))
    print()
    print(format_table(("quantity", "no recovery", "scheduled"), [
        ("fleet guardband (3 weeks)",
         f"{baseline.guardband:.2%}", f"{healed.guardband:.2%}"),
        ("worst permanent dVth",
         f"{baseline.final_permanent_vth_v.max() * 1e3:.2f} mV",
         f"{healed.final_permanent_vth_v.max() * 1e3:.2f} mV"),
        ("worst EM drift",
         f"{baseline.final_em_drift_ohm.max():.3f} ohm",
         f"{healed.final_em_drift_ohm.max():.3f} ohm"),
    ], title="Fig. 12(b): fleet simulation"))
    print()
    print("Fig. 12(b) compact-model margins: "
          + comparison.describe())

    # Scheduled recovery reduces both the permanent component and the
    # EM drift, and never worsens the guardband.
    assert healed.final_permanent_vth_v.max() \
        < 0.8 * baseline.final_permanent_vth_v.max()
    assert healed.final_em_drift_ohm.max() \
        <= baseline.final_em_drift_ohm.max() + 1e-12
    assert healed.guardband <= baseline.guardband + 1e-12
    # The 10-year design margin shrinks substantially ("the necessary
    # wearout guardbands can then be significantly reduced").
    assert comparison.reduction > 0.5
