"""Fig. 4: permanent BTI accumulation under stress/recovery schedules.

The paper cycles accelerated stress against condition-No.4 recovery and
plots the permanent component at the end of each cycle: under a
balanced 1 h : 1 h schedule it is "practically 0", while longer stress
intervals let traps lock in and the residue accumulates cycle after
cycle.
"""

import pytest

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table
from repro.bti.conditions import ACTIVE_ACCELERATED_RECOVERY
from repro.core.schedule import PeriodicSchedule, run_bti_schedule

SCHEDULES = ((1.0, 1.0), (2.0, 1.0), (4.0, 1.0))
CYCLES = 5


def test_fig4_permanent_accumulation(benchmark, calibration):
    def experiment():
        outcomes = []
        for stress_h, recovery_h in SCHEDULES:
            outcome = run_bti_schedule(
                calibration.build_model(),
                PeriodicSchedule.from_hours(stress_h, recovery_h,
                                            CYCLES),
                ACTIVE_ACCELERATED_RECOVERY)
            outcomes.append(outcome)
        return outcomes

    outcomes = run_once(benchmark, experiment)

    rows = []
    for outcome in outcomes:
        per_cycle = " ".join(
            f"{value * 1e3:6.3f}" for value in
            outcome.permanent_per_cycle_v)
        rows.append((outcome.schedule.ratio_label, per_cycle,
                     "yes" if outcome.fully_healed else "no"))
    print()
    print(format_table(
        ("schedule", f"permanent per cycle C1..C{CYCLES} (mV)",
         "fully healed"),
        rows, title="Fig. 4: permanent component vs schedule"))

    balanced, two_to_one, four_to_one = outcomes
    # 1h:1h keeps the permanent component at ~0 ("practically 0").
    assert balanced.fully_healed
    assert balanced.final_permanent_v == pytest.approx(0.0, abs=1e-9)
    # Longer stress intervals accumulate monotonically per cycle...
    for outcome in (two_to_one, four_to_one):
        series = outcome.permanent_per_cycle_v
        assert all(b > a for a, b in zip(series, series[1:]))
    # ... and harsher ratios accumulate faster.
    assert four_to_one.final_permanent_v > two_to_one.final_permanent_v \
        > balanced.final_permanent_v
