"""Ablation: which recovery knob does the healing come from?

The paper's Table I separates three mechanisms -- reverse bias,
temperature, and their synergy.  This ablation removes them one at a
time from the calibrated acceleration law and re-runs the Table I
protocol under the joint condition, quantifying each knob's share of
the 72.4 % recovery.  It also ablates the *scheduling* knob: the same
total recovery time delivered as one late block vs spread in time
(the "in-time" property that kills the permanent component).
"""

from dataclasses import replace

import pytest

from benchmarks.conftest import run_once
from repro import units
from repro.analysis.reporting import format_table
from repro.bti.conditions import ACTIVE_ACCELERATED_RECOVERY
from repro.bti.model import BtiModel, BtiModelConfig


def _recovery_with(calibration, **overrides) -> float:
    params = replace(calibration.model_config.acceleration, **overrides)
    config = BtiModelConfig(
        population=calibration.model_config.population,
        acceleration=params,
        reference_stress=calibration.model_config.reference_stress)
    model = BtiModel(config)
    return model.recovery_fraction_after(
        units.hours(24.0), units.hours(6.0),
        ACTIVE_ACCELERATED_RECOVERY)


def test_ablation_acceleration_knobs(benchmark, calibration):
    def experiment():
        full = _recovery_with(calibration)
        no_synergy = _recovery_with(calibration, synergy_coefficient=0.0)
        no_bias = _recovery_with(calibration, bias_efold_volts=1e9)
        no_temp = _recovery_with(calibration, activation_energy_ev=0.0,
                                 synergy_coefficient=0.0)
        return full, no_synergy, no_bias, no_temp

    full, no_synergy, no_bias, no_temp = run_once(benchmark, experiment)

    print()
    print(format_table(("configuration", "joint-condition recovery"), [
        ("full calibration", f"{full:.1%}"),
        ("- synergy term", f"{no_synergy:.1%}"),
        ("- bias acceleration", f"{no_bias:.1%}"),
        ("- thermal acceleration (and synergy)", f"{no_temp:.1%}"),
    ], title="Ablation: recovery acceleration knobs (Table I "
             "protocol, condition No. 4)"))

    # Every knob contributes: removing any of them loses recovery.
    assert full > no_synergy > 0.0
    assert full > no_bias
    assert full > no_temp
    # The bias*temperature synergy is load-bearing for the measured
    # 72.4 % -- without it the joint condition falls well short.
    assert no_synergy < 0.6


def test_ablation_in_time_vs_late_recovery(benchmark, calibration):
    """Same recovery *budget*, different timing.

    Six hours of joint-condition recovery heal far better when
    delivered as 1 h slices between 1 h stress intervals than as one
    6 h block after 6 h of continuous stress -- because lock-in has a
    deadline.  This isolates the paper's "in-time scheduled recovery"
    claim from the total-recovery-time budget.
    """

    def experiment():
        scheduled = calibration.build_model()
        for _ in range(6):
            scheduled.apply_stress(units.hours(1.0))
            scheduled.apply_recovery(units.hours(1.0),
                                     ACTIVE_ACCELERATED_RECOVERY)
        late = calibration.build_model()
        late.apply_stress(units.hours(6.0))
        late.apply_recovery(units.hours(6.0),
                            ACTIVE_ACCELERATED_RECOVERY)
        return scheduled, late

    scheduled, late = run_once(benchmark, experiment)

    print()
    print(format_table(
        ("strategy", "final shift", "permanent"), [
            ("6 x (1 h stress + 1 h recovery)",
             f"{scheduled.delta_vth_v * 1e3:.3f} mV",
             f"{scheduled.permanent_vth_v * 1e3:.3f} mV"),
            ("6 h stress + one 6 h recovery",
             f"{late.delta_vth_v * 1e3:.3f} mV",
             f"{late.permanent_vth_v * 1e3:.3f} mV"),
        ], title="Ablation: in-time vs late recovery (equal budgets)"))

    # In-time recovery leaves no permanent component; the late block
    # cannot undo what already locked in.
    assert scheduled.permanent_vth_v == pytest.approx(0.0, abs=1e-9)
    assert late.permanent_vth_v > 0.0
    assert scheduled.delta_vth_v < late.delta_vth_v
