"""Before/after benchmarks for the vectorized system epoch engine.

Times the seed's scalar epoch loop (kept verbatim in
:mod:`benchmarks.seed_system`) against the vectorized
:class:`~repro.system.simulator.SystemSimulator` on round-robin-healed
constant-load scenarios at 16 and 256 cores, plus the pooled
:func:`~repro.system.sweeps.run_lifetime_sweep` throughput on a
32-cell policy x workload x chip grid.

Timings, epochs/sec and cache hit rates land in ``BENCH_system.json``
at the repo root; the 256-core test asserts the PR acceptance
criterion (>= 5x epochs/sec with <= 1e-10 equivalence on every
``SystemResult`` field).
"""

from __future__ import annotations

import gc
import json
import platform
import time
from pathlib import Path

import numpy as np
import pytest

from repro.system.chip import Chip
from repro.system.scheduler import (
    NoRecoveryPolicy,
    RoundRobinRecoveryPolicy,
)
from repro.system.simulator import SystemSimulator
from repro.system.sweeps import ChipConfig, run_lifetime_sweep
from repro.system.workload import ConstantWorkload, DiurnalWorkload

from benchmarks.conftest import run_once
from benchmarks.seed_system import SeedSystemSimulator

RESULTS = {}
SPEEDUP_THRESHOLD_256 = 5.0
EQUIVALENCE_TOLERANCE = 1e-10


@pytest.fixture(scope="module", autouse=True)
def bench_report():
    """Dump the collected before/after timings to BENCH_system.json."""
    yield
    if not RESULTS:
        return
    payload = {
        "suite": "benchmarks/test_system_engine.py",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "units": "seconds, best of the recorded repetitions",
        "timings": RESULTS,
    }
    path = Path(__file__).resolve().parent.parent / "BENCH_system.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def best_of(fn, reps, setup=None):
    """Best wall-clock of ``reps`` runs, plus the last return value.

    ``setup`` (when given) builds a fresh argument for each repetition
    outside the timed region, so construction cost and allocator noise
    stay out of the throughput number.
    """
    best = float("inf")
    value = None
    for _ in range(reps):
        arg = setup() if setup is not None else None
        gc.collect()
        start = time.perf_counter()
        value = fn(arg) if setup is not None else fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def record(name, before_s, after_s, **extra):
    entry = {"before_s": before_s, "after_s": after_s,
             "speedup": before_s / after_s, **extra}
    RESULTS[name] = entry
    return entry


def result_difference(result, reference):
    """Worst scaled elementwise difference over all result fields."""
    worst = 0.0
    for field in ("times_s", "worst_degradation", "mean_degradation",
                  "dropped_demand", "final_delta_vth_v",
                  "final_permanent_vth_v", "final_em_drift_ohm"):
        a = np.asarray(getattr(result, field), dtype=float)
        b = np.asarray(getattr(reference, field), dtype=float)
        assert a.shape == b.shape, field
        scale = max(float(np.abs(b).max(initial=0.0)), 1.0)
        worst = max(worst, float(np.abs(a - b).max(initial=0.0))
                    / scale)
    assert np.array_equal(result.em_failures, reference.em_failures)
    assert result.migration_events == reference.migration_events
    assert result.n_epochs == reference.n_epochs
    for field in ("total_demand", "total_dropped_demand"):
        a, b = getattr(result, field), getattr(reference, field)
        worst = max(worst, abs(a - b) / max(abs(b), 1.0))
    return worst


def _epoch_scenario(n_side, n_epochs, recovery_slots,
                    em_alternate_every=2):
    """(new_setup, seed_setup, run) for one round-robin scenario.

    The setups build a fresh simulator (outside the timed region --
    chip construction is not epoch throughput); ``run`` drives it and
    is what gets timed.
    """
    n_cores = n_side * n_side

    def new_setup():
        return SystemSimulator(Chip(n_side, n_side))

    def seed_setup():
        return SeedSystemSimulator(Chip(n_side, n_side))

    def run(simulator):
        result = simulator.run(
            n_epochs,
            ConstantWorkload(n_cores=n_cores, utilization=0.4),
            RoundRobinRecoveryPolicy(
                recovery_slots=recovery_slots,
                em_alternate_every=em_alternate_every))
        return result, simulator

    return new_setup, seed_setup, run


def test_epoch_engine_16_core(benchmark):
    """Record-only: fixed per-epoch overheads cap the 16-core gain."""
    n_epochs = 1_000
    new_setup, seed_setup, run = _epoch_scenario(
        4, n_epochs, recovery_slots=2)
    after_s, (after, simulator) = best_of(run, reps=3, setup=new_setup)
    before_s, (before, _) = best_of(run, reps=2, setup=seed_setup)
    assert result_difference(after, before) <= EQUIVALENCE_TOLERANCE
    record("system_epoch_engine_16core", before_s, after_s,
           n_cores=16, n_epochs=n_epochs,
           epochs_per_s_before=n_epochs / before_s,
           epochs_per_s_after=n_epochs / after_s)
    run_once(benchmark, lambda: run(new_setup()))


def test_epoch_engine_256_core(benchmark):
    """The PR acceptance case: >= 5x epochs/sec at 256 cores.

    The EM-alternation period (3) is chosen coprime to the rotation
    period (256 cores / 8 slots = 32 epochs) so the schedule revisits
    a power vector under *different* EM polarity: with the former
    period of 2 (a divisor of 32), every rotation window always
    landed on the same EM parity, each distinct condition bundle had
    a unique power vector, and the thermal memo could never hit (the
    BENCH_system.json ``thermal_cache_hits: 0`` mystery -- the cache
    key was exact, the bench simply never re-solved a power vector
    outside the condition-bundle cache).  With coprime periods there
    are 64 condition bundles over 32 power vectors, so half the
    bundle builds hit the thermal memo; the assertion below pins that
    behaviour.
    """
    n_epochs = 1_000
    new_setup, seed_setup, run = _epoch_scenario(
        16, n_epochs, recovery_slots=8, em_alternate_every=3)
    # Interleave the two timed paths so machine-speed drift (VM steal
    # time) inflates both sides alike instead of skewing the ratio.
    after_s = before_s = float("inf")
    for _ in range(3):
        a, (after, simulator) = best_of(run, reps=2, setup=new_setup)
        b, (before, _) = best_of(run, reps=1, setup=seed_setup)
        after_s, before_s = min(after_s, a), min(before_s, b)
    assert result_difference(after, before) <= EQUIVALENCE_TOLERANCE
    thermal_cache = simulator.chip.thermal.steady_cache
    kernel_cache = simulator.bti.kernel_cache
    entry = record(
        "system_epoch_engine_256core", before_s, after_s,
        n_cores=256, n_epochs=n_epochs,
        epochs_per_s_before=n_epochs / before_s,
        epochs_per_s_after=n_epochs / after_s,
        thermal_cache_hits=thermal_cache.hits,
        thermal_cache_misses=thermal_cache.misses,
        bti_kernel_cache_hits=kernel_cache.hits,
        bti_kernel_cache_misses=kernel_cache.misses)
    run_once(benchmark, lambda: run(new_setup()))
    assert entry["speedup"] >= SPEEDUP_THRESHOLD_256
    # Repeating assignments must reach the thermal memo: distinct
    # condition bundles that share a power vector resolve as hits.
    assert entry["thermal_cache_hits"] >= 1


def test_lifetime_sweep_32_cells(benchmark):
    """Pooled sweep throughput; results must match the serial path."""
    policies = {
        "none": NoRecoveryPolicy(),
        "rr1": RoundRobinRecoveryPolicy(recovery_slots=1),
        "rr2": RoundRobinRecoveryPolicy(recovery_slots=2,
                                        em_alternate_every=2),
        "rr3": RoundRobinRecoveryPolicy(recovery_slots=3,
                                        em_alternate_every=4),
    }
    workloads = {
        "flat04": ConstantWorkload(n_cores=9, utilization=0.4),
        "flat06": ConstantWorkload(n_cores=9, utilization=0.6),
        "flat08": ConstantWorkload(n_cores=9, utilization=0.8),
        "diurnal": DiurnalWorkload(n_cores=9, period_epochs=24),
    }
    chips = [ChipConfig(3, 3, name="3x3"),
             ChipConfig(3, 3, thermal=None, name="3x3b")]
    n_epochs = 168
    n_cells = len(policies) * len(workloads) * len(chips)

    def sweep(max_workers):
        return run_lifetime_sweep(policies, workloads, chips,
                                  n_epochs=n_epochs, seed=11,
                                  max_workers=max_workers)

    serial_s, serial = best_of(lambda: sweep(1), reps=1)
    pool_s, pooled = best_of(lambda: sweep(None), reps=2)
    assert pooled.cells == serial.cells
    record("system_lifetime_sweep_32cells", serial_s, pool_s,
           n_cells=n_cells, n_epochs=n_epochs,
           cells_per_s_serial=n_cells / serial_s,
           cells_per_s_pool=n_cells / pool_s)
    run_once(benchmark, lambda: sweep(None))
