"""Fig. 8(b): the assist-circuit truth table, verified electrically.

The paper's Fig. 8(b) tabulates which devices conduct in each mode.
This bench does more than restate the table: it solves the circuit in
every mode and checks each device's *actual* conduction state (drain
current above/below a threshold) against the truth table entry.
"""

import pytest

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table
from repro.assist.circuitry import AssistCircuit
from repro.assist.modes import (
    AssistMode,
    DEVICE_NAMES,
    DeviceState,
    TRUTH_TABLE,
)
from repro.circuit.dc import dc_operating_point

#: Currents above this are "conducting" (well above the off leakage).
_CONDUCTION_THRESHOLD_A = 1e-5


def test_fig8_truth_table_is_electrically_consistent(benchmark):
    circuit = AssistCircuit()

    def experiment():
        observed = {}
        for mode in AssistMode:
            circuit.set_mode(mode)
            solution = dc_operating_point(circuit.circuit)
            observed[mode] = {
                device: abs(solution.mosfet_current(device))
                for device in DEVICE_NAMES}
        return observed

    observed = run_once(benchmark, experiment)

    rows = []
    for device in DEVICE_NAMES:
        row = [device]
        for mode in AssistMode:
            expected = TRUTH_TABLE[mode][device]
            current = observed[mode][device]
            conducting = current > _CONDUCTION_THRESHOLD_A
            row.append(f"{expected.value}"
                       f" ({current * 1e3:.2f} mA)")
            # An ON device in a live current path conducts; an OFF
            # device never does.  (ON devices in the BTI mode's dead
            # branches legitimately carry no current, so only the OFF
            # entries are strict.)
            if expected is DeviceState.OFF:
                assert not conducting, (mode, device, current)
        rows.append(tuple(row))
    print()
    print(format_table(
        ("device", "Normal", "EM recovery", "BTI recovery"), rows,
        title="Fig. 8(b) truth table with measured drain currents"))

    # Every mode's intended series path carries the load current.
    on_path = {
        AssistMode.NORMAL: ("P1", "P4", "N3", "N2"),
        AssistMode.EM_RECOVERY: ("P2", "P3", "N4", "N1"),
        AssistMode.BTI_RECOVERY: ("P5", "N5"),
    }
    for mode, devices in on_path.items():
        for device in devices:
            assert observed[mode][device] > _CONDUCTION_THRESHOLD_A, \
                (mode, device)
