#!/usr/bin/env python
"""Regenerate ``bench_output_tables.txt`` at the repo root.

The file is the captured ``pytest -s`` output of every table-printing
benchmark suite (the paper-figure and ablation tables), followed by
the fleet-chunk scaling table rendered from ``BENCH_fleet.json`` --
so the perf trajectory of the fleet engine stays reviewable from the
repo root next to the physics tables.

Usage::

    PYTHONPATH=src python benchmarks/regenerate_tables.py
    PYTHONPATH=src python benchmarks/regenerate_tables.py --tables-only

``--tables-only`` skips the pytest run and only refreshes the
appended fleet table (use it after a benchmark run already updated
``BENCH_fleet.json``).
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "bench_output_tables.txt"
BENCH_FLEET_PATH = REPO_ROOT / "BENCH_fleet.json"

#: The table-printing suites, in the order they appear in the file.
TABLE_SUITES = (
    "benchmarks/test_ablation_chain_segmentation.py",
    "benchmarks/test_ablation_design_rules.py",
    "benchmarks/test_ablation_design_space.py",
    "benchmarks/test_ablation_em_granularity.py",
    "benchmarks/test_ablation_model_robustness.py",
    "benchmarks/test_ablation_recovery_knobs.py",
    "benchmarks/test_fig10_load_size_tradeoff.py",
    "benchmarks/test_fig12_system_guardband.py",
    "benchmarks/test_fig4_bti_permanent_accumulation.py",
    "benchmarks/test_fig5_em_stress_recovery.py",
    "benchmarks/test_fig6_em_full_recovery.py",
    "benchmarks/test_fig7_em_periodic_recovery_ttf.py",
    "benchmarks/test_fig8_truth_table.py",
    "benchmarks/test_fig9_assist_functionality.py",
    "benchmarks/test_sensitivity_headline.py",
    "benchmarks/test_table1_bti_recovery.py",
)

#: ``BENCH_fleet.json`` entries of the scaling table, in population
#: order, with the columns each one can fill.
FLEET_SCALING_ENTRIES = (
    "fleet_vs_pooled_sweep_1024_chips",
    "fleet_scaling_4096_chips_varied",
    "hetero_grid_fleet_vs_pooled_1024_cells",
    "chunked_fleet_65536_chips",
    "checkpointed_fleet_65536_chips",
    "parallel_chunked_fleet_65536_chips",
    "parallel_fleet_262144_chips",
)


def render_table(header, rows):
    """Render aligned ``col | col`` rows, matching the suite tables."""
    widths = [max(len(str(row[i])) for row in [header] + rows)
              for i in range(len(header))]
    lines = [" | ".join(str(cell).ljust(width)
                        for cell, width in zip(row, widths)).rstrip()
             for row in [header] + rows]
    lines.insert(1, "-+-".join("-" * width for width in widths))
    return "\n".join(lines)


def fleet_chunk_table():
    """The fleet-chunk scaling table from ``BENCH_fleet.json``."""
    title = "Fleet chunk scaling (BENCH_fleet.json)"
    if not BENCH_FLEET_PATH.exists():
        return (f"{title}\n(no BENCH_fleet.json -- run "
                "benchmarks/test_fleet_engine.py first)")
    timings = json.loads(BENCH_FLEET_PATH.read_text())["timings"]
    header = ("entry", "chips", "chunks", "workers", "chips/s",
              "speedup", "mode")
    rows = []
    for name in FLEET_SCALING_ENTRIES:
        entry = timings.get(name)
        if entry is None:
            continue
        chips = entry.get("n_chips", entry.get("n_cells", "-"))
        rate = (entry.get("chips_per_s")
                or entry.get("chips_per_s_parallel")
                or entry.get("chips_per_s_after")
                or entry.get("cells_per_s_after"))
        workers = entry.get("workers",
                            entry.get("requested_workers", 1))
        speedup = entry.get("speedup")
        rows.append((
            name, chips, entry.get("n_chunks", 1), workers,
            f"{rate:,.0f}" if rate else "-",
            f"{speedup:.2f}x" if speedup else "-",
            entry.get("mode", "fleet")))
    if not rows:
        return f"{title}\n(no fleet entries recorded)"
    return f"{title}\n{render_table(header, rows)}"


def capture_suite_output():
    """Run the table suites and return their combined output."""
    completed = subprocess.run(
        [sys.executable, "-m", "pytest", "-s", *TABLE_SUITES],
        cwd=REPO_ROOT, capture_output=True, text=True)
    output = completed.stdout + completed.stderr
    if completed.returncode != 0:
        sys.stderr.write(output)
        raise SystemExit(
            f"table suites failed (exit {completed.returncode})")
    return output


def main(argv):
    tables_only = "--tables-only" in argv
    if tables_only and OUTPUT_PATH.exists():
        text = OUTPUT_PATH.read_text()
        marker = "\nFleet chunk scaling (BENCH_fleet.json)"
        if marker in text:
            text = text[:text.index(marker) + 1]
        suite_output = text.rstrip("\n") + "\n"
    else:
        suite_output = capture_suite_output()
    OUTPUT_PATH.write_text(suite_output.rstrip("\n") + "\n\n"
                           + fleet_chunk_table() + "\n")
    print(f"wrote {OUTPUT_PATH}")


if __name__ == "__main__":
    main(sys.argv[1:])
