"""Verbatim pre-compilation replicas of the MNA circuit engine.

The compiled circuit programs (:mod:`repro.circuit.compiled`) must
match the seed's per-element Python stamping loop to 1e-10 on every
waveform.  These functions keep that original path alive, byte for
byte, as the timing baseline and the equivalence oracle for
``benchmarks/test_circuit_engine.py`` and
``tests/test_circuit_compiled.py``:

* :func:`seed_dc_operating_point` -- damped Newton with gmin stepping,
  re-stamping every element through ``MnaSystem`` on each iteration
  and solving through the content-hashed dense LU cache.
* :func:`seed_transient` -- fixed-step backward-Euler with per-step
  waveform callables and per-capacitor companion stamping.

Both paths mutate the circuit exactly as the seed did (source values
follow the waveforms, capacitor states follow the solution), so a
seed run and a compiled run on two identically-built circuits leave
identical final netlist state.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.circuit.dc import DcSolution
from repro.circuit.elements import MnaSystem
from repro.circuit.netlist import Circuit
from repro.circuit.transient import TransientResult
from repro.errors import ConvergenceError
from repro.solvers import FactorizationCache, solve_dense_cached

#: The seed's Newton constants, unchanged.
_MAX_ITERATIONS = 200
_MAX_UPDATE_V = 0.3
_VOLTAGE_TOL = 1e-9

#: The seed's shared content-keyed LU cache (DC + transient).
_LU_CACHE = FactorizationCache(maxsize=32)

Waveform = Callable[[float], float]


def seed_assemble(circuit: Circuit, estimate: np.ndarray,
                  gmin: float) -> MnaSystem:
    """The seed's per-element Python assembly loop, verbatim."""
    system = MnaSystem(circuit.n_nodes, len(circuit.voltage_sources))
    for resistor in circuit.resistors:
        resistor.stamp(system)
    for source in circuit.voltage_sources:
        source.stamp(system)
    for source in circuit.current_sources:
        source.stamp(system)
    for mosfet in circuit.mosfets:
        mosfet.stamp(system, estimate)
    if gmin > 0.0:
        for node in range(circuit.n_nodes):
            system.matrix[node, node] += gmin
    return system


def _seed_newton(circuit: Circuit, estimate: np.ndarray, gmin: float
                 ) -> Tuple[Optional[np.ndarray], int]:
    """Damped Newton at a fixed gmin: (solution or None, iterations)."""
    x = estimate.copy()
    n_nodes = circuit.n_nodes
    for iteration in range(1, _MAX_ITERATIONS + 1):
        system = seed_assemble(circuit, x, gmin)
        try:
            target = solve_dense_cached(system.matrix, system.rhs,
                                        _LU_CACHE)
        except np.linalg.LinAlgError:
            return None, iteration
        if not np.all(np.isfinite(target)):
            return None, iteration
        delta = target - x
        max_step = float(np.abs(delta[:n_nodes]).max()) if n_nodes else 0.0
        if max_step > _MAX_UPDATE_V:
            x = x + (_MAX_UPDATE_V / max_step) * delta
            continue
        x = target
        if max_step <= _VOLTAGE_TOL:
            return x, iteration
    return None, _MAX_ITERATIONS


def seed_dc_operating_point(circuit: Circuit,
                            initial_guess: Optional[np.ndarray] = None
                            ) -> DcSolution:
    """The seed's DC operating-point analysis, verbatim."""
    size = circuit.n_unknowns
    if initial_guess is not None and initial_guess.shape == (size,):
        estimate = initial_guess.copy()
    else:
        estimate = np.zeros(size)

    solution, iterations = _seed_newton(circuit, estimate, gmin=0.0)
    if solution is not None:
        return DcSolution(circuit, solution, iterations)

    total_iterations = iterations
    for exponent in range(3, 13):
        gmin = 10.0 ** (-exponent)
        stepped, used = _seed_newton(circuit, estimate, gmin=gmin)
        total_iterations += used
        if stepped is None:
            break
        estimate = stepped
    solution, used = _seed_newton(circuit, estimate, gmin=0.0)
    total_iterations += used
    if solution is None:
        raise ConvergenceError(
            f"DC analysis of {circuit.title!r} failed to converge")
    return DcSolution(circuit, solution, total_iterations)


def _seed_solve_step(circuit: Circuit, estimate: np.ndarray,
                     dt: float) -> np.ndarray:
    """One backward-Euler step: Newton on the companion network."""
    x = estimate.copy()
    n_nodes = circuit.n_nodes
    for _ in range(_MAX_ITERATIONS):
        system = seed_assemble(circuit, x, gmin=0.0)
        for capacitor in circuit.capacitors:
            capacitor.stamp_transient(system, dt)
        try:
            target = solve_dense_cached(system.matrix, system.rhs,
                                        _LU_CACHE)
        except np.linalg.LinAlgError as exc:
            raise ConvergenceError(
                f"transient step of {circuit.title!r} is singular") from exc
        delta = target - x
        max_step = float(np.abs(delta[:n_nodes]).max()) if n_nodes else 0.0
        if max_step > _MAX_UPDATE_V:
            x = x + (_MAX_UPDATE_V / max_step) * delta
            continue
        x = target
        if max_step <= _VOLTAGE_TOL:
            return x
    raise ConvergenceError(
        f"transient step of {circuit.title!r} failed to converge")


def seed_transient(circuit: Circuit, stop_s: float, dt_s: float,
                   waveforms: Optional[Dict[str, Waveform]] = None,
                   from_dc: bool = True) -> TransientResult:
    """The seed's fixed-step backward-Euler transient, verbatim.

    (The seed raised ``ConvergenceError`` for an unknown waveform name;
    that pre-validation quirk is not part of the numerical engine and
    is irrelevant here, so the replica validates the same way the fixed
    public API does.)
    """
    if stop_s <= 0.0 or dt_s <= 0.0:
        raise ValueError("stop_s and dt_s must be positive")
    waveforms = waveforms or {}
    sources_by_name = {source.name: source
                       for source in circuit.voltage_sources}
    sources_by_name.update({source.name: source
                            for source in circuit.current_sources})
    for name in waveforms:
        if name not in sources_by_name:
            raise ValueError(f"no source named {name!r} to drive")

    def apply_waveforms(t: float) -> None:
        for name, waveform in waveforms.items():
            source = sources_by_name[name]
            if hasattr(source, "volts"):
                source.volts = float(waveform(t))
            else:
                source.amps = float(waveform(t))

    apply_waveforms(0.0)
    if from_dc:
        x = seed_dc_operating_point(circuit).solution
    else:
        x = np.zeros(circuit.n_unknowns)
    for capacitor in circuit.capacitors:
        capacitor.update_state(x)

    n_steps = int(round(stop_s / dt_s))
    times = np.linspace(0.0, n_steps * dt_s, n_steps + 1)
    solutions = np.empty((n_steps + 1, circuit.n_unknowns))
    solutions[0] = x
    for step in range(1, n_steps + 1):
        apply_waveforms(times[step])
        x = _seed_solve_step(circuit, x, dt_s)
        for capacitor in circuit.capacitors:
            capacitor.update_state(x)
        solutions[step] = x
    return TransientResult(circuit, times, solutions)
