"""Ablation: are the paper's conclusions robust to the BTI physics?

The paper concedes that "a consensus has still not been reached
regarding the exact physical mechanisms that cause wearout (especially
for BTI)".  This bench reruns the two headline BTI experiments under
*both* of the library's mechanistically different substrates -- the
trap (capture/emission) model and the reaction-diffusion model -- and
reports:

* which Table I rows each model can reproduce (the trap model fits all
  four; the R-D recovery shape structurally misses the middle rows --
  a documented reason it is the secondary substrate), and
* that the *scheduling* conclusion (balanced in-time recovery keeps
  the permanent component at zero, late recovery does not) holds under
  both, i.e. the paper's contribution does not hinge on the mechanism
  debate.
"""

import pytest

from benchmarks.conftest import run_once
from repro import units
from repro.analysis.reporting import format_table
from repro.bti.calibration import TABLE1_MEASUREMENTS
from repro.bti.conditions import ACTIVE_ACCELERATED_RECOVERY
from repro.bti.reaction_diffusion import ReactionDiffusionBtiModel
from repro.core.schedule import PeriodicSchedule, run_bti_schedule


def test_model_robustness(benchmark, calibration):
    def experiment():
        trap_rows = []
        rd_rows = []
        rd = ReactionDiffusionBtiModel()
        trap = calibration.build_model()
        for row in TABLE1_MEASUREMENTS:
            trap_rows.append(trap.recovery_fraction_after(
                units.hours(24.0), units.hours(6.0), row.condition))
            rd_rows.append(rd.recovery_fraction_after(
                units.hours(24.0), units.hours(6.0), row.condition))
        schedules = {}
        for name, model in (("trap", calibration.build_model()),
                            ("reaction-diffusion",
                             ReactionDiffusionBtiModel())):
            balanced = run_bti_schedule(
                model, PeriodicSchedule.from_hours(1.0, 1.0, 5),
                ACTIVE_ACCELERATED_RECOVERY)
            schedules[name] = balanced
        return trap_rows, rd_rows, schedules

    trap_rows, rd_rows, schedules = run_once(benchmark, experiment)

    print()
    rows = []
    for row, trap_f, rd_f in zip(TABLE1_MEASUREMENTS, trap_rows,
                                 rd_rows):
        rows.append((row.condition.name,
                     f"{row.measured_fraction:.2%}",
                     f"{trap_f:.2%}", f"{rd_f:.2%}"))
    print(format_table(
        ("condition", "paper", "trap model", "R-D model"), rows,
        title="Table I under both BTI substrates"))
    print()
    print(format_table(
        ("substrate", "1h:1h permanent after 5 cycles"),
        [(name, f"{outcome.final_permanent_v * 1e3:.4f} mV")
         for name, outcome in schedules.items()],
        title="Scheduling conclusion under both substrates"))

    # The trap model reproduces every row.
    for row, fraction in zip(TABLE1_MEASUREMENTS, trap_rows):
        assert fraction == pytest.approx(row.measured_fraction,
                                         abs=0.02)
    # The R-D model fits the outer rows but structurally misses the
    # bias-only row.
    assert rd_rows[0] == pytest.approx(
        TABLE1_MEASUREMENTS[0].measured_fraction, abs=0.02)
    assert rd_rows[3] == pytest.approx(
        TABLE1_MEASUREMENTS[3].measured_fraction, abs=0.08)
    assert abs(rd_rows[1]
               - TABLE1_MEASUREMENTS[1].measured_fraction) > 0.04
    # Both preserve the ordering...
    for fractions in (trap_rows, rd_rows):
        assert fractions[0] < fractions[1] < fractions[3]
    # ... and both deliver the scheduling result.
    for outcome in schedules.values():
        assert outcome.fully_healed
