"""Extension benches: design-time rules vs run-time deep healing.

The paper's Section I: wearout "is mainly addressed by design rules
(e.g. metal width requirement) during the physical design phase ...
but this leads to conservative overdesigns".  These benches put the
classical design-time answers next to scheduled recovery on the same
models:

1. **EM**: Blech-rule segmentation / widening vs the Fig. 7 periodic
   recovery schedule -- what each costs and buys for the same wire.
2. **BTI**: the worst-device margin of a large near-threshold array
   (stochastic BTI), with and without deep healing of the mean.
"""

import pytest

from benchmarks.conftest import run_once
from repro import units
from repro.analysis.reporting import format_table
from repro.bti.variability import BtiVariabilityModel
from repro.em.blech import assess, critical_length_m
from repro.em.line import PAPER_EM_STRESS
from repro.em.lumped import LumpedEmModel
from repro.em.wire import PAPER_TEST_WIRE, Wire


def test_em_design_rules_vs_healing(benchmark):
    def experiment():
        wire = PAPER_TEST_WIRE
        model = LumpedEmModel(wire)
        baseline_ttf = model.time_to_failure(PAPER_EM_STRESS)
        audit = assess(wire, PAPER_EM_STRESS)
        # Rule A: segment the line below the critical length.
        l_crit = critical_length_m(
            wire.material, PAPER_EM_STRESS.current_density_a_m2,
            PAPER_EM_STRESS.temperature_k)
        n_segments = int(wire.length_m / (0.9 * l_crit)) + 1
        # Rule B: widen the wire until it is immortal at fixed current.
        widen_factor = (audit.jl_product_a_per_m
                        / audit.jl_critical_a_per_m)
        # Run-time: the Fig. 7 schedule.
        delay = model.nucleation_delay_factor(
            units.minutes(15.0), units.minutes(5.0), PAPER_EM_STRESS)
        return (baseline_ttf, audit, n_segments, widen_factor, delay)

    baseline_ttf, audit, n_segments, widen_factor, delay = \
        run_once(benchmark, experiment)

    print()
    print(format_table(("approach", "cost", "outcome"), [
        ("as designed", "-",
         f"mortal (jL {audit.jl_product_a_per_m / audit.jl_critical_a_per_m:.0f}x"
         f" over the rule), TTF {units.to_hours(baseline_ttf):.1f} h"),
        ("Blech segmentation", f"{n_segments} segments + vias",
         "immortal (design-time, worst-case)"),
        ("width increase", f"{widen_factor:.0f}x metal area",
         "immortal (design-time, worst-case)"),
        ("deep healing (15:5 min)", "25 % reverse-current duty",
         f"nucleation delayed {delay:.2f}x, no area cost"),
    ], title="EM: design rules vs scheduled recovery "
             "(paper test wire, accelerated)"))

    # The paper's test wire violates the rule by a wide margin; fixing
    # it at design time costs area/complexity, healing costs duty.
    assert not audit.immortal
    assert n_segments > 10
    assert widen_factor > 10.0
    assert delay > 2.5


def test_bti_population_margin_with_healing(benchmark):
    def experiment():
        variability = BtiVariabilityModel(per_trap_impact_v=2e-3)
        # 10-year mean shifts from the margins study: ~24 mV without
        # healing, ~4 mV with a balanced schedule (see
        # examples/compensation_vs_healing.py).
        unhealed_mean = 0.024
        healed_mean = 0.004
        n_devices = 1_000_000
        return {
            "unhealed": (unhealed_mean,
                         variability.population_margin_v(
                             unhealed_mean, n_devices)),
            "healed": (healed_mean,
                       variability.population_margin_v(
                           healed_mean, n_devices)),
        }

    results = run_once(benchmark, experiment)

    print()
    rows = []
    for name, (mean, worst) in results.items():
        rows.append((name, f"{mean * 1e3:.1f} mV",
                     f"{worst * 1e3:.1f} mV",
                     f"{worst / mean:.2f}x"))
    print(format_table(
        ("design", "mean shift", "worst of 1M devices",
         "amplification"), rows,
        title="BTI: million-device near-threshold array margins"))

    unhealed = results["unhealed"][1]
    healed = results["healed"][1]
    # Healing the mean shrinks the array margin strongly even though
    # the stochastic amplification grows at small means.
    assert healed < 0.45 * unhealed
    # Variability makes the worst device much worse than the mean.
    assert results["healed"][1] > 2.0 * results["healed"][0]
