"""Shared fixtures for the benchmark harness.

Every benchmark reproduces one table or figure of the paper: it runs
the corresponding experiment once (via ``benchmark.pedantic`` so
pytest-benchmark records the runtime without re-running a long
simulation), prints the same rows/series the paper reports alongside
the published values, and asserts the paper's qualitative shape.
"""

from __future__ import annotations

import pytest

from repro.bti.calibration import BtiCalibration, default_calibration


@pytest.fixture(scope="session")
def calibration() -> BtiCalibration:
    """The library-default Table I calibration (session-cached)."""
    return default_calibration()


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
