"""Extension bench: stripe segmentation vs deep healing on a chain.

The Blech design rule protects a stripe by cutting it into short
via-separated segments; deep healing protects it by reversing the
current periodically.  This bench runs both on the same stripe (the
paper's test-wire geometry re-imagined as a via-segmented PDN stripe)
and reports the trade: segmentation buys immortality at via/area cost,
healing buys a nucleation delay at duty cost -- and the two compose.
"""

import pytest

from benchmarks.conftest import run_once
from repro import units
from repro.analysis.reporting import format_table
from repro.em.blech import critical_length_m
from repro.em.chain import InterconnectChain, segment_stripe
from repro.em.line import PAPER_EM_STRESS
from repro.em.wire import COPPER, PAPER_TEST_WIRE

#: Wall-clock horizon of the accelerated comparison.
HORIZON_MIN = 600.0


def test_chain_segmentation_vs_healing(benchmark):
    def experiment():
        results = {}
        l_crit = critical_length_m(
            COPPER, PAPER_EM_STRESS.current_density_a_m2,
            PAPER_EM_STRESS.temperature_k)
        n_immortal = int(PAPER_TEST_WIRE.length_m / (0.9 * l_crit)) + 1
        for label, n_segments, heal in (
                ("monolithic, no healing", 1, False),
                ("monolithic + healing (15:5)", 1, True),
                ("8 segments, no healing", 8, False),
                (f"{n_immortal} segments (Blech-immortal)",
                 n_immortal, False)):
            chain = InterconnectChain(
                segment_stripe(PAPER_TEST_WIRE.length_m, n_segments,
                               PAPER_TEST_WIRE),
                PAPER_EM_STRESS)
            elapsed = 0.0
            while elapsed < units.minutes(HORIZON_MIN):
                chain.apply(units.minutes(15.0), PAPER_EM_STRESS)
                elapsed += units.minutes(15.0)
                if heal:
                    chain.apply(units.minutes(5.0),
                                PAPER_EM_STRESS.reversed())
                    elapsed += units.minutes(5.0)
            results[label] = (chain, n_segments)
        return results, n_immortal

    results, n_immortal = run_once(benchmark, experiment)

    print()
    rows = []
    for label, (chain, n_segments) in results.items():
        rows.append((
            label, n_segments,
            f"{chain.n_immortal}/{chain.n_segments}",
            f"{chain.delta_resistance_ohm():.3f} ohm",
            "yes" if chain.has_failed(
                PAPER_EM_STRESS.temperature_k) else "no",
        ))
    print(format_table(
        ("strategy", "segments (vias)", "immortal", "drift at 10 h",
         "failed"),
        rows, title="Stripe protection: segmentation vs healing "
                    "(accelerated)"))

    monolithic = results["monolithic, no healing"][0]
    healed = results["monolithic + healing (15:5)"][0]
    immortal = results[f"{n_immortal} segments (Blech-immortal)"][0]
    eight = results["8 segments, no healing"][0]
    # The unprotected stripe degrades; healing keeps it essentially
    # fresh over the horizon (voids are net-refilled every cycle; only
    # a tiny locked residue survives).
    assert monolithic.delta_resistance_ohm() > 0.5
    assert healed.delta_resistance_ohm() \
        < 0.05 * monolithic.delta_resistance_ohm()
    # Blech segmentation protects fully -- at the cost of ~dozens of
    # vias.  *Partial* segmentation is actively harmful: every mortal
    # segment nucleates its own cathode void, multiplying the damage
    # (why the rule is all-or-nothing: go below the critical length or
    # do not segment at all).
    assert immortal.delta_resistance_ohm() == 0.0
    assert n_immortal > 20
    assert eight.delta_resistance_ohm() \
        > monolithic.delta_resistance_ohm()
    assert eight.has_failed(PAPER_EM_STRESS.temperature_k)