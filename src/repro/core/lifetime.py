"""Lifetime analysis under wearout, with and without scheduled recovery.

Combines the compact BTI model, the lumped EM model and Black's
equation into the question a designer actually asks: *how long until
this part violates its timing/EM budget, and how much does scheduled
active recovery buy?*
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro import units
from repro.bti.analytic import AnalyticBtiModel
from repro.bti.conditions import (
    ACTIVE_ACCELERATED_RECOVERY,
    BtiRecoveryCondition,
    BtiStressCondition,
)
from repro.em.blacks import BlacksModel
from repro.em.line import EmStressCondition
from repro.em.lumped import LumpedEmModel
from repro.errors import SimulationError
from repro.sensors.ring_oscillator import RingOscillator


@dataclass(frozen=True)
class LifetimeEstimate:
    """A lifetime verdict.

    Attributes:
        ttf_s: time to the first budget violation (may be ``inf``).
        limited_by: ``"bti"``, ``"em"`` or ``"none"``.
        bti_ttf_s / em_ttf_s: per-mechanism times.
    """

    ttf_s: float
    limited_by: str
    bti_ttf_s: float
    em_ttf_s: float

    @property
    def ttf_years(self) -> float:
        """Lifetime in years."""
        return units.to_years(self.ttf_s)


@dataclass(frozen=True)
class LifetimeAnalyzer:
    """Lifetime estimation for one design point.

    Attributes:
        bti_model: compact BTI stress/relaxation model.
        em_model: lumped EM model of the critical wire.
        oscillator: performance proxy translating threshold shift into
            delay degradation.
        delay_budget: fractional delay increase that violates timing
            (the designed-in wearout guardband).
    """

    bti_model: AnalyticBtiModel = field(default_factory=AnalyticBtiModel)
    em_model: LumpedEmModel = field(default_factory=LumpedEmModel)
    oscillator: RingOscillator = field(default_factory=RingOscillator)
    delay_budget: float = 0.05

    def __post_init__(self) -> None:
        if self.delay_budget <= 0.0:
            raise SimulationError("delay_budget must be positive")

    # -- BTI ----------------------------------------------------------------

    def vth_budget_v(self) -> float:
        """Threshold-shift budget implied by the delay budget."""
        low, high = 0.0, self.oscillator.supply_v \
            - self.oscillator.fresh_vth_v
        for _ in range(60):
            mid = 0.5 * (low + high)
            if self.oscillator.delay_degradation(mid) < self.delay_budget:
                low = mid
            else:
                high = mid
        return 0.5 * (low + high)

    def bti_ttf_s(self, stress: BtiStressCondition,
                  recovery: Optional[BtiRecoveryCondition] = None,
                  stress_interval_s: float = units.hours(1.0),
                  recovery_interval_s: float = 0.0) -> float:
        """Time until BTI alone violates the delay budget.

        With ``recovery_interval_s == 0`` the device is continuously
        stressed (the no-recovery baseline).  Otherwise the device runs
        the periodic schedule; the *envelope* shift (end of stress
        interval, steady cycling) is compared against the budget, and
        the lifetime is infinite if the schedule bounds the shift below
        it -- the paper's "always runs in a refreshing mode".
        """
        budget_v = self.vth_budget_v()
        if recovery_interval_s <= 0.0 or recovery is None:
            ttf = self.bti_model.stress_model.equivalent_stress_time(
                budget_v, stress)
            return ttf
        horizon = units.years(1000.0)
        shift = self.bti_model.duty_cycled_shift(
            horizon, stress_interval_s, recovery_interval_s,
            recovery, stress)
        if shift < budget_v:
            return float("inf")
        # Binary-search the violation time within the horizon.
        low, high = 0.0, horizon
        for _ in range(60):
            mid = 0.5 * (low + high)
            value = self.bti_model.duty_cycled_shift(
                mid, stress_interval_s, recovery_interval_s,
                recovery, stress)
            if value < budget_v:
                low = mid
            else:
                high = mid
        return 0.5 * (low + high)

    # -- EM -----------------------------------------------------------------

    def em_ttf_s(self, condition: EmStressCondition,
                 stress_interval_s: float = 0.0,
                 recovery_interval_s: float = 0.0) -> float:
        """Time until the EM budget (resistance threshold) is violated.

        With no recovery intervals this is nucleation plus growth to
        the failure threshold.  With a periodic reverse-current
        schedule the nucleation phase stretches by the schedule's
        delay factor and the wall-clock time further stretches by the
        reduced duty cycle of the growth phase.
        """
        baseline = self.em_model.time_to_failure(condition)
        if recovery_interval_s <= 0.0 or stress_interval_s <= 0.0:
            return baseline
        estimate = self.em_model.nucleation_under_periodic_recovery(
            stress_interval_s, recovery_interval_s, condition)
        if math.isinf(estimate.time_s):
            return float("inf")
        growth_s = (self.em_model.time_to_failure(condition)
                    - self.em_model.nucleation_time(condition))
        duty = stress_interval_s / (stress_interval_s
                                    + recovery_interval_s)
        return estimate.time_s + growth_s / duty

    def project_em_to_use(self, accelerated: EmStressCondition,
                          accelerated_ttf_s: float,
                          use: EmStressCondition,
                          current_exponent: float = 2.0) -> float:
        """Black's-equation projection of an accelerated TTF to use
        conditions."""
        model = BlacksModel.from_reference(
            accelerated_ttf_s,
            abs(accelerated.current_density_a_m2),
            accelerated.temperature_k,
            current_exponent=current_exponent,
            activation_energy_ev=(
                self.em_model.wire.material.activation_energy_ev))
        return model.ttf_s(abs(use.current_density_a_m2),
                           use.temperature_k)

    # -- combined -----------------------------------------------------------

    def estimate(self, bti_stress: BtiStressCondition,
                 em_condition: EmStressCondition,
                 recovery: Optional[BtiRecoveryCondition] =
                 ACTIVE_ACCELERATED_RECOVERY,
                 bti_stress_interval_s: float = units.hours(1.0),
                 bti_recovery_interval_s: float = 0.0,
                 em_stress_interval_s: float = 0.0,
                 em_recovery_interval_s: float = 0.0) -> LifetimeEstimate:
        """Joint BTI+EM lifetime under (optionally) scheduled recovery."""
        bti = self.bti_ttf_s(bti_stress, recovery,
                             bti_stress_interval_s,
                             bti_recovery_interval_s)
        em = self.em_ttf_s(em_condition, em_stress_interval_s,
                           em_recovery_interval_s)
        ttf = min(bti, em)
        if math.isinf(ttf):
            limited_by = "none"
        elif bti <= em:
            limited_by = "bti"
        else:
            limited_by = "em"
        return LifetimeEstimate(ttf_s=ttf, limited_by=limited_by,
                                bti_ttf_s=bti, em_ttf_s=em)
