"""Adaptive compensation vs deep healing (the paper's Section I contrast).

The conventional post-silicon answer to wearout is *compensation*:
sensors track the degradation and a knob -- supply voltage, clock
frequency, body bias -- is adjusted so the circuit still meets timing.
The paper's critique: "the wearout itself means that the
power/performance metrics will be degraded and the system runs sluggish
or burns more power gradually.  Thus, a solution that can fundamentally
fix wearout instead of compensating for its effects would be clearly
preferable."

This module quantifies that argument.  Both compensators restore
*function* but pay a running cost:

* :class:`FrequencyDeratingCompensation` slows the clock to track the
  aged critical path -- the cost is throughput;
* :class:`VddBoostCompensation` raises the supply to restore the fresh
  delay -- the cost is power (~quadratic in VDD for dynamic power);

while :func:`compare_strategies` puts them side by side with a deep
healing schedule, whose cost is the recovery downtime (and whose
wearout simply does not accumulate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.bti.analytic import AnalyticBtiModel
from repro.bti.conditions import (
    ACTIVE_ACCELERATED_RECOVERY,
    BtiRecoveryCondition,
    BtiStressCondition,
)
from repro.errors import SimulationError
from repro.sensors.ring_oscillator import RingOscillator


@dataclass(frozen=True)
class FrequencyDeratingCompensation:
    """Track wearout by stretching the clock.

    Attributes:
        oscillator: delay model translating threshold shift to delay.
    """

    oscillator: RingOscillator = field(default_factory=RingOscillator)

    def throughput_factor(self, delta_vth_v: float) -> float:
        """Remaining throughput relative to fresh (1.0 = no loss)."""
        degradation = self.oscillator.delay_degradation(delta_vth_v)
        return 1.0 / (1.0 + degradation)

    def power_factor(self, delta_vth_v: float) -> float:
        """Relative power (frequency scales power down equally)."""
        return self.throughput_factor(delta_vth_v)


@dataclass(frozen=True)
class VddBoostCompensation:
    """Restore the fresh delay by raising the supply voltage.

    Attributes:
        oscillator: delay model at the *fresh* supply.
        max_boost_v: upper bound on the allowed supply increase
            (reliability/EM of the boosted supply caps this knob --
            and the boost itself accelerates further wearout).
    """

    oscillator: RingOscillator = field(default_factory=RingOscillator)
    max_boost_v: float = 0.2

    def required_supply_v(self, delta_vth_v: float) -> float:
        """Supply that restores the fresh stage delay.

        With the alpha-power delay ``d ~ V / (V - Vth)^alpha`` the
        required boost solves ``d(V', Vth0 + dVth) = d(V0, Vth0)``;
        found by bisection (monotone in V').
        """
        if delta_vth_v < 0.0:
            raise SimulationError("delta_vth_v must be non-negative")
        ro = self.oscillator
        fresh_delay = self._delay(ro.supply_v, ro.fresh_vth_v)
        target_vth = ro.fresh_vth_v + delta_vth_v
        low = ro.supply_v
        high = ro.supply_v + self.max_boost_v
        if self._delay(high, target_vth) > fresh_delay:
            return high  # knob saturated
        for _ in range(60):
            mid = 0.5 * (low + high)
            if self._delay(mid, target_vth) > fresh_delay:
                low = mid
            else:
                high = mid
        return 0.5 * (low + high)

    def _delay(self, supply_v: float, vth_v: float) -> float:
        overdrive = supply_v - vth_v
        if overdrive <= 0.0:
            return float("inf")
        return supply_v / overdrive ** self.oscillator.alpha

    def power_factor(self, delta_vth_v: float) -> float:
        """Relative dynamic power of the boosted design (CV^2f)."""
        boosted = self.required_supply_v(delta_vth_v)
        return (boosted / self.oscillator.supply_v) ** 2

    def is_saturated(self, delta_vth_v: float) -> bool:
        """True when even the maximum boost cannot restore timing."""
        ro = self.oscillator
        fresh_delay = self._delay(ro.supply_v, ro.fresh_vth_v)
        worst = self._delay(ro.supply_v + self.max_boost_v,
                            ro.fresh_vth_v + delta_vth_v)
        return worst > fresh_delay


@dataclass(frozen=True)
class StrategySnapshot:
    """State of one mitigation strategy at one point in the lifetime.

    Attributes:
        time_s: lifetime position.
        throughput_factor: delivered throughput relative to a fresh,
            always-on system (frequency x availability).
        power_factor: power relative to the fresh system.
        residual_shift_v: threshold shift still present.
    """

    time_s: float
    throughput_factor: float
    power_factor: float
    residual_shift_v: float


@dataclass(frozen=True)
class StrategyTimeline:
    """A named series of snapshots over the design lifetime."""

    name: str
    snapshots: List[StrategySnapshot]

    @property
    def final(self) -> StrategySnapshot:
        """The end-of-life snapshot."""
        return self.snapshots[-1]

    def mean_throughput(self) -> float:
        """Average delivered throughput over the lifetime."""
        values = [snapshot.throughput_factor
                  for snapshot in self.snapshots]
        return sum(values) / len(values)


def compare_strategies(lifetime_s: float,
                       stress: BtiStressCondition,
                       bti_model: AnalyticBtiModel = None,
                       oscillator: RingOscillator = None,
                       healing_stress_interval_s: float = 3600.0,
                       healing_recovery_interval_s: float = 3600.0,
                       healing_recovery: BtiRecoveryCondition =
                       ACTIVE_ACCELERATED_RECOVERY,
                       n_points: int = 20) -> List[StrategyTimeline]:
    """Derating vs VDD boost vs deep healing over one lifetime.

    Returns three :class:`StrategyTimeline` objects ("derating",
    "vdd-boost", "deep-healing").  Throughput folds in the healing
    downtime (a healed system is off during its recovery intervals but
    runs at fresh speed otherwise); power folds in the VDD boost.
    """
    if lifetime_s <= 0.0:
        raise SimulationError("lifetime must be positive")
    if n_points < 2:
        raise SimulationError("n_points must be at least 2")
    bti_model = bti_model or AnalyticBtiModel()
    oscillator = oscillator or RingOscillator()
    derating = FrequencyDeratingCompensation(oscillator)
    boosting = VddBoostCompensation(oscillator)
    healing_duty = healing_stress_interval_s / (
        healing_stress_interval_s + healing_recovery_interval_s)

    times = [lifetime_s * (i + 1) / n_points for i in range(n_points)]
    derate_snapshots, boost_snapshots, heal_snapshots = [], [], []
    for t in times:
        shift = bti_model.stress_model.shift(t, stress)
        derate_snapshots.append(StrategySnapshot(
            time_s=t,
            throughput_factor=derating.throughput_factor(shift),
            power_factor=derating.power_factor(shift),
            residual_shift_v=shift))
        boost_snapshots.append(StrategySnapshot(
            time_s=t,
            throughput_factor=1.0,
            power_factor=boosting.power_factor(shift),
            residual_shift_v=shift))
        healed_shift = bti_model.duty_cycled_shift(
            t, healing_stress_interval_s, healing_recovery_interval_s,
            healing_recovery, stress)
        heal_snapshots.append(StrategySnapshot(
            time_s=t,
            throughput_factor=healing_duty
            * derating.throughput_factor(healed_shift),
            power_factor=derating.power_factor(healed_shift),
            residual_shift_v=healed_shift))
    return [
        StrategyTimeline("derating", derate_snapshots),
        StrategyTimeline("vdd-boost", boost_snapshots),
        StrategyTimeline("deep-healing", heal_snapshots),
    ]
