"""The :class:`DeepHealingEngine` facade.

Bundles a Table-I-calibrated BTI model, the Fig. 3 EM test wire, the
assist circuitry and a runtime controller into one object, so that the
typical "how much does deep healing buy me?" study is a few lines::

    engine = DeepHealingEngine.with_defaults()
    report = engine.simulate(units.days(2), PeriodicPolicy(bti_every=2))
    print(report.describe())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro import units
from repro.assist.circuitry import AssistCircuit
from repro.assist.modes import AssistMode
from repro.bti.calibration import BtiCalibration, default_calibration
from repro.bti.conditions import (
    ACTIVE_ACCELERATED_RECOVERY,
    BtiRecoveryCondition,
    BtiStressCondition,
    TABLE1_STRESS,
)
from repro.core.controller import (
    ControlAction,
    ControllerPolicy,
    RuntimeController,
)
from repro.em.line import EmLine, EmStressCondition, PAPER_EM_STRESS
from repro.errors import SimulationError


@dataclass(frozen=True)
class HealingReport:
    """Summary of one engine simulation.

    Attributes:
        duration_s: simulated wall-clock time.
        final_delta_vth_v: BTI shift at the end of the run.
        final_permanent_vth_v: locked-in BTI component at the end.
        final_em_drift_ohm: EM resistance drift at the end.
        locked_void_fraction: permanent share of the EM void.
        availability: fraction of epochs with the load operating.
        normal_epochs / bti_epochs / em_epochs: action counts.
    """

    duration_s: float
    final_delta_vth_v: float
    final_permanent_vth_v: float
    final_em_drift_ohm: float
    locked_void_fraction: float
    availability: float
    normal_epochs: int
    bti_epochs: int
    em_epochs: int

    def describe(self) -> str:
        """Multi-line human-readable report."""
        return "\n".join([
            f"simulated {units.to_hours(self.duration_s):.1f} h "
            f"({self.normal_epochs} normal / {self.bti_epochs} BTI / "
            f"{self.em_epochs} EM epochs)",
            f"  BTI shift: {self.final_delta_vth_v * 1e3:.2f} mV "
            f"(permanent {self.final_permanent_vth_v * 1e3:.2f} mV)",
            f"  EM drift:  {self.final_em_drift_ohm:.3f} ohm "
            f"(locked fraction {self.locked_void_fraction:.1%})",
            f"  availability: {self.availability:.1%}",
        ])


class DeepHealingEngine:
    """Calibrated models + assist circuit + controller in one object."""

    def __init__(self, calibration: Optional[BtiCalibration] = None,
                 em_line: Optional[EmLine] = None,
                 assist: Optional[AssistCircuit] = None,
                 bti_stress: BtiStressCondition = TABLE1_STRESS,
                 em_stress: EmStressCondition = PAPER_EM_STRESS,
                 bti_recovery: BtiRecoveryCondition =
                 ACTIVE_ACCELERATED_RECOVERY,
                 epoch_s: float = units.minutes(30.0)):
        self.calibration = calibration or default_calibration()
        self.bti_model = self.calibration.build_model()
        self.em_line = em_line or EmLine()
        self.assist = assist or AssistCircuit()
        self.bti_stress = bti_stress
        self.em_stress = em_stress
        self.bti_recovery = bti_recovery
        self.controller = RuntimeController(
            bti_model=self.bti_model,
            em_line=self.em_line,
            bti_stress=bti_stress,
            em_stress=em_stress,
            bti_recovery=bti_recovery,
            epoch_s=epoch_s)

    @classmethod
    def with_defaults(cls) -> "DeepHealingEngine":
        """An engine at the paper's accelerated-test operating point."""
        return cls()

    def verify_assist_modes(self) -> bool:
        """Check the assist circuit delivers all three mode behaviours.

        Returns True when (a) EM mode reverses the grid current at
        equal magnitude (within 1 %) and (b) BTI mode swaps the load
        rails with at least a threshold of reverse bias available.
        """
        normal = self.assist.solve_mode(AssistMode.NORMAL)
        em = self.assist.solve_mode(AssistMode.EM_RECOVERY)
        bti = self.assist.solve_mode(AssistMode.BTI_RECOVERY)
        reversed_ok = (em.vdd_grid_current_a < 0.0
                       and abs(abs(em.vdd_grid_current_a)
                               - abs(normal.vdd_grid_current_a))
                       <= 0.01 * abs(normal.vdd_grid_current_a))
        swap_ok = bti.load_vss_v - bti.load_vdd_v >= 0.3
        return reversed_ok and swap_ok

    def simulate(self, duration_s: float,
                 policy: ControllerPolicy) -> HealingReport:
        """Run the controller for ``duration_s`` and summarize."""
        if duration_s <= 0.0:
            raise SimulationError("duration must be positive")
        entries = self.controller.run(duration_s, policy)
        actions = [entry.action for entry in entries]
        read_t = self.em_stress.temperature_k
        drift = (self.em_line.resistance_ohm(read_t)
                 - self.em_line.wire.resistance_at(read_t))
        total_void = self.em_line.total_void_length_m
        locked_fraction = (self.em_line.locked_void_length_m / total_void
                           if total_void > 0.0 else 0.0)
        return HealingReport(
            duration_s=duration_s,
            final_delta_vth_v=self.bti_model.delta_vth_v,
            final_permanent_vth_v=self.bti_model.permanent_vth_v,
            final_em_drift_ohm=drift,
            locked_void_fraction=locked_fraction,
            availability=self.controller.availability(),
            normal_epochs=actions.count(ControlAction.RUN_NORMAL),
            bti_epochs=actions.count(ControlAction.BTI_RECOVERY),
            em_epochs=actions.count(ControlAction.EM_RECOVERY))
