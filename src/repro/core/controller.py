"""Sensor-driven runtime controller for scheduled deep healing.

Implements the control loop sketched in the paper's Fig. 12(b): BTI
and EM sensors track wearout at run time; short BTI active-recovery
intervals are inserted "to bring the chip back to the fresh status in
time" (the load is idle during them), and EM active-recovery intervals
reverse the grid current "alternately with normal operation" (the load
keeps running).

The controller is policy-driven: a :class:`ControllerPolicy` maps
sensor readings to the next epoch's :class:`ControlAction`.  Two
policies are provided -- a fixed-cadence :class:`PeriodicPolicy` and a
reactive :class:`ThresholdPolicy` -- and custom policies only need to
implement ``decide``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Protocol

from repro import units
from repro.bti.conditions import (
    ACTIVE_ACCELERATED_RECOVERY,
    BtiRecoveryCondition,
    BtiStressCondition,
)
from repro.bti.model import BtiModel
from repro.em.line import EmLine, EmStressCondition
from repro.errors import SimulationError
from repro.sensors.bti_sensor import BtiSensor
from repro.sensors.em_sensor import EmResistanceSensor


class ControlAction(enum.Enum):
    """What the controller schedules for the next epoch."""

    #: Load operates; both mechanisms accumulate stress.
    RUN_NORMAL = "run-normal"
    #: Load idles with reversed rails; BTI heals, EM rests.
    BTI_RECOVERY = "bti-recovery"
    #: Load operates with reversed grid current; EM heals, BTI
    #: continues to stress (the load is still powered).
    EM_RECOVERY = "em-recovery"


@dataclass(frozen=True)
class ControlLogEntry:
    """One epoch of controller history.

    Attributes:
        time_s: epoch start time.
        action: what was scheduled.
        bti_degradation: sensed fractional frequency degradation.
        em_drift_ohm: sensed resistance drift.
    """

    time_s: float
    action: ControlAction
    bti_degradation: float
    em_drift_ohm: float


class ControllerPolicy(Protocol):
    """Maps sensor state to the next epoch's action."""

    def decide(self, epoch: int, bti_degradation: float,
               em_drift_ohm: float, em_slope_ohm_per_s: float
               ) -> ControlAction:
        """Choose the action for the coming epoch."""
        ...


@dataclass(frozen=True)
class PeriodicPolicy:
    """Fixed-cadence recovery insertion.

    Attributes:
        bti_every: insert one BTI recovery epoch every N epochs.
        em_every: insert one EM recovery epoch every M epochs (checked
            after the BTI cadence; 0 disables).
    """

    bti_every: int = 2
    em_every: int = 0

    def __post_init__(self) -> None:
        if self.bti_every < 0 or self.em_every < 0:
            raise SimulationError("cadences must be non-negative")

    def decide(self, epoch: int, bti_degradation: float,
               em_drift_ohm: float, em_slope_ohm_per_s: float
               ) -> ControlAction:
        """Cadence-only decision; sensor values are ignored."""
        if self.bti_every and (epoch + 1) % self.bti_every == 0:
            return ControlAction.BTI_RECOVERY
        if self.em_every and (epoch + 1) % self.em_every == 0:
            return ControlAction.EM_RECOVERY
        return ControlAction.RUN_NORMAL


@dataclass(frozen=True)
class ThresholdPolicy:
    """Reactive recovery insertion from sensor feedback.

    Attributes:
        bti_degradation_threshold: sensed frequency degradation that
            triggers a BTI recovery epoch.
        em_drift_threshold_ohm: sensed resistance drift that triggers
            an EM recovery epoch.
        em_slope_threshold_ohm_per_s: alternatively, a sustained
            resistance slope (void-growth onset) triggers EM recovery.
    """

    bti_degradation_threshold: float = 0.01
    em_drift_threshold_ohm: float = 0.2
    em_slope_threshold_ohm_per_s: float = float("inf")

    def __post_init__(self) -> None:
        if not 0.0 <= self.bti_degradation_threshold < 1.0:
            raise SimulationError(
                "bti_degradation_threshold must be in [0, 1)")
        if self.em_drift_threshold_ohm <= 0.0:
            raise SimulationError("em_drift_threshold_ohm must be positive")

    def decide(self, epoch: int, bti_degradation: float,
               em_drift_ohm: float, em_slope_ohm_per_s: float
               ) -> ControlAction:
        """BTI recovery wins ties (it needs the idle window)."""
        if bti_degradation >= self.bti_degradation_threshold:
            return ControlAction.BTI_RECOVERY
        if (em_drift_ohm >= self.em_drift_threshold_ohm
                or em_slope_ohm_per_s >= self.em_slope_threshold_ohm_per_s):
            return ControlAction.EM_RECOVERY
        return ControlAction.RUN_NORMAL


@dataclass
class RuntimeController:
    """Epoch-based runtime controller over one BTI + one EM model.

    Attributes:
        bti_model: the monitored/actuated transistor population.
        em_line: the monitored/actuated interconnect line.
        bti_stress: operating stress during normal epochs.
        bti_recovery: recovery condition applied in BTI epochs.
        em_stress: grid current/temperature during normal epochs.
        epoch_s: control-epoch length.
    """

    bti_model: BtiModel
    em_line: EmLine
    bti_stress: BtiStressCondition
    em_stress: EmStressCondition
    bti_recovery: BtiRecoveryCondition = ACTIVE_ACCELERATED_RECOVERY
    epoch_s: float = units.minutes(30.0)
    log: List[ControlLogEntry] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.epoch_s <= 0.0:
            raise SimulationError("epoch_s must be positive")
        self._bti_sensor = BtiSensor(self.bti_model)
        self._em_sensor = EmResistanceSensor(
            self.em_line, self.em_stress.temperature_k)

    @property
    def bti_sensor(self) -> BtiSensor:
        """The attached BTI sensor."""
        return self._bti_sensor

    @property
    def em_sensor(self) -> EmResistanceSensor:
        """The attached EM sensor."""
        return self._em_sensor

    def run(self, duration_s: float, policy: ControllerPolicy
            ) -> List[ControlLogEntry]:
        """Run the control loop for ``duration_s`` under a policy.

        Returns the log entries appended during this call.
        """
        if duration_s <= 0.0:
            raise SimulationError("duration must be positive")
        n_epochs = max(int(round(duration_s / self.epoch_s)), 1)
        start_index = len(self.log)
        for epoch in range(n_epochs):
            time_s = (len(self.log)) * self.epoch_s
            bti_reading = self._bti_sensor.read()
            em_reading = self._em_sensor.read(time_s)
            action = policy.decide(
                epoch, bti_reading.degradation, em_reading.drift_ohm,
                self._em_sensor.slope_ohm_per_s())
            self._apply(action)
            self.log.append(ControlLogEntry(
                time_s=time_s, action=action,
                bti_degradation=bti_reading.degradation,
                em_drift_ohm=em_reading.drift_ohm))
        return self.log[start_index:]

    def _apply(self, action: ControlAction) -> None:
        if action is ControlAction.RUN_NORMAL:
            self.bti_model.apply_stress(self.epoch_s, self.bti_stress)
            self.em_line.apply(self.epoch_s, self.em_stress)
        elif action is ControlAction.BTI_RECOVERY:
            # Load idles: transistors heal actively, the grid carries
            # no current (EM rests passively).
            self.bti_model.apply_recovery(self.epoch_s, self.bti_recovery)
            rest = EmStressCondition(
                current_density_a_m2=0.0,
                temperature_k=self.em_stress.temperature_k,
                name="idle (no grid current)")
            self.em_line.apply(self.epoch_s, rest)
        elif action is ControlAction.EM_RECOVERY:
            # Load keeps operating on reversed grid current: EM heals
            # while BTI continues to stress.
            self.bti_model.apply_stress(self.epoch_s, self.bti_stress)
            self.em_line.apply(self.epoch_s, self.em_stress.reversed())
        else:  # pragma: no cover - exhaustive enum
            raise SimulationError(f"unknown action {action!r}")

    def availability(self) -> float:
        """Fraction of epochs in which the load was operating.

        BTI recovery epochs take the load offline (or require work
        migration); EM recovery epochs do not.
        """
        if not self.log:
            return 1.0
        offline = sum(1 for entry in self.log
                      if entry.action is ControlAction.BTI_RECOVERY)
        return 1.0 - offline / len(self.log)
