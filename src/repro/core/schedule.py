"""Stress/recovery schedules and the runners that execute them.

The paper's central experimental protocol is a *periodic* alternation
of stress and recovery intervals (Fig. 4 for BTI, Figs. 6-7 for EM).
:class:`PeriodicSchedule` describes such a pattern; the two runners
drive a :class:`~repro.bti.model.BtiModel` or an
:class:`~repro.em.line.EmLine` through it and record what the paper's
figures plot: the end-of-cycle wearout and its permanent component.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro import units
from repro.bti.conditions import (
    ACTIVE_ACCELERATED_RECOVERY,
    BtiRecoveryCondition,
    BtiStressCondition,
)
from repro.bti.model import BtiModel
from repro.em.line import EmLine, EmStressCondition
from repro.errors import ScheduleError


@dataclass(frozen=True)
class PeriodicSchedule:
    """A periodic stress/recovery pattern.

    Attributes:
        stress_interval_s: length of each stress interval.
        recovery_interval_s: length of each recovery interval (0 makes
            the schedule equivalent to continuous stress).
        cycles: number of stress+recovery cycles to run.
    """

    stress_interval_s: float
    recovery_interval_s: float
    cycles: int

    def __post_init__(self) -> None:
        if self.stress_interval_s <= 0.0:
            raise ScheduleError("stress interval must be positive")
        if self.recovery_interval_s < 0.0:
            raise ScheduleError("recovery interval must be non-negative")
        if self.cycles < 1:
            raise ScheduleError("a schedule needs at least one cycle")

    @property
    def cycle_length_s(self) -> float:
        """Wall-clock length of one cycle."""
        return self.stress_interval_s + self.recovery_interval_s

    @property
    def total_length_s(self) -> float:
        """Wall-clock length of the whole schedule."""
        return self.cycle_length_s * self.cycles

    @property
    def duty_cycle(self) -> float:
        """Fraction of wall-clock time spent under stress."""
        return self.stress_interval_s / self.cycle_length_s

    @property
    def ratio_label(self) -> str:
        """Human-readable "Xh : Yh" label used in reports."""
        stress_h = units.to_hours(self.stress_interval_s)
        recovery_h = units.to_hours(self.recovery_interval_s)
        return f"{stress_h:g}h : {recovery_h:g}h"

    @classmethod
    def from_hours(cls, stress_h: float, recovery_h: float,
                   cycles: int) -> "PeriodicSchedule":
        """Build a schedule from hour-denominated intervals."""
        return cls(units.hours(stress_h), units.hours(recovery_h), cycles)


# ---------------------------------------------------------------------------
# BTI runner
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BtiCycleRecord:
    """State captured at the end of one BTI schedule cycle.

    Attributes:
        cycle: 1-based cycle number (the paper's C1, C2, ...).
        time_s: elapsed wall-clock time at the end of the cycle.
        vth_after_stress_v: total shift at the end of the stress
            interval.
        vth_after_recovery_v: total shift at the end of the recovery
            interval.
        permanent_v: permanent component at the end of the cycle (the
            Fig. 4 quantity).
    """

    cycle: int
    time_s: float
    vth_after_stress_v: float
    vth_after_recovery_v: float
    permanent_v: float


@dataclass(frozen=True)
class BtiScheduleOutcome:
    """Result of running a BTI schedule.

    Attributes:
        schedule: the executed schedule.
        records: one record per cycle.
        final_vth_v: total shift when the schedule finished.
        final_permanent_v: permanent component when the schedule
            finished.
    """

    schedule: PeriodicSchedule
    records: List[BtiCycleRecord]
    final_vth_v: float
    final_permanent_v: float

    @property
    def permanent_per_cycle_v(self) -> List[float]:
        """Permanent component after each cycle (Fig. 4 series)."""
        return [record.permanent_v for record in self.records]

    @property
    def fully_healed(self) -> bool:
        """True when the schedule kept the permanent component at ~0.

        "The permanent BTI component under 1 hour stress vs. 1 hour
        active accelerated recovery schedule is practically 0."
        """
        if not self.records:
            return False
        scale = max(record.vth_after_stress_v for record in self.records)
        return self.final_permanent_v <= 0.01 * max(scale, 1e-12)


def run_bti_schedule(model: BtiModel, schedule: PeriodicSchedule,
                     recovery: BtiRecoveryCondition =
                     ACTIVE_ACCELERATED_RECOVERY,
                     stress: Optional[BtiStressCondition] = None,
                     ) -> BtiScheduleOutcome:
    """Drive a BTI model through a periodic schedule.

    Args:
        model: the (mutated) BTI model; start from a fresh model to
            reproduce the paper's protocol.
        schedule: the stress/recovery pattern.
        recovery: recovery condition for the recovery intervals; the
            paper's Fig. 4 uses condition No. 4.
        stress: stress condition; defaults to the model's calibration
            reference (the accelerated-stress condition).

    Returns:
        Per-cycle records and the final state.
    """
    records: List[BtiCycleRecord] = []
    elapsed = 0.0
    for cycle in range(1, schedule.cycles + 1):
        stress_result = model.apply_stress(schedule.stress_interval_s,
                                           stress)
        if schedule.recovery_interval_s > 0.0:
            recovery_result = model.apply_recovery(
                schedule.recovery_interval_s, recovery)
            vth_after_recovery = recovery_result.vth_after_v
        else:
            vth_after_recovery = stress_result.vth_after_v
        elapsed += schedule.cycle_length_s
        records.append(BtiCycleRecord(
            cycle=cycle,
            time_s=elapsed,
            vth_after_stress_v=stress_result.vth_after_v,
            vth_after_recovery_v=vth_after_recovery,
            permanent_v=model.permanent_vth_v))
    return BtiScheduleOutcome(
        schedule=schedule,
        records=records,
        final_vth_v=model.delta_vth_v,
        final_permanent_v=model.permanent_vth_v)


# ---------------------------------------------------------------------------
# EM runner
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class EmCycleRecord:
    """State captured at the end of one EM schedule cycle.

    Attributes:
        cycle: 1-based cycle number.
        time_s: elapsed wall-clock time at the end of the cycle.
        resistance_after_stress_ohm: wire resistance at the end of the
            stress interval (at the stress temperature).
        resistance_after_recovery_ohm: resistance at the end of the
            recovery interval.
        nucleated: whether a void had nucleated by the end of the
            cycle.
        locked_void_m: immobilized (permanent) void length.
    """

    cycle: int
    time_s: float
    resistance_after_stress_ohm: float
    resistance_after_recovery_ohm: float
    nucleated: bool
    locked_void_m: float


@dataclass(frozen=True)
class EmScheduleOutcome:
    """Result of running an EM schedule.

    Attributes:
        schedule: the executed schedule.
        records: one record per cycle.
        final_resistance_ohm: resistance when the schedule finished.
        nucleation_cycle: 1-based cycle in which a void first
            nucleated, or None if the wire stayed void-free.
    """

    schedule: PeriodicSchedule
    records: List[EmCycleRecord]
    final_resistance_ohm: float
    nucleation_cycle: Optional[int]

    @property
    def survived_nucleation(self) -> bool:
        """True when no void nucleated during the whole schedule."""
        return self.nucleation_cycle is None


def run_em_schedule(line: EmLine, schedule: PeriodicSchedule,
                    stress: EmStressCondition,
                    recovery: Optional[EmStressCondition] = None,
                    ) -> EmScheduleOutcome:
    """Drive an EM line through a periodic schedule.

    Args:
        line: the (mutated) EM line; start fresh to reproduce the
            paper's protocol.
        schedule: the stress/recovery pattern.
        stress: forward-current stress condition.
        recovery: reverse-current recovery condition; defaults to the
            stress condition with the current direction flipped (the
            paper's equal-magnitude reverse current).

    Returns:
        Per-cycle records and the final state.
    """
    recovery = recovery or stress.reversed()
    records: List[EmCycleRecord] = []
    nucleation_cycle: Optional[int] = None
    elapsed = 0.0
    read_t = stress.temperature_k
    for cycle in range(1, schedule.cycles + 1):
        line.apply(schedule.stress_interval_s, stress)
        after_stress = line.resistance_ohm(read_t)
        if schedule.recovery_interval_s > 0.0:
            line.apply(schedule.recovery_interval_s, recovery)
        after_recovery = line.resistance_ohm(read_t)
        elapsed += schedule.cycle_length_s
        if nucleation_cycle is None and line.nucleated:
            nucleation_cycle = cycle
        records.append(EmCycleRecord(
            cycle=cycle,
            time_s=elapsed,
            resistance_after_stress_ohm=after_stress,
            resistance_after_recovery_ohm=after_recovery,
            nucleated=line.nucleated,
            locked_void_m=line.locked_void_length_m))
    return EmScheduleOutcome(
        schedule=schedule,
        records=records,
        final_resistance_ohm=line.resistance_ohm(read_t),
        nucleation_cycle=nucleation_cycle)
