"""The "push-pull" stress/recovery balancer.

Section III-E of the paper: *"both share common recovery behaviors --
the 'Push-Pull' stress/active recovery compensation where in-time
scheduled periodic recovery intervals are able to fully eliminate the
permanent wearout component"*, and Section III-C: *"there is a balance
of stress and recovery (e.g. 1hr vs. 1hr in Fig. 4) which can bring the
aged system back to almost fresh status"*.

The balancer answers the two design questions that follow:

* **BTI**: given a stress-interval length, how much active+accelerated
  recovery per cycle keeps the device at a bounded, non-accumulating
  shift -- and is the stress interval short enough that nothing locks
  in?
* **EM**: given a required stress duty cycle, which periodic
  reverse-current schedule maximizes the nucleation delay?
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.bti.calibration import BtiCalibration, default_calibration
from repro.bti.conditions import (
    ACTIVE_ACCELERATED_RECOVERY,
    BtiRecoveryCondition,
)
from repro.core.schedule import PeriodicSchedule, run_bti_schedule
from repro.em.line import EmStressCondition
from repro.em.lumped import LumpedEmModel
from repro.errors import ScheduleError


@dataclass(frozen=True)
class BalanceResult:
    """A balanced stress/recovery operating point.

    Attributes:
        schedule: the balanced periodic schedule (representative cycle
            count for verification runs).
        residual_vth_v: end-of-schedule total shift of the
            verification run (BTI) or None for EM results.
        permanent_vth_v: end-of-schedule permanent component (BTI) or
            None for EM results.
        nucleation_delay_factor: nucleation-time gain over continuous
            stress (EM) or None for BTI results.
    """

    schedule: PeriodicSchedule
    residual_vth_v: Optional[float] = None
    permanent_vth_v: Optional[float] = None
    nucleation_delay_factor: Optional[float] = None


class PushPullBalancer:
    """Search for balanced stress/recovery schedules."""

    def __init__(self, calibration: Optional[BtiCalibration] = None,
                 em_model: Optional[LumpedEmModel] = None):
        self.calibration = calibration or default_calibration()
        self.em_model = em_model or LumpedEmModel()

    # -- BTI ---------------------------------------------------------------

    def lock_safe_stress_interval_s(self) -> float:
        """Longest stress interval that cannot create permanent wearout.

        Traps convert to the permanent component only after staying
        occupied longer than the lock-in age, so any stress interval
        below it (with recovery that empties the traps in between) is
        "in time" in the paper's sense.
        """
        return self.calibration.model_config.population.lock_age_s

    def balance_bti(self, stress_interval_s: float,
                    recovery: BtiRecoveryCondition =
                    ACTIVE_ACCELERATED_RECOVERY,
                    stress=None,
                    verification_cycles: int = 6,
                    residual_tolerance: float = 0.02,
                    max_ratio: float = 4.0) -> BalanceResult:
        """Find the smallest recovery interval that balances a stress
        interval.

        The search looks for the smallest recovery:stress ratio whose
        end-of-schedule shift (after ``verification_cycles`` cycles)
        stays below ``residual_tolerance`` of the end-of-stress shift
        -- i.e. every cycle returns the device to "almost fresh".

        Args:
            stress_interval_s: the per-cycle stress length.
            recovery: recovery condition to balance against.
            stress: stress condition of the operation intervals;
                defaults to the calibration's accelerated reference.
            verification_cycles: cycles used to check accumulation.
            residual_tolerance: allowed residual shift, relative to
                the per-cycle peak shift.
            max_ratio: give up beyond this recovery:stress ratio.

        Raises:
            ScheduleError: if no ratio up to ``max_ratio`` balances
                the schedule (e.g. passive recovery can never keep up).
        """
        if stress_interval_s <= 0.0:
            raise ScheduleError("stress interval must be positive")

        def residual_fraction(ratio: float) -> float:
            schedule = PeriodicSchedule(
                stress_interval_s, ratio * stress_interval_s,
                verification_cycles)
            model = self.calibration.build_model()
            outcome = run_bti_schedule(model, schedule, recovery,
                                       stress=stress)
            peak = max(record.vth_after_stress_v
                       for record in outcome.records)
            if peak <= 0.0:
                return 0.0
            return outcome.final_vth_v / peak

        low, high = 0.0, 1.0
        while residual_fraction(high) > residual_tolerance:
            high *= 2.0
            if high > max_ratio:
                raise ScheduleError(
                    f"no recovery:stress ratio up to {max_ratio} "
                    f"balances {stress_interval_s:.0f}s stress under "
                    f"condition {recovery.name!r}")
        for _ in range(30):
            mid = 0.5 * (low + high)
            if residual_fraction(mid) > residual_tolerance:
                low = mid
            else:
                high = mid
        schedule = PeriodicSchedule(
            stress_interval_s, high * stress_interval_s,
            verification_cycles)
        model = self.calibration.build_model()
        outcome = run_bti_schedule(model, schedule, recovery,
                                   stress=stress)
        return BalanceResult(
            schedule=schedule,
            residual_vth_v=outcome.final_vth_v,
            permanent_vth_v=outcome.final_permanent_v)

    # -- EM ----------------------------------------------------------------

    def balance_em(self, condition: EmStressCondition,
                   duty_cycle: float = 0.75,
                   interval_fractions: Sequence[float] =
                   (0.02, 0.05, 0.1, 0.15, 0.25, 0.4),
                   verification_cycles: int = 8) -> BalanceResult:
        """Find the periodic reverse-current schedule that most delays
        nucleation at a given stress duty cycle.

        The duty cycle (stress fraction of wall-clock time) is fixed by
        the workload; the free variable is the interval granularity.
        Shorter intervals track the paper's "multiple short recovery
        intervals ... in the early phase" recipe; the sweep finds the
        granularity with the largest nucleation-delay factor.

        Args:
            condition: the forward stress condition.
            duty_cycle: stress fraction of each cycle, in (0, 1].
            interval_fractions: candidate stress-interval lengths, as
                fractions of the continuous-stress nucleation time.
            verification_cycles: cycle count stored on the returned
                schedule (for later mechanistic verification).
        """
        if not 0.0 < duty_cycle <= 1.0:
            raise ScheduleError("duty cycle must be in (0, 1]")
        t_nuc = self.em_model.nucleation_time(condition)
        if math.isinf(t_nuc):
            raise ScheduleError("condition never nucleates; nothing to "
                                "balance")
        best_schedule: Optional[PeriodicSchedule] = None
        best_factor = 0.0
        for fraction in interval_fractions:
            stress_s = fraction * t_nuc
            recovery_s = stress_s * (1.0 - duty_cycle) / duty_cycle
            factor = self.em_model.nucleation_delay_factor(
                stress_s, recovery_s, condition)
            if factor > best_factor:
                best_factor = factor
                best_schedule = PeriodicSchedule(stress_s, recovery_s,
                                                 verification_cycles)
        assert best_schedule is not None
        return BalanceResult(
            schedule=best_schedule,
            nucleation_delay_factor=best_factor)
