"""Recovery planning: from a lifetime target to schedule parameters.

The deliverable of the paper's methodology is ultimately a *plan*: how
long may a block stress before it must heal, how much healing per
cycle, and how should the grid current alternate -- such that a
mission-lifetime target is met with a chosen margin.  This module
wraps the push-pull balancer, the lock-in analysis and the guardband
model into that single designer-facing step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro import units
from repro.bti.calibration import BtiCalibration, default_calibration
from repro.bti.conditions import (
    ACTIVE_ACCELERATED_RECOVERY,
    BtiRecoveryCondition,
    BtiStressCondition,
)
from repro.core.balance import PushPullBalancer
from repro.core.margins import GuardbandModel
from repro.em.line import EmStressCondition
from repro.em.lumped import LumpedEmModel
from repro.errors import ScheduleError


@dataclass(frozen=True)
class RecoveryPlan:
    """A complete deep-healing operating plan for one block.

    Attributes:
        bti_stress_interval_s: longest allowed continuous-operation
            interval (bounded by the lock-in deadline).
        bti_recovery_interval_s: healing time inserted after each
            operation interval.
        bti_recovery: the recovery condition the plan assumes.
        em_stress_interval_s / em_recovery_interval_s: grid-current
            alternation pattern.
        expected_margin: delay guardband the design must still budget
            (the within-cycle envelope).
        margin_without_plan: guardband a no-recovery design would need
            over the same lifetime.
        availability: fraction of wall-clock time the block operates.
        em_nucleation_delay: nucleation-time gain of the EM pattern.
    """

    bti_stress_interval_s: float
    bti_recovery_interval_s: float
    bti_recovery: BtiRecoveryCondition
    em_stress_interval_s: float
    em_recovery_interval_s: float
    expected_margin: float
    margin_without_plan: float
    availability: float
    em_nucleation_delay: float

    @property
    def margin_reduction(self) -> float:
        """Guardband saved relative to the no-recovery design."""
        if self.margin_without_plan <= 0.0:
            return 0.0
        return 1.0 - self.expected_margin / self.margin_without_plan

    def describe(self) -> str:
        """Multi-line human-readable plan summary."""
        return "\n".join([
            "deep-healing plan:",
            f"  operate {units.to_minutes(self.bti_stress_interval_s):.0f}"
            f" min, heal {units.to_minutes(self.bti_recovery_interval_s):.0f}"
            f" min ({self.bti_recovery.name})",
            f"  alternate grid current every "
            f"{units.to_minutes(self.em_stress_interval_s):.1f} min "
            f"(reverse for "
            f"{units.to_minutes(self.em_recovery_interval_s):.1f} min)",
            f"  availability {self.availability:.1%}, EM nucleation "
            f"delayed {self.em_nucleation_delay:.1f}x",
            f"  margin {self.expected_margin:.2%} instead of "
            f"{self.margin_without_plan:.2%} "
            f"({self.margin_reduction:.0%} saved)",
        ])


class RecoveryPlanner:
    """Builds :class:`RecoveryPlan` objects from mission requirements."""

    def __init__(self, calibration: Optional[BtiCalibration] = None,
                 em_model: Optional[LumpedEmModel] = None):
        self.calibration = calibration or default_calibration()
        self.em_model = em_model or LumpedEmModel()
        self.balancer = PushPullBalancer(self.calibration,
                                         self.em_model)
        self.guardband = GuardbandModel()

    def plan(self, lifetime_s: float,
             stress: BtiStressCondition,
             em_condition: EmStressCondition,
             recovery: BtiRecoveryCondition =
             ACTIVE_ACCELERATED_RECOVERY,
             min_availability: float = 0.5,
             em_duty_cycle: float = 0.75) -> RecoveryPlan:
        """Produce a plan meeting a lifetime target.

        Args:
            lifetime_s: mission length.
            stress: the block's operating stress condition.
            em_condition: the local grid's stress condition.
            recovery: healing condition available on this design
                (e.g. limited reverse bias or temperature).
            min_availability: the largest healing duty the system can
                tolerate; the plan fails loudly if balance needs more.
            em_duty_cycle: fraction of time the grid must carry
                forward current.

        Raises:
            ScheduleError: if no balanced schedule satisfies the
                availability floor under the given recovery condition.
        """
        if lifetime_s <= 0.0:
            raise ScheduleError("lifetime must be positive")
        if not 0.0 < min_availability < 1.0:
            raise ScheduleError("min_availability must be in (0, 1)")
        # The lock-in deadline caps the BTI stress interval.  The
        # deadline is expressed in equivalent accelerated-stress time,
        # so a milder use condition stretches it by 1/acceleration.
        accel = stress.capture_acceleration(
            self.calibration.model_config.reference_stress)
        lock_safe_s = (self.balancer.lock_safe_stress_interval_s()
                       / max(accel, 1e-12))
        stress_interval_s = 0.9 * lock_safe_s
        balance = self.balancer.balance_bti(stress_interval_s,
                                            recovery=recovery,
                                            stress=stress)
        recovery_interval_s = balance.schedule.recovery_interval_s
        availability = stress_interval_s / (
            stress_interval_s + recovery_interval_s)
        if availability < min_availability:
            raise ScheduleError(
                f"balancing {recovery.name!r} needs availability "
                f"{availability:.1%} < floor {min_availability:.1%}; "
                "use a stronger recovery condition or more redundancy")
        em_balance = self.balancer.balance_em(em_condition,
                                              duty_cycle=em_duty_cycle)
        expected = self.guardband.margin_with_schedule(
            lifetime_s, stress, stress_interval_s, recovery_interval_s,
            recovery)
        baseline = self.guardband.margin_without_recovery(
            lifetime_s, stress)
        return RecoveryPlan(
            bti_stress_interval_s=stress_interval_s,
            bti_recovery_interval_s=recovery_interval_s,
            bti_recovery=recovery,
            em_stress_interval_s=em_balance.schedule.stress_interval_s,
            em_recovery_interval_s=(
                em_balance.schedule.recovery_interval_s),
            expected_margin=expected,
            margin_without_plan=baseline,
            availability=availability,
            em_nucleation_delay=em_balance.nucleation_delay_factor)
