"""The paper's core contribution: deep healing by scheduled recovery.

This package turns the recovery *capabilities* demonstrated by the
substrates into a design/runtime *methodology*:

* :mod:`~repro.core.schedule` -- stress/recovery schedules and runners
  that drive the BTI and EM models through them, recording per-cycle
  outcomes (the Fig. 4 / Fig. 7 experiments).
* :mod:`~repro.core.balance` -- the "push-pull" balancer: search for
  the stress:recovery balance that keeps the permanent component at
  zero (the paper's 1 h : 1 h result) or maximizes EM nucleation delay.
* :mod:`~repro.core.lifetime` -- lifetime analysis under schedules,
  including Black's-equation projection to use conditions.
* :mod:`~repro.core.margins` -- wearout guardband arithmetic: the
  worst-case margin a no-recovery design needs vs the "new design
  margin" of Fig. 12(b).
* :mod:`~repro.core.controller` -- a sensor-driven runtime controller
  that inserts BTI/EM active-recovery intervals (Fig. 12b).
* :mod:`~repro.core.engine` -- the :class:`DeepHealingEngine` facade
  that wires calibrated models, sensors and policies together.
"""

from repro.core.schedule import (
    PeriodicSchedule,
    BtiCycleRecord,
    BtiScheduleOutcome,
    EmCycleRecord,
    EmScheduleOutcome,
    run_bti_schedule,
    run_em_schedule,
)
from repro.core.balance import (
    BalanceResult,
    PushPullBalancer,
)
from repro.core.lifetime import (
    LifetimeAnalyzer,
    LifetimeEstimate,
)
from repro.core.margins import (
    GuardbandModel,
    MarginComparison,
)
from repro.core.controller import (
    ControllerPolicy,
    PeriodicPolicy,
    ThresholdPolicy,
    RuntimeController,
    ControlAction,
    ControlLogEntry,
)
from repro.core.engine import DeepHealingEngine, HealingReport
from repro.core.compensation import (
    FrequencyDeratingCompensation,
    StrategySnapshot,
    StrategyTimeline,
    VddBoostCompensation,
    compare_strategies,
)
from repro.core.planner import RecoveryPlan, RecoveryPlanner
from repro.core.design_space import (
    DesignCandidate,
    DesignSpaceExplorer,
)

__all__ = [
    "DesignCandidate",
    "DesignSpaceExplorer",
    "RecoveryPlan",
    "RecoveryPlanner",
    "FrequencyDeratingCompensation",
    "VddBoostCompensation",
    "StrategySnapshot",
    "StrategyTimeline",
    "compare_strategies",
    "PeriodicSchedule",
    "BtiCycleRecord",
    "BtiScheduleOutcome",
    "EmCycleRecord",
    "EmScheduleOutcome",
    "run_bti_schedule",
    "run_em_schedule",
    "BalanceResult",
    "PushPullBalancer",
    "LifetimeAnalyzer",
    "LifetimeEstimate",
    "GuardbandModel",
    "MarginComparison",
    "ControllerPolicy",
    "PeriodicPolicy",
    "ThresholdPolicy",
    "RuntimeController",
    "ControlAction",
    "ControlLogEntry",
    "DeepHealingEngine",
    "HealingReport",
]
