"""Wearout guardband arithmetic (the Fig. 12(b) picture).

A design that cannot heal must budget a *worst-case margin*: enough
slack that the part still meets timing after the full lifetime of
accumulated wearout.  A design with scheduled deep healing only needs
to cover the small *within-cycle* degradation envelope -- the paper's
"New Design Margin".  This module computes both margins from the same
compact models and reports the reduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro import units
from repro.bti.analytic import AnalyticBtiModel
from repro.bti.conditions import (
    ACTIVE_ACCELERATED_RECOVERY,
    BtiRecoveryCondition,
    BtiStressCondition,
)
from repro.errors import SimulationError
from repro.sensors.ring_oscillator import RingOscillator


@dataclass(frozen=True)
class MarginComparison:
    """Worst-case vs deep-healing design margins.

    Attributes:
        lifetime_s: design lifetime target.
        worst_case_margin: fractional delay margin a no-recovery design
            must budget for the whole lifetime.
        healed_margin: fractional delay margin with scheduled recovery
            (the within-cycle envelope).
        reduction: relative margin saved,
            ``1 - healed_margin / worst_case_margin``.
    """

    lifetime_s: float
    worst_case_margin: float
    healed_margin: float

    @property
    def reduction(self) -> float:
        """Relative margin reduction achieved by deep healing."""
        if self.worst_case_margin <= 0.0:
            return 0.0
        return 1.0 - self.healed_margin / self.worst_case_margin

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (f"lifetime {units.to_years(self.lifetime_s):.1f}y: "
                f"worst-case margin {self.worst_case_margin:.2%}, "
                f"with deep healing {self.healed_margin:.2%} "
                f"({self.reduction:.0%} reduction)")


@dataclass(frozen=True)
class GuardbandModel:
    """Computes wearout-induced delay margins for one design point.

    Attributes:
        bti_model: compact BTI model.
        oscillator: threshold-shift to delay mapping.
    """

    bti_model: AnalyticBtiModel = field(default_factory=AnalyticBtiModel)
    oscillator: RingOscillator = field(default_factory=RingOscillator)

    def margin_without_recovery(self, lifetime_s: float,
                                stress: BtiStressCondition) -> float:
        """Fractional delay margin after a full lifetime of stress."""
        if lifetime_s <= 0.0:
            raise SimulationError("lifetime must be positive")
        shift = self.bti_model.stress_model.shift(lifetime_s, stress)
        return self.oscillator.delay_degradation(shift)

    def margin_with_schedule(self, lifetime_s: float,
                             stress: BtiStressCondition,
                             stress_interval_s: float,
                             recovery_interval_s: float,
                             recovery: BtiRecoveryCondition =
                             ACTIVE_ACCELERATED_RECOVERY) -> float:
        """Fractional delay margin with periodic deep healing.

        The binding constraint is the *peak* shift during the lifetime,
        which under a balanced schedule is the (bounded) end-of-stress
        envelope; under an unbalanced schedule the accumulating
        permanent component dominates and the margin grows back toward
        the worst case.
        """
        if lifetime_s <= 0.0:
            raise SimulationError("lifetime must be positive")
        envelope = self.bti_model.duty_cycled_shift(
            lifetime_s, stress_interval_s, recovery_interval_s,
            recovery, stress)
        per_cycle_peak = self.bti_model.stress_model.shift(
            stress_interval_s, stress)
        peak = max(envelope, per_cycle_peak)
        return self.oscillator.delay_degradation(peak)

    def compare(self, lifetime_s: float, stress: BtiStressCondition,
                stress_interval_s: float = units.hours(1.0),
                recovery_interval_s: float = units.hours(1.0),
                recovery: BtiRecoveryCondition =
                ACTIVE_ACCELERATED_RECOVERY) -> MarginComparison:
        """Worst-case vs deep-healing margin at one design point."""
        return MarginComparison(
            lifetime_s=lifetime_s,
            worst_case_margin=self.margin_without_recovery(
                lifetime_s, stress),
            healed_margin=self.margin_with_schedule(
                lifetime_s, stress, stress_interval_s,
                recovery_interval_s, recovery))

    def degradation_timeline(self, lifetime_s: float,
                             stress: BtiStressCondition,
                             stress_interval_s: float,
                             recovery_interval_s: float,
                             recovery: BtiRecoveryCondition =
                             ACTIVE_ACCELERATED_RECOVERY,
                             n_points: int = 50,
                             ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Performance-degradation series with and without healing.

        Returns ``(times_s, no_recovery, with_recovery)`` fractional
        delay degradation -- the two performance curves sketched in
        Fig. 12(b).
        """
        if n_points < 2:
            raise SimulationError("n_points must be at least 2")
        times = np.linspace(lifetime_s / n_points, lifetime_s, n_points)
        without: List[float] = []
        with_healing: List[float] = []
        for t in times:
            without.append(self.margin_without_recovery(float(t), stress))
            with_healing.append(self.margin_with_schedule(
                float(t), stress, stress_interval_s,
                recovery_interval_s, recovery))
        return times, np.array(without), np.array(with_healing)
