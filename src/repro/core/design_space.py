"""Design-space exploration: active recovery as a design knob.

The paper's future-work statement: the compact recovery models "will
enable an enhanced design methodology that integrates active recovery
as an effective design knob for system-level design".  This module is
that methodology's core step: sweep the recovery knobs (healing
temperature, bias, schedule cadence), evaluate each candidate on the
axes a system designer trades (wearout margin, availability, heater
power), and return the Pareto-optimal set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro import units
from repro.bti.calibration import BtiCalibration, default_calibration
from repro.bti.conditions import BtiRecoveryCondition, \
    BtiStressCondition
from repro.core.balance import PushPullBalancer
from repro.core.margins import GuardbandModel
from repro.errors import ScheduleError, SimulationError
from repro.thermal.floorplan import Floorplan
from repro.thermal.network import ThermalRCNetwork


@dataclass(frozen=True)
class DesignCandidate:
    """One evaluated recovery design point.

    Attributes:
        recovery: the healing condition of this candidate.
        stress_interval_s / recovery_interval_s: the balanced schedule.
        margin: required delay guardband over the mission.
        availability: operating fraction of wall-clock time.
        heater_power_w: average extra power to keep the healing block
            at the recovery temperature during its healing intervals
            (0 when ambient/neighbour heat suffices), amortized over
            the whole cycle.
        feasible: whether a balancing schedule exists at all.
    """

    recovery: BtiRecoveryCondition
    stress_interval_s: float
    recovery_interval_s: float
    margin: float
    availability: float
    heater_power_w: float
    feasible: bool

    def dominates(self, other: "DesignCandidate") -> bool:
        """Pareto dominance: no worse on all axes, better on one."""
        if not (self.feasible and other.feasible):
            return self.feasible and not other.feasible
        at_least = (self.margin <= other.margin
                    and self.availability >= other.availability
                    and self.heater_power_w <= other.heater_power_w)
        strictly = (self.margin < other.margin
                    or self.availability > other.availability
                    or self.heater_power_w < other.heater_power_w)
        return at_least and strictly


class DesignSpaceExplorer:
    """Sweeps recovery conditions and reports the Pareto frontier."""

    def __init__(self, calibration: Optional[BtiCalibration] = None,
                 thermal: Optional[ThermalRCNetwork] = None,
                 heater_block: str = "core00"):
        self.calibration = calibration or default_calibration()
        self.balancer = PushPullBalancer(self.calibration)
        self.guardband = GuardbandModel()
        self.thermal = thermal or ThermalRCNetwork(Floorplan.grid(1, 1))
        self.heater_block = heater_block

    def evaluate(self, lifetime_s: float,
                 stress: BtiStressCondition,
                 recovery: BtiRecoveryCondition,
                 max_ratio: float = 4.0) -> DesignCandidate:
        """Evaluate one recovery condition at a lock-safe cadence."""
        if lifetime_s <= 0.0:
            raise SimulationError("lifetime must be positive")
        accel = stress.capture_acceleration(
            self.calibration.model_config.reference_stress)
        stress_interval_s = 0.9 \
            * self.calibration.model_config.population.lock_age_s \
            / max(accel, 1e-12)
        try:
            balance = self.balancer.balance_bti(
                stress_interval_s, recovery=recovery, stress=stress,
                max_ratio=max_ratio)
        except ScheduleError:
            return DesignCandidate(
                recovery=recovery,
                stress_interval_s=stress_interval_s,
                recovery_interval_s=float("inf"),
                margin=float("inf"), availability=0.0,
                heater_power_w=float("inf"), feasible=False)
        recovery_interval_s = balance.schedule.recovery_interval_s
        margin = self.guardband.margin_with_schedule(
            lifetime_s, stress, stress_interval_s,
            recovery_interval_s, recovery)
        availability = stress_interval_s / (
            stress_interval_s + recovery_interval_s)
        heater = self.thermal.heating_power_w(
            self.heater_block, recovery.temperature_k,
            np.zeros(len(self.thermal.floorplan)))
        duty = recovery_interval_s / (stress_interval_s
                                      + recovery_interval_s)
        return DesignCandidate(
            recovery=recovery,
            stress_interval_s=stress_interval_s,
            recovery_interval_s=recovery_interval_s,
            margin=margin,
            availability=availability,
            heater_power_w=heater * duty,
            feasible=True)

    def sweep(self, lifetime_s: float, stress: BtiStressCondition,
              temperatures_c: Sequence[float] = (60.0, 90.0, 110.0,
                                                 125.0),
              biases_v: Sequence[float] = (0.0, -0.15, -0.3),
              ) -> List[DesignCandidate]:
        """Evaluate the temperature x bias recovery-knob grid."""
        candidates = []
        for temp_c in temperatures_c:
            for bias in biases_v:
                recovery = BtiRecoveryCondition(
                    gate_bias_v=bias,
                    temperature_k=units.celsius_to_kelvin(temp_c),
                    name=f"{bias:+.2f} V at {temp_c:.0f} C")
                candidates.append(self.evaluate(lifetime_s, stress,
                                                recovery))
        return candidates

    @staticmethod
    def pareto_front(candidates: Sequence[DesignCandidate]
                     ) -> List[DesignCandidate]:
        """The non-dominated feasible subset, sorted by margin."""
        feasible = [c for c in candidates if c.feasible]
        front = [c for c in feasible
                 if not any(other.dominates(c) for other in feasible)]
        front.sort(key=lambda c: c.margin)
        return front
