"""Deterministic process-pool sweep runner.

Population Monte Carlo (:mod:`repro.em.statistics`), tornado studies
(:mod:`repro.analysis.sensitivity`) and the ablation benches all share
one shape: evaluate a pure function over a list of independent tasks.
This module runs that shape over a ``concurrent.futures`` process
pool with two guarantees:

* **Determinism** -- results are returned in task order, and any
  randomness is seeded per *task index* (via
  ``numpy.random.SeedSequence(seed, spawn_key=(index,))``), so the
  output is byte-identical for a fixed seed no matter how many
  workers run the sweep or how the tasks are chunked onto them.
* **Graceful degradation** -- when the work is too small to amortize
  process startup, when only one worker is requested, or when the
  function/tasks cannot be pickled (lambdas, closures), the sweep
  runs serially in-process with identical results.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, List, Optional, Sequence

import numpy as np

from repro.errors import SimulationError

#: Below this many tasks a pool is never started (startup dominates).
#: BENCH_solvers.json showed small pooled sweeps running ~2x *slower*
#: than serial; callers with heavier per-task work can lower the
#: threshold (and light-task callers raise it) via the
#: ``min_tasks_for_pool`` argument of :func:`run_sweep`.
DEFAULT_MIN_TASKS_FOR_POOL = 4

# Backwards-compatible alias of the pre-threshold-parameter constant.
_MIN_TASKS_FOR_POOL = DEFAULT_MIN_TASKS_FOR_POOL


def task_seed_sequence(seed: int, index: int) -> np.random.SeedSequence:
    """The task-index-keyed seed sequence used by :func:`run_sweep`.

    Exposed so callers can reproduce one task's stream in isolation
    (e.g. to debug a single Monte Carlo chunk).
    """
    return np.random.SeedSequence(seed, spawn_key=(index,))


def _chunk_bounds(n_tasks: int, chunk_size: int) -> List[range]:
    return [range(start, min(start + chunk_size, n_tasks))
            for start in range(0, n_tasks, chunk_size)]


def _run_chunk(fn: Callable[..., Any], tasks: Sequence[Any],
               indices: Sequence[int],
               seed: Optional[int]) -> List[Any]:
    """Evaluate one chunk (runs inside a worker process)."""
    results = []
    for index in indices:
        if seed is None:
            results.append(fn(tasks[index]))
        else:
            results.append(fn(tasks[index],
                              task_seed_sequence(seed, index)))
    return results


def _picklable(*objects: Any) -> bool:
    try:
        for obj in objects:
            pickle.dumps(obj)
    except Exception:
        return False
    return True


def run_sweep(fn: Callable[..., Any], tasks: Sequence[Any], *,
              max_workers: Optional[int] = None,
              chunk_size: Optional[int] = None,
              seed: Optional[int] = None,
              min_tasks_for_pool: Optional[int] = None) -> List[Any]:
    """Evaluate ``fn`` over every task, optionally in parallel.

    Args:
        fn: the task function.  Called as ``fn(task)``, or as
            ``fn(task, seed_sequence)`` when ``seed`` is given, with a
            per-task ``numpy.random.SeedSequence`` derived from
            ``(seed, task index)`` -- pass it to
            ``numpy.random.default_rng``.
        tasks: the task descriptions, evaluated independently.
        max_workers: process count; ``None`` picks the CPU count,
            ``0``/``1`` forces the serial in-process path.
        chunk_size: tasks per submitted chunk (defaults to an even
            split over ~4 chunks per worker).  Chunking only affects
            scheduling granularity, never results.
        seed: root seed for per-task deterministic randomness.
        min_tasks_for_pool: below this many tasks the sweep runs
            serially in-process (``None`` uses
            ``DEFAULT_MIN_TASKS_FOR_POOL``); process startup and
            pickling otherwise dominate small batches.  Serial and
            pooled runs produce identical results, so the threshold is
            purely a performance knob.

    Returns:
        The results in task order -- independent of worker count.
    """
    tasks = list(tasks)
    if not tasks:
        return []
    if max_workers is None:
        max_workers = os.cpu_count() or 1
    if max_workers < 0:
        raise SimulationError("max_workers must be non-negative")
    if min_tasks_for_pool is None:
        min_tasks_for_pool = DEFAULT_MIN_TASKS_FOR_POOL
    elif min_tasks_for_pool < 1:
        raise SimulationError("min_tasks_for_pool must be at least 1")

    def serial() -> List[Any]:
        return _run_chunk(fn, tasks, range(len(tasks)), seed)

    if max_workers <= 1 or len(tasks) < min_tasks_for_pool:
        return serial()
    if not _picklable(fn, tasks[0]):
        return serial()

    if chunk_size is None:
        chunk_size = max(1, -(-len(tasks) // (4 * max_workers)))
    elif chunk_size < 1:
        raise SimulationError("chunk_size must be at least 1")
    chunks = _chunk_bounds(len(tasks), chunk_size)
    try:
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = [pool.submit(_run_chunk, fn, tasks,
                                   list(indices), seed)
                       for indices in chunks]
            results: List[Any] = []
            for future in futures:
                results.extend(future.result())
            return results
    except (OSError, PermissionError):
        # Sandboxes / restricted environments without process spawn.
        return serial()
