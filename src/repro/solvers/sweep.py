"""Deterministic, fault-tolerant process-pool sweep runner.

Population Monte Carlo (:mod:`repro.em.statistics`), lifetime grids
(:mod:`repro.system.sweeps`), the assist studies
(:mod:`repro.assist.sweeps`) and tornado analyses
(:mod:`repro.analysis.sensitivity`) all share one shape: evaluate a
pure function over a list of independent tasks.  This module runs that
shape over a ``concurrent.futures`` process pool with three
guarantees:

* **Determinism** -- results are returned in task order, and any
  randomness is seeded per *task index* (via
  ``numpy.random.SeedSequence(seed, spawn_key=(index,))``), so the
  output is byte-identical for a fixed seed no matter how many
  workers run the sweep, how the tasks are chunked onto them, or how
  many retries / pool failures occurred along the way.
* **Graceful degradation** -- when the work is too small to amortize
  process startup, when only one worker is requested, or when the
  function/tasks cannot be pickled (lambdas, closures), the sweep
  runs serially in-process with identical results.  A pool that
  breaks *mid-run* (a worker killed by the OOM killer, an unpicklable
  task or result surfacing only in a later chunk) is recovered from
  by re-running just the incomplete chunks serially -- completed
  chunks are never recomputed and never reordered.
* **Attribution** -- a task that raises is reported *as that task*:
  the default ``on_error="raise"`` policy raises
  :class:`repro.errors.TaskError` carrying the task index, chunk
  index and attempt count, with the worker's original exception
  chained; ``"skip"`` drops failed tasks; ``"collect"`` returns
  in-order :class:`TaskFailure` records in their place.  Bounded
  per-task ``retries`` re-derive the identical seed sequence, so a
  retried stochastic task reproduces the exact stream of an
  unretried run.

Every run can also report what happened: pass ``on_report`` to
receive a :class:`SweepReport` with per-chunk wall times, retry
counts, the serial-fallback reason, recovered pool failures, and
hit/miss deltas of every named
:class:`~repro.solvers.factorized.FactorizationCache` (the compiled
circuit LU cache, the simulator condition cache, the thermal and PDE
operator caches) attributable to the sweep.  ``progress`` delivers
``(done_tasks, total_tasks)`` after each completed chunk.
"""

from __future__ import annotations

import os
import pickle
import time
import traceback as traceback_module
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.errors import SimulationError, TaskError
from repro.solvers.factorized import cache_counters, record_counters

#: Below this many tasks a pool is never started (startup dominates).
#: BENCH_solvers.json showed small pooled sweeps running ~2x *slower*
#: than serial; callers with heavier per-task work can lower the
#: threshold (and light-task callers raise it) via the
#: ``min_tasks_for_pool`` argument of :func:`run_sweep`.
DEFAULT_MIN_TASKS_FOR_POOL = 4

# Backwards-compatible alias of the pre-threshold-parameter constant.
_MIN_TASKS_FOR_POOL = DEFAULT_MIN_TASKS_FOR_POOL

#: Valid ``on_error`` policies of :func:`run_sweep`.
ON_ERROR_POLICIES = ("raise", "skip", "collect")


def task_seed_sequence(seed: int, index: int) -> np.random.SeedSequence:
    """The task-index-keyed seed sequence used by :func:`run_sweep`.

    Exposed so callers can reproduce one task's stream in isolation
    (e.g. to debug a single Monte Carlo chunk).  Retried tasks call
    this again with the same arguments, which is why a retry cannot
    perturb the stream: the sequence is a pure function of
    ``(seed, index)``.
    """
    return np.random.SeedSequence(seed, spawn_key=(index,))


@dataclass(frozen=True)
class ChunkTask:
    """One contiguous ``[start, stop)`` slice of a partitioned problem.

    The adapter between row-partitioned engines (the fleet engine's
    byte-budgeted chip chunks, the EM samplers' wire blocks) and
    :func:`run_sweep`: the engine partitions its row space once with
    :func:`chunk_tasks` and ships each slice as an independent sweep
    task, inheriting the runner's crash-safe machinery (bounded
    retries, chunk-level serial re-execution after worker death,
    :class:`SweepReport` telemetry) without re-deriving boundaries in
    two places.  Slices are half-open, ordered, and non-overlapping,
    so results merge by a deterministic row-ordered scatter no matter
    which worker finishes first.

    Attributes:
        index: position of the slice in the partition.
        start / stop: item range of the slice, ``0 <= start < stop``.
    """

    index: int
    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise SimulationError("chunk index must be non-negative")
        if not 0 <= self.start < self.stop:
            raise SimulationError(
                "chunk slice must satisfy 0 <= start < stop")

    @property
    def n_items(self) -> int:
        """Items covered by the slice."""
        return self.stop - self.start


def chunk_tasks(n_items: int, chunk_size: int) -> List[ChunkTask]:
    """Partition ``n_items`` into ordered :class:`ChunkTask` slices.

    The single source of chunk boundaries for partitioned engines:
    serial streams and pooled executions of the same
    ``(n_items, chunk_size)`` see identical slices, which is what
    makes a pooled run's row-ordered merge bit-identical to the
    serial stream.
    """
    if n_items < 1:
        raise SimulationError("n_items must be at least 1")
    if chunk_size < 1:
        raise SimulationError("chunk_size must be at least 1")
    return [ChunkTask(index=index, start=start,
                      stop=min(start + chunk_size, n_items))
            for index, start in enumerate(
                range(0, n_items, chunk_size))]


@dataclass(frozen=True)
class TaskFailure:
    """A structured record of one task that exhausted its attempts.

    Returned in-order (in the failed task's result slot) under
    ``on_error="collect"`` and listed on :attr:`SweepReport.failures`
    under every non-raising policy.

    Attributes:
        task_index: position of the failed task in the sweep's list.
        chunk_index: submitted chunk the task ran in.
        error_type: class name of the final attempt's exception.
        message: ``str()`` of that exception.
        traceback: formatted traceback of the final attempt (captured
            in the worker, so it survives the process boundary even
            when the exception object itself does not).
        attempts: executions made (1 + retries granted).
        error: the original exception object, when it could be
            pickled back from the worker; ``None`` otherwise (the
            textual fields above always survive).
    """

    task_index: int
    chunk_index: int
    error_type: str
    message: str
    traceback: str
    attempts: int
    error: Optional[BaseException] = None

    def __str__(self) -> str:
        return (f"task {self.task_index} (chunk {self.chunk_index}) "
                f"failed after {self.attempts} attempt(s): "
                f"{self.error_type}: {self.message}")


@dataclass(frozen=True)
class ChunkRecord:
    """Telemetry of one submitted chunk.

    Attributes:
        index: chunk position (chunks partition the task list in
            order, so chunk ``i`` covers tasks ``[start, stop)``).
        start / stop: task-index range of the chunk.
        executed_in: ``"pool"`` (completed in a worker), ``"serial"``
            (the sweep never started a pool), ``"serial-fallback"``
            (re-run in-process after a pool-side failure) or
            ``"cached"`` (restored from a checkpoint directory
            instead of executed -- emitted by checkpointed fleet
            studies, see :mod:`repro.system.checkpoint`; its
            ``wall_time_s`` is the restore time).
        wall_time_s: time spent evaluating the chunk, measured inside
            whichever process ran it (excludes queueing / transport).
        retries: total re-executions granted to the chunk's tasks.
        n_failures: tasks that exhausted their attempts.
    """

    index: int
    start: int
    stop: int
    executed_in: str
    wall_time_s: float
    retries: int
    n_failures: int


@dataclass(frozen=True)
class SweepReport:
    """What one :func:`run_sweep` call did, delivered via ``on_report``.

    Attributes:
        n_tasks / n_chunks / max_workers: run geometry.
        mode: ``"serial"`` (no pool was started),
            ``"pool"`` (every chunk completed in a worker) or
            ``"pool+serial-fallback"`` (some chunks were recovered
            in-process after a pool-side failure).
        serial_reason: why no pool was started (``None`` when pooled).
        fallback_reasons: pool-side infrastructure errors that were
            recovered from by serial re-execution, one entry per
            failed chunk (``BrokenProcessPool``, ``PicklingError`` on
            a task or result, ...).
        wall_time_s: end-to-end runner time, including scheduling.
        chunks: per-chunk telemetry, in chunk (= task) order.
        retries: total task re-executions across the sweep.
        failures: tasks that exhausted their attempts, in task order
            (empty under ``on_error="raise"`` semantics only if the
            sweep succeeded -- the report is delivered *before* the
            :class:`~repro.errors.TaskError` is raised, so it is the
            place to look when a sweep dies).
        cache_counters: per-named-cache ``{"hits": h, "misses": m}``
            deltas attributable to this sweep's task evaluations
            (summed over serial and worker processes); see
            :func:`repro.solvers.factorized.cache_counters`.  When a
            task drives a batched engine, ``batched_solves`` /
            ``batched_rows`` deltas appear alongside the hit/miss
            counts (they are omitted when zero).
    """

    n_tasks: int
    n_chunks: int
    max_workers: int
    mode: str
    serial_reason: Optional[str]
    fallback_reasons: Tuple[str, ...]
    wall_time_s: float
    chunks: Tuple[ChunkRecord, ...]
    retries: int
    failures: Tuple[TaskFailure, ...]
    cache_counters: Mapping[str, Mapping[str, int]]

    @property
    def n_failures(self) -> int:
        """Number of tasks that exhausted their attempts."""
        return len(self.failures)

    @property
    def ok(self) -> bool:
        """True when every task produced a result."""
        return not self.failures

    def summary(self) -> str:
        """A one-line human-readable digest (for logs / CLI output)."""
        parts = [f"{self.n_tasks} tasks in {self.n_chunks} chunks "
                 f"({self.mode}, {self.wall_time_s:.3f} s)"]
        if self.serial_reason:
            parts.append(f"serial: {self.serial_reason}")
        if self.fallback_reasons:
            parts.append(f"{len(self.fallback_reasons)} chunk(s) "
                         "recovered serially")
        if self.retries:
            parts.append(f"{self.retries} retries")
        parts.append(f"{self.n_failures} failed")
        return "; ".join(parts)


@dataclass(frozen=True)
class _TaskOutcome:
    """One task's result or failure (worker-to-parent transport)."""

    index: int
    value: Any
    failure: Optional[TaskFailure]
    retries: int


@dataclass(frozen=True)
class _ChunkOutput:
    """Everything a chunk execution reports back to the parent."""

    outcomes: List[_TaskOutcome]
    wall_time_s: float
    cache_delta: Dict[str, Dict[str, int]]


def _chunk_bounds(n_tasks: int, chunk_size: int) -> List[range]:
    return [range(start, min(start + chunk_size, n_tasks))
            for start in range(0, n_tasks, chunk_size)]


def _transportable_error(exc: BaseException) -> Optional[BaseException]:
    """The exception itself if it survives a pickle round-trip."""
    try:
        pickle.loads(pickle.dumps(exc))
    except Exception:
        return None
    return exc


def _make_failure(exc: BaseException, index: int, chunk_index: int,
                  attempts: int, in_process: bool) -> TaskFailure:
    text = "".join(traceback_module.format_exception(
        type(exc), exc, exc.__traceback__))
    return TaskFailure(
        task_index=index,
        chunk_index=chunk_index,
        error_type=type(exc).__name__,
        message=str(exc),
        traceback=text,
        attempts=attempts,
        error=exc if in_process else _transportable_error(exc))


#: Counter keys always present on a reported cache delta; any other
#: counter (``batched_solves`` / ``batched_rows``) appears only when
#: its delta is nonzero, so sweeps that never touch a batched engine
#: keep the compact ``{"hits": h, "misses": m}`` shape.
_BASE_COUNTER_KEYS = ("hits", "misses")


def _cache_delta(before: Dict[str, Dict[str, int]],
                 after: Dict[str, Dict[str, int]]
                 ) -> Dict[str, Dict[str, int]]:
    delta: Dict[str, Dict[str, int]] = {}
    for name, counters in after.items():
        base = before.get(name, {})
        changed = {key: value - base.get(key, 0)
                   for key, value in counters.items()}
        if any(changed.values()):
            delta[name] = {key: value for key, value in changed.items()
                           if value or key in _BASE_COUNTER_KEYS}
    return delta


def _merge_cache_deltas(totals: Dict[str, Dict[str, int]],
                        delta: Mapping[str, Mapping[str, int]]) -> None:
    for name, counters in delta.items():
        entry = totals.setdefault(name, {"hits": 0, "misses": 0})
        for key, value in counters.items():
            entry[key] = entry.get(key, 0) + value


def _run_chunk(fn: Callable[..., Any], chunk_tasks: Sequence[Any],
               indices: Sequence[int], seed: Optional[int],
               retries: int = 0, chunk_index: int = 0,
               in_process: bool = True) -> _ChunkOutput:
    """Evaluate one chunk (in a pool worker or the parent process).

    Task-level exceptions never escape: each task is retried up to
    ``retries`` times (re-deriving its seed sequence, so the stream is
    identical on every attempt) and then captured as a
    :class:`TaskFailure`.  Anything raised *out* of this function in a
    worker is therefore pool infrastructure, which is what lets the
    parent treat future exceptions as recoverable.
    """
    before = cache_counters()
    start_time = time.perf_counter()
    outcomes: List[_TaskOutcome] = []
    for task, index in zip(chunk_tasks, indices):
        attempt = 0
        while True:
            try:
                if seed is None:
                    value = fn(task)
                else:
                    value = fn(task, task_seed_sequence(seed, index))
            except Exception as exc:
                if attempt < retries:
                    attempt += 1
                    continue
                outcomes.append(_TaskOutcome(
                    index=index, value=None, retries=attempt,
                    failure=_make_failure(exc, index, chunk_index,
                                          attempt + 1, in_process)))
                break
            outcomes.append(_TaskOutcome(index=index, value=value,
                                         failure=None, retries=attempt))
            break
    wall = time.perf_counter() - start_time
    return _ChunkOutput(outcomes=outcomes, wall_time_s=wall,
                        cache_delta=_cache_delta(before,
                                                 cache_counters()))


def _picklable(*objects: Any) -> bool:
    try:
        for obj in objects:
            pickle.dumps(obj)
    except Exception:
        return False
    return True


def run_sweep(fn: Callable[..., Any], tasks: Sequence[Any], *,
              max_workers: Optional[int] = None,
              chunk_size: Optional[int] = None,
              seed: Optional[int] = None,
              min_tasks_for_pool: Optional[int] = None,
              on_error: str = "raise",
              retries: int = 0,
              progress: Optional[Callable[[int, int], None]] = None,
              on_report: Optional[Callable[[SweepReport], None]] = None
              ) -> List[Any]:
    """Evaluate ``fn`` over every task, optionally in parallel.

    Args:
        fn: the task function.  Called as ``fn(task)``, or as
            ``fn(task, seed_sequence)`` when ``seed`` is given, with a
            per-task ``numpy.random.SeedSequence`` derived from
            ``(seed, task index)`` -- pass it to
            ``numpy.random.default_rng``.
        tasks: the task descriptions, evaluated independently.
        max_workers: process count; ``None`` picks the CPU count,
            ``0``/``1`` forces the serial in-process path.
        chunk_size: tasks per submitted chunk (defaults to an even
            split over ~4 chunks per worker).  Chunking only affects
            scheduling granularity, never results.
        seed: root seed for per-task deterministic randomness.
        min_tasks_for_pool: below this many tasks the sweep runs
            serially in-process (``None`` uses
            ``DEFAULT_MIN_TASKS_FOR_POOL``); process startup and
            pickling otherwise dominate small batches.  Serial and
            pooled runs produce identical results, so the threshold is
            purely a performance knob.
        on_error: what to do with tasks that exhaust their attempts.
            ``"raise"`` (default) raises
            :class:`~repro.errors.TaskError` attributing the first
            failing task, with the worker's exception chained;
            ``"skip"`` omits failed tasks from the results (surviving
            results stay in task order); ``"collect"`` keeps the
            results list full-length with a :class:`TaskFailure`
            record in each failed slot.
        retries: bounded per-task re-executions before a task counts
            as failed.  Retries re-derive the identical seed sequence,
            so a seeded task that succeeds on attempt *k* returns
            byte-identical results to one that succeeds on attempt 1.
        progress: optional callback invoked as
            ``progress(done_tasks, total_tasks)`` after every
            completed chunk (serial and pooled alike).
        on_report: optional callback receiving the final
            :class:`SweepReport`.  It is delivered *before* a
            ``"raise"`` policy raises, so telemetry survives failure.

    Returns:
        The results in task order -- independent of worker count,
        chunking, retries, and pool failures.  A mid-run
        ``BrokenProcessPool`` / ``PicklingError`` is recovered by
        re-running only the incomplete chunks serially.
    """
    tasks = list(tasks)
    started = time.perf_counter()
    if max_workers is None:
        max_workers = os.cpu_count() or 1
    if max_workers < 0:
        raise SimulationError("max_workers must be non-negative")
    if min_tasks_for_pool is None:
        min_tasks_for_pool = DEFAULT_MIN_TASKS_FOR_POOL
    elif min_tasks_for_pool < 1:
        raise SimulationError("min_tasks_for_pool must be at least 1")
    if on_error not in ON_ERROR_POLICIES:
        raise SimulationError(
            f"on_error must be one of {ON_ERROR_POLICIES}, "
            f"got {on_error!r}")
    if retries < 0:
        raise SimulationError("retries must be non-negative")

    if not tasks:
        if on_report is not None:
            on_report(SweepReport(
                n_tasks=0, n_chunks=0, max_workers=max_workers,
                mode="serial", serial_reason="no tasks",
                fallback_reasons=(), wall_time_s=0.0, chunks=(),
                retries=0, failures=(), cache_counters={}))
        return []

    if chunk_size is None:
        chunk_size = max(1, -(-len(tasks) // (4 * max(max_workers, 1))))
    elif chunk_size < 1:
        raise SimulationError("chunk_size must be at least 1")
    chunks = _chunk_bounds(len(tasks), chunk_size)

    serial_reason: Optional[str] = None
    if max_workers <= 1:
        serial_reason = "max_workers <= 1"
    elif len(tasks) < min_tasks_for_pool:
        serial_reason = (f"{len(tasks)} tasks below "
                         f"min_tasks_for_pool={min_tasks_for_pool}")
    elif not _picklable(fn):
        serial_reason = "function is not picklable"
    elif not _picklable(tasks[0]):
        # A conservative probe: a heterogeneous list may still hide an
        # unpicklable later task, which the pool-side recovery below
        # degrades on chunk by chunk.
        serial_reason = "probe task is not picklable"

    pool: Optional[ProcessPoolExecutor] = None
    if serial_reason is None:
        try:
            pool = ProcessPoolExecutor(max_workers=max_workers)
        except (OSError, PermissionError) as exc:
            # Sandboxes / restricted environments without process
            # spawn.
            serial_reason = (f"process pool unavailable "
                             f"({type(exc).__name__}: {exc})")

    chunk_outputs: List[Optional[_ChunkOutput]] = [None] * len(chunks)
    chunk_modes = ["serial"] * len(chunks)
    fallback_reasons: List[str] = []
    done_tasks = 0

    def announce(indices: range) -> None:
        nonlocal done_tasks
        done_tasks += len(indices)
        if progress is not None:
            progress(done_tasks, len(tasks))

    if pool is not None:
        with pool:
            futures: List[Optional[Any]] = []
            for chunk_index, indices in enumerate(chunks):
                try:
                    futures.append(pool.submit(
                        _run_chunk, fn,
                        [tasks[i] for i in indices], list(indices),
                        seed, retries, chunk_index, False))
                except Exception as exc:
                    # e.g. submitting to an already-broken pool.
                    futures.append(None)
                    fallback_reasons.append(
                        f"chunk {chunk_index} submission failed "
                        f"({type(exc).__name__}: {exc})")
            for chunk_index, future in enumerate(futures):
                if future is None:
                    continue
                try:
                    chunk_outputs[chunk_index] = future.result()
                except Exception as exc:
                    # Task errors are captured in-band by _run_chunk,
                    # so anything raised here is pool infrastructure
                    # (BrokenProcessPool, an unpicklable task or
                    # result, ...); the chunk is re-run serially
                    # below.  A broken pool fails the remaining
                    # futures immediately, so this drain is fast.
                    fallback_reasons.append(
                        f"chunk {chunk_index} failed in the pool "
                        f"({type(exc).__name__}: {exc})")
                else:
                    chunk_modes[chunk_index] = "pool"
                    announce(chunks[chunk_index])

    for chunk_index, indices in enumerate(chunks):
        if chunk_outputs[chunk_index] is not None:
            continue
        chunk_outputs[chunk_index] = _run_chunk(
            fn, [tasks[i] for i in indices], list(indices), seed,
            retries, chunk_index, True)
        if serial_reason is None:
            chunk_modes[chunk_index] = "serial-fallback"
        announce(indices)

    outcomes = [outcome for output in chunk_outputs
                for outcome in output.outcomes]
    failures = tuple(outcome.failure for outcome in outcomes
                     if outcome.failure is not None)

    # Durable run counters (repro.solvers.cache_counters): how much
    # sweep work ran where.  Callers that wrap run_sweep (the fleet
    # chunk executor) surface these next to their cache telemetry.
    record_counters(
        "solvers.sweep", tasks=len(tasks),
        pooled_chunks=sum(1 for mode in chunk_modes
                          if mode == "pool"),
        serial_chunks=sum(1 for mode in chunk_modes
                          if mode == "serial"),
        fallback_chunks=sum(1 for mode in chunk_modes
                            if mode == "serial-fallback"))

    if on_report is not None:
        cache_totals: Dict[str, Dict[str, int]] = {}
        records = []
        for chunk_index, indices in enumerate(chunks):
            output = chunk_outputs[chunk_index]
            _merge_cache_deltas(cache_totals, output.cache_delta)
            records.append(ChunkRecord(
                index=chunk_index, start=indices.start,
                stop=indices.stop,
                executed_in=chunk_modes[chunk_index],
                wall_time_s=output.wall_time_s,
                retries=sum(o.retries for o in output.outcomes),
                n_failures=sum(1 for o in output.outcomes
                               if o.failure is not None)))
        if serial_reason is not None:
            mode = "serial"
        elif fallback_reasons:
            mode = "pool+serial-fallback"
        else:
            mode = "pool"
        on_report(SweepReport(
            n_tasks=len(tasks), n_chunks=len(chunks),
            max_workers=max_workers, mode=mode,
            serial_reason=serial_reason,
            fallback_reasons=tuple(fallback_reasons),
            wall_time_s=time.perf_counter() - started,
            chunks=tuple(records),
            retries=sum(o.retries for o in outcomes),
            failures=failures, cache_counters=cache_totals))

    if failures and on_error == "raise":
        first = failures[0]
        message = str(first)
        if first.error is None:
            message += "\n--- worker traceback ---\n" + first.traceback
        raise TaskError(message, task_index=first.task_index,
                        chunk_index=first.chunk_index,
                        attempts=first.attempts) from first.error

    if on_error == "skip":
        return [outcome.value for outcome in outcomes
                if outcome.failure is None]
    if on_error == "collect":
        return [outcome.failure if outcome.failure is not None
                else outcome.value for outcome in outcomes]
    return [outcome.value for outcome in outcomes]
