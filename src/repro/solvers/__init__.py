"""Shared prefactored linear-algebra core and sweep runner.

See :mod:`repro.solvers.factorized` for the operator/cache design and
:mod:`repro.solvers.sweep` for the deterministic process-pool sweep,
and ``docs/performance.md`` for the architecture overview.
"""

from repro.solvers.factorized import (
    DenseLuOperator,
    FactorizationCache,
    FactorizedOperator,
    SparseLuOperator,
    TridiagonalOperator,
    fingerprint,
    solve_dense_cached,
)
from repro.solvers.sweep import run_sweep, task_seed_sequence

__all__ = [
    "DenseLuOperator",
    "FactorizationCache",
    "FactorizedOperator",
    "SparseLuOperator",
    "TridiagonalOperator",
    "fingerprint",
    "solve_dense_cached",
    "run_sweep",
    "task_seed_sequence",
]
