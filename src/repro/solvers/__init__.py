"""Shared prefactored linear-algebra core and sweep runner.

See :mod:`repro.solvers.factorized` for the operator/cache design and
:mod:`repro.solvers.sweep` for the deterministic fault-tolerant
process-pool sweep, and ``docs/performance.md`` for the architecture
overview.
"""

from repro.solvers.factorized import (
    DenseLuOperator,
    FactorizationCache,
    FactorizedOperator,
    SparseLuOperator,
    TridiagonalOperator,
    cache_counters,
    fingerprint,
    record_counters,
    solve_dense_cached,
)
from repro.solvers.sweep import (
    DEFAULT_MIN_TASKS_FOR_POOL,
    ChunkRecord,
    ChunkTask,
    SweepReport,
    TaskFailure,
    chunk_tasks,
    run_sweep,
    task_seed_sequence,
)

__all__ = [
    "DenseLuOperator",
    "FactorizationCache",
    "FactorizedOperator",
    "SparseLuOperator",
    "TridiagonalOperator",
    "cache_counters",
    "fingerprint",
    "record_counters",
    "solve_dense_cached",
    "DEFAULT_MIN_TASKS_FOR_POOL",
    "ChunkRecord",
    "ChunkTask",
    "SweepReport",
    "TaskFailure",
    "chunk_tasks",
    "run_sweep",
    "task_seed_sequence",
]
