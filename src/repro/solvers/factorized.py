"""Prefactored linear operators with fingerprint-keyed reuse.

Every hot solver in this reproduction -- the PDN nodal system, the
thermal RC network, the Korhonen stress PDE and the circuit MNA loops
-- repeatedly solves ``A x = b`` with the *same* matrix and a changing
right-hand side.  Factoring ``A`` once (LU / sparse LU / tridiagonal
LU) and back-substituting per step turns an O(n^3)-per-step loop into
O(n^2) (dense), or an O(n)-assembly-plus-factor loop into a single
O(n) back-substitution (banded).

Three operator flavours cover the call sites:

* :class:`DenseLuOperator` -- LAPACK ``getrf``/``getrs``, numerically
  identical to ``np.linalg.solve`` (which is ``gesv`` = the same two
  calls).
* :class:`SparseLuOperator` -- SuperLU via
  ``scipy.sparse.linalg.splu`` for large sparse systems (PDN grids).
* :class:`TridiagonalOperator` -- LAPACK ``gttrf``/``gttrs`` for the
  Korhonen backward-Euler system.

All operators accept a single RHS vector ``(n,)`` or a batch of RHS
columns ``(n, k)`` so fleet-style callers advance every unit in one
back-substitution.

:class:`FactorizationCache` is a small LRU keyed by an explicit
*fingerprint* of everything the matrix depends on (grid topology,
``dt``, ``kappa``, boundary kinds, or the raw matrix bytes).  A key
change -- new topology, new time step, new diffusivity -- simply
misses and refactors, which is the whole invalidation story: no
stale-factor bugs are possible because the key *is* the matrix
content.
"""

from __future__ import annotations

import hashlib
import warnings
import weakref
from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

import numpy as np
import scipy.linalg
import scipy.sparse
import scipy.sparse.linalg
from scipy.linalg import get_lapack_funcs


def fingerprint(*parts: Any) -> Tuple[Hashable, ...]:
    """A hashable fingerprint of matrix-defining data.

    Arrays are digested by shape + SHA-1 of their bytes; scalars,
    strings, enums and nested tuples pass through.  Use the result as
    a :class:`FactorizationCache` key.
    """
    digested = []
    for part in parts:
        if isinstance(part, np.ndarray):
            contiguous = np.ascontiguousarray(part)
            digest = hashlib.sha1(contiguous.view(np.uint8)).hexdigest()
            digested.append((contiguous.shape, str(contiguous.dtype),
                             digest))
        elif isinstance(part, (tuple, list)):
            digested.append(fingerprint(*part))
        else:
            digested.append(part)
    return tuple(digested)


class FactorizedOperator:
    """A factorized matrix ``A``; :meth:`solve` back-substitutes.

    Subclasses store only the factors, never the original matrix, so
    callers are free to mutate or discard their assembly buffers.
    """

    #: Unknown count (matrix is n x n).
    n: int

    def solve(self, rhs: np.ndarray,
              overwrite_rhs: bool = False) -> np.ndarray:
        """Solve ``A x = rhs``.

        Args:
            rhs: one RHS vector ``(n,)`` or a batch ``(n, k)``.
            overwrite_rhs: allow the solve to reuse ``rhs`` as the
                output buffer (the hot-loop path; the returned array
                may then *be* ``rhs``).
        """
        raise NotImplementedError


class DenseLuOperator(FactorizedOperator):
    """Dense LU (``getrf``) with cached pivots.

    Raises ``np.linalg.LinAlgError`` on an exactly singular matrix,
    mirroring ``np.linalg.solve`` so existing Newton fallbacks keep
    working.
    """

    def __init__(self, matrix: np.ndarray):
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError("matrix must be square")
        self.n = matrix.shape[0]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", scipy.linalg.LinAlgWarning)
            self._lu, self._piv = scipy.linalg.lu_factor(
                matrix, check_finite=False)
        if np.any(np.diag(self._lu) == 0.0):
            raise np.linalg.LinAlgError("singular matrix")

    def solve(self, rhs: np.ndarray,
              overwrite_rhs: bool = False) -> np.ndarray:
        """Back-substitute one ``(n,)`` RHS or an ``(n, k)`` batch."""
        return scipy.linalg.lu_solve((self._lu, self._piv), rhs,
                                     overwrite_b=overwrite_rhs,
                                     check_finite=False)


class SparseLuOperator(FactorizedOperator):
    """Sparse LU (SuperLU) of a CSC/CSR/COO matrix."""

    def __init__(self, matrix: "scipy.sparse.spmatrix"):
        matrix = scipy.sparse.csc_matrix(matrix)
        if matrix.shape[0] != matrix.shape[1]:
            raise ValueError("matrix must be square")
        self.n = matrix.shape[0]
        self._splu = scipy.sparse.linalg.splu(matrix)

    def solve(self, rhs: np.ndarray,
              overwrite_rhs: bool = False) -> np.ndarray:
        """Back-substitute one ``(n,)`` RHS or an ``(n, k)`` batch."""
        return self._splu.solve(np.asarray(rhs, dtype=float))


class TridiagonalOperator(FactorizedOperator):
    """Tridiagonal LU (``gttrf``) with O(n) back-substitution.

    Built from the three diagonals of ``A`` (``lower`` and ``upper``
    have ``n - 1`` entries).  Equivalent to
    ``scipy.linalg.solve_banded((1, 1), ...)`` but the factorization
    is done once, and :meth:`solve` with ``overwrite_rhs=True`` is
    allocation-free.
    """

    def __init__(self, lower: np.ndarray, diag: np.ndarray,
                 upper: np.ndarray):
        diag = np.asarray(diag, dtype=float)
        lower = np.asarray(lower, dtype=float)
        upper = np.asarray(upper, dtype=float)
        self.n = diag.shape[0]
        if lower.shape != (self.n - 1,) or upper.shape != (self.n - 1,):
            raise ValueError("off-diagonals must have n - 1 entries")
        gttrf, gttrs = get_lapack_funcs(("gttrf", "gttrs"), (diag,))
        self._gttrs = gttrs
        dl, d, du, du2, ipiv, info = gttrf(lower, diag, upper)
        if info != 0:
            raise np.linalg.LinAlgError(
                f"tridiagonal factorization failed (info={info})")
        self._factors = (dl, d, du, du2, ipiv)

    def solve(self, rhs: np.ndarray,
              overwrite_rhs: bool = False) -> np.ndarray:
        """Back-substitute; with ``overwrite_rhs`` it is allocation-free."""
        dl, d, du, du2, ipiv = self._factors
        x, info = self._gttrs(dl, d, du, du2, ipiv, rhs,
                              overwrite_b=overwrite_rhs)
        if info != 0:
            raise np.linalg.LinAlgError(
                f"tridiagonal solve failed (info={info})")
        return x


#: Every live cache, named or not; :func:`cache_counters` aggregates
#: the named ones.  Weak references keep the registry from pinning
#: caches (and their factors) past their owners' lifetimes.
_CACHE_REGISTRY: "weakref.WeakSet[FactorizationCache]" = weakref.WeakSet()


class FactorizationCache:
    """A small fingerprint-keyed LRU of expensive derived entries.

    Built for :class:`FactorizedOperator` reuse, but the cache never
    inspects the entry, so any costly key-determined artifact fits
    (steady-state temperature vectors, precomputed step kernels):
    invalidation is purely key-driven.  Callers key on everything the
    entry depends on (:func:`fingerprint` helps digest arrays), so a
    topology / ``dt`` / ``kappa`` change produces a new key, misses,
    and rebuilds.  ``hits`` / ``misses`` counters make reuse
    observable in tests; give the cache a ``name`` and those counters
    also surface in :func:`cache_counters` (and from there in sweep
    telemetry, :class:`repro.solvers.sweep.SweepReport`).
    """

    def __init__(self, maxsize: int = 16, name: Optional[str] = None):
        if maxsize < 1:
            raise ValueError("maxsize must be at least 1")
        self.maxsize = maxsize
        self.name = name
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        _CACHE_REGISTRY.add(self)

    def __len__(self) -> int:
        return len(self._entries)

    def get_or_build(self, key: Hashable,
                     factory: Callable[[], Any]) -> Any:
        """The cached entry for ``key``, building it on a miss."""
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return entry
        self.misses += 1
        entry = factory()
        self._entries[key] = entry
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return entry

    def clear(self) -> None:
        """Drop all cached factorizations (counters are kept)."""
        self._entries.clear()


def cache_counters() -> Dict[str, Dict[str, int]]:
    """Hit / miss totals of every live *named* cache, keyed by name.

    Caches sharing a name (e.g. one LU cache per compiled circuit,
    all named ``"circuit.lu"``) aggregate into one entry.  The sweep
    runner snapshots this before and after each chunk to attribute
    cache traffic to sweep work, so the counters must only ever grow.
    """
    totals: Dict[str, Dict[str, int]] = {}
    for cache in list(_CACHE_REGISTRY):
        if cache.name is None:
            continue
        entry = totals.setdefault(cache.name, {"hits": 0, "misses": 0})
        entry["hits"] += cache.hits
        entry["misses"] += cache.misses
    return totals


def solve_dense_cached(matrix: np.ndarray, rhs: np.ndarray,
                       cache: FactorizationCache) -> np.ndarray:
    """Solve a dense system through a content-keyed cache.

    Hashing the matrix bytes is O(n^2) against the O(n^3) of a
    factorization, so repeated solves with an unchanged matrix (linear
    transient steps, fixed-point loops) skip straight to
    back-substitution while changed matrices (Newton re-linearization)
    transparently refactor.  Results match ``np.linalg.solve``
    bit-for-bit: both paths are LAPACK ``getrf`` + ``getrs``.
    """
    key = fingerprint(matrix)
    operator = cache.get_or_build(key, lambda: DenseLuOperator(matrix))
    return operator.solve(rhs)
