"""Prefactored linear operators with fingerprint-keyed reuse.

Every hot solver in this reproduction -- the PDN nodal system, the
thermal RC network, the Korhonen stress PDE and the circuit MNA loops
-- repeatedly solves ``A x = b`` with the *same* matrix and a changing
right-hand side.  Factoring ``A`` once (LU / sparse LU / tridiagonal
LU) and back-substituting per step turns an O(n^3)-per-step loop into
O(n^2) (dense), or an O(n)-assembly-plus-factor loop into a single
O(n) back-substitution (banded).

Three operator flavours cover the call sites:

* :class:`DenseLuOperator` -- LAPACK ``getrf``/``getrs``, numerically
  identical to ``np.linalg.solve`` (which is ``gesv`` = the same two
  calls).
* :class:`SparseLuOperator` -- SuperLU via
  ``scipy.sparse.linalg.splu`` for large sparse systems (PDN grids).
* :class:`TridiagonalOperator` -- LAPACK ``gttrf``/``gttrs`` for the
  Korhonen backward-Euler system.

All operators accept a single RHS vector ``(n,)`` or a batch of RHS
columns ``(n, k)`` so fleet-style callers advance every unit in one
back-substitution.

:class:`FactorizationCache` is a small LRU keyed by an explicit
*fingerprint* of everything the matrix depends on (grid topology,
``dt``, ``kappa``, boundary kinds, or the raw matrix bytes).  A key
change -- new topology, new time step, new diffusivity -- simply
misses and refactors, which is the whole invalidation story: no
stale-factor bugs are possible because the key *is* the matrix
content.
"""

from __future__ import annotations

import hashlib
import weakref
from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

import numpy as np
import scipy.sparse
import scipy.sparse.linalg
from scipy.linalg import get_lapack_funcs


def fingerprint(*parts: Any) -> Tuple[Hashable, ...]:
    """A hashable fingerprint of matrix-defining data.

    Arrays are digested by shape + SHA-1 of their bytes; scalars,
    strings, enums and nested tuples pass through.  Use the result as
    a :class:`FactorizationCache` key.
    """
    digested = []
    for part in parts:
        if isinstance(part, np.ndarray):
            contiguous = np.ascontiguousarray(part)
            digest = hashlib.sha1(contiguous.view(np.uint8)).hexdigest()
            digested.append((contiguous.shape, str(contiguous.dtype),
                             digest))
        elif isinstance(part, (tuple, list)):
            digested.append(fingerprint(*part))
        else:
            digested.append(part)
    return tuple(digested)


class FactorizedOperator:
    """A factorized matrix ``A``; :meth:`solve` back-substitutes.

    Subclasses store only the factors, never the original matrix, so
    callers are free to mutate or discard their assembly buffers.
    """

    #: Unknown count (matrix is n x n).
    n: int

    def solve(self, rhs: np.ndarray,
              overwrite_rhs: bool = False) -> np.ndarray:
        """Solve ``A x = rhs``.

        Args:
            rhs: one RHS vector ``(n,)`` or a batch ``(n, k)``.
            overwrite_rhs: allow the solve to reuse ``rhs`` as the
                output buffer (the hot-loop path; the returned array
                may then *be* ``rhs``).
        """
        raise NotImplementedError


class DenseLuOperator(FactorizedOperator):
    """Dense LU via direct LAPACK ``getrf`` with cached pivots.

    Goes straight to ``getrf``/``getrs`` -- the same two routines
    ``scipy.linalg.lu_factor``/``lu_solve`` wrap (and that
    ``np.linalg.solve`` = ``gesv`` calls internally), minus the
    per-call wrapper overhead that dominates at MNA sizes, where this
    operator is hit thousands of times per transient.  Raises
    ``np.linalg.LinAlgError`` on an exactly singular matrix, mirroring
    ``np.linalg.solve`` so existing Newton fallbacks keep working.
    """

    def __init__(self, matrix: np.ndarray,
                 overwrite_matrix: bool = False):
        """Factor ``matrix``.

        Args:
            matrix: the square system matrix.
            overwrite_matrix: allow LAPACK to factor ``matrix`` in
                place (the compiled-circuit path hands over a scratch
                assembly buffer, saving one n^2 copy per factor).
        """
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError("matrix must be square")
        self.n = matrix.shape[0]
        getrf, self._getrs = get_lapack_funcs(("getrf", "getrs"),
                                              (matrix,))
        lu, piv, info = getrf(matrix, overwrite_a=overwrite_matrix)
        if info != 0:
            # info > 0 flags an exact zero pivot (singular); info < 0
            # cannot happen for a well-formed square float array.
            raise np.linalg.LinAlgError("singular matrix")
        self._lu = lu
        self._piv = piv

    def solve(self, rhs: np.ndarray,
              overwrite_rhs: bool = False) -> np.ndarray:
        """Back-substitute one ``(n,)`` RHS or an ``(n, k)`` batch."""
        x, info = self._getrs(self._lu, self._piv, rhs,
                              overwrite_b=overwrite_rhs)
        if info != 0:
            raise np.linalg.LinAlgError(
                f"LU back-substitution failed (info={info})")
        return x


class SparseLuOperator(FactorizedOperator):
    """Sparse LU (SuperLU) of a CSC/CSR/COO matrix."""

    def __init__(self, matrix: "scipy.sparse.spmatrix"):
        matrix = scipy.sparse.csc_matrix(matrix)
        if matrix.shape[0] != matrix.shape[1]:
            raise ValueError("matrix must be square")
        self.n = matrix.shape[0]
        self._splu = scipy.sparse.linalg.splu(matrix)

    def solve(self, rhs: np.ndarray,
              overwrite_rhs: bool = False) -> np.ndarray:
        """Back-substitute one ``(n,)`` RHS or an ``(n, k)`` batch."""
        return self._splu.solve(np.asarray(rhs, dtype=float))


#: Column count above which the numpy column-vectorized LU sweeps of
#: :meth:`TridiagonalOperator.solve_many` beat LAPACK's per-column
#: ``gttrs`` loop.  The vectorized sweeps cost ~5 numpy calls per
#: matrix row regardless of width, while ``gttrs`` costs O(rows) per
#: column, so the crossover is nearly independent of the matrix size
#: (measured ~300 columns on one core).
VECTORIZED_MIN_COLUMNS = 320


class TridiagonalOperator(FactorizedOperator):
    """Tridiagonal LU (``gttrf``) with O(n) back-substitution.

    Built from the three diagonals of ``A`` (``lower`` and ``upper``
    have ``n - 1`` entries).  Equivalent to
    ``scipy.linalg.solve_banded((1, 1), ...)`` but the factorization
    is done once, and :meth:`solve` with ``overwrite_rhs=True`` is
    allocation-free.  :meth:`solve_many` back-substitutes a wide block
    of right-hand sides with the LU sweeps vectorized *across
    columns*, which is how the batched Korhonen engine advances whole
    wire populations per step.
    """

    def __init__(self, lower: np.ndarray, diag: np.ndarray,
                 upper: np.ndarray):
        diag = np.asarray(diag, dtype=float)
        lower = np.asarray(lower, dtype=float)
        upper = np.asarray(upper, dtype=float)
        self.n = diag.shape[0]
        if lower.shape != (self.n - 1,) or upper.shape != (self.n - 1,):
            raise ValueError("off-diagonals must have n - 1 entries")
        gttrf, gttrs = get_lapack_funcs(("gttrf", "gttrs"), (diag,))
        self._gttrs = gttrs
        dl, d, du, du2, ipiv, info = gttrf(lower, diag, upper)
        if info != 0:
            raise np.linalg.LinAlgError(
                f"tridiagonal factorization failed (info={info})")
        self._factors = (dl, d, du, du2, ipiv)
        # Partial pivoting is a per-*row* decision recorded in ipiv,
        # identical for every RHS column, so the factored sweeps can
        # run as numpy column-vector operations (one op per matrix
        # row) with the pivoted rows handled by the same swap LAPACK's
        # ``gtts2`` performs per column.
        self._pivoted_rows = ipiv != np.arange(1, self.n + 1)

    def solve(self, rhs: np.ndarray,
              overwrite_rhs: bool = False) -> np.ndarray:
        """Back-substitute; with ``overwrite_rhs`` it is allocation-free."""
        dl, d, du, du2, ipiv = self._factors
        x, info = self._gttrs(dl, d, du, du2, ipiv, rhs,
                              overwrite_b=overwrite_rhs)
        if info != 0:
            raise np.linalg.LinAlgError(
                f"tridiagonal solve failed (info={info})")
        return x

    def solve_many(self, block: np.ndarray,
                   overwrite_rhs: bool = False) -> np.ndarray:
        """Back-substitute an ``(n, k)`` block of RHS columns at once.

        Bit-identical to calling :meth:`solve` on every column: for
        wide C-ordered blocks the forward/backward LU sweeps run as
        one numpy operation per matrix row over all ``k`` columns
        (mirroring LAPACK ``gtts2``'s arithmetic exactly, including
        its per-row pivot swaps, which are column-independent),
        turning O(k) LAPACK calls' worth of per-column work into ~5
        vector ops per row.  Narrow blocks fall back to ``gttrs``.
        With ``overwrite_rhs=True`` the solution is written into
        ``block`` (when its layout permits) and ``block`` is
        returned.
        """
        block = np.asarray(block, dtype=float)
        if block.ndim != 2 or block.shape[0] != self.n:
            raise ValueError(
                f"block must have shape ({self.n}, k), got {block.shape}")
        n, k = block.shape
        if k < VECTORIZED_MIN_COLUMNS or n < 3:
            fblock = np.asfortranarray(block)
            if fblock is block:
                return self.solve(block, overwrite_rhs=overwrite_rhs)
            x = self.solve(fblock, overwrite_rhs=True)
            if overwrite_rhs:
                np.copyto(block, x)
                return block
            return x
        dl, d, du, du2, _ = self._factors
        pivoted = self._pivoted_rows
        x = block if (overwrite_rhs and block.flags.c_contiguous) \
            else np.ascontiguousarray(block)
        scratch = np.empty(k)
        # Forward sweep (L has unit diagonal).  A pivoted row swaps
        # with its successor before eliminating, exactly as gtts2.
        for i in range(n - 1):
            if pivoted[i]:
                np.copyto(scratch, x[i])
                np.copyto(x[i], x[i + 1])
                np.multiply(dl[i], x[i], out=x[i + 1])
                np.subtract(scratch, x[i + 1], out=x[i + 1])
            else:
                np.multiply(dl[i], x[i], out=scratch)
                np.subtract(x[i + 1], scratch, out=x[i + 1])
        # Backward sweep: x[i] = (b[i] - du[i] x[i+1] - du2[i] x[i+2])
        # / d[i]; ``du2`` entries are nonzero only below pivoted rows.
        np.divide(x[n - 1], d[n - 1], out=x[n - 1])
        np.multiply(du[n - 2], x[n - 1], out=scratch)
        np.subtract(x[n - 2], scratch, out=x[n - 2])
        np.divide(x[n - 2], d[n - 2], out=x[n - 2])
        for i in range(n - 3, -1, -1):
            np.multiply(du[i], x[i + 1], out=scratch)
            np.subtract(x[i], scratch, out=x[i])
            if du2[i] != 0.0:
                np.multiply(du2[i], x[i + 2], out=scratch)
                np.subtract(x[i], scratch, out=x[i])
            np.divide(x[i], d[i], out=x[i])
        if overwrite_rhs and x is not block:
            np.copyto(block, x)
            return block
        return x


#: Every live cache, named or not; :func:`cache_counters` aggregates
#: the named ones.  Weak references keep the registry from pinning
#: caches (and their factors) past their owners' lifetimes.
_CACHE_REGISTRY: "weakref.WeakSet[FactorizationCache]" = weakref.WeakSet()

#: Durable per-name counter totals.  Named caches increment these at
#: record time, so the aggregate survives the cache itself -- a
#: batched engine built inside one sweep task (and collected with it)
#: still shows up in the chunk's telemetry delta, and
#: :func:`cache_counters` keeps its only-ever-grows contract.
_COUNTER_TOTALS: Dict[str, Dict[str, int]] = {}


def _named_totals(name: str) -> Dict[str, int]:
    return _COUNTER_TOTALS.setdefault(
        name, {"hits": 0, "misses": 0,
               "batched_solves": 0, "batched_rows": 0})


class FactorizationCache:
    """A small fingerprint-keyed LRU of expensive derived entries.

    Built for :class:`FactorizedOperator` reuse, but the cache never
    inspects the entry, so any costly key-determined artifact fits
    (steady-state temperature vectors, precomputed step kernels):
    invalidation is purely key-driven.  Callers key on everything the
    entry depends on (:func:`fingerprint` helps digest arrays), so a
    topology / ``dt`` / ``kappa`` change produces a new key, misses,
    and rebuilds.  ``hits`` / ``misses`` counters make reuse
    observable in tests; give the cache a ``name`` and those counters
    also surface in :func:`cache_counters` (and from there in sweep
    telemetry, :class:`repro.solvers.sweep.SweepReport`).

    Batched engines (:class:`repro.circuit.batched.CircuitBatch`,
    :class:`repro.em.korhonen.KorhonenBatch`) additionally call
    :meth:`record_batched_solve` whenever they back-substitute a block
    of RHS rows against one cached factor, so grouped multi-RHS solves
    are observable next to the hit/miss traffic
    (``batched_rows / batched_solves`` is the average batch width).
    """

    def __init__(self, maxsize: int = 16, name: Optional[str] = None):
        if maxsize < 1:
            raise ValueError("maxsize must be at least 1")
        self.maxsize = maxsize
        self.name = name
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.batched_solves = 0
        self.batched_rows = 0
        self._totals = _named_totals(name) if name is not None \
            else None
        _CACHE_REGISTRY.add(self)

    def __len__(self) -> int:
        return len(self._entries)

    def get_or_build(self, key: Hashable,
                     factory: Callable[[], Any]) -> Any:
        """The cached entry for ``key``, building it on a miss."""
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            if self._totals is not None:
                self._totals["hits"] += 1
            self._entries.move_to_end(key)
            return entry
        self.misses += 1
        if self._totals is not None:
            self._totals["misses"] += 1
        entry = factory()
        self._entries[key] = entry
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return entry

    def record_batched_solve(self, n_rows: int) -> None:
        """Count one grouped back-substitution advancing ``n_rows``.

        Called by batched engines after solving a block of RHS rows
        against one cached factor; the totals surface through
        :func:`cache_counters` and sweep telemetry.
        """
        self.batched_solves += 1
        self.batched_rows += int(n_rows)
        if self._totals is not None:
            self._totals["batched_solves"] += 1
            self._totals["batched_rows"] += int(n_rows)

    def clear(self) -> None:
        """Drop all cached factorizations (counters are kept)."""
        self._entries.clear()


def cache_counters() -> Dict[str, Dict[str, int]]:
    """Counter totals of every *named* cache, keyed by name.

    Each entry carries the caches' ``hits`` / ``misses`` plus the
    ``batched_solves`` / ``batched_rows`` recorded via
    :meth:`FactorizationCache.record_batched_solve`.  Caches sharing a
    name (e.g. one LU cache per compiled circuit, all named
    ``"circuit.lu"``) aggregate into one entry, and the totals outlive
    the caches themselves: a batched engine built for one sweep task
    and collected with it still leaves its traffic behind.  The sweep
    runner snapshots this before and after each chunk to attribute
    cache traffic to sweep work, so the counters must only ever grow.
    """
    return {name: dict(counters)
            for name, counters in _COUNTER_TOTALS.items()}


def record_counters(name: str, **increments: int) -> None:
    """Add engine-defined counters to a named durable total.

    The named totals normally grow through
    :class:`FactorizationCache` traffic (``hits`` / ``misses`` /
    ``batched_solves`` / ``batched_rows``); engines that want other
    run metrics in the same telemetry stream -- the fleet engine
    records chips advanced, chunk counts and kernel-row dedup sizes --
    call this with their own counter keys.  Increments must be
    non-negative so :func:`cache_counters` keeps its only-ever-grows
    contract (the sweep runner attributes per-chunk deltas by
    before/after subtraction).
    """
    totals = _named_totals(name)
    for key, value in increments.items():
        value = int(value)
        if value < 0:
            raise ValueError(
                f"counter increments must be non-negative, "
                f"got {key}={value}")
        totals[key] = totals.get(key, 0) + value


def solve_dense_cached(matrix: np.ndarray, rhs: np.ndarray,
                       cache: FactorizationCache) -> np.ndarray:
    """Solve a dense system through a content-keyed cache.

    Hashing the matrix bytes is O(n^2) against the O(n^3) of a
    factorization, so repeated solves with an unchanged matrix (linear
    transient steps, fixed-point loops) skip straight to
    back-substitution while changed matrices (Newton re-linearization)
    transparently refactor.  Results match ``np.linalg.solve``
    bit-for-bit: both paths are LAPACK ``getrf`` + ``getrs``.
    """
    key = fingerprint(matrix)
    operator = cache.get_or_build(key, lambda: DenseLuOperator(matrix))
    return operator.solve(rhs)
