"""Chip floorplans for the lumped thermal model.

A floorplan is a set of rectangular, axis-aligned, non-overlapping
blocks (cores, caches, accelerators).  Lateral heat spreading couples
blocks through their shared edges, so the floorplan computes edge
adjacency; vertical heat removal couples every block to the ambient
through its area.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Block:
    """One rectangular floorplan block.

    Attributes:
        name: unique block name.
        x_m / y_m: lower-left corner in metres.
        width_m / height_m: extents in metres.
    """

    name: str
    x_m: float
    y_m: float
    width_m: float
    height_m: float

    def __post_init__(self) -> None:
        if self.width_m <= 0.0 or self.height_m <= 0.0:
            raise ValueError("block dimensions must be positive")

    @property
    def area_m2(self) -> float:
        """Block area."""
        return self.width_m * self.height_m

    def shared_edge_m(self, other: "Block") -> float:
        """Length of the edge shared with ``other`` (0 if not adjacent).

        Two blocks share an edge when they touch along a vertical or
        horizontal boundary with a positive overlap length.
        """
        tolerance = 1e-12
        # Vertical contact: my right edge is their left edge (or vice versa).
        if (abs(self.x_m + self.width_m - other.x_m) < tolerance
                or abs(other.x_m + other.width_m - self.x_m) < tolerance):
            overlap = (min(self.y_m + self.height_m,
                           other.y_m + other.height_m)
                       - max(self.y_m, other.y_m))
            return max(overlap, 0.0)
        # Horizontal contact: my top edge is their bottom edge (or vice versa).
        if (abs(self.y_m + self.height_m - other.y_m) < tolerance
                or abs(other.y_m + other.height_m - self.y_m) < tolerance):
            overlap = (min(self.x_m + self.width_m,
                           other.x_m + other.width_m)
                       - max(self.x_m, other.x_m))
            return max(overlap, 0.0)
        return 0.0


class Floorplan:
    """An ordered collection of named blocks with adjacency queries."""

    def __init__(self, blocks: Sequence[Block]):
        if not blocks:
            raise ValueError("a floorplan needs at least one block")
        names = [block.name for block in blocks]
        if len(set(names)) != len(names):
            raise ValueError("block names must be unique")
        self.blocks: Tuple[Block, ...] = tuple(blocks)
        self._index: Dict[str, int] = {
            block.name: i for i, block in enumerate(self.blocks)}

    def __len__(self) -> int:
        return len(self.blocks)

    def __iter__(self) -> Iterable[Block]:
        return iter(self.blocks)

    def index_of(self, name: str) -> int:
        """Index of the block with the given name."""
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(f"no block named {name!r}") from None

    def block(self, name: str) -> Block:
        """The block with the given name."""
        return self.blocks[self.index_of(name)]

    def adjacency(self) -> List[Tuple[int, int, float]]:
        """All adjacent block pairs as ``(i, j, shared_edge_m)``."""
        pairs = []
        for i, a in enumerate(self.blocks):
            for j in range(i + 1, len(self.blocks)):
                edge = a.shared_edge_m(self.blocks[j])
                if edge > 0.0:
                    pairs.append((i, j, edge))
        return pairs

    def neighbours_of(self, name: str) -> List[str]:
        """Names of all blocks sharing an edge with ``name``."""
        me = self.index_of(name)
        result = []
        for i, j, _edge in self.adjacency():
            if i == me:
                result.append(self.blocks[j].name)
            elif j == me:
                result.append(self.blocks[i].name)
        return result

    @classmethod
    def grid(cls, rows: int, cols: int, core_width_m: float = 2e-3,
             core_height_m: float = 2e-3,
             name_format: Optional[str] = None) -> "Floorplan":
        """A regular rows x cols many-core floorplan (Fig. 12a style).

        The default names zero-pad each axis to its digit width, so
        grids up to 10x10 keep the historical ``core{row}{col}`` names
        ("core00" .. "core99") while larger grids stay unambiguous
        ("core0003", "core1502") instead of colliding ("core111" would
        be both (1, 11) and (11, 1)).
        """
        if rows < 1 or cols < 1:
            raise ValueError("grid dimensions must be positive")
        if name_format is None:
            row_digits = len(str(rows - 1))
            col_digits = len(str(cols - 1))
            name_format = (f"core{{row:0{row_digits}d}}"
                           f"{{col:0{col_digits}d}}")
        blocks = []
        for row in range(rows):
            for col in range(cols):
                blocks.append(Block(
                    name=name_format.format(row=row, col=col),
                    x_m=col * core_width_m, y_m=row * core_height_m,
                    width_m=core_width_m, height_m=core_height_m))
        return cls(blocks)
