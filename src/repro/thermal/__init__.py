"""Lumped thermal substrate: floorplans and RC thermal networks.

Replaces the paper's thermal chamber and supplies the temperature
inputs of the wearout/recovery models.  It also implements the paper's
dark-silicon observation (Section IV-B): an idle core surrounded by hot
active neighbours is *heated for free*, which accelerates its BTI/EM
recovery -- the heat-flow arrows of Fig. 12(a).
"""

from repro.thermal.floorplan import Block, Floorplan
from repro.thermal.network import ThermalRCNetwork, ThermalNetworkConfig

__all__ = [
    "Block",
    "Floorplan",
    "ThermalRCNetwork",
    "ThermalNetworkConfig",
]
