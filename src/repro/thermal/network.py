"""Lumped RC thermal network over a floorplan.

One thermal node per block plus an implicit ambient node.  Each block
is coupled:

* vertically to the ambient with conductance ``g_amb = area / r_vertical``
  (heat sink / package path), and
* laterally to each adjacent block with conductance
  ``g_lat = shared_edge * k_lateral`` (silicon spreading).

Steady state solves ``G * T = P + g_amb * T_amb``; the transient form
uses backward Euler on ``C * dT/dt = -G * T + P + g_amb * T_amb``.
The network is what lets the system scheduler reason about *heat-assisted
recovery*: a dark core's temperature is set by its active neighbours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro import units
from repro.errors import SimulationError
from repro.solvers import DenseLuOperator, FactorizationCache
from repro.thermal.floorplan import Floorplan


@dataclass(frozen=True)
class ThermalNetworkConfig:
    """Material/package parameters of the thermal network.

    Attributes:
        vertical_resistance_km2_w: area-specific vertical thermal
            resistance to ambient (K*m^2/W).  The default gives a
            ~56 degC rise for a 2x2 mm core dissipating 1.5 W.
        lateral_conductance_w_mk: lateral conductance per metre of
            shared edge (W/(m*K)).
        heat_capacity_j_km2: area-specific heat capacity (J/(K*m^2)),
            silicon plus package mass attributed to the die area.
        ambient_k: ambient (heat-sink) temperature.
    """

    vertical_resistance_km2_w: float = 1.5e-4
    lateral_conductance_w_mk: float = 15.0
    heat_capacity_j_km2: float = 7e3
    ambient_k: float = units.celsius_to_kelvin(45.0)

    def __post_init__(self) -> None:
        if self.vertical_resistance_km2_w <= 0.0:
            raise ValueError("vertical_resistance_km2_w must be positive")
        if self.lateral_conductance_w_mk < 0.0:
            raise ValueError("lateral_conductance_w_mk must be >= 0")
        if self.heat_capacity_j_km2 <= 0.0:
            raise ValueError("heat_capacity_j_km2 must be positive")
        if self.ambient_k <= 0.0:
            raise ValueError("ambient_k must be positive (kelvin)")


class ThermalRCNetwork:
    """Thermal solver bound to one floorplan.

    Args:
        floorplan: the block layout.
        config: material/package parameters.
        steady_cache_size: LRU capacity of the memoized steady-state
            solver (:meth:`steady_state_cached`).
        steady_cache_quantum_w: power-vector quantization of the
            memoization key.  0 (the default) keys on the exact power
            bytes, so a hit is guaranteed bit-identical to a fresh
            solve; a positive quantum buckets powers to that
            granularity, trading a bounded temperature error
            (``quantum * R_thermal``) for more hits on near-repeating
            schedules.
    """

    def __init__(self, floorplan: Floorplan,
                 config: Optional[ThermalNetworkConfig] = None,
                 steady_cache_size: int = 64,
                 steady_cache_quantum_w: float = 0.0):
        if steady_cache_quantum_w < 0.0:
            raise SimulationError(
                "steady_cache_quantum_w must be non-negative")
        self.floorplan = floorplan
        self.config = config or ThermalNetworkConfig()
        self.steady_cache = FactorizationCache(
            maxsize=steady_cache_size, name="thermal.steady")
        self.steady_cache_quantum_w = steady_cache_quantum_w
        n = len(floorplan)
        cfg = self.config
        areas = np.array([block.area_m2 for block in floorplan])
        self.g_ambient = areas / cfg.vertical_resistance_km2_w
        self.capacity = areas * cfg.heat_capacity_j_km2
        conductance = np.diag(self.g_ambient.copy())
        for i, j, edge in floorplan.adjacency():
            g = edge * cfg.lateral_conductance_w_mk
            conductance[i, i] += g
            conductance[j, j] += g
            conductance[i, j] -= g
            conductance[j, i] -= g
        self._conductance = conductance
        # G is fixed for the network's lifetime: factor it once and
        # every steady-state / heater solve is a back-substitution.
        # Transient systems (C/dt + G) are keyed by dt, covering the
        # common fixed-step advance loop.
        self._steady_operator = DenseLuOperator(conductance)
        self._transient_operators = FactorizationCache(
            maxsize=8, name="thermal.transient.lu")
        self.temperatures_k = np.full(n, cfg.ambient_k)

    # -- queries ----------------------------------------------------------

    def temperature_of(self, name: str) -> float:
        """Current temperature of a named block (kelvin)."""
        return float(self.temperatures_k[self.floorplan.index_of(name)])

    def temperature_map(self) -> Dict[str, float]:
        """Current temperatures of all blocks, keyed by name."""
        return {block.name: float(self.temperatures_k[i])
                for i, block in enumerate(self.floorplan.blocks)}

    # -- solves -----------------------------------------------------------

    def steady_state(self, powers_w: Sequence[float]) -> np.ndarray:
        """Steady-state block temperatures for the given power vector.

        Also updates the stored state so subsequent transients start
        from this operating point.
        """
        power = self._validate_power(powers_w)
        self.temperatures_k = self._steady_solve(power)
        return self.temperatures_k.copy()

    def steady_state_cached(self, powers_w: Sequence[float]) -> np.ndarray:
        """Memoized :meth:`steady_state` for repeating power vectors.

        Scheduling loops (round-robin healing, duty-cycled recovery)
        revisit a small set of power vectors over millions of epochs;
        this path keys the solve on the power bytes (optionally
        quantized -- see ``steady_cache_quantum_w``) in a
        :class:`~repro.solvers.FactorizationCache`, so a repeat is a
        dictionary lookup plus a copy instead of a back-substitution.
        State updates and return values are identical to
        :meth:`steady_state` on every exact hit and on every miss.
        """
        power = self._validate_power(powers_w)
        if self.steady_cache_quantum_w > 0.0:
            key = np.round(
                power / self.steady_cache_quantum_w).astype(
                    np.int64).tobytes()
        else:
            # Raw power bytes: cheaper than a digest at these sizes,
            # and exact, so a hit is guaranteed bit-identical.
            key = power.tobytes()
        solved = self.steady_cache.get_or_build(
            key, lambda: self._steady_solve(power))
        self.temperatures_k = solved.copy()
        return solved.copy()

    def _steady_solve(self, power: np.ndarray) -> np.ndarray:
        rhs = power + self.g_ambient * self.config.ambient_k
        return self._steady_operator.solve(rhs, overwrite_rhs=True)

    def steady_state_map(self, powers_w: Dict[str, float]) -> Dict[str, float]:
        """Steady state with powers keyed by block name (0 if absent)."""
        vector = np.zeros(len(self.floorplan))
        for name, value in powers_w.items():
            vector[self.floorplan.index_of(name)] = value
        self.steady_state(vector)
        return self.temperature_map()

    def advance(self, duration_s: float,
                powers_w: Sequence[float],
                max_dt_s: float = 1.0) -> np.ndarray:
        """Advance the transient state under constant powers.

        Backward-Euler integration of the RC network; unconditionally
        stable, so ``max_dt_s`` only bounds the integration error.
        """
        if duration_s < 0.0:
            raise SimulationError("duration must be non-negative")
        if max_dt_s <= 0.0:
            raise SimulationError("max_dt_s must be positive")
        power = self._validate_power(powers_w)
        rhs_const = power + self.g_ambient * self.config.ambient_k
        remaining = duration_s
        capacity = self.capacity
        while remaining > 1e-12:
            dt = min(remaining, max_dt_s)
            operator = self._transient_operators.get_or_build(
                dt, lambda: DenseLuOperator(
                    np.diag(capacity / dt) + self._conductance))
            rhs = capacity / dt * self.temperatures_k + rhs_const
            self.temperatures_k = operator.solve(rhs, overwrite_rhs=True)
            remaining -= dt
        return self.temperatures_k.copy()

    def heating_power_w(self, name: str, target_k: float,
                        background_powers_w: Sequence[float]) -> float:
        """Extra power needed to hold one block at a target temperature.

        Accelerated recovery wants the healing block *hot* (the
        paper's knob No. 3); when neighbour heat is not enough, a
        heater (or deliberately scheduled hot workload nearby) must
        supply the difference.  This solves the linear network for the
        additional power injected at ``name`` such that its
        steady-state temperature reaches ``target_k`` on top of the
        given background powers.

        Returns 0 when the background alone already reaches the
        target (free heat -- the dark-silicon case).
        """
        if target_k <= 0.0:
            raise SimulationError("target_k must be positive (kelvin)")
        index = self.floorplan.index_of(name)
        background = self._validate_power(background_powers_w)
        rhs = background + self.g_ambient * self.config.ambient_k
        # One batched back-substitution: the background operating
        # point and the unit-injection response share the factors.
        unit = np.zeros(len(self.floorplan))
        unit[index] = 1.0
        solved = self._steady_operator.solve(np.column_stack([rhs, unit]))
        deficit_k = target_k - float(solved[index, 0])
        if deficit_k <= 0.0:
            return 0.0
        # Temperature response at `index` per watt injected there.
        return deficit_k / float(solved[index, 1])

    def healing_energy_j(self, name: str, target_k: float,
                         background_powers_w: Sequence[float],
                         interval_s: float) -> float:
        """Heater energy for one recovery interval at a target temp."""
        if interval_s < 0.0:
            raise SimulationError("interval must be non-negative")
        return self.heating_power_w(name, target_k,
                                    background_powers_w) * interval_s

    def thermal_time_constant_s(self) -> float:
        """Slowest RC time constant of the network (for step sizing)."""
        inv_c = np.diag(1.0 / self.capacity)
        eigenvalues = np.linalg.eigvals(inv_c @ self._conductance)
        return float(1.0 / np.min(np.real(eigenvalues)))

    def _validate_power(self, powers_w: Sequence[float]) -> np.ndarray:
        power = np.asarray(powers_w, dtype=float)
        if power.shape != (len(self.floorplan),):
            raise SimulationError(
                f"power vector must have {len(self.floorplan)} entries, "
                f"got shape {power.shape}")
        if np.any(power < 0.0):
            raise SimulationError("block powers must be non-negative")
        return power
