"""Population statistics for wearout studies.

EM lifetimes in particular are population quantities: a chip fails when
its *weakest* wire fails, so design sign-off reasons about percentiles
and Monte Carlo samples rather than single medians.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

import numpy as np

from repro.errors import SimulationError


def failure_fraction(ttfs_s: Sequence[float], at_time_s: float) -> float:
    """Fraction of a TTF population failed by ``at_time_s``."""
    ttf = np.asarray(ttfs_s, dtype=float)
    if ttf.size == 0:
        raise SimulationError("population must not be empty")
    if at_time_s < 0.0:
        raise SimulationError("time must be non-negative")
    return float(np.mean(ttf <= at_time_s))


def population_percentiles(values: Sequence[float],
                           percentiles: Sequence[float] = (1, 10, 50,
                                                           90, 99),
                           ) -> Dict[float, float]:
    """Selected percentiles of a population, keyed by percentile."""
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        raise SimulationError("population must not be empty")
    return {float(p): float(np.percentile(data, p)) for p in percentiles}


def monte_carlo_ttf(sample_ttf: Callable[[np.random.Generator], float],
                    n_samples: int = 200,
                    seed: int = 0) -> np.ndarray:
    """Draw a TTF population from a per-sample simulator.

    Args:
        sample_ttf: callable receiving a seeded generator and returning
            one failure time (e.g. an :class:`~repro.em.line.EmLine`
            run with randomized geometry/temperature).
        n_samples: population size.
        seed: master seed; each sample gets an independent child
            generator, so results are reproducible yet uncorrelated.

    Returns:
        Array of ``n_samples`` failure times.
    """
    if n_samples < 1:
        raise SimulationError("n_samples must be at least 1")
    master = np.random.default_rng(seed)
    seeds = master.integers(0, 2 ** 63 - 1, size=n_samples)
    return np.array([
        sample_ttf(np.random.default_rng(int(child_seed)))
        for child_seed in seeds])
