"""One-at-a-time sensitivity (tornado) analysis.

Every calibrated parameter in this reproduction carries uncertainty --
the paper reports one test structure per mechanism, and the
substitution models add their own assumptions.  A reproduction-quality
claim should therefore say not just "the delay factor is 3.07x" but
"and it moves by at most so-much when the calibration wiggles".

This module provides the generic harness: perturb each parameter to
the ends of its plausible span (holding the rest at baseline), re-run
a metric, and report the swing.  The benchmarks apply it to the
headline results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.errors import SimulationError
from repro.solvers import TaskFailure, run_sweep

#: A metric: maps a full parameter dict to one scalar result.  A
#: stochastic metric may accept an optional second argument, the
#: per-task ``numpy.random.SeedSequence`` delivered when
#: :func:`one_at_a_time` is called with ``seed``.
Metric = Callable[[Mapping[str, float]], float]


@dataclass(frozen=True)
class SensitivityResult:
    """Sensitivity of a metric to one parameter.

    Attributes:
        parameter: the perturbed parameter's name.
        baseline_value / low_value / high_value: parameter settings.
        baseline_metric / low_metric / high_metric: metric outcomes.
    """

    parameter: str
    baseline_value: float
    low_value: float
    high_value: float
    baseline_metric: float
    low_metric: float
    high_metric: float

    @property
    def swing(self) -> float:
        """Absolute metric range across the parameter span."""
        return abs(self.high_metric - self.low_metric)

    @property
    def relative_swing(self) -> float:
        """Swing normalized by the baseline metric."""
        if self.baseline_metric == 0.0:
            return float("inf") if self.swing > 0.0 else 0.0
        return self.swing / abs(self.baseline_metric)


def _call_metric(task: Tuple[Metric, Dict[str, float]],
                 seed_sequence=None) -> float:
    """Sweep worker: evaluate one (metric, parameter dict) task."""
    metric, params = task
    if seed_sequence is None:
        return metric(params)
    return metric(params, seed_sequence)


def one_at_a_time(metric: Metric,
                  baseline: Mapping[str, float],
                  spans: Mapping[str, Tuple[float, float]],
                  max_workers: Optional[int] = 1,
                  *,
                  min_tasks_for_pool: Optional[int] = None,
                  seed: Optional[int] = None,
                  on_error: str = "raise",
                  retries: int = 0,
                  progress=None,
                  on_report=None
                  ) -> List[SensitivityResult]:
    """Tornado analysis: perturb each parameter across its span.

    Args:
        metric: scalar function of the full parameter dict.
        baseline: nominal parameter values.
        spans: per-parameter (low, high) values to probe; parameters
            absent from ``spans`` stay fixed.
        max_workers: evaluate the (independent) metric calls over the
            :func:`repro.solvers.run_sweep` process pool.  The default
            of 1 stays serial and in-process; results are identical
            either way (the metric must be a picklable top-level
            callable to actually fan out).
        min_tasks_for_pool: pool-start threshold forwarded to
            :func:`repro.solvers.run_sweep`, so small tornado studies
            (a handful of parameters) never pay process startup.
        seed: root seed for stochastic metrics; when given, the
            metric is called as ``metric(params, seed_sequence)`` with
            the deterministic per-task sequence, so a noisy metric's
            tornado is reproducible at any worker count.
        on_error: ``"raise"`` (default) attributes the failing
            evaluation via :class:`~repro.errors.TaskError`;
            ``"collect"`` records ``nan`` for failed evaluations so
            the surviving rows keep their positions.  ``"skip"`` is
            rejected -- the tornado pairs results positionally.
        retries / progress / on_report: forwarded to
            :func:`repro.solvers.run_sweep`.

    Returns:
        One :class:`SensitivityResult` per spanned parameter, sorted
        by descending swing (tornado order).
    """
    if not spans:
        raise SimulationError("spans must not be empty")
    if on_error == "skip":
        raise SimulationError(
            "one_at_a_time pairs results positionally; use "
            "on_error='raise' or 'collect' (failed cells become nan)")
    missing = set(spans) - set(baseline)
    if missing:
        raise SimulationError(
            f"spans refer to unknown parameters: {sorted(missing)}")
    names = list(spans)
    tasks = [(metric, dict(baseline))]
    for name in names:
        low, high = spans[name]
        if low > high:
            raise SimulationError(
                f"span of {name!r} has low > high")
        low_params = dict(baseline)
        low_params[name] = low
        high_params = dict(baseline)
        high_params[name] = high
        tasks.append((metric, low_params))
        tasks.append((metric, high_params))
    metrics = run_sweep(_call_metric, tasks, max_workers=max_workers,
                        min_tasks_for_pool=min_tasks_for_pool,
                        seed=seed, on_error=on_error, retries=retries,
                        progress=progress, on_report=on_report)
    metrics = [float("nan") if isinstance(value, TaskFailure)
               else value for value in metrics]
    baseline_metric = metrics[0]
    results = []
    for position, name in enumerate(names):
        low, high = spans[name]
        results.append(SensitivityResult(
            parameter=name,
            baseline_value=float(baseline[name]),
            low_value=low, high_value=high,
            baseline_metric=baseline_metric,
            low_metric=metrics[1 + 2 * position],
            high_metric=metrics[2 + 2 * position]))
    results.sort(key=lambda result: result.swing, reverse=True)
    return results


def tornado_rows(results: List[SensitivityResult],
                 precision: int = 3) -> List[Tuple[str, str, str, str]]:
    """Format sensitivity results as table rows.

    Returns ``(parameter, span, metric range, relative swing)`` rows
    ready for :func:`repro.analysis.reporting.format_table`.
    """
    rows = []
    for result in results:
        rows.append((
            result.parameter,
            f"{result.low_value:.{precision}g} .. "
            f"{result.high_value:.{precision}g}",
            f"{result.low_metric:.{precision}g} .. "
            f"{result.high_metric:.{precision}g}",
            f"{result.relative_swing:.1%}",
        ))
    return rows
