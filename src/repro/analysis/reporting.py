"""Plain-text tables and series for benchmark output.

The benchmark harness prints exactly the rows/series the paper's
tables and figures report; these helpers keep that output aligned and
consistent without pulling in a plotting dependency.
"""

from __future__ import annotations

from typing import List, Sequence


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned plain-text table.

    Args:
        headers: column titles.
        rows: cell values; formatted with ``str`` (pre-format numbers
            for specific precision).
        title: optional title line printed above the table.

    Returns:
        The rendered multi-line string.
    """
    cells: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row {row!r} does not match {len(headers)} headers")
        cells.append([str(value) for value in row])
    widths = [max(len(row[col]) for row in cells)
              for col in range(len(headers))]
    lines: List[str] = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * width for width in widths)
    for index, row in enumerate(cells):
        lines.append(" | ".join(value.ljust(width)
                                for value, width in zip(row, widths)))
        if index == 0:
            lines.append(separator)
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[float], ys: Sequence[float],
                  x_label: str = "x", y_label: str = "y",
                  precision: int = 3, max_points: int = 25) -> str:
    """Render a named (x, y) series as aligned columns.

    Long series are decimated to ``max_points`` evenly spaced samples
    (always keeping the first and last) so benchmark logs stay
    readable.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    n = len(xs)
    if n == 0:
        raise ValueError("series must not be empty")
    if n > max_points:
        step = (n - 1) / (max_points - 1)
        indices = sorted({int(round(i * step))
                          for i in range(max_points)})
    else:
        indices = list(range(n))
    rows = [(f"{xs[i]:.{precision}g}", f"{ys[i]:.{precision}g}")
            for i in indices]
    return format_table((x_label, y_label), rows, title=name)
