"""Curve fits for wearout data: power law, Arrhenius, lognormal TTF.

These are the standard reductions used throughout the reliability
literature (and by the paper's own compact models): degradation vs
time is summarized by ``A * t^n``, temperature dependence by an
activation energy, and EM failure-time populations by a lognormal
(median TTF + sigma).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro import units
from repro.errors import CalibrationError


@dataclass(frozen=True)
class PowerLawFit:
    """``y = prefactor * t^exponent`` fitted in log-log space.

    Attributes:
        prefactor: the coefficient ``A``.
        exponent: the exponent ``n``.
        r_squared: goodness of fit in log space.
    """

    prefactor: float
    exponent: float
    r_squared: float

    def predict(self, t: float) -> float:
        """Evaluate the fitted law."""
        if t <= 0.0:
            raise ValueError("t must be positive")
        return self.prefactor * t ** self.exponent


def fit_power_law(times: Sequence[float],
                  values: Sequence[float]) -> PowerLawFit:
    """Least-squares power-law fit (both inputs must be positive)."""
    t = np.asarray(times, dtype=float)
    y = np.asarray(values, dtype=float)
    if t.shape != y.shape or t.size < 2:
        raise CalibrationError("need at least two matching samples")
    if np.any(t <= 0.0) or np.any(y <= 0.0):
        raise CalibrationError("power-law fit needs positive data")
    log_t, log_y = np.log(t), np.log(y)
    exponent, intercept = np.polyfit(log_t, log_y, 1)
    predicted = exponent * log_t + intercept
    residual = np.sum((log_y - predicted) ** 2)
    total = np.sum((log_y - log_y.mean()) ** 2)
    r_squared = 1.0 - residual / total if total > 0.0 else 1.0
    return PowerLawFit(prefactor=float(np.exp(intercept)),
                       exponent=float(exponent),
                       r_squared=float(r_squared))


@dataclass(frozen=True)
class ArrheniusFit:
    """``rate = prefactor * exp(-Ea / kT)`` fitted in log space.

    Attributes:
        prefactor: the coefficient.
        activation_energy_ev: the fitted ``Ea``.
        r_squared: goodness of fit in log space.
    """

    prefactor: float
    activation_energy_ev: float
    r_squared: float

    def predict(self, temperature_k: float) -> float:
        """Evaluate the fitted law."""
        if temperature_k <= 0.0:
            raise ValueError("temperature must be positive")
        return self.prefactor * np.exp(
            -self.activation_energy_ev
            / (units.BOLTZMANN_EV * temperature_k))


def fit_arrhenius(temperatures_k: Sequence[float],
                  rates: Sequence[float]) -> ArrheniusFit:
    """Least-squares Arrhenius fit (rates must be positive)."""
    temp = np.asarray(temperatures_k, dtype=float)
    rate = np.asarray(rates, dtype=float)
    if temp.shape != rate.shape or temp.size < 2:
        raise CalibrationError("need at least two matching samples")
    if np.any(temp <= 0.0) or np.any(rate <= 0.0):
        raise CalibrationError("Arrhenius fit needs positive data")
    x = 1.0 / (units.BOLTZMANN_EV * temp)
    y = np.log(rate)
    slope, intercept = np.polyfit(x, y, 1)
    predicted = slope * x + intercept
    residual = np.sum((y - predicted) ** 2)
    total = np.sum((y - y.mean()) ** 2)
    r_squared = 1.0 - residual / total if total > 0.0 else 1.0
    return ArrheniusFit(prefactor=float(np.exp(intercept)),
                        activation_energy_ev=float(-slope),
                        r_squared=float(r_squared))


@dataclass(frozen=True)
class LognormalFit:
    """Lognormal TTF population summary.

    Attributes:
        median_s: the lognormal median (t50).
        sigma: the log-space standard deviation.
    """

    median_s: float
    sigma: float

    def quantile(self, fraction: float) -> float:
        """TTF below which ``fraction`` of the population fails."""
        from scipy.stats import norm
        if not 0.0 < fraction < 1.0:
            raise ValueError("fraction must be in (0, 1)")
        return float(self.median_s
                     * np.exp(self.sigma * norm.ppf(fraction)))


def fit_lognormal_ttf(ttfs_s: Sequence[float]) -> LognormalFit:
    """Fit a lognormal to a population of failure times."""
    ttf = np.asarray(ttfs_s, dtype=float)
    if ttf.size < 2:
        raise CalibrationError("need at least two failure times")
    if np.any(ttf <= 0.0):
        raise CalibrationError("failure times must be positive")
    logs = np.log(ttf)
    return LognormalFit(median_s=float(np.exp(logs.mean())),
                        sigma=float(logs.std(ddof=1)))
