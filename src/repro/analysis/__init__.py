"""Analysis utilities: model fitting, wearout statistics, reporting.

Support code shared by the examples and the benchmark harness:

* :mod:`~repro.analysis.fitting` -- power-law and Arrhenius fits used
  to extract compact-model coefficients from simulated (or measured)
  traces, plus lognormal TTF fitting for EM populations.
* :mod:`~repro.analysis.stats` -- summary statistics over wearout
  populations (percentiles, failure fractions, Monte Carlo TTF).
* :mod:`~repro.analysis.reporting` -- plain-text tables matching the
  rows/series the paper's tables and figures report.
"""

from repro.analysis.fitting import (
    ArrheniusFit,
    PowerLawFit,
    fit_arrhenius,
    fit_power_law,
    fit_lognormal_ttf,
    LognormalFit,
)
from repro.analysis.stats import (
    failure_fraction,
    population_percentiles,
    monte_carlo_ttf,
)
from repro.analysis.reporting import format_table, format_series
from repro.analysis.sensitivity import (
    SensitivityResult,
    one_at_a_time,
    tornado_rows,
)

__all__ = [
    "SensitivityResult",
    "one_at_a_time",
    "tornado_rows",
    "ArrheniusFit",
    "PowerLawFit",
    "LognormalFit",
    "fit_arrhenius",
    "fit_power_law",
    "fit_lognormal_ttf",
    "failure_fraction",
    "population_percentiles",
    "monte_carlo_ttf",
    "format_table",
    "format_series",
]
