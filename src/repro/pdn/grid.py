"""Rectangular resistive power-grid model.

A :class:`PdnGrid` is a ``rows x cols`` mesh of nodes connected by
metal segments (horizontal and vertical stripes).  Pads tie selected
nodes to the supply voltage; logic blocks draw load currents from
nodes.  Solving the grid (see :mod:`repro.pdn.irdrop`) yields node
voltages (IR drop) and per-segment currents, whose densities drive the
EM models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.em.wire import COPPER, Material
from repro.errors import SimulationError

#: A grid node address (row, col).
NodeAddress = Tuple[int, int]


@dataclass(frozen=True)
class GridSegment:
    """One metal segment between two adjacent grid nodes.

    Attributes:
        a / b: node addresses of the endpoints.
        resistance_ohm: segment electrical resistance.
        width_m / thickness_m: cross-section of the stripe.
        length_m: segment length.
    """

    a: NodeAddress
    b: NodeAddress
    resistance_ohm: float
    width_m: float
    thickness_m: float
    length_m: float

    @property
    def cross_section_m2(self) -> float:
        """Current-carrying cross section."""
        return self.width_m * self.thickness_m

    def current_density(self, current_a: float) -> float:
        """Current density (A/m^2) for a given segment current."""
        return current_a / self.cross_section_m2


class PdnGrid:
    """A rectangular power grid with pads and load currents."""

    def __init__(self, rows: int, cols: int,
                 pitch_m: float = 100e-6,
                 stripe_width_m: float = 2e-6,
                 stripe_thickness_m: float = 0.5e-6,
                 material: Material = COPPER,
                 supply_v: float = 1.0):
        if rows < 2 or cols < 2:
            raise SimulationError("grid needs at least 2x2 nodes")
        if pitch_m <= 0.0 or stripe_width_m <= 0.0 \
                or stripe_thickness_m <= 0.0:
            raise SimulationError("grid geometry must be positive")
        if supply_v <= 0.0:
            raise SimulationError("supply voltage must be positive")
        self.rows = rows
        self.cols = cols
        self.pitch_m = pitch_m
        self.stripe_width_m = stripe_width_m
        self.stripe_thickness_m = stripe_thickness_m
        self.material = material
        self.supply_v = supply_v
        self.pads: List[NodeAddress] = []
        self.loads_a: Dict[NodeAddress, float] = {}
        resistivity = material.resistivity_ohm_m
        self._segment_resistance = (
            resistivity * pitch_m / (stripe_width_m * stripe_thickness_m))
        self._segment_arrays: Optional[
            Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    # -- construction -------------------------------------------------------

    def add_pad(self, row: int, col: int) -> None:
        """Tie node (row, col) to the supply (a C4 bump / via tower)."""
        address = self._check_address(row, col)
        if address not in self.pads:
            self.pads.append(address)

    def add_load(self, row: int, col: int, amps: float) -> None:
        """Attach (add) a DC load current at node (row, col)."""
        if amps < 0.0:
            raise SimulationError("load current must be non-negative")
        address = self._check_address(row, col)
        self.loads_a[address] = self.loads_a.get(address, 0.0) + amps

    def add_uniform_load(self, total_amps: float) -> None:
        """Spread a total load current uniformly over all nodes."""
        per_node = total_amps / (self.rows * self.cols)
        for row in range(self.rows):
            for col in range(self.cols):
                self.add_load(row, col, per_node)

    @classmethod
    def with_corner_pads(cls, rows: int, cols: int,
                         **kwargs) -> "PdnGrid":
        """A grid with pads at its four corners."""
        grid = cls(rows, cols, **kwargs)
        for row in (0, rows - 1):
            for col in (0, cols - 1):
                grid.add_pad(row, col)
        return grid

    # -- topology -----------------------------------------------------------

    def node_index(self, row: int, col: int) -> int:
        """Linear index of a node."""
        self._check_address(row, col)
        return row * self.cols + col

    @property
    def n_nodes(self) -> int:
        """Total node count."""
        return self.rows * self.cols

    def segments(self) -> Iterator[GridSegment]:
        """All metal segments (right-going then up-going per node)."""
        for row in range(self.rows):
            for col in range(self.cols):
                if col + 1 < self.cols:
                    yield GridSegment(
                        a=(row, col), b=(row, col + 1),
                        resistance_ohm=self._segment_resistance,
                        width_m=self.stripe_width_m,
                        thickness_m=self.stripe_thickness_m,
                        length_m=self.pitch_m)
                if row + 1 < self.rows:
                    yield GridSegment(
                        a=(row, col), b=(row + 1, col),
                        resistance_ohm=self._segment_resistance,
                        width_m=self.stripe_width_m,
                        thickness_m=self.stripe_thickness_m,
                        length_m=self.pitch_m)

    def segment_index_arrays(self
                             ) -> Tuple[np.ndarray, np.ndarray,
                                        np.ndarray]:
        """Vectorized segment topology ``(ia, ib, conductance_s)``.

        Endpoint node indices and conductances of every segment in
        :meth:`segments` order, computed once and cached (the mesh
        topology is fixed at construction).  These arrays let the
        IR-drop solver assemble the sparse nodal matrix and gather all
        segment currents without per-segment Python loops.
        """
        if self._segment_arrays is None:
            index_a = []
            index_b = []
            for segment in self.segments():
                index_a.append(self.node_index(*segment.a))
                index_b.append(self.node_index(*segment.b))
            conductance = np.full(len(index_a),
                                  1.0 / self._segment_resistance)
            self._segment_arrays = (
                np.asarray(index_a, dtype=np.intp),
                np.asarray(index_b, dtype=np.intp),
                conductance)
        return self._segment_arrays

    def matrix_fingerprint(self) -> Tuple[Hashable, ...]:
        """Everything the nodal conductance matrix depends on.

        Loads and the supply voltage only enter the right-hand side,
        so two grids with equal fingerprints share one factorization
        in :mod:`repro.pdn.irdrop`.
        """
        return (self.rows, self.cols, self._segment_resistance,
                tuple(sorted(self.node_index(*pad)
                             for pad in self.pads)))

    def total_load_a(self) -> float:
        """Sum of all attached load currents."""
        return sum(self.loads_a.values())

    def _check_address(self, row: int, col: int) -> NodeAddress:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise SimulationError(
                f"node ({row}, {col}) outside {self.rows}x{self.cols} grid")
        return (row, col)
