"""Power-delivery-network (PDN) substrate.

The paper singles out the PDN as the EM-critical structure ("EM is
especially critical for power delivery networks in modern ICs") and
its Fig. 11 shows the assist circuitry protecting the *local* VDD/VSS
grids, which use thin lower-level metal and carry unidirectional DC
current.  This package provides:

* :class:`~repro.pdn.grid.PdnGrid` -- a rectangular resistive power
  grid with pads (voltage sources) and block load currents;
* IR-drop solving and per-segment current densities
  (:mod:`repro.pdn.irdrop`), which feed the EM models to find the
  segments that need recovery first.
"""

from repro.pdn.grid import GridSegment, PdnGrid
from repro.pdn.irdrop import IrDropSolution, solve_ir_drop, \
    solve_ir_drop_batch

__all__ = [
    "PdnGrid",
    "GridSegment",
    "IrDropSolution",
    "solve_ir_drop",
    "solve_ir_drop_batch",
]
