"""IR-drop solving and EM exposure analysis for power grids.

The grid is a linear resistive network: pads are ideal supplies, loads
are ideal current sinks.  The nodal system ``G v = i`` is assembled
sparse (a grid node couples only to its four neighbours) and LU
factored once per grid *topology* -- the factorization is cached by
:meth:`repro.pdn.grid.PdnGrid.matrix_fingerprint`, so re-solving the
same grid under a new load pattern (the system simulator's per-epoch
case) is a single sparse back-substitution, and
:func:`solve_ir_drop_batch` solves many load patterns in one batched
call.  The solution exposes exactly what the EM substrate needs:
per-segment currents and current densities, and the worst (most
EM-exposed) segments that the assist circuitry of Fig. 11 is meant to
protect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np
import scipy.sparse

from repro.em.line import EmStressCondition
from repro.em.lumped import LumpedEmModel
from repro.em.wire import Wire
from repro.errors import SimulationError
from repro.pdn.grid import GridSegment, NodeAddress, PdnGrid
from repro.solvers import FactorizationCache, SparseLuOperator

#: Cached nodal-matrix factorizations, keyed by grid fingerprint.
_OPERATORS = FactorizationCache(maxsize=8, name="pdn.lu")


@dataclass(frozen=True)
class IrDropSolution:
    """A solved power grid.

    Attributes:
        grid: the analysed grid.
        node_voltages_v: node voltages in node-index order.
        segment_currents_a: signed current per segment, in
            :meth:`repro.pdn.grid.PdnGrid.segments` order (positive
            from ``a`` to ``b``).
    """

    grid: PdnGrid
    node_voltages_v: np.ndarray
    segment_currents_a: np.ndarray

    def voltage_at(self, row: int, col: int) -> float:
        """Voltage of a grid node."""
        return float(self.node_voltages_v[self.grid.node_index(row, col)])

    def worst_drop_v(self) -> float:
        """Largest IR drop below the supply anywhere in the grid."""
        return float(self.grid.supply_v - self.node_voltages_v.min())

    def segment_report(self) -> List[Tuple[GridSegment, float, float]]:
        """Per segment: ``(segment, current_a, density_a_m2)``."""
        report = []
        for segment, current in zip(self.grid.segments(),
                                    self.segment_currents_a):
            report.append((segment, float(current),
                           segment.current_density(float(current))))
        return report

    def most_stressed_segments(self, count: int = 5
                               ) -> List[Tuple[GridSegment, float]]:
        """The ``count`` segments with the highest |current density|."""
        report = [(segment, abs(density))
                  for segment, _current, density in self.segment_report()]
        report.sort(key=lambda item: item[1], reverse=True)
        return report[:count]

    def em_exposure(self, temperature_k: float,
                    count: int = 5) -> List[Tuple[GridSegment, float]]:
        """Nucleation-time estimate of the ``count`` worst segments.

        Each segment is treated as a blocked-end line of its own
        geometry; returns ``(segment, nucleation_time_s)`` sorted most
        critical first.
        """
        exposure = []
        for segment, density in self.most_stressed_segments(count):
            wire = Wire(
                material=self.grid.material,
                length_m=segment.length_m,
                width_m=segment.width_m,
                thickness_m=segment.thickness_m,
                fresh_resistance_ohm=segment.resistance_ohm,
                name="pdn-segment")
            model = LumpedEmModel(wire)
            condition = EmStressCondition(
                current_density_a_m2=density,
                temperature_k=temperature_k,
                name="pdn-segment stress")
            exposure.append((segment, model.nucleation_time(condition)))
        exposure.sort(key=lambda item: item[1])
        return exposure


def _grid_operator(grid: PdnGrid) -> SparseLuOperator:
    """The factorized nodal matrix of a grid (cached by topology)."""
    index_a, index_b, conductance = grid.segment_index_arrays()
    pad_index = np.asarray(sorted(grid.node_index(*pad)
                                  for pad in grid.pads), dtype=np.intp)

    def build() -> SparseLuOperator:
        n = grid.n_nodes
        rows = np.concatenate([index_a, index_b, index_a, index_b])
        cols = np.concatenate([index_a, index_b, index_b, index_a])
        values = np.concatenate([conductance, conductance,
                                 -conductance, -conductance])
        # Pads: overwrite with Dirichlet rows (v = supply).
        keep = ~np.isin(rows, pad_index)
        rows = np.concatenate([rows[keep], pad_index])
        cols = np.concatenate([cols[keep], pad_index])
        values = np.concatenate([values[keep],
                                 np.ones(len(pad_index))])
        matrix = scipy.sparse.coo_matrix((values, (rows, cols)),
                                         shape=(n, n)).tocsc()
        return SparseLuOperator(matrix)

    return _OPERATORS.get_or_build(grid.matrix_fingerprint(), build)


def _load_rhs(grid: PdnGrid,
              loads_a: Mapping[NodeAddress, float]) -> np.ndarray:
    """Nodal current RHS for one load pattern (pads pinned to supply)."""
    current = np.zeros(grid.n_nodes)
    for address, amps in loads_a.items():
        current[grid.node_index(*address)] -= amps
    for address in grid.pads:
        current[grid.node_index(*address)] = grid.supply_v
    return current


def _segment_currents(grid: PdnGrid,
                      voltages: np.ndarray) -> np.ndarray:
    """Vectorized gather of per-segment currents from node voltages."""
    index_a, index_b, conductance = grid.segment_index_arrays()
    return (voltages[index_a] - voltages[index_b]) * conductance


def solve_ir_drop(grid: PdnGrid) -> IrDropSolution:
    """Solve the nodal voltages and segment currents of a power grid.

    Raises:
        SimulationError: if the grid has no pads (floating network).
    """
    if not grid.pads:
        raise SimulationError("grid has no pads; the network is floating")
    operator = _grid_operator(grid)
    voltages = operator.solve(_load_rhs(grid, grid.loads_a))
    return IrDropSolution(grid, voltages, _segment_currents(grid, voltages))


def solve_ir_drop_batch(grid: PdnGrid,
                        load_patterns: Sequence[Mapping[NodeAddress,
                                                        float]]
                        ) -> List[IrDropSolution]:
    """Solve one grid under many load patterns in a single batch.

    All patterns share the grid's cached factorization and are
    back-substituted as one multi-column RHS -- the per-epoch re-solve
    path of the system simulator and the Monte Carlo load sweeps.
    The grid's own attached loads are ignored; each pattern fully
    specifies its load map.

    Raises:
        SimulationError: if the grid has no pads (floating network).
    """
    if not grid.pads:
        raise SimulationError("grid has no pads; the network is floating")
    if not load_patterns:
        return []
    operator = _grid_operator(grid)
    rhs = np.column_stack([_load_rhs(grid, pattern)
                           for pattern in load_patterns])
    voltages = operator.solve(rhs)
    return [IrDropSolution(grid, voltages[:, k],
                           _segment_currents(grid, voltages[:, k]))
            for k in range(voltages.shape[1])]
