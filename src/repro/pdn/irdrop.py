"""IR-drop solving and EM exposure analysis for power grids.

The grid is a linear resistive network: pads are ideal supplies, loads
are ideal current sinks.  The nodal system ``G v = i`` is solved
directly (grids of a few thousand nodes are comfortably dense-solvable;
the paper's local grids are far smaller).  The solution exposes exactly
what the EM substrate needs: per-segment currents and current
densities, and the worst (most EM-exposed) segments that the assist
circuitry of Fig. 11 is meant to protect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.em.line import EmStressCondition
from repro.em.lumped import LumpedEmModel
from repro.em.wire import Wire
from repro.errors import SimulationError
from repro.pdn.grid import GridSegment, NodeAddress, PdnGrid


@dataclass(frozen=True)
class IrDropSolution:
    """A solved power grid.

    Attributes:
        grid: the analysed grid.
        node_voltages_v: node voltages in node-index order.
        segment_currents_a: signed current per segment, in
            :meth:`repro.pdn.grid.PdnGrid.segments` order (positive
            from ``a`` to ``b``).
    """

    grid: PdnGrid
    node_voltages_v: np.ndarray
    segment_currents_a: np.ndarray

    def voltage_at(self, row: int, col: int) -> float:
        """Voltage of a grid node."""
        return float(self.node_voltages_v[self.grid.node_index(row, col)])

    def worst_drop_v(self) -> float:
        """Largest IR drop below the supply anywhere in the grid."""
        return float(self.grid.supply_v - self.node_voltages_v.min())

    def segment_report(self) -> List[Tuple[GridSegment, float, float]]:
        """Per segment: ``(segment, current_a, density_a_m2)``."""
        report = []
        for segment, current in zip(self.grid.segments(),
                                    self.segment_currents_a):
            report.append((segment, float(current),
                           segment.current_density(float(current))))
        return report

    def most_stressed_segments(self, count: int = 5
                               ) -> List[Tuple[GridSegment, float]]:
        """The ``count`` segments with the highest |current density|."""
        report = [(segment, abs(density))
                  for segment, _current, density in self.segment_report()]
        report.sort(key=lambda item: item[1], reverse=True)
        return report[:count]

    def em_exposure(self, temperature_k: float,
                    count: int = 5) -> List[Tuple[GridSegment, float]]:
        """Nucleation-time estimate of the ``count`` worst segments.

        Each segment is treated as a blocked-end line of its own
        geometry; returns ``(segment, nucleation_time_s)`` sorted most
        critical first.
        """
        exposure = []
        for segment, density in self.most_stressed_segments(count):
            wire = Wire(
                material=self.grid.material,
                length_m=segment.length_m,
                width_m=segment.width_m,
                thickness_m=segment.thickness_m,
                fresh_resistance_ohm=segment.resistance_ohm,
                name="pdn-segment")
            model = LumpedEmModel(wire)
            condition = EmStressCondition(
                current_density_a_m2=density,
                temperature_k=temperature_k,
                name="pdn-segment stress")
            exposure.append((segment, model.nucleation_time(condition)))
        exposure.sort(key=lambda item: item[1])
        return exposure


def solve_ir_drop(grid: PdnGrid) -> IrDropSolution:
    """Solve the nodal voltages and segment currents of a power grid.

    Raises:
        SimulationError: if the grid has no pads (floating network).
    """
    if not grid.pads:
        raise SimulationError("grid has no pads; the network is floating")
    n = grid.n_nodes
    conductance = np.zeros((n, n))
    current = np.zeros(n)
    segments = list(grid.segments())
    for segment in segments:
        i = grid.node_index(*segment.a)
        j = grid.node_index(*segment.b)
        g = 1.0 / segment.resistance_ohm
        conductance[i, i] += g
        conductance[j, j] += g
        conductance[i, j] -= g
        conductance[j, i] -= g
    for address, amps in grid.loads_a.items():
        current[grid.node_index(*address)] -= amps
    # Pads: overwrite with Dirichlet rows (v = supply).
    for address in grid.pads:
        index = grid.node_index(*address)
        conductance[index, :] = 0.0
        conductance[index, index] = 1.0
        current[index] = grid.supply_v
    voltages = np.linalg.solve(conductance, current)
    segment_currents = np.array([
        (voltages[grid.node_index(*segment.a)]
         - voltages[grid.node_index(*segment.b)]) / segment.resistance_ohm
        for segment in segments])
    return IrDropSolution(grid, voltages, segment_currents)
