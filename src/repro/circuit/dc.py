"""Newton-Raphson DC operating-point analysis with gmin stepping.

The solver assembles the MNA system at the current voltage estimate,
stamps linearized device companions, and iterates with a damped Newton
update.  If plain Newton fails (strongly nonlinear bias points), it
falls back to gmin stepping: a large conductance from every node to
ground is added and progressively relaxed, dragging the solution from
an almost-linear problem to the real one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.circuit.elements import MnaSystem
from repro.circuit.netlist import Circuit
from repro.errors import ConvergenceError
from repro.solvers import FactorizationCache, solve_dense_cached

#: Maximum Newton iterations per gmin level.
_MAX_ITERATIONS = 200

#: Content-keyed LU reuse across Newton iterations and time steps.
#: Linear (or converged) systems re-assemble an unchanged matrix, so
#: the factorization is amortized; re-linearized MOSFET stamps change
#: the matrix bytes and transparently refactor.  Shared with the
#: transient solver.
_LU_CACHE = FactorizationCache(maxsize=32)

#: Per-iteration clamp on node-voltage updates (volts).
_MAX_UPDATE_V = 0.3

#: Convergence tolerance on node voltages (volts).
_VOLTAGE_TOL = 1e-9


@dataclass(frozen=True)
class DcSolution:
    """A solved DC operating point.

    Attributes:
        circuit: the analysed netlist.
        solution: raw MNA vector (node voltages then branch currents).
        iterations: Newton iterations used (summed over gmin levels).
    """

    circuit: Circuit
    solution: np.ndarray
    iterations: int

    def voltage(self, node: str) -> float:
        """Voltage of a named node."""
        index = self.circuit.node(node)
        return float(self.solution[index]) if index >= 0 else 0.0

    def voltages(self) -> Dict[str, float]:
        """All node voltages keyed by name."""
        return {name: float(self.solution[self.circuit.node(name)])
                for name in self.circuit.node_names}

    def resistor_current(self, name: str) -> float:
        """Current through a named resistor (from its ``a`` to ``b``)."""
        return self.circuit.find_resistor(name).current(self.solution)

    def source_current(self, name: str) -> float:
        """Branch current of a named voltage source (out of ``pos``)."""
        return self.circuit.find_voltage_source(name).current(
            self.solution, self.circuit.n_nodes)

    def mosfet_current(self, name: str) -> float:
        """Drain-to-source current of a named MOSFET."""
        return self.circuit.find_mosfet(name).current(self.solution)


def _assemble(circuit: Circuit, estimate: np.ndarray,
              gmin: float) -> MnaSystem:
    system = MnaSystem(circuit.n_nodes, len(circuit.voltage_sources))
    for resistor in circuit.resistors:
        resistor.stamp(system)
    for source in circuit.voltage_sources:
        source.stamp(system)
    for source in circuit.current_sources:
        source.stamp(system)
    for mosfet in circuit.mosfets:
        mosfet.stamp(system, estimate)
    if gmin > 0.0:
        for node in range(circuit.n_nodes):
            system.matrix[node, node] += gmin
    return system


def _newton(circuit: Circuit, estimate: np.ndarray, gmin: float
            ) -> Tuple[Optional[np.ndarray], int]:
    """Damped Newton at a fixed gmin: (solution or None, iterations)."""
    x = estimate.copy()
    n_nodes = circuit.n_nodes
    for iteration in range(1, _MAX_ITERATIONS + 1):
        system = _assemble(circuit, x, gmin)
        try:
            target = solve_dense_cached(system.matrix, system.rhs,
                                        _LU_CACHE)
        except np.linalg.LinAlgError:
            return None, iteration
        if not np.all(np.isfinite(target)):
            return None, iteration
        delta = target - x
        max_step = float(np.abs(delta[:n_nodes]).max()) if n_nodes else 0.0
        if max_step > _MAX_UPDATE_V:
            x = x + (_MAX_UPDATE_V / max_step) * delta
            continue
        x = target
        if max_step <= _VOLTAGE_TOL:
            return x, iteration
    return None, _MAX_ITERATIONS


def dc_operating_point(circuit: Circuit,
                       initial_guess: Optional[np.ndarray] = None
                       ) -> DcSolution:
    """Solve the DC operating point of a circuit.

    Args:
        circuit: the netlist to analyse.
        initial_guess: optional starting MNA vector (e.g. the previous
            transient step), which speeds up and stabilizes Newton.

    Returns:
        The converged :class:`DcSolution`.

    Raises:
        ConvergenceError: if Newton fails even with gmin stepping.
    """
    size = circuit.n_unknowns
    if initial_guess is not None and initial_guess.shape == (size,):
        estimate = initial_guess.copy()
    else:
        estimate = np.zeros(size)

    solution, iterations = _newton(circuit, estimate, gmin=0.0)
    if solution is not None:
        return DcSolution(circuit, solution, iterations)

    # gmin stepping: solve a heavily damped problem first, then relax.
    total_iterations = iterations
    for exponent in range(3, 13):
        gmin = 10.0 ** (-exponent)
        stepped, used = _newton(circuit, estimate, gmin=gmin)
        total_iterations += used
        if stepped is None:
            break
        estimate = stepped
    solution, used = _newton(circuit, estimate, gmin=0.0)
    total_iterations += used
    if solution is None:
        raise ConvergenceError(
            f"DC analysis of {circuit.title!r} failed to converge")
    return DcSolution(circuit, solution, total_iterations)
