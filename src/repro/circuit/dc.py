"""Newton-Raphson DC operating-point analysis with gmin stepping.

The solver linearizes the netlist at the current voltage estimate and
iterates with a damped Newton update.  If plain Newton fails (strongly
nonlinear bias points), it falls back to gmin stepping: a large
conductance from every node to ground is added and progressively
relaxed, dragging the solution from an almost-linear problem to the
real one.

Assembly and the linearized solves run through a
:class:`~repro.circuit.compiled.CompiledCircuit` -- the netlist is
flattened once into scatter-ready stamp arrays and each Newton
iteration costs one vectorized device evaluation plus one (cached)
dense LU solve, instead of the seed engine's per-element Python
stamping loop.  The iteration path is bit-identical to the seed's
(same damping, tolerances and gmin ladder), which
``tests/test_circuit_compiled.py`` checks against the verbatim replica
in ``benchmarks/seed_circuit.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.circuit.compiled import (
    CompiledCircuit,
    MAX_ITERATIONS as _MAX_ITERATIONS,
    MAX_UPDATE_V as _MAX_UPDATE_V,
    VOLTAGE_TOL as _VOLTAGE_TOL,
)
from repro.circuit.netlist import Circuit
from repro.errors import ConvergenceError

__all__ = ["DcSolution", "dc_operating_point"]


@dataclass(frozen=True)
class DcSolution:
    """A solved DC operating point.

    Attributes:
        circuit: the analysed netlist.
        solution: raw MNA vector (node voltages then branch currents).
        iterations: Newton iterations used (summed over gmin levels).
    """

    circuit: Circuit
    solution: np.ndarray
    iterations: int

    def voltage(self, node: str) -> float:
        """Voltage of a named node."""
        index = self.circuit.node(node)
        return float(self.solution[index]) if index >= 0 else 0.0

    def voltages(self) -> Dict[str, float]:
        """All node voltages keyed by name."""
        return {name: float(self.solution[self.circuit.node(name)])
                for name in self.circuit.node_names}

    def resistor_current(self, name: str) -> float:
        """Current through a named resistor (from its ``a`` to ``b``)."""
        return self.circuit.find_resistor(name).current(self.solution)

    def source_current(self, name: str) -> float:
        """Branch current of a named voltage source (out of ``pos``)."""
        return self.circuit.find_voltage_source(name).current(
            self.solution, self.circuit.n_nodes)

    def mosfet_current(self, name: str) -> float:
        """Drain-to-source current of a named MOSFET."""
        return self.circuit.find_mosfet(name).current(self.solution)


def dc_operating_point(circuit: Circuit,
                       initial_guess: Optional[np.ndarray] = None,
                       program: Optional[CompiledCircuit] = None
                       ) -> DcSolution:
    """Solve the DC operating point of a circuit.

    Args:
        circuit: the netlist to analyse.
        initial_guess: optional starting MNA vector (e.g. the previous
            transient step), which speeds up and stabilizes Newton.
        program: optional pre-built compiled program for ``circuit``
            (lets a caller that already flattened the netlist -- e.g.
            the transient driver -- reuse its stamp arrays and LU
            cache).  Built fresh when omitted, so any mutated source
            values or aged device parameters are picked up.

    Returns:
        The converged :class:`DcSolution`.

    Raises:
        ConvergenceError: if Newton fails even with gmin stepping.
    """
    if program is None:
        program = CompiledCircuit(circuit)
    rhs = program.static_rhs()
    size = circuit.n_unknowns
    if initial_guess is not None and initial_guess.shape == (size,):
        estimate = initial_guess.copy()
    else:
        estimate = np.zeros(size)

    solution, iterations = program.newton(estimate, rhs, gmin=0.0)
    if solution is not None:
        return DcSolution(circuit, solution, iterations)

    # gmin stepping: solve a heavily damped problem first, then relax.
    total_iterations = iterations
    for exponent in range(3, 13):
        gmin = 10.0 ** (-exponent)
        stepped, used = program.newton(estimate, rhs, gmin=gmin)
        total_iterations += used
        if stepped is None:
            break
        estimate = stepped
    solution, used = program.newton(estimate, rhs, gmin=0.0)
    total_iterations += used
    if solution is None:
        raise ConvergenceError(
            f"DC analysis of {circuit.title!r} failed to converge")
    return DcSolution(circuit, solution, total_iterations)
