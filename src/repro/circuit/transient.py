"""Backward-Euler transient analysis with time-varying sources.

Capacitors are replaced per step by their backward-Euler companion
(conductance ``C/dt`` plus a history current source); the resulting
resistive nonlinear network is solved with the same damped Newton used
for DC.  Source waveforms are supplied as callables ``f(t) -> value``
keyed by element name, which is how the assist-circuit benches drive
the mode-control gate signals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.solvers import solve_dense_cached
from repro.circuit.dc import _LU_CACHE, _MAX_ITERATIONS, _MAX_UPDATE_V, \
    _VOLTAGE_TOL, _assemble, dc_operating_point
from repro.circuit.netlist import Circuit
from repro.errors import ConvergenceError

#: A source waveform: maps time (s) to the source value (V or A).
Waveform = Callable[[float], float]


@dataclass(frozen=True)
class TransientResult:
    """Waveforms from a transient run.

    Attributes:
        circuit: the analysed netlist.
        times_s: time points (including t = 0).
        solutions: MNA vectors, one row per time point.
    """

    circuit: Circuit
    times_s: np.ndarray
    solutions: np.ndarray

    def voltage(self, node: str) -> np.ndarray:
        """Waveform of a named node voltage."""
        index = self.circuit.node(node)
        if index < 0:
            return np.zeros(len(self.times_s))
        return self.solutions[:, index].copy()

    def resistor_current(self, name: str) -> np.ndarray:
        """Current waveform through a named resistor (a -> b)."""
        element = self.circuit.find_resistor(name)
        return np.array([element.current(row) for row in self.solutions])

    def source_current(self, name: str) -> np.ndarray:
        """Branch-current waveform of a named voltage source."""
        element = self.circuit.find_voltage_source(name)
        return self.solutions[:, self.circuit.n_nodes
                              + element.branch].copy()

    def final_voltages(self) -> Dict[str, float]:
        """Node voltages at the last time point."""
        return {name: float(self.solutions[-1, self.circuit.node(name)])
                for name in self.circuit.node_names}

    def settle_time(self, node: str, target_v: float,
                    tolerance_v: float = 0.02) -> float:
        """First time after which the node stays within the tolerance.

        Used by the Fig. 10 study to measure mode-switching time.
        Returns ``inf`` if the node never settles.
        """
        wave = self.voltage(node)
        within = np.abs(wave - target_v) <= tolerance_v
        # Find the earliest index from which `within` holds to the end.
        if not within[-1]:
            return float("inf")
        idx = len(within) - 1
        while idx > 0 and within[idx - 1]:
            idx -= 1
        return float(self.times_s[idx])


def _solve_step(circuit: Circuit, estimate: np.ndarray,
                dt: float) -> np.ndarray:
    """One backward-Euler step: Newton on the companion network."""
    x = estimate.copy()
    n_nodes = circuit.n_nodes
    for _ in range(_MAX_ITERATIONS):
        system = _assemble(circuit, x, gmin=0.0)
        for capacitor in circuit.capacitors:
            capacitor.stamp_transient(system, dt)
        try:
            target = solve_dense_cached(system.matrix, system.rhs,
                                        _LU_CACHE)
        except np.linalg.LinAlgError as exc:
            raise ConvergenceError(
                f"transient step of {circuit.title!r} is singular") from exc
        delta = target - x
        max_step = float(np.abs(delta[:n_nodes]).max()) if n_nodes else 0.0
        if max_step > _MAX_UPDATE_V:
            x = x + (_MAX_UPDATE_V / max_step) * delta
            continue
        x = target
        if max_step <= _VOLTAGE_TOL:
            return x
    raise ConvergenceError(
        f"transient step of {circuit.title!r} failed to converge")


def transient(circuit: Circuit, stop_s: float, dt_s: float,
              waveforms: Optional[Dict[str, Waveform]] = None,
              from_dc: bool = True) -> TransientResult:
    """Run a fixed-step backward-Euler transient analysis.

    Args:
        circuit: the netlist; capacitor states are mutated in place
            (their final voltages remain available afterwards).
        stop_s: simulation end time.
        dt_s: fixed time step.
        waveforms: optional per-source waveforms, keyed by voltage- or
            current-source name; sources without a waveform keep their
            static value.
        from_dc: start from the DC operating point with waveforms
            evaluated at t = 0 (otherwise start from all-zero state).

    Returns:
        The collected :class:`TransientResult`.
    """
    if stop_s <= 0.0 or dt_s <= 0.0:
        raise ValueError("stop_s and dt_s must be positive")
    waveforms = waveforms or {}
    sources_by_name = {source.name: source
                       for source in circuit.voltage_sources}
    sources_by_name.update({source.name: source
                            for source in circuit.current_sources})
    for name in waveforms:
        if name not in sources_by_name:
            raise ConvergenceError(f"no source named {name!r} to drive")

    def apply_waveforms(t: float) -> None:
        for name, waveform in waveforms.items():
            source = sources_by_name[name]
            if hasattr(source, "volts"):
                source.volts = float(waveform(t))
            else:
                source.amps = float(waveform(t))

    apply_waveforms(0.0)
    if from_dc:
        x = dc_operating_point(circuit).solution
    else:
        x = np.zeros(circuit.n_unknowns)
    for capacitor in circuit.capacitors:
        capacitor.update_state(x)

    n_steps = int(round(stop_s / dt_s))
    times = np.linspace(0.0, n_steps * dt_s, n_steps + 1)
    solutions = np.empty((n_steps + 1, circuit.n_unknowns))
    solutions[0] = x
    for step in range(1, n_steps + 1):
        apply_waveforms(times[step])
        x = _solve_step(circuit, x, dt_s)
        for capacitor in circuit.capacitors:
            capacitor.update_state(x)
        solutions[step] = x
    return TransientResult(circuit, times, solutions)
