"""Backward-Euler transient analysis with time-varying sources.

Capacitors are replaced per step by their backward-Euler companion
(conductance ``C/dt`` plus a history current source); the resulting
resistive nonlinear network is solved with the same damped Newton used
for DC.  Source waveforms are supplied as callables ``f(t) -> value``
keyed by element name, which is how the assist-circuit benches drive
the mode-control gate signals.

The run executes on a :class:`~repro.circuit.compiled.CompiledCircuit`
program: every source waveform is evaluated over the whole time grid
up front (one vectorized call per array-aware waveform, a scalar loop
otherwise) and folded into a per-step RHS grid, the capacitor
companion conductances for the fixed ``dt`` become one precomputed
flat stamp, and each Newton iteration is a single vectorized device
evaluation plus a cached dense LU solve.  The produced waveforms are
bit-compatible with the seed engine's per-step Python stamping loop
(kept verbatim in ``benchmarks/seed_circuit.py``), including the final
mutated netlist state: driven sources end at their last waveform value
and capacitors at their last solved voltage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from repro.circuit.compiled import CompiledCircuit, evaluate_waveform_grid
from repro.circuit.dc import dc_operating_point
from repro.circuit.netlist import Circuit

#: A source waveform: maps time (s) to the source value (V or A).
#: Array-aware waveforms (``f(times) -> values``) are evaluated in one
#: vectorized call over the whole run.
Waveform = Callable[[float], float]


@dataclass(frozen=True)
class TransientResult:
    """Waveforms from a transient run.

    Attributes:
        circuit: the analysed netlist.
        times_s: time points (including t = 0).
        solutions: MNA vectors, one row per time point.
    """

    circuit: Circuit
    times_s: np.ndarray
    solutions: np.ndarray

    def voltage(self, node: str) -> np.ndarray:
        """Waveform of a named node voltage."""
        index = self.circuit.node(node)
        if index < 0:
            return np.zeros(len(self.times_s))
        return self.solutions[:, index].copy()

    def resistor_current(self, name: str) -> np.ndarray:
        """Current waveform through a named resistor (a -> b)."""
        element = self.circuit.find_resistor(name)
        va = self.solutions[:, element.a] if element.a >= 0 else 0.0
        vb = self.solutions[:, element.b] if element.b >= 0 else 0.0
        return (va - vb) / element.ohms

    def source_current(self, name: str) -> np.ndarray:
        """Branch-current waveform of a named voltage source."""
        element = self.circuit.find_voltage_source(name)
        return self.solutions[:, self.circuit.n_nodes
                              + element.branch].copy()

    def final_voltages(self) -> Dict[str, float]:
        """Node voltages at the last time point."""
        return {name: float(self.solutions[-1, self.circuit.node(name)])
                for name in self.circuit.node_names}

    def settle_time(self, node: str, target_v: float,
                    tolerance_v: float = 0.02) -> float:
        """First time after which the node stays within the tolerance.

        Used by the Fig. 10 study to measure mode-switching time.
        Returns ``inf`` if the node never settles.
        """
        wave = self.voltage(node)
        within = np.abs(wave - target_v) <= tolerance_v
        if not within[-1]:
            return float("inf")
        # The trailing all-within run starts right after the last
        # out-of-tolerance sample (at 0 if the node never left).
        outside = np.nonzero(~within)[0]
        idx = int(outside[-1]) + 1 if outside.size else 0
        return float(self.times_s[idx])


def _apply_grid_values(sources_by_name: Dict[str, object],
                       grids: Dict[str, np.ndarray], step: int) -> None:
    """Write the step's waveform values onto the driven sources."""
    for name, grid in grids.items():
        source = sources_by_name[name]
        value = float(grid[step])
        if hasattr(source, "volts"):
            source.volts = value
        else:
            source.amps = value


def transient(circuit: Circuit, stop_s: float, dt_s: float,
              waveforms: Optional[Dict[str, Waveform]] = None,
              from_dc: bool = True) -> TransientResult:
    """Run a fixed-step backward-Euler transient analysis.

    Args:
        circuit: the netlist; capacitor states are mutated in place
            (their final voltages remain available afterwards).
        stop_s: simulation end time.
        dt_s: fixed time step.
        waveforms: optional per-source waveforms, keyed by voltage- or
            current-source name; sources without a waveform keep their
            static value.
        from_dc: start from the DC operating point with waveforms
            evaluated at t = 0 (otherwise start from all-zero state).

    Returns:
        The collected :class:`TransientResult`.

    Raises:
        ValueError: for invalid timing or an unknown waveform name.
        ConvergenceError: if a time step fails to converge.
    """
    if stop_s <= 0.0 or dt_s <= 0.0:
        raise ValueError("stop_s and dt_s must be positive")
    waveforms = waveforms or {}
    sources_by_name = {source.name: source
                       for source in circuit.voltage_sources}
    sources_by_name.update({source.name: source
                            for source in circuit.current_sources})
    for name in waveforms:
        if name not in sources_by_name:
            raise ValueError(f"no source named {name!r} to drive")

    n_steps = int(round(stop_s / dt_s))
    times = np.linspace(0.0, n_steps * dt_s, n_steps + 1)
    grids = {name: evaluate_waveform_grid(waveform, times)
             for name, waveform in waveforms.items()}

    # The t=0 values go onto the sources before the program is built,
    # so both the compiled RHS grid and the DC start see them.
    _apply_grid_values(sources_by_name, grids, 0)
    program = CompiledCircuit(circuit)
    if from_dc:
        x = dc_operating_point(circuit, program=program).solution
    else:
        x = np.zeros(circuit.n_unknowns)
    for capacitor in circuit.capacitors:
        capacitor.update_state(x)

    solutions = np.empty((n_steps + 1, circuit.n_unknowns))
    solutions[0] = x
    rhs_grid = program.rhs_grid(grids, n_steps)
    cap_g = program.cap_conductances(dt_s)
    for step in range(1, n_steps + 1):
        x = program.solve_step(x, rhs_grid[step], dt_s, cap_g)
        solutions[step] = x

    # Leave the netlist in the same state the per-step seed loop did:
    # sources at their final waveform values, capacitors at their last
    # solved voltages.
    _apply_grid_values(sources_by_name, grids, n_steps)
    for capacitor in circuit.capacitors:
        capacitor.update_state(x)
    return TransientResult(circuit, times, solutions)
