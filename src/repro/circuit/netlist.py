"""Netlist container: named nodes, named elements, index bookkeeping.

Nodes are arbitrary strings; :data:`GROUND` (``"gnd"``, with ``"0"``
accepted as an alias) is the reference node and is not given a matrix
index.  Elements are added through typed ``add_*`` helpers that also
reject duplicate names, so a mistyped netlist fails loudly at build
time rather than producing a singular matrix later.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from repro.errors import NetlistError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.circuit.compiled import CompiledCircuit
    from repro.circuit.elements import (
        Capacitor, CurrentSource, Resistor, VoltageSource)
    from repro.circuit.mosfet import Mosfet

#: Canonical name of the reference node.
GROUND = "gnd"

_GROUND_ALIASES = {GROUND, "0", "GND", "vss!"}


class Circuit:
    """A flat netlist of elements connecting named nodes."""

    def __init__(self, title: str = "circuit"):
        self.title = title
        self.resistors: List["Resistor"] = []
        self.capacitors: List["Capacitor"] = []
        self.voltage_sources: List["VoltageSource"] = []
        self.current_sources: List["CurrentSource"] = []
        self.mosfets: List["Mosfet"] = []
        self._node_index: Dict[str, int] = {}
        self._names: set = set()

    # -- node management ---------------------------------------------------

    def node(self, name: str) -> int:
        """Matrix index of a node, creating it on first use (-1 = ground)."""
        if name in _GROUND_ALIASES:
            return -1
        if name not in self._node_index:
            self._node_index[name] = len(self._node_index)
        return self._node_index[name]

    @property
    def node_names(self) -> List[str]:
        """All non-ground node names in index order."""
        return sorted(self._node_index, key=self._node_index.get)

    @property
    def n_nodes(self) -> int:
        """Number of non-ground nodes."""
        return len(self._node_index)

    def _register(self, name: str) -> None:
        if name in self._names:
            raise NetlistError(f"duplicate element name {name!r}")
        self._names.add(name)

    # -- element helpers ---------------------------------------------------

    def add_resistor(self, name: str, a: str, b: str,
                     ohms: float) -> "Resistor":
        """Add a two-terminal resistor between nodes ``a`` and ``b``."""
        from repro.circuit.elements import Resistor
        self._register(name)
        element = Resistor(name, self.node(a), self.node(b), ohms)
        self.resistors.append(element)
        return element

    def add_capacitor(self, name: str, a: str, b: str, farads: float,
                      initial_v: float = 0.0) -> "Capacitor":
        """Add a capacitor (open in DC, companion model in transient)."""
        from repro.circuit.elements import Capacitor
        self._register(name)
        element = Capacitor(name, self.node(a), self.node(b), farads,
                            initial_v)
        self.capacitors.append(element)
        return element

    def add_voltage_source(self, name: str, pos: str, neg: str,
                           volts: float) -> "VoltageSource":
        """Add an ideal voltage source (``pos`` - ``neg`` = ``volts``)."""
        from repro.circuit.elements import VoltageSource
        self._register(name)
        element = VoltageSource(name, self.node(pos), self.node(neg),
                                volts, branch=len(self.voltage_sources))
        self.voltage_sources.append(element)
        return element

    def add_current_source(self, name: str, a: str, b: str,
                           amps: float) -> "CurrentSource":
        """Add an ideal current source driving ``amps`` from ``a`` to ``b``."""
        from repro.circuit.elements import CurrentSource
        self._register(name)
        element = CurrentSource(name, self.node(a), self.node(b), amps)
        self.current_sources.append(element)
        return element

    def add_mosfet(self, name: str, drain: str, gate: str, source: str,
                   params: "MosfetParams") -> "Mosfet":
        """Add a three-terminal (body tied to source rail) MOSFET."""
        from repro.circuit.mosfet import Mosfet
        self._register(name)
        element = Mosfet(name, self.node(drain), self.node(gate),
                         self.node(source), params)
        self.mosfets.append(element)
        return element

    # -- lookups -----------------------------------------------------------

    def find_resistor(self, name: str) -> "Resistor":
        """The resistor with the given name."""
        for element in self.resistors:
            if element.name == name:
                return element
        raise NetlistError(f"no resistor named {name!r}")

    def find_voltage_source(self, name: str) -> "VoltageSource":
        """The voltage source with the given name."""
        for element in self.voltage_sources:
            if element.name == name:
                return element
        raise NetlistError(f"no voltage source named {name!r}")

    def find_mosfet(self, name: str) -> "Mosfet":
        """The MOSFET with the given name."""
        for element in self.mosfets:
            if element.name == name:
                return element
        raise NetlistError(f"no mosfet named {name!r}")

    @property
    def n_unknowns(self) -> int:
        """MNA system size: node voltages plus source branch currents."""
        return self.n_nodes + len(self.voltage_sources)

    def compile(self) -> "CompiledCircuit":
        """Flatten the netlist into a compiled MNA program.

        The program snapshots topology, element values and *current*
        source values; mutate the netlist afterwards and you must
        compile again (the analysis entry points do this for you).
        """
        from repro.circuit.compiled import CompiledCircuit
        return CompiledCircuit(self)
