"""Compiled MNA circuit programs: flat stamps, cached factors.

The seed engine re-stamped every element through Python method calls
(``MnaSystem`` dispatch, dataclass attribute walks, closure helpers)
on every Newton iteration of every time step -- ~115 us per iteration
on the assist circuit, almost all of it interpreter overhead.  A
:class:`CompiledCircuit` flattens the netlist once into index/value
arrays and runs each iteration through three compiled pieces:

* the **constant linear stamp** (resistor conductances and
  voltage-source connectivity) is assembled once into a base matrix;
* **nonlinear devices** become a flat parameter table plus
  precomputed scatter indices.  Per iteration they evaluate either
  through a lean scalar kernel (a tight loop of plain float
  arithmetic -- the profitable choice at MNA-scale device counts,
  where one numpy dispatch costs more than a whole device evaluation
  in C-float Python) or through the vectorized
  :class:`~repro.circuit.mosfet.MosfetBank` ufunc pass (the
  profitable choice for large banks).  Both kernels follow the exact
  scalar expression tree of :meth:`repro.circuit.mosfet.Mosfet.stamp`,
  so either way every produced bit matches the seed loop, and the
  resulting entries land in the matrix in the seed's per-cell
  accumulation order;
* the dense solve goes straight to LAPACK ``getrf``/``getrs`` (the
  same routines ``scipy.linalg.lu_factor``/``lu_solve`` wrap, minus
  the per-call wrapper overhead), behind a
  :class:`~repro.solvers.FactorizationCache` keyed on the *inputs*
  that determine the matrix: the packed device stamp values, ``gmin``
  and the ``dt`` selecting the capacitor companions.  Device biases
  quantize -- a settled or slowly-moving transient revisits a handful
  of distinct stamp-value patterns even while the solution drifts in
  its last bits -- so key hits skip assembly and factorization
  entirely and the iteration reduces to one back-substitution.

Transient runs additionally pre-evaluate every source waveform over
the whole time grid up front (:func:`evaluate_waveform_grid`) and
fold the values into a per-step RHS grid, replacing the seed's
per-step waveform callables and re-stamping.

Newton damping, tolerances and gmin stepping are byte-for-byte the
seed's control flow, so the engines converge along identical paths;
``benchmarks/test_circuit_engine.py`` asserts <= 1e-10 agreement on
whole waveforms against the verbatim seed replica (and the property
tests assert bit-level equality).
"""

from __future__ import annotations

import struct
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.circuit.mosfet import MosfetBank
from repro.circuit.netlist import Circuit
from repro.errors import ConvergenceError
from repro.solvers import DenseLuOperator, FactorizationCache

#: Maximum Newton iterations per gmin level (the seed's value).
MAX_ITERATIONS = 200

#: Per-iteration clamp on node-voltage updates (volts).
MAX_UPDATE_V = 0.3

#: Convergence tolerance on node voltages (volts).
VOLTAGE_TOL = 1e-9

#: Device count at which the ufunc bank overtakes the scalar kernel.
#: Below it, numpy dispatch (~0.5 us per op, ~50 ops per evaluation)
#: costs more than evaluating every device in plain float arithmetic.
VECTOR_MIN_DEVICES = 48


def _stamp_conductance(matrix: np.ndarray, a: int, b: int,
                       g: float) -> None:
    """Scalar conductance stamp (build-time only; seed cell order)."""
    if a >= 0:
        matrix[a, a] += g
    if b >= 0:
        matrix[b, b] += g
    if a >= 0 and b >= 0:
        matrix[a, b] -= g
        matrix[b, a] -= g


def _flatten_entries(rows: np.ndarray, cols: np.ndarray, size: int
                     ) -> Tuple[np.ndarray, np.ndarray]:
    """Compress (rows, cols) stamp slots into kept flat indices.

    ``rows``/``cols`` hold raw node indices (-1 = ground) in
    device-major order; a slot survives only when both endpoints are
    real nodes, matching the seed's ground skips.  Returns the flat
    matrix indices of the kept slots and the positions to ``take``
    from the device-major value buffer.
    """
    keep = (rows >= 0) & (cols >= 0)
    keep_flat = keep.reshape(-1)
    flat = (rows * size + cols).reshape(-1)
    return flat[keep_flat].astype(np.intp), np.flatnonzero(keep_flat)


class CompiledCircuit:
    """A netlist flattened into scatter-ready stamp arrays.

    Built fresh per analysis call (construction is microseconds next
    to any solve), so mutated source values, aged device parameters
    and added elements are always picked up -- there is no
    invalidation protocol to get wrong.

    Attributes:
        use_vector: when true, device evaluation runs through the
            vectorized :class:`MosfetBank` ufunc pass instead of the
            scalar kernel.  Defaults to ``n_mosfets >=
            VECTOR_MIN_DEVICES``; both kernels produce bit-identical
            stamps, so flipping it only changes speed.
    """

    def __init__(self, circuit: Circuit,
                 use_vector: Optional[bool] = None):
        self.circuit = circuit
        n_nodes = circuit.n_nodes
        size = n_nodes + len(circuit.voltage_sources)
        self.n_nodes = n_nodes
        self.n = size
        self.pad = size  # index of the always-zero ground slot

        # -- constant linear stamp (assembled once, seed cell order) --
        base = np.zeros((size, size))
        for resistor in circuit.resistors:
            _stamp_conductance(base, resistor.a, resistor.b,
                               resistor.conductance)
        for source in circuit.voltage_sources:
            row = n_nodes + source.branch
            if source.pos >= 0:
                base[source.pos, row] += 1.0
                base[row, source.pos] += 1.0
            if source.neg >= 0:
                base[source.neg, row] -= 1.0
                base[row, source.neg] -= 1.0
        self.base_matrix = base
        self.diag_flat = np.arange(n_nodes, dtype=np.intp) * (size + 1)

        # -- nonlinear devices: parameter table + scatter pattern --
        mosfets = circuit.mosfets
        self.n_mosfets = len(mosfets)
        if use_vector is None:
            use_vector = self.n_mosfets >= VECTOR_MIN_DEVICES
        self.use_vector = use_vector
        if mosfets:
            pad = self.pad

            def padded(node: int) -> int:
                return node if node >= 0 else pad

            # Flat per-device row for the scalar kernel: padded
            # terminal slots, raw drain/source indices for the RHS
            # companion current (-1 = skip), then model constants.
            self.device_table = [
                (padded(m.drain), padded(m.gate), padded(m.source),
                 m.drain, m.source,
                 -1.0 if m.params.polarity == "pmos" else 1.0,
                 m.params.vth_v, m.params.beta, m.params.lambda_per_v,
                 m.params.leak_s)
                for m in mosfets]
            self._pack = struct.Struct(f"{8 * self.n_mosfets}d").pack
            self.bank = MosfetBank(mosfets, pad)
            d = np.array([m.drain for m in mosfets])
            g = np.array([m.gate for m in mosfets])
            s = np.array([m.source for m in mosfets])
            # The eight Mosfet.stamp slots, in stamp order:
            #   (d,d)+gd (d,s)-gd (s,d)-gd (s,s)+gd
            #   (d,g)+gg (d,s)-gg (s,g)-gg (s,s)+gg
            rows = np.stack([d, d, s, s, d, d, s, s], axis=1)
            cols = np.stack([d, s, d, s, g, s, g, s], axis=1)
            self.mos_idx, self.mos_take = _flatten_entries(rows, cols,
                                                           size)
            # Companion-current slots: rhs[d] -= res, rhs[s] += res.
            rrows = np.stack([d, s], axis=1)
            rkeep = (rrows >= 0).reshape(-1)
            self.res_idx = rrows.reshape(-1)[rkeep].astype(np.intp)
            self.res_take = np.flatnonzero(rkeep)
            self._stamp_buf = np.empty((self.n_mosfets, 8))
            self._res_buf = np.empty((self.n_mosfets, 2))
        else:
            self.bank = None
            self.device_table = []

        # -- capacitor companion tables --------------------------------
        capacitors = circuit.capacitors
        self.n_capacitors = len(capacitors)
        if capacitors:
            a = np.array([c.a for c in capacitors])
            b = np.array([c.b for c in capacitors])
            self.cap_farads = np.array([c.farads for c in capacitors])
            # Conductance slots in add_conductance order:
            #   (a,a)+g (b,b)+g (a,b)-g (b,a)-g
            rows = np.stack([a, b, a, b], axis=1)
            cols = np.stack([a, b, b, a], axis=1)
            signs = np.tile(np.array([1.0, 1.0, -1.0, -1.0]),
                            (self.n_capacitors, 1))
            capi = np.tile(np.arange(self.n_capacitors)[:, None],
                           (1, 4))
            keep = ((rows >= 0) & (cols >= 0)).reshape(-1)
            flat = (rows * size + cols).reshape(-1)
            self.cap_mat_idx = flat[keep].astype(np.intp)
            self.cap_mat_sign = signs.reshape(-1)[keep]
            self.cap_mat_capi = capi.reshape(-1)[keep]
            # Scalar-path table: padded terminals for v_old, raw
            # terminals for the history-current RHS slots.
            self.cap_table = [
                (c.a if c.a >= 0 else self.pad,
                 c.b if c.b >= 0 else self.pad,
                 c.b, c.a, c.farads)
                for c in capacitors]
            self.cap_a = np.array(
                [ci if ci >= 0 else self.pad for ci in a],
                dtype=np.intp)
            self.cap_b = np.array(
                [ci if ci >= 0 else self.pad for ci in b],
                dtype=np.intp)
            # Vector-path history-current scatter.
            rrows = np.stack([b, a], axis=1)
            rsigns = np.tile(np.array([-1.0, 1.0]),
                             (self.n_capacitors, 1))
            rkeep = (rrows >= 0).reshape(-1)
            self.cap_rhs_idx = rrows.reshape(-1)[rkeep].astype(np.intp)
            self.cap_rhs_sign = rsigns.reshape(-1)[rkeep]
            self.cap_rhs_capi = capi[:, :2].reshape(-1)[rkeep]

        self._x_pad = np.zeros(size + 1)
        self._lu_cache = FactorizationCache(maxsize=32, name="circuit.lu")

    # -- right-hand sides ----------------------------------------------

    def static_rhs(self) -> np.ndarray:
        """RHS from the current source values (seed cell order)."""
        rhs = np.zeros(self.n)
        n_nodes = self.n_nodes
        for source in self.circuit.voltage_sources:
            rhs[n_nodes + source.branch] += source.volts
        for source in self.circuit.current_sources:
            if source.a >= 0:
                rhs[source.a] -= source.amps
            if source.b >= 0:
                rhs[source.b] += source.amps
        return rhs

    def rhs_grid(self, value_grids: dict, n_steps: int) -> np.ndarray:
        """Per-step source RHS rows for a whole transient run.

        ``value_grids`` maps a driven source name to its pre-evaluated
        value grid over all time points; undriven sources contribute
        their static value to every row.  One vectorized pass per
        source replaces the seed's per-step ``apply_waveforms`` +
        re-stamp loop.
        """
        grid = np.zeros((n_steps + 1, self.n))
        n_nodes = self.n_nodes
        for source in self.circuit.voltage_sources:
            values = value_grids.get(source.name, source.volts)
            grid[:, n_nodes + source.branch] += values
        for source in self.circuit.current_sources:
            values = value_grids.get(source.name, source.amps)
            if source.a >= 0:
                grid[:, source.a] -= values
            if source.b >= 0:
                grid[:, source.b] += values
        return grid

    # -- capacitor companions ------------------------------------------

    def cap_conductances(self, dt_s: float) -> Optional[np.ndarray]:
        """Flat companion-conductance stamp values for a fixed dt."""
        if not self.n_capacitors:
            return None
        g = self.cap_farads / dt_s
        return self.cap_mat_sign * g.take(self.cap_mat_capi)

    def cap_voltages(self, x: np.ndarray) -> np.ndarray:
        """Capacitor voltages ``v(a) - v(b)`` from an MNA vector."""
        x_pad = self._x_pad
        x_pad[:self.n] = x
        return x_pad.take(self.cap_a) - x_pad.take(self.cap_b)

    def _cap_adds(self, xl: List[float], dt_s: float
                  ) -> Sequence[Tuple[int, float]]:
        """Per-step history-current RHS updates from the old bias.

        ``xl`` is the padded step-start solution (the capacitor
        state); the returned ``(rhs_index, amount)`` pairs replicate
        ``Capacitor.stamp_transient``'s ``add_current(b, a, g*v_old)``
        in element order.
        """
        if not self.n_capacitors:
            return ()
        adds = []
        for a, b, rb, ra, farads in self.cap_table:
            g = farads / dt_s
            amount = g * (xl[a] - xl[b])
            if rb >= 0:
                adds.append((rb, -amount))
            if ra >= 0:
                adds.append((ra, amount))
        return adds

    # -- device stamp kernels ------------------------------------------

    def _scalar_stamps(self, xl: List[float],
                       rhs_list: List[float]) -> List[float]:
        """Per-device Newton stamps via plain float arithmetic.

        The loop body inlines :func:`repro.circuit.mosfet._nmos_core`
        and :meth:`Mosfet.evaluate`/:meth:`Mosfet.stamp` verbatim --
        the identical Python float expression trees -- so every value
        carries the seed engine's exact bits.  Jacobian entries are
        collected device-major into the returned value list; the
        companion currents are applied to ``rhs_list`` in place
        (``rhs[d] -= residual; rhs[s] += residual``, the seed's
        ``add_current`` order).
        """
        vals: List[float] = []
        for di, gi, si, rd, rs, mirror, vth, beta, lam, leak in \
                self.device_table:
            vd = xl[di]
            vg = xl[gi]
            vs = xl[si]
            ud = mirror * vd
            ug = mirror * vg
            us = mirror * vs
            if ud >= us:
                vgs = ug - us
                vds = ud - us
                vov = vgs - vth
                if vov <= 0.0:
                    ids = 0.0
                    gm = 0.0
                    gds = 0.0
                else:
                    clm = 1.0 + lam * vds
                    if vds < vov:
                        ids = beta * (vov - 0.5 * vds) * vds * clm
                        gm = beta * vds * clm
                        gds = beta * ((vov - vds) * clm
                                      + (vov - 0.5 * vds) * vds * lam)
                    else:
                        ids = 0.5 * beta * vov * vov * clm
                        gm = beta * vov * clm
                        gds = 0.5 * beta * vov * vov * lam
                current_n = ids
                g_drain = gds
                g_gate = gm
            else:
                # Symmetric conduction: swap effective drain/source.
                vgs = ug - ud
                vds = us - ud
                vov = vgs - vth
                if vov <= 0.0:
                    ids = 0.0
                    gm = 0.0
                    gds = 0.0
                else:
                    clm = 1.0 + lam * vds
                    if vds < vov:
                        ids = beta * (vov - 0.5 * vds) * vds * clm
                        gm = beta * vds * clm
                        gds = beta * ((vov - vds) * clm
                                      + (vov - 0.5 * vds) * vds * lam)
                    else:
                        ids = 0.5 * beta * vov * vov * clm
                        gm = beta * vov * clm
                        gds = 0.5 * beta * vov * vov * lam
                current_n = -ids
                g_drain = gm + gds
                g_gate = -gm
            current_n += leak * (ud - us)
            g_drain += leak
            ids_out = mirror * current_n
            residual = ids_out - g_drain * (vd - vs) \
                - g_gate * (vg - vs)
            ngd = -g_drain
            ngg = -g_gate
            vals += (g_drain, ngd, ngd, g_drain,
                     g_gate, ngg, ngg, g_gate)
            if rd >= 0:
                rhs_list[rd] -= residual
            if rs >= 0:
                rhs_list[rs] += residual
        return vals

    def _vector_stamps(self, x: np.ndarray
                       ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-device Newton stamps via the ufunc bank.

        Bit-identical to :meth:`_scalar_stamps`; profitable once the
        device count amortizes numpy's per-op dispatch.  Returns
        device-major value and companion-current buffers (views into
        reused scratch -- consume before the next call).
        """
        x_pad = self._x_pad
        x_pad[:self.n] = x
        g_drain, g_gate, residual = self.bank.evaluate(x_pad)
        buf = self._stamp_buf
        neg_gd = -g_drain
        neg_gg = -g_gate
        buf[:, 0] = g_drain
        buf[:, 1] = neg_gd
        buf[:, 2] = neg_gd
        buf[:, 3] = g_drain
        buf[:, 4] = g_gate
        buf[:, 5] = neg_gg
        buf[:, 6] = neg_gg
        buf[:, 7] = g_gate
        rbuf = self._res_buf
        rbuf[:, 0] = -residual
        rbuf[:, 1] = residual
        return buf.reshape(-1), rbuf.reshape(-1)

    # -- linearized solves ---------------------------------------------

    def _factor(self, vals, gmin: float,
                cap_conductances: Optional[np.ndarray]
                ) -> DenseLuOperator:
        """Assemble the Jacobian in the seed's cell order and factor.

        Only runs on an LU-cache miss.  Accumulation order per cell
        matches the seed loop exactly: linear base, then device
        stamps, then gmin, then capacitor companions.  The scratch
        matrix is handed to the shared operator for in-place
        factorization.
        """
        matrix = self.base_matrix.copy()
        flat = matrix.reshape(-1)
        if vals is not None:
            np.add.at(flat, self.mos_idx,
                      np.asarray(vals).take(self.mos_take))
        if gmin > 0.0:
            flat[self.diag_flat] += gmin
        if cap_conductances is not None:
            np.add.at(flat, self.cap_mat_idx, cap_conductances)
        return DenseLuOperator(matrix, overwrite_matrix=True)

    def _iterate_scalar(self, xl: List[float], row_list: List[float],
                        cap_adds: Sequence[Tuple[int, float]],
                        gmin: float, dt_key: float,
                        cap_conductances: Optional[np.ndarray]
                        ) -> np.ndarray:
        """One linearized solve at padded bias ``xl`` (scalar kernel)."""
        rhs_list = row_list.copy()
        vals = self._scalar_stamps(xl, rhs_list)
        for index, amount in cap_adds:
            rhs_list[index] += amount
        key = (self._pack(*vals), gmin, dt_key)
        operator = self._lu_cache.get_or_build(
            key, lambda: self._factor(vals, gmin, cap_conductances))
        return operator.solve(np.array(rhs_list), overwrite_rhs=True)

    def _iterate_vector(self, x: np.ndarray, rhs_base: np.ndarray,
                        cap_currents: Optional[np.ndarray],
                        gmin: float, dt_key: float,
                        cap_conductances: Optional[np.ndarray]
                        ) -> np.ndarray:
        """One linearized solve at bias ``x`` (array kernel)."""
        if self.n_mosfets:
            vals, res = self._vector_stamps(x)
            key = (vals.tobytes(), gmin, dt_key)
        else:
            vals = None
            res = None
            key = (b"", gmin, dt_key)
        operator = self._lu_cache.get_or_build(
            key, lambda: self._factor(vals, gmin, cap_conductances))
        rhs = rhs_base.copy()
        if res is not None:
            np.add.at(rhs, self.res_idx, res.take(self.res_take))
        if cap_currents is not None:
            np.add.at(rhs, self.cap_rhs_idx, cap_currents)
        return operator.solve(rhs, overwrite_rhs=True)

    # -- Newton drivers (the seed's control flow, verbatim) ------------

    def newton(self, estimate: np.ndarray, rhs_base: np.ndarray,
               gmin: float) -> Tuple[Optional[np.ndarray], int]:
        """Damped Newton at a fixed gmin: (solution or None, count)."""
        x = estimate.copy()
        n_nodes = self.n_nodes
        scalar = bool(self.n_mosfets) and not self.use_vector
        row_list = rhs_base.tolist() if scalar else None
        for iteration in range(1, MAX_ITERATIONS + 1):
            try:
                if scalar:
                    xl = x.tolist()
                    xl.append(0.0)
                    target = self._iterate_scalar(xl, row_list, (),
                                                  gmin, 0.0, None)
                else:
                    target = self._iterate_vector(x, rhs_base, None,
                                                  gmin, 0.0, None)
            except np.linalg.LinAlgError:
                return None, iteration
            if not np.all(np.isfinite(target)):
                return None, iteration
            delta = target - x
            max_step = float(np.abs(delta[:n_nodes]).max()) \
                if n_nodes else 0.0
            if max_step > MAX_UPDATE_V:
                x = x + (MAX_UPDATE_V / max_step) * delta
                continue
            x = target
            if max_step <= VOLTAGE_TOL:
                return x, iteration
        return None, MAX_ITERATIONS

    def solve_step(self, estimate: np.ndarray, rhs_row: np.ndarray,
                   dt_s: float,
                   cap_conductances: Optional[np.ndarray]
                   ) -> np.ndarray:
        """One backward-Euler step: Newton on the companion network.

        The capacitor history currents come from ``estimate`` -- the
        previous step's solution, which is exactly the state the seed
        tracked through ``Capacitor.update_state`` -- and stay fixed
        while Newton re-linearizes the devices.
        """
        if bool(self.n_mosfets) and not self.use_vector:
            return self._solve_step_scalar(estimate, rhs_row, dt_s,
                                           cap_conductances)
        return self._solve_step_vector(estimate, rhs_row, dt_s,
                                       cap_conductances)

    def _solve_step_scalar(self, estimate: np.ndarray,
                           rhs_row: np.ndarray, dt_s: float,
                           cap_conductances: Optional[np.ndarray]
                           ) -> np.ndarray:
        x = estimate.copy()
        n_nodes = self.n_nodes
        xl = x.tolist()
        xl.append(0.0)
        row_list = rhs_row.tolist()
        cap_adds = self._cap_adds(xl, dt_s)
        for _ in range(MAX_ITERATIONS):
            try:
                target = self._iterate_scalar(xl, row_list, cap_adds,
                                              0.0, dt_s,
                                              cap_conductances)
            except np.linalg.LinAlgError as exc:
                raise ConvergenceError(
                    f"transient step of {self.circuit.title!r} "
                    "is singular") from exc
            tl = target.tolist()
            # max |delta| over the node entries, with numpy's NaN
            # propagation (any NaN forces the non-converged path).
            max_step = 0.0
            for i in range(n_nodes):
                d = tl[i] - xl[i]
                if d < 0.0:
                    d = -d
                if d > max_step or d != d:
                    max_step = d
            if max_step > MAX_UPDATE_V:
                x = x + (MAX_UPDATE_V / max_step) * (target - x)
                xl = x.tolist()
                xl.append(0.0)
                continue
            x = target
            xl = tl
            xl.append(0.0)
            if max_step <= VOLTAGE_TOL:
                return x
        raise ConvergenceError(
            f"transient step of {self.circuit.title!r} "
            "failed to converge")

    def _solve_step_vector(self, estimate: np.ndarray,
                           rhs_row: np.ndarray, dt_s: float,
                           cap_conductances: Optional[np.ndarray]
                           ) -> np.ndarray:
        x = estimate.copy()
        n_nodes = self.n_nodes
        if self.n_capacitors:
            g = self.cap_farads / dt_s
            i = g * self.cap_voltages(estimate)
            cap_currents = self.cap_rhs_sign * i.take(self.cap_rhs_capi)
        else:
            cap_currents = None
        for _ in range(MAX_ITERATIONS):
            try:
                target = self._iterate_vector(x, rhs_row, cap_currents,
                                              0.0, dt_s,
                                              cap_conductances)
            except np.linalg.LinAlgError as exc:
                raise ConvergenceError(
                    f"transient step of {self.circuit.title!r} "
                    "is singular") from exc
            delta = target - x
            max_step = float(np.abs(delta[:n_nodes]).max()) \
                if n_nodes else 0.0
            if max_step > MAX_UPDATE_V:
                x = x + (MAX_UPDATE_V / max_step) * delta
                continue
            x = target
            if max_step <= VOLTAGE_TOL:
                return x
        raise ConvergenceError(
            f"transient step of {self.circuit.title!r} "
            "failed to converge")


def evaluate_waveform_grid(waveform, times: np.ndarray) -> np.ndarray:
    """A source waveform evaluated over the whole time grid.

    Tries one vectorized call first (array-aware waveforms -- e.g.
    ``np.where``-based mode-switch steps -- cost one ufunc pass for
    the entire run); scalar-only callables fall back to per-point
    evaluation with the exact time values the seed engine passed.
    """
    try:
        grid = np.asarray(waveform(times), dtype=float)
        if grid.shape == times.shape:
            return grid
    except Exception:
        pass
    return np.array([float(waveform(t)) for t in times], dtype=float)
