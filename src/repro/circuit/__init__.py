"""A small but real circuit simulator (MNA, Newton DC, transient).

This substrate replaces the SPICE + 28 nm FD-SOI PDK flow the paper
used to validate its assist circuitry (Fig. 9 and Fig. 10).  It
implements:

* :class:`~repro.circuit.netlist.Circuit` -- netlist container with
  named nodes;
* linear elements (:class:`~repro.circuit.elements.Resistor`,
  :class:`~repro.circuit.elements.Capacitor`,
  :class:`~repro.circuit.elements.VoltageSource`,
  :class:`~repro.circuit.elements.CurrentSource`);
* a square-law :class:`~repro.circuit.mosfet.Mosfet` with symmetric
  drain/source conduction (needed for the assist circuit's pass
  devices) and channel-length modulation;
* Newton DC analysis with gmin stepping
  (:func:`~repro.circuit.dc.dc_operating_point`), and
* backward-Euler transient analysis with time-varying sources
  (:func:`~repro.circuit.transient.transient`).

Both analyses execute on compiled circuit programs
(:class:`~repro.circuit.compiled.CompiledCircuit`): the netlist is
flattened once into scatter-ready stamp index/value arrays, device
models evaluate as single ufunc passes, and the dense LU factors are
reused through an input-keyed cache.

Parameter-grid studies additionally run through the batched engine
(:class:`~repro.circuit.batched.CircuitBatch`,
:func:`~repro.circuit.batched.dc_batch`,
:func:`~repro.circuit.batched.transient_batch`): every grid point of
a same-topology population advances through one stacked Newton
iteration per step instead of one simulation per point.
"""

from repro.circuit.batched import CircuitBatch, dc_batch, transient_batch
from repro.circuit.compiled import CompiledCircuit, evaluate_waveform_grid
from repro.circuit.elements import (
    Capacitor,
    CurrentSource,
    Resistor,
    VoltageSource,
)
from repro.circuit.mosfet import Mosfet, MosfetParams, NMOS_28NM, PMOS_28NM
from repro.circuit.netlist import Circuit, GROUND
from repro.circuit.dc import DcSolution, dc_operating_point
from repro.circuit.transient import TransientResult, transient
from repro.circuit.oscillator import RingOscillatorNetlist

__all__ = [
    "RingOscillatorNetlist",
    "Circuit",
    "CircuitBatch",
    "CompiledCircuit",
    "dc_batch",
    "transient_batch",
    "evaluate_waveform_grid",
    "GROUND",
    "Resistor",
    "Capacitor",
    "VoltageSource",
    "CurrentSource",
    "Mosfet",
    "MosfetParams",
    "NMOS_28NM",
    "PMOS_28NM",
    "DcSolution",
    "dc_operating_point",
    "TransientResult",
    "transient",
]
