"""Linear circuit elements and their MNA stamps.

Every element stamps itself into a dense MNA system::

    [ G  B ] [ v ]   [ i ]
    [ C  D ] [ j ] = [ e ]

where ``v`` are node voltages and ``j`` are voltage-source branch
currents.  Node index ``-1`` denotes ground and is skipped by the stamp
helpers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import NetlistError


class MnaSystem:
    """Dense MNA matrix/right-hand side under assembly."""

    def __init__(self, n_nodes: int, n_branches: int):
        size = n_nodes + n_branches
        self.n_nodes = n_nodes
        self.matrix = np.zeros((size, size))
        self.rhs = np.zeros(size)

    def add_conductance(self, a: int, b: int, g: float) -> None:
        """Stamp a conductance ``g`` between nodes ``a`` and ``b``."""
        if a >= 0:
            self.matrix[a, a] += g
        if b >= 0:
            self.matrix[b, b] += g
        if a >= 0 and b >= 0:
            self.matrix[a, b] -= g
            self.matrix[b, a] -= g

    def add_transconductance(self, out_a: int, out_b: int,
                             in_a: int, in_b: int, gm: float) -> None:
        """Stamp a VCCS: current gm*(v[in_a]-v[in_b]) from out_a to out_b."""
        for out_node, out_sign in ((out_a, 1.0), (out_b, -1.0)):
            if out_node < 0:
                continue
            if in_a >= 0:
                self.matrix[out_node, in_a] += out_sign * gm
            if in_b >= 0:
                self.matrix[out_node, in_b] -= out_sign * gm

    def add_current(self, a: int, b: int, amps: float) -> None:
        """Stamp a current of ``amps`` flowing from node ``a`` to ``b``."""
        if a >= 0:
            self.rhs[a] -= amps
        if b >= 0:
            self.rhs[b] += amps

    def add_voltage_branch(self, branch: int, pos: int, neg: int,
                           volts: float) -> None:
        """Stamp an ideal voltage source on branch row ``branch``."""
        row = self.n_nodes + branch
        if pos >= 0:
            self.matrix[pos, row] += 1.0
            self.matrix[row, pos] += 1.0
        if neg >= 0:
            self.matrix[neg, row] -= 1.0
            self.matrix[row, neg] -= 1.0
        self.rhs[row] += volts


@dataclass
class Resistor:
    """Linear resistor.

    Attributes:
        name: unique element name.
        a / b: node indices.
        ohms: resistance; must be positive.
    """

    name: str
    a: int
    b: int
    ohms: float

    def __post_init__(self) -> None:
        if self.ohms <= 0.0:
            raise NetlistError(f"resistor {self.name}: ohms must be positive")

    @property
    def conductance(self) -> float:
        """Conductance ``1 / ohms`` (the value the MNA stamp uses)."""
        return 1.0 / self.ohms

    def stamp(self, system: MnaSystem) -> None:
        """Stamp the conductance into the system."""
        system.add_conductance(self.a, self.b, self.conductance)

    def current(self, solution_v: np.ndarray) -> float:
        """Current from ``a`` to ``b`` given a node-voltage solution."""
        va = solution_v[self.a] if self.a >= 0 else 0.0
        vb = solution_v[self.b] if self.b >= 0 else 0.0
        return (va - vb) / self.ohms


@dataclass
class Capacitor:
    """Capacitor: open in DC, backward-Euler companion in transient.

    Attributes:
        name: unique element name.
        a / b: node indices.
        farads: capacitance; must be positive.
        voltage_v: present capacitor voltage ``v(a) - v(b)``; updated by
            the transient solver, used as the companion-source state.
    """

    name: str
    a: int
    b: int
    farads: float
    voltage_v: float = 0.0

    def __post_init__(self) -> None:
        if self.farads <= 0.0:
            raise NetlistError(
                f"capacitor {self.name}: farads must be positive")

    def stamp_transient(self, system: MnaSystem, dt: float) -> None:
        """Stamp the backward-Euler companion (G = C/dt, I = G*v_old)."""
        g = self.farads / dt
        system.add_conductance(self.a, self.b, g)
        # Companion current source pushes g*v_old from b to a.
        system.add_current(self.b, self.a, g * self.voltage_v)

    def update_state(self, solution_v: np.ndarray) -> None:
        """Record the post-step capacitor voltage."""
        va = solution_v[self.a] if self.a >= 0 else 0.0
        vb = solution_v[self.b] if self.b >= 0 else 0.0
        self.voltage_v = va - vb


@dataclass
class VoltageSource:
    """Ideal voltage source with an MNA branch current.

    Attributes:
        name: unique element name.
        pos / neg: node indices; ``v(pos) - v(neg) = volts``.
        volts: source value (may be changed between solves).
        branch: index of the MNA branch row.
    """

    name: str
    pos: int
    neg: int
    volts: float
    branch: int

    def stamp(self, system: MnaSystem) -> None:
        """Stamp the source into its branch row."""
        system.add_voltage_branch(self.branch, self.pos, self.neg,
                                  self.volts)

    def current(self, solution: np.ndarray, n_nodes: int) -> float:
        """Branch current flowing from ``pos`` through the source."""
        return float(solution[n_nodes + self.branch])


@dataclass
class CurrentSource:
    """Ideal current source driving ``amps`` from node ``a`` to ``b``.

    Attributes:
        name: unique element name.
        a / b: node indices; positive ``amps`` removes current from
            ``a`` and injects it into ``b``.
        amps: source value (may be changed between solves).
    """

    name: str
    a: int
    b: int
    amps: float

    def stamp(self, system: MnaSystem) -> None:
        """Stamp the injection into the right-hand side."""
        system.add_current(self.a, self.b, self.amps)
