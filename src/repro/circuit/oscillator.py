"""Transistor-level ring oscillator built on the circuit simulator.

The paper measures BTI through a 75-stage LUT-mapped ring oscillator;
the compact :class:`repro.sensors.ring_oscillator.RingOscillator` model
maps threshold shift to frequency with the alpha-power law.  This
module closes the loop: it builds an *actual* CMOS ring oscillator
netlist, simulates it in the time domain, measures its oscillation
frequency from the waveform, and lets tests cross-validate the compact
model against the transistor-level one (fresh and BTI-aged).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.circuit.mosfet import MosfetParams, NMOS_28NM, PMOS_28NM
from repro.circuit.netlist import Circuit
from repro.circuit.transient import TransientResult, transient
from repro.errors import SimulationError


@dataclass(frozen=True)
class RingOscillatorNetlist:
    """A CMOS ring oscillator as a simulated netlist.

    Attributes:
        stages: number of inverter stages (must be odd to oscillate).
        supply_v: oscillator supply.
        nmos / pmos: device parameters of every stage.
        stage_capacitance_f: explicit load capacitance per stage node.
    """

    stages: int = 5
    supply_v: float = 1.0
    nmos: MosfetParams = NMOS_28NM
    pmos: MosfetParams = PMOS_28NM
    stage_capacitance_f: float = 5e-15

    def __post_init__(self) -> None:
        if self.stages < 3 or self.stages % 2 == 0:
            raise SimulationError(
                "a ring oscillator needs an odd stage count >= 3")
        if self.supply_v <= 0.0:
            raise SimulationError("supply_v must be positive")
        if self.stage_capacitance_f <= 0.0:
            raise SimulationError("stage_capacitance_f must be positive")

    def aged(self, delta_vth_v: float) -> "RingOscillatorNetlist":
        """A copy with every device BTI-aged by ``delta_vth_v``."""
        if delta_vth_v < 0.0:
            raise SimulationError("delta_vth_v must be non-negative")
        from dataclasses import replace
        return replace(self,
                       nmos=self.nmos.with_vth_shift(delta_vth_v),
                       pmos=self.pmos.with_vth_shift(delta_vth_v))

    def build(self) -> Circuit:
        """Construct the netlist (nodes ``n0`` .. ``n{stages-1}``)."""
        circuit = Circuit(f"{self.stages}-stage ring oscillator")
        circuit.add_voltage_source("vdd", "vdd", "gnd", self.supply_v)
        for stage in range(self.stages):
            node_in = f"n{stage}"
            node_out = f"n{(stage + 1) % self.stages}"
            circuit.add_mosfet(f"mp{stage}", node_out, node_in, "vdd",
                               self.pmos)
            circuit.add_mosfet(f"mn{stage}", node_out, node_in, "gnd",
                               self.nmos)
            # Seed alternate initial node voltages so the transient
            # starts from a propagating edge rather than the
            # metastable DC point.
            initial = self.supply_v if stage % 2 == 0 else 0.0
            circuit.add_capacitor(f"c{stage}", node_out, "gnd",
                                  self.stage_capacitance_f,
                                  initial_v=initial)
        return circuit

    def simulation_window(self, n_periods_hint: float = 8.0,
                          points_per_period: int = 60
                          ) -> Tuple[float, float]:
        """``(stop_s, dt_s)`` sized from a first-order delay estimate.

        The estimate is ``stages * C * V / I_sat`` per edge; exposing
        it lets alternative drivers (the seed-engine benchmark, the
        pooled fleet runner) run the exact same time grid.
        """
        i_sat = 0.5 * self.nmos.beta \
            * max(self.supply_v - self.nmos.vth_v, 0.05) ** 2
        stage_delay = self.stage_capacitance_f * self.supply_v / i_sat
        period_estimate = 2.0 * self.stages * stage_delay
        stop = n_periods_hint * period_estimate
        dt = period_estimate / points_per_period
        return stop, dt

    def simulate(self, n_periods_hint: float = 8.0,
                 points_per_period: int = 60) -> TransientResult:
        """Run a transient long enough to observe several periods.

        The run length is sized by :meth:`simulation_window`; the
        measurement then uses only the settled second half of the
        waveform.
        """
        stop, dt = self.simulation_window(n_periods_hint,
                                          points_per_period)
        circuit = self.build()
        return transient(circuit, stop_s=stop, dt_s=dt, from_dc=False)

    def measured_frequency_hz(self,
                              result: Optional[TransientResult] = None
                              ) -> float:
        """Oscillation frequency from rising-edge crossings of node n0.

        Uses the second half of the waveform (start-up discarded) and
        averages the spacing of mid-supply rising crossings.

        Raises:
            SimulationError: if fewer than two rising edges are found
                (the ring is not oscillating, e.g. aged past cutoff).
        """
        result = result or self.simulate()
        wave = result.voltage("n0")
        times = result.times_s
        half = len(wave) // 2
        wave = wave[half:]
        times = times[half:]
        mid = 0.5 * self.supply_v
        above = wave >= mid
        rising = np.nonzero(~above[:-1] & above[1:])[0]
        if len(rising) < 2:
            raise SimulationError(
                "no sustained oscillation observed; the ring may be "
                "aged past cutoff or the run too short")
        # Linear interpolation of every crossing instant at once.
        v0, v1 = wave[rising], wave[rising + 1]
        t0, t1 = times[rising], times[rising + 1]
        crossings = t0 + (mid - v0) / (v1 - v0) * (t1 - t0)
        periods = np.diff(crossings)
        return float(1.0 / periods.mean())

    def frequency_degradation(self, delta_vth_v: float) -> float:
        """Fractional frequency loss of the aged ring vs the fresh one.

        This is the transistor-level counterpart of
        :meth:`repro.sensors.ring_oscillator.RingOscillator.frequency_degradation`,
        measured from actual waveforms.
        """
        fresh = self.measured_frequency_hz()
        aged = self.aged(delta_vth_v).measured_frequency_hz()
        return 1.0 - aged / fresh
