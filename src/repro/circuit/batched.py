"""Batched-grid MNA engine: every parameter-grid point in one sweep.

A design-space study (the Fig. 10 load grid, the Fig. 9 mode-switch
matrix, a fleet of aged ring oscillators) runs the *same* netlist
topology at many parameter points.  The compiled engine
(:mod:`repro.circuit.compiled`) already turned one simulation into
flat scatter kernels plus cached LU factors, but a sweep still pays
the full Python driver -- Newton loop, device stamping, factor and
back-substitute dispatch -- once per grid point.  :class:`CircuitBatch`
stacks the whole grid along a leading batch axis instead:

* device parameters become ``(n_rows, n_devices)`` tables evaluated
  through one :meth:`MosfetBank.evaluate <repro.circuit.mosfet.
  MosfetBank.evaluate>` ufunc pass per Newton iteration, whatever the
  batch width;
* per-row Jacobians are assembled from per-row base matrices with the
  template's scatter indices (the topology is shared, so the index
  arrays are too) into one ``(active_rows, n, n)`` tensor and solved
  by a single stacked LAPACK ``gesv`` call per Newton iteration --
  the same ``getrf``/``getrs`` arithmetic the per-point engine runs,
  so an uncondensed batch row reproduces its solo run bit for bit;
* Newton damping and convergence run under **per-row masks**: each
  row damps against its own ``max |delta|``, freezes the moment it
  converges, and a slow row only costs extra iterations for itself --
  it never stalls or perturbs the rest of the batch.

On top of the stacked solve the batch applies **source condensation**:
a grounded voltage source whose positive node feeds only MOSFET gates
(the assist circuit's ``vg_*`` gate rails) pins that node voltage and
branch current in closed form, so the pair of unknowns drops out of
the Newton solve and the gate couplings move to the right-hand side.
The assist cell condenses from 28 unknowns to 8 this way -- a ~40x
cut in factorization flops per iteration.  Condensed solves are no
longer bit-identical to the per-point engine (the reduced elimination
order differs) but stay within LAPACK roundoff of it; measured over
the Fig. 10 grid the end-to-end waveform difference is ~1e-13, and
``condense=False`` forces the bitwise full-matrix path.  Circuits
with no such nodes (the ring oscillator) condense nothing and keep
exact bit parity automatically.

Rows may carry **per-row time steps** (``dt_s`` / ``stop_s`` arrays)
as long as every row lands on the same step count -- exactly the
shape of a ring-oscillator fleet, where the simulation window scales
with each member's aged period estimate but the window is always the
same number of points.

Element values (resistances, capacitances, device parameters) are
snapshotted at construction; source values are read at run time, so
mode changes between runs flow through while topology edits require
a new batch.  Heterogeneous batches (different node counts, element
lists or device terminals) are rejected with ``ValueError`` at
construction; such populations belong on the pooled per-point runner
(:func:`repro.solvers.sweep.run_sweep`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.circuit.compiled import (
    CompiledCircuit,
    MAX_ITERATIONS,
    MAX_UPDATE_V,
    VOLTAGE_TOL,
    _stamp_conductance,
    evaluate_waveform_grid,
)
from repro.circuit.dc import DcSolution
from repro.circuit.netlist import Circuit
from repro.circuit.mosfet import MosfetBank
from repro.circuit.transient import (
    TransientResult,
    Waveform,
    _apply_grid_values,
)
from repro.errors import ConvergenceError, NetlistError
from repro.solvers import FactorizationCache

__all__ = ["CircuitBatch", "dc_batch", "transient_batch"]


def _topology_layout(circuit: Circuit):
    """The index-level shape a batch row must share with the template."""
    return (
        circuit.n_nodes,
        tuple((r.a, r.b) for r in circuit.resistors),
        tuple((s.pos, s.neg, s.branch) for s in circuit.voltage_sources),
        tuple((s.a, s.b) for s in circuit.current_sources),
        tuple((c.a, c.b) for c in circuit.capacitors),
    )


def _as_rows(value, n_rows: int, name: str) -> np.ndarray:
    """Broadcast a scalar or per-row sequence to a float ``(n_rows,)``."""
    arr = np.asarray(value, dtype=float)
    if arr.ndim == 0:
        return np.full(n_rows, float(arr))
    if arr.shape != (n_rows,):
        raise ValueError(
            f"{name} must be a scalar or one value per batch row")
    return arr.copy()


def _chunk_rows(n_rows: int, row_bytes: int,
                max_chunk_rows: Optional[int],
                chunk_budget_bytes: Optional[int]) -> int:
    """Rows per chunk under the caller's row and byte limits."""
    limit = n_rows
    if max_chunk_rows is not None:
        if max_chunk_rows < 1:
            raise ValueError("max_chunk_rows must be at least 1")
        limit = min(limit, max_chunk_rows)
    if chunk_budget_bytes is not None:
        if chunk_budget_bytes < 1:
            raise ValueError("chunk_budget_bytes must be positive")
        limit = min(limit, max(1, chunk_budget_bytes
                               // max(row_bytes, 1)))
    return max(1, limit)


def _mna_size(circuit: Circuit) -> int:
    """Unknown count of one row (nodes plus source branches)."""
    return circuit.n_nodes + len(circuit.voltage_sources)


def _dc_row_bytes(circuit: Circuit) -> int:
    """Resident bytes one DC batch row costs (matrices dominate)."""
    n = _mna_size(circuit)
    # Base matrix, stacked Jacobian and LAPACK workspace, all (n, n).
    return 3 * n * n * 8


def _transient_row_bytes(circuit: Circuit, n_steps: int) -> int:
    """Resident bytes one transient batch row costs."""
    n = _mna_size(circuit)
    # The DC matrices plus the solution and RHS grids.
    return 3 * n * n * 8 + 2 * (n_steps + 1) * n * 8


def _dangling_source_pairs(circuit: Circuit) -> List[Tuple[int, int]]:
    """Unknown pairs a batch can condense out of the Newton solve.

    A grounded voltage source whose positive node touches nothing but
    MOSFET gates has an MNA node row holding only the ``+1`` branch
    coupling (gates draw no current) and a branch row holding only the
    ``+1`` node coupling.  Both unknowns are closed-form -- the node
    voltage is the source value, the branch current is the node's
    injected current -- and the gate-column stamps of other rows can
    move to the right-hand side.  Returns ``(node, branch column)``
    pairs; an empty list means the circuit condenses nothing.
    """
    n_nodes = circuit.n_nodes
    touched = set()
    for resistor in circuit.resistors:
        touched.update((resistor.a, resistor.b))
    for capacitor in circuit.capacitors:
        touched.update((capacitor.a, capacitor.b))
    for mosfet in circuit.mosfets:
        # Gate references appear only as matrix columns and move to
        # the RHS; drain/source terminals stamp whole rows and pin the
        # node in the solve.
        touched.update((mosfet.drain, mosfet.source))
    uses = {}
    for source in circuit.voltage_sources:
        uses[source.pos] = uses.get(source.pos, 0) + 1
        uses[source.neg] = uses.get(source.neg, 0) + 1
    pairs = []
    for source in circuit.voltage_sources:
        node = source.pos
        if node < 0 or source.neg >= 0:
            continue
        if node in touched or uses.get(node, 0) > 1:
            continue
        pairs.append((node, n_nodes + source.branch))
    return pairs


class CircuitBatch:
    """A stack of same-topology netlists advanced as one tensor.

    Construction flattens the shared topology once (borrowing the
    scatter indices of a :class:`~repro.circuit.compiled.
    CompiledCircuit` template), stacks the per-row linear base
    matrices, capacitor values and device parameters, and -- unless
    ``condense=False`` -- eliminates dangling-source unknowns from
    the stacked solve.  The per-analysis drivers are
    :func:`dc_batch` and :func:`transient_batch`.

    Raises:
        ValueError: when the circuits do not share one topology
            (different nodes, element lists, device terminals or
            polarities) -- heterogeneous populations belong on the
            pooled per-point runner.
    """

    def __init__(self, circuits: Sequence[Circuit],
                 condense: bool = True):
        circuits = list(circuits)
        if not circuits:
            raise ValueError("CircuitBatch needs at least one circuit")
        self.circuits = circuits
        self.n_rows = len(circuits)
        template = CompiledCircuit(circuits[0], use_vector=True)
        self.template = template
        self.n = template.n
        self.n_nodes = template.n_nodes
        self.pad = template.pad
        self.n_mosfets = template.n_mosfets
        self.n_capacitors = template.n_capacitors

        layout = _topology_layout(circuits[0])
        for other in circuits[1:]:
            if _topology_layout(other) != layout:
                raise ValueError(
                    f"circuit {other.title!r} does not share the batch "
                    "topology; run heterogeneous populations through "
                    "the pooled per-point sweep instead")

        if self.n_mosfets:
            try:
                self.bank = MosfetBank.stacked(
                    [c.mosfets for c in circuits], self.pad)
            except NetlistError as exc:
                raise ValueError(str(exc)) from exc
            self.mos_idx = template.mos_idx
            self.mos_take = template.mos_take
            self.res_idx = template.res_idx
            self.res_take = template.res_take
            self._stamp_buf = np.empty((self.n_rows, self.n_mosfets, 8))
            self._res_buf = np.empty((self.n_rows, self.n_mosfets, 2))
        else:
            self.bank = None

        # Per-row linear base matrices, assembled in the seed cell
        # order (the template's loop, once per row).
        size = self.n
        base = np.zeros((self.n_rows, size, size))
        for row, circuit in enumerate(circuits):
            matrix = base[row]
            for resistor in circuit.resistors:
                _stamp_conductance(matrix, resistor.a, resistor.b,
                                   resistor.conductance)
            for source in circuit.voltage_sources:
                branch_row = self.n_nodes + source.branch
                if source.pos >= 0:
                    matrix[source.pos, branch_row] += 1.0
                    matrix[branch_row, source.pos] += 1.0
                if source.neg >= 0:
                    matrix[source.neg, branch_row] -= 1.0
                    matrix[branch_row, source.neg] -= 1.0
        self.base_matrices = base

        if self.n_capacitors:
            self.cap_farads = np.array(
                [[c.farads for c in circuit.capacitors]
                 for circuit in circuits])
            self.cap_mat_idx = template.cap_mat_idx
            self.cap_mat_sign = template.cap_mat_sign
            self.cap_mat_capi = template.cap_mat_capi
            self.cap_rhs_idx = template.cap_rhs_idx
            self.cap_rhs_sign = template.cap_rhs_sign
            self.cap_rhs_capi = template.cap_rhs_capi
            self.cap_a = template.cap_a
            self.cap_b = template.cap_b

        self._x_pad = np.zeros((self.n_rows, size + 1))
        # Telemetry carrier: the batched engine does not key LU
        # factors (grid workloads re-stamp every iteration, so a keyed
        # cache would only miss), but the stacked-solve counters ride
        # the same registry the sweep reports read.
        self._telemetry = FactorizationCache(
            maxsize=4, name="circuit.lu.batched")
        self._build_condensation(condense)

    def _build_condensation(self, condense: bool) -> None:
        """Precompute the reduced-system index maps (or identity)."""
        size = self.n
        pairs = _dangling_source_pairs(self.circuits[0]) if condense \
            else []
        self.condensed = bool(pairs)
        if self.condensed:
            self.elim_nodes = np.array([p for p, _ in pairs],
                                       dtype=np.intp)
            self.elim_branches = np.array([b for _, b in pairs],
                                          dtype=np.intp)
            keep_mask = np.ones(size, dtype=bool)
            keep_mask[self.elim_nodes] = False
            keep_mask[self.elim_branches] = False
            self.keep = np.flatnonzero(keep_mask)
        else:
            self.elim_nodes = np.empty(0, dtype=np.intp)
            self.elim_branches = np.empty(0, dtype=np.intp)
            self.keep = np.arange(size, dtype=np.intp)
        keep = self.keep
        n_red = keep.size
        self.n_red = n_red
        full_to_red = np.full(size, -1, dtype=np.intp)
        full_to_red[keep] = np.arange(n_red, dtype=np.intp)
        elim_pos = np.full(size, -1, dtype=np.intp)
        elim_pos[self.elim_nodes] = np.arange(self.elim_nodes.size,
                                              dtype=np.intp)

        if self.condensed:
            self.base_red = self.base_matrices[:, keep[:, None],
                                               keep[None, :]]
        else:
            self.base_red = self.base_matrices

        kept_nodes = keep[keep < self.n_nodes]
        self.diag_red = full_to_red[kept_nodes] * (n_red + 1)

        if self.n_mosfets:
            rows_full = self.mos_idx // size
            cols_full = self.mos_idx % size
            kept_slot = full_to_red[cols_full] >= 0
            self.mos_idx_red = (full_to_red[rows_full[kept_slot]] * n_red
                                + full_to_red[cols_full[kept_slot]])
            self.mos_take_red = self.mos_take[kept_slot]
            moved = ~kept_slot
            self.mos_mv_row = full_to_red[rows_full[moved]]
            self.mos_mv_take = self.mos_take[moved]
            self.mos_mv_col = elim_pos[cols_full[moved]]
            self.res_idx_red = full_to_red[self.res_idx]
        else:
            self.mos_mv_take = np.empty(0, dtype=np.intp)
        if self.n_capacitors:
            rows_full = self.cap_mat_idx // size
            cols_full = self.cap_mat_idx % size
            self.cap_mat_idx_red = (full_to_red[rows_full] * n_red
                                    + full_to_red[cols_full])
            self.cap_rhs_idx_red = full_to_red[self.cap_rhs_idx]

        if self.condensed:
            # The condensed path is free to re-order accumulations, so
            # scatter indices become small 0/1 matrices and the
            # per-iteration stamping turns into GEMMs over the whole
            # batch -- no per-element ``np.add.at`` dispatch.
            n_rows = self.n_rows
            if self.n_mosfets:
                gem = np.zeros((8 * self.n_mosfets, n_red * n_red))
                gem[self.mos_take_red, self.mos_idx_red] = 1.0
                self._mos_gemm = gem
                res_gem = np.zeros((2 * self.n_mosfets, n_red))
                np.add.at(res_gem, (self.res_take, self.res_idx_red),
                          1.0)
                self._res_gemm = res_gem
                mv_gem = np.zeros((self.mos_mv_take.size, n_red))
                np.add.at(mv_gem,
                          (np.arange(self.mos_mv_take.size),
                           self.mos_mv_row), 1.0)
                self._mv_gemm = mv_gem
            self._mats_buf = np.empty((n_rows, n_red, n_red))
            self._gem_buf = np.empty((n_rows, n_red * n_red))
            self._rhs_buf = np.empty((n_rows, n_red))
            self._base_call = np.empty((n_rows, n_red, n_red))
            self._rhs_call = np.empty((n_rows, n_red))

    # -- stacked assembly ----------------------------------------------

    def static_rhs_rows(self) -> np.ndarray:
        """Per-row RHS from current source values (seed cell order)."""
        rhs = np.zeros((self.n_rows, self.n))
        n_nodes = self.n_nodes
        for row, circuit in enumerate(self.circuits):
            out = rhs[row]
            for source in circuit.voltage_sources:
                out[n_nodes + source.branch] += source.volts
            for source in circuit.current_sources:
                if source.a >= 0:
                    out[source.a] -= source.amps
                if source.b >= 0:
                    out[source.b] += source.amps
        return rhs

    def rhs_grid_rows(self, grids_rows: Sequence[Dict[str, np.ndarray]],
                      n_steps: int) -> np.ndarray:
        """Per-row, per-step source RHS grid ``(rows, steps+1, n)``."""
        grid = np.zeros((self.n_rows, n_steps + 1, self.n))
        n_nodes = self.n_nodes
        for row, circuit in enumerate(self.circuits):
            out = grid[row]
            value_grids = grids_rows[row]
            for source in circuit.voltage_sources:
                values = value_grids.get(source.name, source.volts)
                out[:, n_nodes + source.branch] += values
            for source in circuit.current_sources:
                values = value_grids.get(source.name, source.amps)
                if source.a >= 0:
                    out[:, source.a] -= values
                if source.b >= 0:
                    out[:, source.b] += values
        return grid

    def cap_conductance_rows(self, dt_rows: np.ndarray
                             ) -> Optional[np.ndarray]:
        """Per-row companion-conductance stamps for per-row ``dt``."""
        if not self.n_capacitors:
            return None
        g = self.cap_farads / dt_rows[:, None]
        return self.cap_mat_sign * g[:, self.cap_mat_capi]

    def cap_voltage_rows(self, x: np.ndarray) -> np.ndarray:
        """Per-row capacitor voltages ``v(a) - v(b)``."""
        x_pad = self._x_pad
        x_pad[:, :self.n] = x
        return x_pad[:, self.cap_a] - x_pad[:, self.cap_b]

    def _vector_stamps_rows(self, x: np.ndarray):
        """Stacked device stamps: one ufunc pass over every row.

        Same fill pattern as the per-point
        :meth:`CompiledCircuit._vector_stamps`, with a leading row
        axis; each row's buffer carries the per-point bytes exactly.
        """
        x_pad = self._x_pad
        x_pad[:, :self.n] = x
        g_drain, g_gate, residual = self.bank.evaluate(x_pad)
        buf = self._stamp_buf
        neg_gd = -g_drain
        neg_gg = -g_gate
        buf[:, :, 0] = g_drain
        buf[:, :, 1] = neg_gd
        buf[:, :, 2] = neg_gd
        buf[:, :, 3] = g_drain
        buf[:, :, 4] = g_gate
        buf[:, :, 5] = neg_gg
        buf[:, :, 6] = neg_gg
        buf[:, :, 7] = g_gate
        rbuf = self._res_buf
        rbuf[:, :, 0] = -residual
        rbuf[:, :, 1] = residual
        n_rows = self.n_rows
        return buf.reshape(n_rows, -1), rbuf.reshape(n_rows, -1)

    def _solve_rows_fallback(self, mats: np.ndarray, rhs: np.ndarray,
                             rows: np.ndarray, dc_mode: bool,
                             failed: np.ndarray, active: np.ndarray):
        """Per-row solves when the stacked call reports a singularity.

        LAPACK flags the whole stack when any row is singular, so
        isolate the bad rows one solve at a time: the per-row solves
        are bit-identical to the stacked ones, a singular transient
        row raises exactly like its solo run, and a singular DC row
        just drops out so the caller's gmin ladder can take over.
        """
        sols = np.empty_like(rhs)
        good: List[int] = []
        for i, row in enumerate(rows):
            try:
                sols[i] = np.linalg.solve(mats[i], rhs[i])
            except np.linalg.LinAlgError as exc:
                if not dc_mode:
                    raise ConvergenceError(
                        "transient step of "
                        f"{self.circuits[int(row)].title!r} is singular"
                    ) from exc
                failed[row] = True
                active[row] = False
                continue
            good.append(i)
        index = np.array(good, dtype=np.intp)
        return sols[index], rows[index]

    # -- masked Newton over the whole batch ----------------------------

    def _newton_batch(self, x: np.ndarray, rhs_rows: np.ndarray,
                      cap_currents: Optional[np.ndarray], gmin: float,
                      cap_g_rows: Optional[np.ndarray], dc_mode: bool,
                      active: Optional[np.ndarray] = None):
        """Damped Newton on every active row at a fixed gmin.

        Mutates the active rows of ``x`` in place and returns
        ``(converged, failed, iterations)`` masks/counts per row.  The
        per-row control flow is the per-point engine's verbatim: the
        same damping clamp against each row's own ``max |delta|``, the
        same tolerance, NaN handling and (in ``dc_mode``) the
        non-finite bailout; a converged row freezes while the rest
        keep iterating.  Each iteration assembles the active rows'
        Jacobians as one tensor (reduced by source condensation when
        available) and solves them in a single stacked LAPACK call.
        In transient mode a singular row raises
        :class:`~repro.errors.ConvergenceError` exactly as its solo
        run would; in DC mode it just marks the row failed so the
        caller's gmin ladder can take over.
        """
        n_rows = self.n_rows
        n_nodes = self.n_nodes
        keep = self.keep
        if active is None:
            active = np.ones(n_rows, dtype=bool)
        else:
            active = active.copy()
        converged = np.zeros(n_rows, dtype=bool)
        failed = np.zeros(n_rows, dtype=bool)
        iterations = np.zeros(n_rows, dtype=np.intp)
        has_devices = bool(self.n_mosfets)
        target = np.empty_like(x)
        if self.condensed:
            # The condensed unknowns are closed-form and fixed for the
            # whole Newton run: node voltage = source value (RHS of
            # the branch row), branch current = the node row's
            # injected current less its gmin leak.
            v_elim = rhs_rows[:, self.elim_branches]
            if gmin > 0.0:
                i_elim = rhs_rows[:, self.elim_nodes] - gmin * v_elim
            else:
                i_elim = rhs_rows[:, self.elim_nodes]
            target[:, self.elim_branches] = i_elim
            target[:, self.elim_nodes] = v_elim
        else:
            v_elim = None
        telemetry = self._telemetry
        condensed = self.condensed
        if condensed:
            # Per-call constants of the reduced system: gmin and the
            # capacitor companions fold into the base matrix, the cap
            # history currents into the RHS, and the condensed gate
            # voltages are gathered once per slot.  (The reduced
            # elimination already reorders accumulation, so folding
            # is free; the bitwise path below keeps the per-point
            # order instead.)
            n_all = np.arange(n_rows)[:, None]
            base_call = self._base_call
            np.copyto(base_call, self.base_red)
            base_flat = base_call.reshape(n_rows, -1)
            if gmin > 0.0:
                base_flat[:, self.diag_red] += gmin
            if cap_g_rows is not None:
                np.add.at(base_flat,
                          (n_all, self.cap_mat_idx_red[None, :]),
                          cap_g_rows)
            rhs_call = self._rhs_call
            np.copyto(rhs_call, rhs_rows[:, keep])
            if cap_currents is not None:
                np.add.at(rhs_call,
                          (n_all, self.cap_rhs_idx_red[None, :]),
                          cap_currents)
            if has_devices and self.mos_mv_take.size:
                v_mv = v_elim[:, self.mos_mv_col]
            else:
                v_mv = None
        for iteration in range(1, MAX_ITERATIONS + 1):
            rows = np.flatnonzero(active)
            if rows.size == 0:
                break
            iterations[rows] = iteration
            k = rows.size
            if has_devices:
                vals, res = self._vector_stamps_rows(x)
            else:
                vals = None
                res = None
            if condensed:
                # Whole-batch assembly into preallocated buffers;
                # device stamps land through GEMMs against 0/1
                # scatter matrices.
                mats = self._mats_buf
                np.copyto(mats, base_call)
                rhs = self._rhs_buf
                np.copyto(rhs, rhs_call)
                if vals is not None:
                    gem = self._gem_buf
                    np.matmul(vals, self._mos_gemm, out=gem)
                    mats.reshape(n_rows, -1)[...] += gem
                    rhs += res @ self._res_gemm
                    if v_mv is not None:
                        # Gate-column stamps of condensed nodes: the
                        # voltage is known, so the coupling moves to
                        # the RHS.
                        rhs -= (vals[:, self.mos_mv_take] * v_mv) \
                            @ self._mv_gemm
                if k == n_rows:
                    msub = mats
                    rsub = rhs
                else:
                    msub = mats[rows]
                    rsub = rhs[rows]
            else:
                # Bitwise path: active-row Jacobians accumulated in
                # the per-point order (base, devices, gmin, caps)
                # with the per-point scatter sequences.
                rsel = rows[:, None]
                isel = np.arange(k)[:, None]
                msub = self.base_red[rows]
                flat = msub.reshape(k, -1)
                if vals is not None and self.mos_idx_red.size:
                    np.add.at(flat, (isel, self.mos_idx_red[None, :]),
                              vals[rsel, self.mos_take_red[None, :]])
                if gmin > 0.0:
                    flat[:, self.diag_red] += gmin
                if cap_g_rows is not None:
                    np.add.at(flat,
                              (isel, self.cap_mat_idx_red[None, :]),
                              cap_g_rows[rows])
                rsub = rhs_rows[rsel, keep[None, :]]
                if res is not None:
                    np.add.at(rsub, (isel, self.res_idx_red[None, :]),
                              res[rsel, self.res_take[None, :]])
                if cap_currents is not None:
                    np.add.at(rsub,
                              (isel, self.cap_rhs_idx_red[None, :]),
                              cap_currents[rows])
            try:
                sol = np.linalg.solve(msub, rsub[..., None])[..., 0]
                solved = rows
            except np.linalg.LinAlgError:
                sol, solved = self._solve_rows_fallback(
                    msub, rsub, rows, dc_mode, failed, active)
            if not solved.size:
                continue
            telemetry.record_batched_solve(solved.size)
            target[solved[:, None], keep[None, :]] = sol
            sel = solved
            delta = target[sel] - x[sel]
            if n_nodes:
                max_step = np.abs(delta[:, :n_nodes]).max(axis=1)
            else:
                max_step = np.zeros(sel.size)
            if dc_mode:
                finite = np.isfinite(target[sel]).all(axis=1)
                if not finite.all():
                    bad = sel[~finite]
                    failed[bad] = True
                    active[bad] = False
                    sel = sel[finite]
                    delta = delta[finite]
                    max_step = max_step[finite]
            # NaN max_step takes neither branch below: the row accepts
            # the update and keeps iterating, exactly like the
            # per-point loop.
            damp = max_step > MAX_UPDATE_V
            if damp.any():
                rows_damp = sel[damp]
                coef = (MAX_UPDATE_V / max_step[damp])[:, None]
                x[rows_damp] = x[rows_damp] + coef * delta[damp]
            accept = ~damp
            if accept.any():
                rows_take = sel[accept]
                x[rows_take] = target[rows_take]
                done = max_step[accept] <= VOLTAGE_TOL
                rows_done = rows_take[done]
                converged[rows_done] = True
                active[rows_done] = False
        return converged, failed, iterations

    def solve_step_rows(self, estimate: np.ndarray,
                        rhs_rows: np.ndarray, dt_rows: np.ndarray,
                        cap_g_rows: Optional[np.ndarray]) -> np.ndarray:
        """One backward-Euler step for every row at once."""
        if self.n_capacitors:
            g = self.cap_farads / dt_rows[:, None]
            history = g * self.cap_voltage_rows(estimate)
            cap_currents = self.cap_rhs_sign \
                * history[:, self.cap_rhs_capi]
        else:
            cap_currents = None
        x = estimate.copy()
        converged, _, _ = self._newton_batch(
            x, rhs_rows, cap_currents, 0.0, cap_g_rows, dc_mode=False)
        if not converged.all():
            row = int(np.flatnonzero(~converged)[0])
            raise ConvergenceError(
                f"transient step of {self.circuits[row].title!r} "
                "failed to converge")
        return x


def dc_batch(circuits: Union[CircuitBatch, Sequence[Circuit]],
             initial_guess: Optional[np.ndarray] = None,
             condense: bool = True,
             max_chunk_rows: Optional[int] = None,
             chunk_budget_bytes: Optional[int] = None
             ) -> List[DcSolution]:
    """DC operating points of a whole batch in one masked Newton run.

    Mirrors :func:`~repro.circuit.dc.dc_operating_point` per row --
    plain Newton first, then the per-row gmin ladder for rows that
    need it (a row that fails a ladder level keeps its previous
    estimate, exactly like the per-point ``break``), then the final
    ``gmin = 0`` polish.

    Args:
        circuits: a prebuilt :class:`CircuitBatch` or a sequence of
            same-topology circuits.
        initial_guess: optional ``(n_rows, n_unknowns)`` starting
            estimates.
        condense: eliminate dangling-source unknowns (ignored when a
            prebuilt batch is passed).
        max_chunk_rows / chunk_budget_bytes: optional row-blocking of
            a circuit *sequence*: the batch is built and solved in
            row chunks no larger than ``max_chunk_rows`` and no
            heavier than ``chunk_budget_bytes`` of stacked matrices,
            so a 100k-row population never materializes its full
            ``(n_rows, n, n)`` tensor.  Every Newton update is
            per-row masked, so chunked results are bit-identical to
            the unchunked batch.  Ignored for a prebuilt batch (its
            tensors already exist).

    Raises:
        ConvergenceError: if any row fails even with gmin stepping.
    """
    if not isinstance(circuits, CircuitBatch) \
            and (max_chunk_rows is not None
                 or chunk_budget_bytes is not None):
        circuits = list(circuits)
        n_rows = len(circuits)
        if n_rows:
            chunk = _chunk_rows(n_rows, _dc_row_bytes(circuits[0]),
                                max_chunk_rows, chunk_budget_bytes)
            if chunk < n_rows:
                guess = None
                if initial_guess is not None:
                    guess = np.asarray(initial_guess, dtype=float)
                solutions: List[DcSolution] = []
                for start in range(0, n_rows, chunk):
                    stop = min(n_rows, start + chunk)
                    part = guess
                    if part is not None and part.ndim == 2 \
                            and part.shape[0] == n_rows:
                        part = part[start:stop]
                    solutions.extend(dc_batch(
                        circuits[start:stop], part, condense))
                return solutions
    batch = circuits if isinstance(circuits, CircuitBatch) \
        else CircuitBatch(circuits, condense=condense)
    n_rows = batch.n_rows
    rhs = batch.static_rhs_rows()
    if initial_guess is not None \
            and initial_guess.shape == (n_rows, batch.n):
        start = np.asarray(initial_guess, dtype=float).copy()
    else:
        start = np.zeros((n_rows, batch.n))

    x = start.copy()
    converged, _, iterations = batch._newton_batch(
        x, rhs, None, 0.0, None, dc_mode=True)
    totals = iterations.astype(int)
    need = ~converged
    if need.any():
        # gmin stepping, per row: relax through the ladder, advancing
        # each row's estimate only past levels it converged at.
        estimates = start.copy()
        climb = need.copy()
        for exponent in range(3, 13):
            gmin = 10.0 ** (-exponent)
            trial = estimates.copy()
            stepped, _, used = batch._newton_batch(
                trial, rhs, None, gmin, None, dc_mode=True,
                active=climb)
            totals += used.astype(int)
            advanced = climb & stepped
            estimates[advanced] = trial[advanced]
            climb = advanced
            if not climb.any():
                break
        final = estimates.copy()
        polished, _, used = batch._newton_batch(
            final, rhs, None, 0.0, None, dc_mode=True, active=need)
        totals += used.astype(int)
        good = need & polished
        x[good] = final[good]
        bad = need & ~polished
        if bad.any():
            row = int(np.flatnonzero(bad)[0])
            raise ConvergenceError(
                f"DC analysis of {batch.circuits[row].title!r} "
                "failed to converge")
    return [DcSolution(batch.circuits[row], x[row].copy(),
                       int(totals[row]))
            for row in range(n_rows)]


def transient_batch(circuits: Union[CircuitBatch, Sequence[Circuit]],
                    stop_s, dt_s,
                    waveforms: Union[None, Dict[str, Waveform],
                                     Sequence[Optional[Dict[str, Waveform]]]] = None,
                    from_dc: bool = True,
                    condense: bool = True,
                    max_chunk_rows: Optional[int] = None,
                    chunk_budget_bytes: Optional[int] = None
                    ) -> List[TransientResult]:
    """Backward-Euler transients for every batch row in one sweep.

    The per-row semantics are exactly
    :func:`~repro.circuit.transient.transient`: waveform grids are
    pre-evaluated on each row's own time axis, the t=0 values land on
    the sources before the starting state is computed, capacitor
    states are mutated in place, and every row's final netlist state
    matches its solo run.

    Args:
        circuits: a prebuilt :class:`CircuitBatch` or a sequence of
            same-topology circuits.
        stop_s / dt_s: scalars shared by every row, or per-row arrays.
            Every row must land on the same step count (per-row
            windows with a shared grid length -- the fleet shape --
            are fine).
        waveforms: one dict applied to every row, or a sequence of
            per-row dicts (``None`` entries mean undriven).
        from_dc: start each row from its batched DC operating point
            (otherwise from the all-zero state).
        condense: eliminate dangling-source unknowns (ignored when a
            prebuilt batch is passed; ``False`` keeps the solve
            bit-identical to the per-point engine).
        max_chunk_rows / chunk_budget_bytes: optional row-blocking of
            a circuit *sequence*, as in :func:`dc_batch` -- the
            budget additionally counts each chunk's solution and RHS
            grids.  Rows are independent (per-row masked Newton, per-
            row waveform grids, per-row capacitor state), so chunked
            results are bit-identical.  Ignored for a prebuilt batch.

    Returns:
        One :class:`~repro.circuit.transient.TransientResult` per row.
    """
    if not isinstance(circuits, CircuitBatch) \
            and (max_chunk_rows is not None
                 or chunk_budget_bytes is not None):
        circuits = list(circuits)
        total_rows = len(circuits)
        if total_rows:
            all_stop = _as_rows(stop_s, total_rows, "stop_s")
            all_dt = _as_rows(dt_s, total_rows, "dt_s")
            if np.any(all_stop <= 0.0) or np.any(all_dt <= 0.0):
                raise ValueError("stop_s and dt_s must be positive")
            grid_steps = int(np.round(all_stop[0] / all_dt[0]))
            chunk = _chunk_rows(
                total_rows,
                _transient_row_bytes(circuits[0], grid_steps),
                max_chunk_rows, chunk_budget_bytes)
            if chunk < total_rows:
                shared_waveforms = waveforms is None \
                    or isinstance(waveforms, dict)
                if not shared_waveforms:
                    wave_rows = list(waveforms)
                    if len(wave_rows) != total_rows:
                        raise ValueError(
                            "waveforms must provide one dict per row")
                chunked: List[TransientResult] = []
                for start in range(0, total_rows, chunk):
                    stop = min(total_rows, start + chunk)
                    chunked.extend(transient_batch(
                        circuits[start:stop], all_stop[start:stop],
                        all_dt[start:stop],
                        waveforms if shared_waveforms
                        else wave_rows[start:stop],
                        from_dc=from_dc, condense=condense))
                return chunked
    batch = circuits if isinstance(circuits, CircuitBatch) \
        else CircuitBatch(circuits, condense=condense)
    members = batch.circuits
    n_rows = batch.n_rows
    stop_rows = _as_rows(stop_s, n_rows, "stop_s")
    dt_rows = _as_rows(dt_s, n_rows, "dt_s")
    if np.any(stop_rows <= 0.0) or np.any(dt_rows <= 0.0):
        raise ValueError("stop_s and dt_s must be positive")

    if waveforms is None:
        waveform_rows: List[Dict[str, Waveform]] = [{}] * n_rows
    elif isinstance(waveforms, dict):
        waveform_rows = [waveforms] * n_rows
    else:
        waveform_rows = [w or {} for w in waveforms]
        if len(waveform_rows) != n_rows:
            raise ValueError("waveforms must provide one dict per row")

    sources_rows = []
    for circuit, row_waveforms in zip(members, waveform_rows):
        sources = {source.name: source
                   for source in circuit.voltage_sources}
        sources.update({source.name: source
                        for source in circuit.current_sources})
        for name in row_waveforms:
            if name not in sources:
                raise ValueError(f"no source named {name!r} to drive")
        sources_rows.append(sources)

    steps_rows = np.round(stop_rows / dt_rows).astype(int)
    n_steps = int(steps_rows[0])
    if not np.all(steps_rows == n_steps):
        raise ValueError(
            "every batch row must land on the same step count "
            "(per-row dt_s must divide per-row stop_s identically)")

    times_rows = np.empty((n_rows, n_steps + 1))
    for row in range(n_rows):
        times_rows[row] = np.linspace(0.0, n_steps * dt_rows[row],
                                      n_steps + 1)
    grids_rows = [
        {name: evaluate_waveform_grid(waveform, times_rows[row])
         for name, waveform in waveform_rows[row].items()}
        for row in range(n_rows)]

    # The t=0 values go onto each row's sources before the starting
    # state and RHS grid are computed, mirroring the solo driver.
    for row in range(n_rows):
        _apply_grid_values(sources_rows[row], grids_rows[row], 0)
    if from_dc:
        x = np.stack([dc.solution for dc in dc_batch(batch)])
    else:
        x = np.zeros((n_rows, batch.n))
    for row, circuit in enumerate(members):
        for capacitor in circuit.capacitors:
            capacitor.update_state(x[row])

    solutions = np.empty((n_rows, n_steps + 1, batch.n))
    solutions[:, 0] = x
    rhs_grid = batch.rhs_grid_rows(grids_rows, n_steps)
    cap_g_rows = batch.cap_conductance_rows(dt_rows)
    for step in range(1, n_steps + 1):
        x = batch.solve_step_rows(x, rhs_grid[:, step], dt_rows,
                                  cap_g_rows)
        solutions[:, step] = x

    results = []
    for row, circuit in enumerate(members):
        _apply_grid_values(sources_rows[row], grids_rows[row], n_steps)
        for capacitor in circuit.capacitors:
            capacitor.update_state(x[row])
        results.append(TransientResult(circuit, times_rows[row],
                                       solutions[row]))
    return results
