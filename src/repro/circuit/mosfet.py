"""Square-law (level-1) MOSFET with symmetric conduction.

The assist circuitry of the paper uses header/footer transistors as
*pass devices*: depending on the operating mode, current may flow in
either direction through the same device.  The model therefore treats
drain and source symmetrically -- when the nominal drain is biased
below the nominal source (for an NMOS), the terminals are swapped
internally and the computed current is negated.

The model is a standard level-1 description::

    cutoff:  vgs <= vth:   ids = 0
    triode:  vds < vov:    ids = k (W/L) (vov - vds/2) vds (1 + lam vds)
    sat:     vds >= vov:   ids = k/2 (W/L) vov^2 (1 + lam vds)

with ``vov = vgs - vth``.  A small drain-source leakage conductance
keeps the MNA matrix non-singular when devices are off.  PMOS devices
mirror all polarities.

Threshold voltages are *mutable* so that BTI-aged circuits can be
simulated directly: ``mosfet.params = mosfet.params.with_vth_shift(dv)``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence, Tuple

import numpy as np

from repro.circuit.elements import MnaSystem
from repro.errors import NetlistError


@dataclass(frozen=True)
class MosfetParams:
    """Static device parameters.

    Attributes:
        polarity: ``"nmos"`` or ``"pmos"``.
        vth_v: threshold voltage magnitude (positive number for both
            polarities).
        kp_a_v2: process transconductance ``mu * Cox`` in A/V^2.
        w_over_l: device aspect ratio.
        lambda_per_v: channel-length modulation coefficient.
        leak_s: off-state drain-source conductance (keeps matrices
            regular; physically the subthreshold/junction leakage).
    """

    polarity: str
    vth_v: float
    kp_a_v2: float
    w_over_l: float
    lambda_per_v: float = 0.05
    leak_s: float = 1e-9

    def __post_init__(self) -> None:
        if self.polarity not in ("nmos", "pmos"):
            raise NetlistError("polarity must be 'nmos' or 'pmos'")
        if self.vth_v <= 0.0:
            raise NetlistError("vth_v must be positive (magnitude)")
        if self.kp_a_v2 <= 0.0 or self.w_over_l <= 0.0:
            raise NetlistError("kp_a_v2 and w_over_l must be positive")
        if self.lambda_per_v < 0.0 or self.leak_s < 0.0:
            raise NetlistError("lambda_per_v and leak_s must be >= 0")

    @property
    def beta(self) -> float:
        """Gain factor ``k (W/L)``."""
        return self.kp_a_v2 * self.w_over_l

    def with_vth_shift(self, delta_v: float) -> "MosfetParams":
        """A copy with the threshold magnitude increased by ``delta_v``.

        This is how BTI wearout enters circuit simulation: positive
        ``delta_v`` raises |Vth| and weakens the device.
        """
        return replace(self, vth_v=self.vth_v + delta_v)

    def scaled(self, width_factor: float) -> "MosfetParams":
        """A copy with the width (W/L) scaled by ``width_factor``."""
        if width_factor <= 0.0:
            raise NetlistError("width_factor must be positive")
        return replace(self, w_over_l=self.w_over_l * width_factor)


#: Representative 28 nm FD-SOI devices for the Fig. 9/10 experiments
#: (1.0 V nominal supply, |Vth| ~ 0.30 V).
NMOS_28NM = MosfetParams(polarity="nmos", vth_v=0.30, kp_a_v2=3.0e-4,
                         w_over_l=10.0)
PMOS_28NM = MosfetParams(polarity="pmos", vth_v=0.30, kp_a_v2=1.5e-4,
                         w_over_l=20.0)


def _nmos_core(vgs: float, vds: float, params: MosfetParams
               ) -> Tuple[float, float, float]:
    """Level-1 NMOS current and derivatives for ``vds >= 0``.

    Returns ``(ids, gm, gds)`` excluding leakage.
    """
    vov = vgs - params.vth_v
    if vov <= 0.0:
        return 0.0, 0.0, 0.0
    beta = params.beta
    lam = params.lambda_per_v
    clm = 1.0 + lam * vds
    if vds < vov:
        ids = beta * (vov - 0.5 * vds) * vds * clm
        gm = beta * vds * clm
        gds = beta * ((vov - vds) * clm
                      + (vov - 0.5 * vds) * vds * lam)
    else:
        ids = 0.5 * beta * vov * vov * clm
        gm = beta * vov * clm
        gds = 0.5 * beta * vov * vov * lam
    return ids, gm, gds


@dataclass
class Mosfet:
    """A MOSFET instance in a netlist.

    Attributes:
        name: unique element name.
        drain / gate / source: node indices.
        params: device parameters (mutable slot; swap to age a device).
    """

    name: str
    drain: int
    gate: int
    source: int
    params: MosfetParams

    def evaluate(self, v) -> Tuple[float, float, float]:
        """Drain current and Jacobian entries at a bias point.

        Args:
            v: node-voltage vector (branch entries may trail; only node
                indices are read).

        Returns:
            ``(ids, g_drain, g_gate)`` where ``ids`` is the current
            flowing from the nominal drain node to the nominal source
            node, ``g_drain = d ids / d v(drain)`` and
            ``g_gate = d ids / d v(gate)``.  The source derivative
            follows from translation invariance:
            ``g_source = -(g_drain + g_gate)``.
        """
        def at(node: int) -> float:
            return float(v[node]) if node >= 0 else 0.0

        vd, vg, vs = at(self.drain), at(self.gate), at(self.source)
        mirror = -1.0 if self.params.polarity == "pmos" else 1.0
        ud, ug, us = mirror * vd, mirror * vg, mirror * vs
        if ud >= us:
            ids, gm, gds = _nmos_core(ug - us, ud - us, self.params)
            current_n = ids
            g_drain = gds
            g_gate = gm
        else:
            # Symmetric conduction: swap effective drain and source.
            ids, gm, gds = _nmos_core(ug - ud, us - ud, self.params)
            current_n = -ids
            g_drain = gm + gds
            g_gate = -gm
        # Leakage acts on the un-swapped vds in mirrored coordinates.
        current_n += self.params.leak_s * (ud - us)
        g_drain += self.params.leak_s
        # Mirroring flips the current but leaves derivatives w.r.t.
        # real node voltages unchanged (two sign flips cancel).
        return mirror * current_n, g_drain, g_gate

    def stamp(self, system: MnaSystem, v) -> None:
        """Stamp the Newton companion model at the bias point ``v``.

        The linearization
        ``i(v) ~ i0 + gd*(vd-vd0) + gg*(vg-vg0) + gs*(vs-vs0)`` is
        stamped as two VCCS entries plus a constant current source.
        """
        ids, g_drain, g_gate = self.evaluate(v)

        def at(node: int) -> float:
            return float(v[node]) if node >= 0 else 0.0

        vds0 = at(self.drain) - at(self.source)
        vgs0 = at(self.gate) - at(self.source)
        system.add_transconductance(self.drain, self.source,
                                    self.drain, self.source, g_drain)
        system.add_transconductance(self.drain, self.source,
                                    self.gate, self.source, g_gate)
        residual = ids - g_drain * vds0 - g_gate * vgs0
        system.add_current(self.drain, self.source, residual)

    def current(self, v) -> float:
        """Drain-to-source current at a solved bias point."""
        return self.evaluate(v)[0]


class MosfetBank:
    """Vectorized level-1 evaluation of a fixed list of MOSFETs.

    The compiled circuit engine (:mod:`repro.circuit.compiled`)
    evaluates every device of a netlist in one ufunc pass instead of
    calling :meth:`Mosfet.evaluate` per device per Newton iteration.
    Each elementwise expression below follows the *exact* operation
    tree of the scalar path (:func:`_nmos_core` / ``evaluate``) --
    same associativity, same constant folding -- so the vectorized
    lanes reproduce the scalar results bit for bit, which is what lets
    the compiled engine match the seed engine to well below 1e-10.

    Ground terminals are mapped to ``pad_index``, the extra
    always-zero trailing slot of the padded solution vector the
    compiled engine gathers from.

    The kernel is batch-polymorphic: :meth:`evaluate` accepts a padded
    bias of any leading shape ``(..., size + 1)`` and returns
    ``(..., n_devices)`` stamp arrays.  Built via :meth:`stacked`, the
    parameter arrays themselves carry a leading batch axis
    ``(n_rows, n_devices)``, which is how the batched grid engine
    (:mod:`repro.circuit.batched`) evaluates every parameter-grid
    point of a sweep in the same ufunc pass.
    """

    def __init__(self, mosfets: Sequence[Mosfet], pad_index: int):
        self.n_devices = len(mosfets)
        pad = pad_index

        def padded(node: int) -> int:
            return node if node >= 0 else pad

        # Gather index: rows are (drain, gate, source) per device.
        self.dgs_index = np.array(
            [[padded(m.drain) for m in mosfets],
             [padded(m.gate) for m in mosfets],
             [padded(m.source) for m in mosfets]], dtype=np.intp)
        params = [m.params for m in mosfets]
        self.mirror = np.array([-1.0 if p.polarity == "pmos" else 1.0
                                for p in params])
        self.vth = np.array([p.vth_v for p in params])
        self.beta = np.array([p.beta for p in params])
        # The scalar path computes ``0.5 * beta`` afresh each call;
        # one multiply on the same operands gives the same bits.
        self.half_beta = 0.5 * self.beta
        self.lam = np.array([p.lambda_per_v for p in params])
        self.leak = np.array([p.leak_s for p in params])

    @classmethod
    def stacked(cls, mosfet_rows: Sequence[Sequence[Mosfet]],
                pad_index: int) -> "MosfetBank":
        """A bank evaluating one device *table* per batch row.

        Every row must list the same devices (same names, terminals
        and polarities, in the same order) -- only the numeric
        parameters may differ, which is exactly the shape of a
        parameter-grid sweep (aged thresholds, resized widths).  The
        parameter arrays become ``(n_rows, n_devices)`` and broadcast
        against an ``(n_rows, size + 1)`` padded bias in
        :meth:`evaluate`.
        """
        if not mosfet_rows:
            raise NetlistError("mosfet_rows must not be empty")
        first = list(mosfet_rows[0])
        bank = cls(first, pad_index)
        for row in mosfet_rows[1:]:
            if len(row) != len(first):
                raise NetlistError(
                    "every batch row needs the same device count")
            for mine, theirs in zip(first, row):
                if (mine.drain, mine.gate, mine.source,
                        mine.params.polarity) != \
                        (theirs.drain, theirs.gate, theirs.source,
                         theirs.params.polarity):
                    raise NetlistError(
                        f"device {theirs.name!r} changes terminals or "
                        "polarity across batch rows; the batched "
                        "engine needs a shared topology")
        params = [[m.params for m in row] for row in mosfet_rows]
        bank.mirror = np.array(
            [[-1.0 if p.polarity == "pmos" else 1.0 for p in row]
             for row in params])
        bank.vth = np.array([[p.vth_v for p in row] for row in params])
        bank.beta = np.array([[p.beta for p in row] for row in params])
        bank.half_beta = 0.5 * bank.beta
        bank.lam = np.array([[p.lambda_per_v for p in row]
                             for row in params])
        bank.leak = np.array([[p.leak_s for p in row] for row in params])
        return bank

    def evaluate(self, x_padded: np.ndarray
                 ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-device Newton companion values at a padded bias vector.

        Returns ``(g_drain, g_gate, residual)`` where the first two are
        the Jacobian stamps of :meth:`Mosfet.stamp` and ``residual`` is
        its constant companion current
        ``ids - g_drain*vds0 - g_gate*vgs0``.  ``x_padded`` may carry
        leading batch axes (``(..., size + 1)``); every lane's
        expression tree is unchanged, so each batch row reproduces the
        unbatched bits exactly.
        """
        vdgs = np.take(x_padded, self.dgs_index, axis=-1)
        vd = vdgs[..., 0, :]
        vg = vdgs[..., 1, :]
        vs = vdgs[..., 2, :]
        ud = self.mirror * vd
        ug = self.mirror * vg
        us = self.mirror * vs
        swap = ud < us
        # Effective (drain, source) after symmetric-conduction swap.
        ed = np.where(swap, us, ud)
        es = np.where(swap, ud, us)
        vgs = ug - es
        vds = ed - es
        vov = vgs - self.vth
        lamvds = self.lam * vds
        clm = 1.0 + lamvds
        half_vds = 0.5 * vds
        a = vov - half_vds
        # Triode branch (expression trees mirror _nmos_core verbatim).
        t1 = self.beta * a
        t2 = t1 * vds
        ids_triode = t2 * clm
        bvds = self.beta * vds
        gm_triode = bvds * clm
        w = vov - vds
        p = w * clm
        q = a * vds
        r = q * self.lam
        gds_triode = self.beta * (p + r)
        # Saturation branch.
        hv = self.half_beta * vov
        hvv = hv * vov
        ids_sat = hvv * clm
        bv = self.beta * vov
        gm_sat = bv * clm
        gds_sat = hvv * self.lam
        active = vov > 0.0
        triode = active & (vds < vov)
        on_sat = active & ~triode
        ids = np.where(triode, ids_triode,
                       np.where(on_sat, ids_sat, 0.0))
        gm = np.where(triode, gm_triode,
                      np.where(on_sat, gm_sat, 0.0))
        gds = np.where(triode, gds_triode,
                       np.where(on_sat, gds_sat, 0.0))
        # Undo the swap: current negates, derivatives re-map.
        current_n = np.where(swap, -ids, ids)
        g_drain = np.where(swap, gm + gds, gds)
        g_gate = np.where(swap, -gm, gm)
        duds = ud - us
        current_n = current_n + self.leak * duds
        g_drain = g_drain + self.leak
        ids_out = self.mirror * current_n
        vds0 = vd - vs
        vgs0 = vg - vs
        residual = ids_out - g_drain * vds0 - g_gate * vgs0
        return g_drain, g_gate, residual
