"""Physical constants and unit helpers shared across the library.

Internally the library works in SI units throughout: seconds, kelvin,
volts, amperes, ohms, metres and pascals.  The helpers below exist so
that calling code can express quantities in the units the paper uses
(hours of stress, degrees Celsius, MA/cm^2 of current density) without
sprinkling conversion factors everywhere.
"""

from __future__ import annotations

import math

#: Boltzmann constant in eV/K (used by every Arrhenius factor).
BOLTZMANN_EV = 8.617333262e-5

#: Boltzmann constant in J/K.
BOLTZMANN_J = 1.380649e-23

#: Elementary charge in coulombs.
ELEMENTARY_CHARGE = 1.602176634e-19

#: Zero Celsius in kelvin.
ZERO_CELSIUS_K = 273.15

#: Room temperature (20 degC) in kelvin, the paper's baseline condition.
ROOM_TEMPERATURE_K = ZERO_CELSIUS_K + 20.0

SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0
SECONDS_PER_YEAR = 365.25 * SECONDS_PER_DAY


def celsius_to_kelvin(temp_c: float) -> float:
    """Convert a temperature from degrees Celsius to kelvin."""
    kelvin = temp_c + ZERO_CELSIUS_K
    if kelvin < 0.0:
        raise ValueError(f"temperature {temp_c} degC is below absolute zero")
    return kelvin


def kelvin_to_celsius(temp_k: float) -> float:
    """Convert a temperature from kelvin to degrees Celsius."""
    if temp_k < 0.0:
        raise ValueError(f"temperature {temp_k} K is below absolute zero")
    return temp_k - ZERO_CELSIUS_K


def hours(value: float) -> float:
    """Express a duration given in hours as seconds."""
    return value * SECONDS_PER_HOUR


def minutes(value: float) -> float:
    """Express a duration given in minutes as seconds."""
    return value * SECONDS_PER_MINUTE


def days(value: float) -> float:
    """Express a duration given in days as seconds."""
    return value * SECONDS_PER_DAY


def years(value: float) -> float:
    """Express a duration given in (Julian) years as seconds."""
    return value * SECONDS_PER_YEAR


def to_hours(seconds: float) -> float:
    """Express a duration given in seconds as hours."""
    return seconds / SECONDS_PER_HOUR


def to_minutes(seconds: float) -> float:
    """Express a duration given in seconds as minutes."""
    return seconds / SECONDS_PER_MINUTE


def to_years(seconds: float) -> float:
    """Express a duration given in seconds as years."""
    return seconds / SECONDS_PER_YEAR


def ma_per_cm2(value: float) -> float:
    """Express a current density given in MA/cm^2 as A/m^2.

    The paper stresses its test wire at +/-7.96 MA/cm^2; that is
    ``ma_per_cm2(7.96) == 7.96e10`` A/m^2.
    """
    return value * 1e10


def to_ma_per_cm2(amps_per_m2: float) -> float:
    """Express a current density given in A/m^2 as MA/cm^2."""
    return amps_per_m2 / 1e10


def arrhenius_factor(activation_energy_ev: float,
                     temperature_k: float,
                     reference_temperature_k: float) -> float:
    """Arrhenius acceleration of a thermally activated process.

    Returns the rate multiplier at ``temperature_k`` relative to the rate
    at ``reference_temperature_k``:

        exp(Ea/k * (1/T_ref - 1/T))

    A value > 1 means the process is faster than at the reference
    temperature.  Raising the temperature of a wearout *recovery* process
    is exactly the "accelerated recovery" knob of the paper (Fig. 2,
    conditions No. 3 and No. 4).
    """
    if temperature_k <= 0.0 or reference_temperature_k <= 0.0:
        raise ValueError("temperatures must be positive (kelvin)")
    if activation_energy_ev < 0.0:
        raise ValueError("activation energy must be non-negative")
    exponent = (activation_energy_ev / BOLTZMANN_EV) * (
        1.0 / reference_temperature_k - 1.0 / temperature_k)
    return math.exp(exponent)


def thermal_voltage(temperature_k: float) -> float:
    """kT/q in volts at the given temperature."""
    if temperature_k <= 0.0:
        raise ValueError("temperature must be positive (kelvin)")
    return BOLTZMANN_EV * temperature_k
