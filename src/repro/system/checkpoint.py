"""Checkpoint/resume and incremental sessions for the fleet engine.

:func:`~repro.system.fleet.run_fleet_lifetime_study` is an
all-or-nothing batch call: a machine reboot at epoch 719 of 720 loses
everything.  This module makes fleet state durable and incremental --
the foundation of the ROADMAP's streaming fleet-reliability service:

* **Snapshot format.**  One snapshot is a plain ``.npz`` archive (no
  pickled object arrays -- loadable with ``allow_pickle=False``)
  carrying the full advancing state of a
  :class:`~repro.system.fleet._FleetRun`: the stacked trap tensors and
  EM accumulators, the per-chip variation draws, the per-cohort
  policy/workload copies with their RNG positions and rotation
  cursors (pickled into a byte array, since they are arbitrary user
  objects), the demand/migration accumulators, the recorded timeline
  and the epoch cursor.  Every file embeds a JSON meta block with a
  **schema version** (strictly gated on load: a snapshot written
  under any other version is refused, never reinterpreted) and a
  SHA-256 **checksum** over the meta and every array's raw bytes, so
  torn or corrupt files fail loudly as
  :class:`~repro.errors.CheckpointError` instead of silently skewing
  a population.  Files are written to a temp name and ``os.replace``d
  into place, so a SIGKILL mid-write can never leave a corrupt file
  under the final name.

* **Checkpointed studies.**  ``run_fleet_lifetime_study(...,
  checkpoint_dir=..., checkpoint_every=...)`` makes every
  whole-lifetime row chunk crash-durable: finished chunks persist
  their :class:`~repro.system.fleet.FleetResult`, in-flight chunks
  snapshot their run every ``checkpoint_every`` epochs, and a
  directory ``manifest.json`` pins the study's SHA-256 fingerprint
  (:func:`study_digest`) so checkpoints can never be resumed into a
  *different* study.  Re-invoking the identical study -- or calling
  :func:`resume_fleet_lifetime_study` with just the directory --
  restores complete chunks and re-runs only the incomplete ones
  (through the pool's crash-safe machinery when parallel), with the
  merged result **bitwise-equal** to an uninterrupted run.

* **Incremental sessions.**  :class:`FleetSession` drives a fleet
  epoch-by-epoch without a pre-declared horizon: ``advance(n)``,
  quantile queries between calls, ``snapshot()`` / ``save()`` /
  ``restore()`` / ``load()`` for durable hand-off.  A session
  snapshot is self-contained (it embeds the session's construction
  spec), so ``FleetSession.load(path)`` rebuilds the session in a
  fresh process.

Bitwise invariance rests on one property, pinned by the checkpoint
tests: splitting ``_FleetRun.advance`` at any epoch boundary is
exact, because every cross-epoch input is either stored in the run
(cohort cursors, accumulators, records) or recomputed as the same
pure function of the stored aging state.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import zipfile
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import units
from repro.bti.calibration import BtiCalibration
from repro.em.line import EmStressCondition
from repro.errors import CheckpointError, SimulationError
from repro.system.chip import Chip
from repro.system.fleet import (
    FleetGroup,
    FleetResult,
    FleetSimulator,
    FleetVariation,
    FleetVariationSpec,
    _ChunkCheckpoint,
    _FleetRun,
)
from repro.system.simulator import SchedulingPolicy, Workload
from repro.system.sweeps import ChipConfig

#: Snapshot schema this build writes and (exclusively) reads.  The
#: gate is strict: a snapshot stamped with any other version raises
#: :class:`~repro.errors.CheckpointError` on load rather than being
#: reinterpreted under the wrong layout.
CHECKPOINT_SCHEMA_VERSION = 1

_MAGIC = "repro.fleet.checkpoint"
_STUDY_MAGIC = "repro.fleet.checkpoint-study"
_PICKLE_PROTOCOL = 4

_RUN_KINDS = ("fleet-run", "fleet-session", "fleet-chunk-progress")


# -- snapshot primitives ----------------------------------------------------


def _canonical_meta_bytes(meta_full: Dict[str, Any]) -> bytes:
    """Deterministic JSON encoding of the full meta block."""
    return json.dumps(meta_full, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def _checksum(arrays: Dict[str, np.ndarray],
              meta_bytes: bytes) -> str:
    """SHA-256 over the meta bytes and every array's identity+bytes."""
    digest = hashlib.sha256()
    digest.update(meta_bytes)
    for name in sorted(arrays):
        array = np.ascontiguousarray(arrays[name])
        digest.update(name.encode("utf-8"))
        digest.update(array.dtype.str.encode("ascii"))
        digest.update(repr(array.shape).encode("ascii"))
        # Hash the buffer in place -- identical bytes to tobytes()
        # for a contiguous array, without materialising a copy.
        # (Zero-size buffers refuse the cast and hash no bytes anyway.)
        if array.size:
            digest.update(memoryview(array).cast("B"))
    return digest.hexdigest()


def write_snapshot(path, arrays: Dict[str, np.ndarray],
                   meta: Dict[str, Any]) -> None:
    """Atomically write one versioned, checksummed ``.npz`` snapshot.

    ``arrays`` maps names to numpy arrays (stored raw, so every dtype
    round-trips bit-exactly); ``meta`` is a JSON-encodable dict.  The
    magic, schema version and SHA-256 checksum are embedded as
    reserved ``__meta__`` / ``__checksum__`` entries; the file lands
    via temp-name + ``os.replace``, so readers never observe a
    partial write.
    """
    path = os.fspath(path)
    for name, array in arrays.items():
        if name.startswith("__"):
            raise CheckpointError(
                f"array name {name!r} is reserved")
        if not isinstance(array, np.ndarray):
            raise CheckpointError(
                f"snapshot entry {name!r} is not an ndarray")
    meta_full = {"magic": _MAGIC,
                 "schema": CHECKPOINT_SCHEMA_VERSION,
                 "meta": meta}
    meta_bytes = _canonical_meta_bytes(meta_full)
    checksum = _checksum(arrays, meta_bytes)
    payload = dict(arrays)
    payload["__meta__"] = np.frombuffer(meta_bytes, dtype=np.uint8)
    payload["__checksum__"] = np.frombuffer(
        checksum.encode("ascii"), dtype=np.uint8)
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as handle:
            np.savez(handle, **payload)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            try:
                os.remove(tmp)
            except OSError:
                pass


def read_snapshot(path) -> Tuple[Dict[str, np.ndarray],
                                 Dict[str, Any]]:
    """Read a snapshot back, verifying magic, schema and checksum.

    Returns ``(arrays, meta)``.  Raises
    :class:`~repro.errors.CheckpointError` for anything short of a
    pristine snapshot of this build's schema version: unreadable or
    truncated files, foreign files, corrupt payloads (checksum
    mismatch) and snapshots written under another schema version.
    """
    path = os.fspath(path)
    try:
        with np.load(path, allow_pickle=False) as data:
            names = list(data.files)
            if "__meta__" not in names:
                raise CheckpointError(
                    f"{path} is not a fleet checkpoint snapshot")
            meta_bytes = data["__meta__"].tobytes()
            meta_full = json.loads(meta_bytes)
            if meta_full.get("magic") != _MAGIC:
                raise CheckpointError(
                    f"{path} is not a fleet checkpoint snapshot")
            schema = meta_full.get("schema")
            if schema != CHECKPOINT_SCHEMA_VERSION:
                raise CheckpointError(
                    f"{path} was written under snapshot schema "
                    f"v{schema}; this build reads only "
                    f"v{CHECKPOINT_SCHEMA_VERSION}")
            stored = ""
            if "__checksum__" in names:
                stored = data["__checksum__"].tobytes().decode(
                    "ascii", errors="replace")
            arrays = {name: data[name] for name in names
                      if not name.startswith("__")}
    except CheckpointError:
        raise
    except (OSError, ValueError, KeyError,
            zipfile.BadZipFile, json.JSONDecodeError,
            UnicodeDecodeError) as error:
        raise CheckpointError(
            f"cannot read snapshot {path}: {error}") from error
    if _checksum(arrays, _canonical_meta_bytes(meta_full)) != stored:
        raise CheckpointError(
            f"checksum mismatch in {path}: snapshot is corrupt")
    return arrays, meta_full["meta"]


@dataclass
class FleetSnapshot:
    """An in-memory fleet snapshot: named arrays plus a meta block.

    The in-memory twin of one snapshot file --
    :meth:`FleetSession.snapshot` produces one, :meth:`save` /
    :meth:`load` move it through the versioned, checksummed ``.npz``
    format of :func:`write_snapshot` / :func:`read_snapshot`.
    """

    arrays: Dict[str, np.ndarray]
    meta: Dict[str, Any]

    def save(self, path) -> None:
        """Write the snapshot to ``path`` (atomic, checksummed)."""
        write_snapshot(path, self.arrays, self.meta)

    @classmethod
    def load(cls, path) -> "FleetSnapshot":
        """Read a snapshot file back (verifying schema + checksum)."""
        arrays, meta = read_snapshot(path)
        return cls(arrays=arrays, meta=meta)


# -- run state <-> snapshot -------------------------------------------------


def _snapshot_run(run: _FleetRun) -> FleetSnapshot:
    """Capture the full advancing state of a :class:`_FleetRun`."""
    simulator = run.simulator
    state = simulator.state
    bti, em, v = state.bti, state.em, state.variation
    n_chips = state.n_chips
    arrays: Dict[str, np.ndarray] = {
        "bti/weights": bti.weights.copy(),
        "bti/occupancy": bti.occupancy.copy(),
        "bti/age_s": bti.age_s.copy(),
        "bti/permanent_v": bti.permanent_v.copy(),
        "bti/time_s": np.array(bti.time_s, dtype=np.float64),
        "em/progress_s": em.progress_s.copy(),
        "em/nucleated": em.nucleated.copy(),
        "em/void_reversible_m": em.void_reversible_m.copy(),
        "em/void_locked_m": em.void_locked_m.copy(),
        "em/time_s": np.array(em.time_s, dtype=np.float64),
        "variation/capture_scale": v.capture_scale.copy(),
        "variation/recovery_scale": v.recovery_scale.copy(),
        "variation/em_current_scale": v.em_current_scale.copy(),
        "run/migration_events": run.migration_events.copy(),
        "run/total_demand": run.total_demand.copy(),
        "run/total_dropped": run.total_dropped.copy(),
        "run/times": np.array(run.times, dtype=np.float64),
        "run/worst": (np.array(run.worst) if run.worst
                      else np.zeros((0, n_chips))),
        "run/mean": (np.array(run.mean) if run.mean
                     else np.zeros((0, n_chips))),
        "run/dropped": (np.array(run.dropped) if run.dropped
                        else np.zeros((0, n_chips))),
        "cohorts/state": np.frombuffer(
            pickle.dumps([(c.workload, c.policy)
                          for c in run.cohorts],
                         protocol=_PICKLE_PROTOCOL),
            dtype=np.uint8),
    }
    has_previous_utilization: List[bool] = []
    for index, cohort in enumerate(run.cohorts):
        arrays[f"cohort{index}/previous_recovering"] = \
            np.asarray(cohort.previous_recovering).copy()
        has_util = cohort.previous_utilization is not None
        has_previous_utilization.append(has_util)
        if has_util:
            arrays[f"cohort{index}/previous_utilization"] = \
                np.asarray(cohort.previous_utilization).copy()
    if run.cohort_temps is not None:
        for index, (_, _, temps) in enumerate(run.cohort_temps):
            arrays[f"readout/temps{index}"] = \
                np.asarray(temps, dtype=np.float64).copy()
    meta = {
        "kind": "fleet-run",
        "epoch": int(run.epoch),
        "n_epochs": (None if run.n_epochs is None
                     else int(run.n_epochs)),
        "record_every": int(run.record_every),
        "n_chips": int(n_chips),
        "n_cores": int(state.n_cores),
        "n_cohorts": len(run.cohorts),
        "cohort_bounds": [[int(c.start), int(c.stop)]
                          for c in run.cohorts],
        "has_previous_utilization": has_previous_utilization,
        "has_readout": run.cohort_temps is not None,
        "state_dtype": state.state_dtype.str,
        "epoch_s": float(simulator.epoch_s),
    }
    return FleetSnapshot(arrays=arrays, meta=meta)


def _copy_exact(destination: np.ndarray, source: np.ndarray,
                name: str) -> None:
    """Overwrite ``destination`` in place after a strict layout check."""
    if (destination.shape != source.shape
            or destination.dtype != source.dtype):
        raise CheckpointError(
            f"snapshot array {name!r} has layout "
            f"{source.dtype}{source.shape}, run expects "
            f"{destination.dtype}{destination.shape}")
    destination[...] = source


def _restore_run(run: _FleetRun, snapshot: FleetSnapshot) -> None:
    """Overwrite a freshly built :class:`_FleetRun` from a snapshot.

    ``run`` must have been constructed for the same study (geometry,
    cohort layout, cadence, dtype) and not yet advanced; every
    mismatch raises :class:`~repro.errors.CheckpointError` rather
    than producing a silently different trajectory.
    """
    arrays, meta = snapshot.arrays, snapshot.meta
    if meta.get("kind") not in _RUN_KINDS:
        raise CheckpointError(
            f"snapshot kind {meta.get('kind')!r} is not a fleet run")
    state = run.simulator.state
    expectations = (
        ("n_chips", state.n_chips),
        ("n_cores", state.n_cores),
        ("record_every", run.record_every),
        ("n_epochs", run.n_epochs),
        ("n_cohorts", len(run.cohorts)),
        ("cohort_bounds", [[c.start, c.stop] for c in run.cohorts]),
        ("state_dtype", state.state_dtype.str),
        ("epoch_s", float(run.simulator.epoch_s)),
    )
    for key, expected in expectations:
        if meta.get(key) != expected:
            raise CheckpointError(
                f"snapshot {key}={meta.get(key)!r} does not match "
                f"the run's {key}={expected!r}")
    bti, em = state.bti, state.em
    try:
        _copy_exact(bti.weights, arrays["bti/weights"],
                    "bti/weights")
        _copy_exact(bti.occupancy, arrays["bti/occupancy"],
                    "bti/occupancy")
        _copy_exact(bti.age_s, arrays["bti/age_s"], "bti/age_s")
        _copy_exact(bti.permanent_v, arrays["bti/permanent_v"],
                    "bti/permanent_v")
        bti.time_s = float(arrays["bti/time_s"])
        _copy_exact(em.progress_s, arrays["em/progress_s"],
                    "em/progress_s")
        _copy_exact(em.nucleated, arrays["em/nucleated"],
                    "em/nucleated")
        _copy_exact(em.void_reversible_m,
                    arrays["em/void_reversible_m"],
                    "em/void_reversible_m")
        _copy_exact(em.void_locked_m, arrays["em/void_locked_m"],
                    "em/void_locked_m")
        em.time_s = float(arrays["em/time_s"])
        variation = state.variation
        _copy_exact(variation.capture_scale,
                    arrays["variation/capture_scale"],
                    "variation/capture_scale")
        _copy_exact(variation.recovery_scale,
                    arrays["variation/recovery_scale"],
                    "variation/recovery_scale")
        _copy_exact(variation.em_current_scale,
                    arrays["variation/em_current_scale"],
                    "variation/em_current_scale")
        _copy_exact(run.migration_events,
                    arrays["run/migration_events"],
                    "run/migration_events")
        _copy_exact(run.total_demand, arrays["run/total_demand"],
                    "run/total_demand")
        _copy_exact(run.total_dropped, arrays["run/total_dropped"],
                    "run/total_dropped")
        run.times = [float(stamp) for stamp in arrays["run/times"]]
        run.worst = [np.array(row) for row in arrays["run/worst"]]
        run.mean = [np.array(row) for row in arrays["run/mean"]]
        run.dropped = [np.array(row)
                       for row in arrays["run/dropped"]]
        pairs = pickle.loads(arrays["cohorts/state"].tobytes())
        if len(pairs) != len(run.cohorts):
            raise CheckpointError(
                "snapshot cohort state does not match the run's "
                "cohort layout")
        has_util = meta["has_previous_utilization"]
        for index, cohort in enumerate(run.cohorts):
            workload, policy = pairs[index]
            cohort.workload = workload
            cohort.policy = policy
            cohort.previous_recovering = arrays[
                f"cohort{index}/previous_recovering"].copy()
            if has_util[index]:
                cohort.previous_utilization = arrays[
                    f"cohort{index}/previous_utilization"].copy()
            else:
                cohort.previous_utilization = None
        if meta["has_readout"]:
            run.cohort_temps = [
                (cohort.start, cohort.stop,
                 arrays[f"readout/temps{index}"].copy())
                for index, cohort in enumerate(run.cohorts)]
        else:
            run.cohort_temps = None
    except KeyError as error:
        raise CheckpointError(
            f"snapshot is missing array {error}") from error
    except pickle.UnpicklingError as error:
        raise CheckpointError(
            f"snapshot cohort state is corrupt: {error}") from error
    run.epoch = int(meta["epoch"])


# -- chunk result <-> snapshot ----------------------------------------------

_RESULT_FIELDS = (
    "times_s", "worst_degradation", "mean_degradation",
    "dropped_demand", "final_delta_vth_v", "final_permanent_vth_v",
    "final_em_drift_ohm", "em_failures", "migration_events",
    "total_demand", "total_dropped_demand",
)

_VARIATION_FIELDS = ("capture_scale", "recovery_scale",
                     "em_current_scale")


def _result_to_arrays(result: FleetResult) -> Dict[str, np.ndarray]:
    """Flatten a :class:`FleetResult` into named snapshot arrays."""
    arrays = {f"result/{name}": getattr(result, name)
              for name in _RESULT_FIELDS}
    for name in _VARIATION_FIELDS:
        arrays[f"variation/{name}"] = getattr(result.variation, name)
    return arrays


def _arrays_to_result(arrays: Dict[str, np.ndarray],
                      n_epochs: int) -> FleetResult:
    """Rebuild a :class:`FleetResult` from its snapshot arrays."""
    try:
        fields = {name: arrays[f"result/{name}"]
                  for name in _RESULT_FIELDS}
        variation = FleetVariation(**{
            name: arrays[f"variation/{name}"]
            for name in _VARIATION_FIELDS})
    except KeyError as error:
        raise CheckpointError(
            f"chunk result is missing array {error}") from error
    return FleetResult(variation=variation, n_epochs=n_epochs,
                       **fields)


def _result_path(ckpt: _ChunkCheckpoint, index: int) -> str:
    return os.path.join(ckpt.directory,
                        f"chunk-{index:05d}.result.npz")


def _progress_path(ckpt: _ChunkCheckpoint, index: int) -> str:
    return os.path.join(ckpt.directory,
                        f"chunk-{index:05d}.progress.npz")


def save_chunk_result(ckpt: _ChunkCheckpoint, index: int,
                      result: FleetResult) -> None:
    """Persist one chunk's finished result; drops its progress file."""
    meta = {"kind": "fleet-chunk-result", "digest": ckpt.digest,
            "chunk_index": int(index),
            "n_epochs": int(result.n_epochs)}
    write_snapshot(_result_path(ckpt, index),
                   _result_to_arrays(result), meta)
    try:
        os.remove(_progress_path(ckpt, index))
    except OSError:
        pass


def load_chunk_result(ckpt: _ChunkCheckpoint,
                      index: int) -> Optional[FleetResult]:
    """The chunk's persisted result, or ``None`` if not finished."""
    path = _result_path(ckpt, index)
    if not os.path.exists(path):
        return None
    arrays, meta = read_snapshot(path)
    if (meta.get("kind") != "fleet-chunk-result"
            or meta.get("chunk_index") != index):
        raise CheckpointError(
            f"{path} is not the result of chunk {index}")
    if meta.get("digest") != ckpt.digest:
        raise CheckpointError(
            f"{path} belongs to a different study "
            "(fingerprint mismatch)")
    return _arrays_to_result(arrays, int(meta["n_epochs"]))


def save_chunk_progress(ckpt: _ChunkCheckpoint, index: int,
                        run: _FleetRun) -> None:
    """Snapshot one chunk's in-flight run (atomic overwrite)."""
    snapshot = _snapshot_run(run)
    snapshot.meta["kind"] = "fleet-chunk-progress"
    snapshot.meta["digest"] = ckpt.digest
    snapshot.meta["chunk_index"] = int(index)
    write_snapshot(_progress_path(ckpt, index), snapshot.arrays,
                   snapshot.meta)


def resume_chunk_run(ckpt: _ChunkCheckpoint, index: int,
                     run: _FleetRun) -> bool:
    """Restore a chunk run from its progress snapshot, if one exists.

    Returns ``True`` when the run was fast-forwarded (its epoch
    cursor now sits at the snapshot's epoch); ``False`` when no
    progress snapshot exists and the run starts from epoch 0.
    """
    path = _progress_path(ckpt, index)
    if not os.path.exists(path):
        return False
    arrays, meta = read_snapshot(path)
    if (meta.get("kind") != "fleet-chunk-progress"
            or meta.get("chunk_index") != index):
        raise CheckpointError(
            f"{path} is not the progress of chunk {index}")
    if meta.get("digest") != ckpt.digest:
        raise CheckpointError(
            f"{path} belongs to a different study "
            "(fingerprint mismatch)")
    _restore_run(run, FleetSnapshot(arrays=arrays, meta=meta))
    return True


# -- study directories ------------------------------------------------------


def study_digest(chip: ChipConfig, groups: Sequence[FleetGroup],
                 n_epochs: int, epoch_s: float, record_every: int,
                 variation, seed: int,
                 calibration: Optional[BtiCalibration],
                 em_reference: Optional[EmStressCondition],
                 state_dtype: str, bounds) -> str:
    """SHA-256 fingerprint of a study's result-determining inputs.

    Covers everything that shapes the bitwise result -- the chip
    config, group layout (with each template's initial state),
    horizon, cadence, variation, seed, calibration, EM reference,
    state dtype and the chunk partition -- and deliberately excludes
    pure execution knobs (worker count, pool gates, retries,
    checkpoint cadence), which may change freely between interrupt
    and resume.  Every checkpoint file carries the digest, and loads
    refuse files whose digest differs, so a directory can never leak
    state between different studies.
    """
    try:
        payload = pickle.dumps(
            (chip, tuple(groups), int(n_epochs), float(epoch_s),
             int(record_every), variation, int(seed), calibration,
             em_reference, str(state_dtype),
             tuple((int(b.start), int(b.stop)) for b in bounds)),
            protocol=_PICKLE_PROTOCOL)
    except Exception as error:
        raise CheckpointError(
            "checkpointing requires a picklable study (chip config, "
            f"groups, variation, calibration): {error}") from error
    return hashlib.sha256(payload).hexdigest()


def _load_manifest(path: str) -> Dict[str, Any]:
    """Read and gate a study ``manifest.json``."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise CheckpointError(
            f"cannot read study manifest {path}: {error}") from error
    if manifest.get("magic") != _STUDY_MAGIC:
        raise CheckpointError(
            f"{path} is not a fleet checkpoint manifest")
    schema = manifest.get("schema")
    if schema != CHECKPOINT_SCHEMA_VERSION:
        raise CheckpointError(
            f"{path} was written under checkpoint schema "
            f"v{schema}; this build reads only "
            f"v{CHECKPOINT_SCHEMA_VERSION}")
    return manifest


def prepare_study_directory(directory, *, every: Optional[int],
                            chip: ChipConfig,
                            groups: Sequence[FleetGroup],
                            n_epochs: int, epoch_s: float,
                            record_every: int, variation, seed: int,
                            calibration: Optional[BtiCalibration],
                            em_reference: Optional[EmStressCondition],
                            state_dtype: str, bounds,
                            max_chunk_chips: Optional[int],
                            state_budget_bytes: Optional[int]
                            ) -> _ChunkCheckpoint:
    """Create (or re-open) a study's checkpoint directory.

    First invocation writes ``manifest.json`` (magic, schema version,
    study digest, geometry) plus ``study.pkl`` -- the pickled
    re-invocation spec :func:`resume_fleet_lifetime_study` replays.
    Re-opening verifies the manifest's schema and digest, so resuming
    a *different* study against an existing directory fails loudly
    instead of mixing state.
    """
    if every is not None and every < 1:
        raise SimulationError(
            "checkpoint_every must be at least 1")
    directory = os.fspath(directory)
    digest = study_digest(chip, groups, n_epochs, epoch_s,
                          record_every, variation, seed, calibration,
                          em_reference, state_dtype, bounds)
    os.makedirs(directory, exist_ok=True)
    manifest_path = os.path.join(directory, "manifest.json")
    if os.path.exists(manifest_path):
        manifest = _load_manifest(manifest_path)
        if manifest.get("digest") != digest:
            raise CheckpointError(
                f"{directory} holds checkpoints of a different "
                "study (fingerprint mismatch); use a fresh "
                "directory or re-invoke the original study")
    else:
        manifest = {
            "magic": _STUDY_MAGIC,
            "schema": CHECKPOINT_SCHEMA_VERSION,
            "digest": digest,
            "n_chips": int(bounds[-1].stop),
            "n_chunks": len(bounds),
            "n_epochs": int(n_epochs),
            "record_every": int(record_every),
            "state_dtype": str(state_dtype),
            "checkpoint_every": every,
        }
        spec = {
            "chip": chip,
            "kwargs": {
                "groups": tuple(groups),
                "n_epochs": int(n_epochs),
                "epoch_s": float(epoch_s),
                "record_every": int(record_every),
                "variation": variation,
                "seed": int(seed),
                "calibration": calibration,
                "em_reference": em_reference,
                "state_dtype": str(state_dtype),
                "max_chunk_chips": max_chunk_chips,
                "state_budget_bytes": state_budget_bytes,
                "checkpoint_every": every,
            },
        }
        spec_path = os.path.join(directory, "study.pkl")
        tmp = f"{spec_path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as handle:
            pickle.dump(spec, handle, protocol=_PICKLE_PROTOCOL)
        os.replace(tmp, spec_path)
        tmp = f"{manifest_path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=1, sort_keys=True)
        os.replace(tmp, manifest_path)
    return _ChunkCheckpoint(directory=directory, every=every,
                            digest=digest)


def resume_fleet_lifetime_study(checkpoint_dir, *,
                                max_workers: Optional[int] = None,
                                min_chunks_for_pool: Optional[
                                    int] = None,
                                retries: int = 0,
                                on_report=None) -> FleetResult:
    """Resume a killed checkpointed study from its directory alone.

    Replays the exact study pinned in the directory's ``study.pkl``
    (written by the original
    :func:`~repro.system.fleet.run_fleet_lifetime_study` call):
    complete chunks load from their result files, incomplete ones
    continue from their newest progress snapshot, and the merged
    :class:`~repro.system.fleet.FleetResult` is bitwise-equal to the
    uninterrupted run.  Execution knobs (``max_workers``,
    ``min_chunks_for_pool``, ``retries``, ``on_report``) are free to
    differ from the original invocation -- they do not affect the
    result.
    """
    from repro.system import fleet as fleet_mod
    directory = os.fspath(checkpoint_dir)
    manifest_path = os.path.join(directory, "manifest.json")
    if not os.path.exists(manifest_path):
        raise CheckpointError(
            f"{directory} has no study manifest; nothing to resume")
    _load_manifest(manifest_path)
    spec_path = os.path.join(directory, "study.pkl")
    if not os.path.exists(spec_path):
        raise CheckpointError(
            f"{directory} has no study spec; re-invoke "
            "run_fleet_lifetime_study with the original arguments "
            "and checkpoint_dir to resume")
    try:
        with open(spec_path, "rb") as handle:
            spec = pickle.load(handle)
    except Exception as error:
        raise CheckpointError(
            f"cannot read study spec {spec_path}: {error}"
        ) from error
    kwargs = dict(spec["kwargs"])
    return fleet_mod.run_fleet_lifetime_study(
        spec["chip"], checkpoint_dir=directory,
        max_workers=max_workers,
        min_chunks_for_pool=min_chunks_for_pool, retries=retries,
        on_report=on_report, **kwargs)


# -- incremental sessions ---------------------------------------------------


class FleetSession:
    """Incremental fleet simulation: advance, query, snapshot, resume.

    The streaming counterpart of
    :func:`~repro.system.fleet.run_fleet_lifetime_study`: instead of
    pre-declaring a lifetime horizon, the caller advances the
    population epoch-by-epoch, queries live telemetry between calls,
    and can persist the full state at any point::

        session = FleetSession((3, 3), 64, workload, policy,
                               record_every=4)
        session.advance(24)
        p99 = session.guardband_quantile(0.99)
        session.save("fleet.npz")            # durable hand-off
        ...
        session = FleetSession.load("fleet.npz")   # fresh process
        session.advance(24)                  # bitwise-continues

    A session snapshot is self-contained: it embeds the construction
    spec (chip config, groups, cadence, calibration) alongside the
    advancing state, so :meth:`load` rebuilds the session without the
    original arguments.  Because the horizon is open-ended, records
    follow the ``record_every`` modulo rule only; results and
    guardbands therefore reflect the epochs recorded so far plus the
    live (current-epoch) degradation.
    """

    def __init__(self, chip: Union[Chip, ChipConfig,
                                   Tuple[int, int]],
                 n_chips: Optional[int] = None,
                 workload: Optional[Workload] = None,
                 policy: Optional[SchedulingPolicy] = None,
                 *,
                 groups: Optional[Sequence[FleetGroup]] = None,
                 epoch_s: float = units.hours(1.0),
                 record_every: int = 1,
                 variation: Union[FleetVariation, FleetVariationSpec,
                                  None] = None,
                 seed: int = 0,
                 calibration: Optional[BtiCalibration] = None,
                 em_reference: Optional[EmStressCondition] = None,
                 state_dtype=np.float64,
                 kernel_cache_budget_bytes: int = 256 * 2 ** 20):
        if isinstance(chip, Chip):
            built = chip
        elif isinstance(chip, ChipConfig):
            built = chip.build()
        else:
            rows, cols = chip
            built = Chip(int(rows), int(cols))
        if isinstance(chip, ChipConfig):
            config = chip
        else:
            config = ChipConfig(rows=built.rows, cols=built.cols,
                                core=built.core,
                                thermal=built.thermal.config)
        if groups is None:
            if n_chips is None or workload is None or policy is None:
                raise SimulationError(
                    "provide n_chips, workload and policy, or groups")
            groups = (FleetGroup(n_chips=n_chips, workload=workload,
                                 policy=policy),)
        else:
            if workload is not None or policy is not None:
                raise SimulationError(
                    "groups and workload/policy are mutually "
                    "exclusive")
            groups = tuple(groups)
            total = sum(group.n_chips for group in groups)
            if n_chips is not None and n_chips != total:
                raise SimulationError(
                    f"groups cover {total} chips, n_chips says "
                    f"{n_chips}")
            n_chips = total
        self._groups = tuple(groups)
        self._record_every = int(record_every)
        self._spec = {
            "chip": config,
            "kwargs": {
                "groups": self._groups,
                "epoch_s": float(epoch_s),
                "record_every": self._record_every,
                "seed": int(seed),
                "calibration": calibration,
                "em_reference": em_reference,
                "state_dtype": np.dtype(state_dtype).str,
                "kernel_cache_budget_bytes": int(
                    kernel_cache_budget_bytes),
            },
        }
        self._simulator = FleetSimulator(
            built, n_chips, calibration=calibration,
            em_reference=em_reference, epoch_s=epoch_s,
            variation=variation, seed=seed,
            kernel_cache_budget_bytes=kernel_cache_budget_bytes,
            state_dtype=state_dtype)
        self._run = _FleetRun(self._simulator, self._groups,
                              record_every=self._record_every,
                              n_epochs=None)

    @property
    def epoch(self) -> int:
        """Epochs advanced so far."""
        return self._run.epoch

    @property
    def n_chips(self) -> int:
        """Population size."""
        return self._simulator.state.n_chips

    @property
    def n_cores(self) -> int:
        """Cores per chip."""
        return self._simulator.state.n_cores

    def advance(self, n_epochs: int = 1) -> "FleetSession":
        """Advance the whole population by ``n_epochs`` epochs."""
        self._run.advance(n_epochs)
        return self

    def delta_vth_v(self) -> np.ndarray:
        """Current per-core threshold shift, ``(n_chips, n_cores)``."""
        return self._simulator.state.delta_vth_v().copy()

    def delta_vth_quantile(self, fraction: float) -> float:
        """Population quantile of the per-chip worst-core shift."""
        if not 0.0 <= fraction <= 1.0:
            raise SimulationError("fraction must be in [0, 1]")
        worst = self._simulator.state.delta_vth_v().max(axis=1)
        return float(np.quantile(worst, fraction))

    @property
    def guardbands(self) -> np.ndarray:
        """Per-chip guardband so far, ``(n_chips,)``.

        The max over every *recorded* worst-core degradation row and
        the live (current-epoch) degradation, so queries between
        record points never understate the needed margin.
        """
        delta = self._simulator.state.delta_vth_v()
        oscillator = self._simulator.chip.core.oscillator
        current = oscillator.delay_degradation_array(delta).max(
            axis=1)
        if self._run.worst:
            recorded = np.max(np.array(self._run.worst), axis=0)
            return np.maximum(recorded, current)
        return current

    def guardband_quantile(self, fraction: float) -> float:
        """Population quantile of the per-chip guardband so far."""
        if not 0.0 <= fraction <= 1.0:
            raise SimulationError("fraction must be in [0, 1]")
        return float(np.quantile(self.guardbands, fraction))

    def result(self) -> FleetResult:
        """The :class:`FleetResult` of everything advanced so far."""
        return self._run.result()

    def snapshot(self) -> FleetSnapshot:
        """Capture the full session state as a self-contained snapshot."""
        snapshot = _snapshot_run(self._run)
        snapshot.meta["kind"] = "fleet-session"
        snapshot.arrays["session/spec"] = np.frombuffer(
            pickle.dumps(self._spec, protocol=_PICKLE_PROTOCOL),
            dtype=np.uint8)
        return snapshot

    def save(self, path) -> None:
        """Persist the session to one snapshot file."""
        self.snapshot().save(path)

    def restore(self, snapshot: Union[FleetSnapshot, str,
                                      os.PathLike]) -> "FleetSession":
        """Reset this session to a snapshot's state, in place.

        The snapshot must come from a session of the same study
        (geometry, cohort layout, cadence, dtype); continuing from
        it is bitwise-equal to never having snapshotted.
        """
        if not isinstance(snapshot, FleetSnapshot):
            snapshot = FleetSnapshot.load(snapshot)
        run = _FleetRun(self._simulator, self._groups,
                        record_every=self._record_every,
                        n_epochs=None)
        _restore_run(run, snapshot)
        self._run = run
        return self

    @classmethod
    def load(cls, source: Union[FleetSnapshot, str, os.PathLike]
             ) -> "FleetSession":
        """Rebuild a session from a snapshot (file or in-memory).

        Uses the embedded construction spec, so no original
        arguments are needed; the restored session continues
        bitwise-identically to the one that saved the snapshot.
        """
        if not isinstance(source, FleetSnapshot):
            source = FleetSnapshot.load(source)
        if "session/spec" not in source.arrays:
            raise CheckpointError(
                "snapshot does not embed a session spec (was it "
                "written by FleetSession.save?)")
        try:
            spec = pickle.loads(
                source.arrays["session/spec"].tobytes())
        except Exception as error:
            raise CheckpointError(
                f"session spec is corrupt: {error}") from error
        kwargs = dict(spec["kwargs"])
        variation = FleetVariation(
            capture_scale=np.array(
                source.arrays["variation/capture_scale"]),
            recovery_scale=np.array(
                source.arrays["variation/recovery_scale"]),
            em_current_scale=np.array(
                source.arrays["variation/em_current_scale"]))
        session = cls(spec["chip"], groups=kwargs.pop("groups"),
                      variation=variation, **kwargs)
        return session.restore(source)
