"""Chip-level reliability reporting from system-simulation results.

Bridges the system simulator and the EM population statistics: a
:class:`~repro.system.simulator.SystemResult` describes what each
core's local grid and logic look like after a horizon; this module
extrapolates those trajectories to mission scale and reports the
quantities a reliability sign-off asks for -- BTI margin, EM
weakest-link lifetime, and mission-success probability.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro import units
from repro.em.statistics import WirePopulationSpec
from repro.errors import SimulationError
from repro.system.simulator import SystemResult


@dataclass(frozen=True)
class ReliabilityReport:
    """Mission-level reliability summary of one simulated policy.

    Attributes:
        horizon_s: simulated horizon the extrapolation is based on.
        mission_s: mission length the report extrapolates to.
        bti_margin: delay guardband implied by the simulated horizon
            (the policy's worst-core envelope).
        em_chip_median_ttf_s: weakest-link median lifetime of the
            per-core grids.
        mission_survival_probability: probability that no grid fails
            within the mission.
    """

    horizon_s: float
    mission_s: float
    bti_margin: float
    em_chip_median_ttf_s: float
    mission_survival_probability: float

    def describe(self) -> str:
        """One-line summary for reports."""
        ttf_years = units.to_years(self.em_chip_median_ttf_s)
        ttf_text = (f"{ttf_years:.1f} y" if ttf_years < 1e4
                    else "> 10000 y")
        return (f"BTI margin {self.bti_margin:.2%}, EM chip median TTF "
                f"{ttf_text}, mission survival "
                f"{self.mission_survival_probability:.2%}")


def reliability_report(result: SystemResult, mission_s: float,
                       sigma: float = 0.4,
                       failure_drift_ohm: float = 5.0,
                       wires_per_core: int = 64) -> ReliabilityReport:
    """Extrapolate a simulated horizon to a mission-level verdict.

    The per-core EM drift accumulated over the horizon is assumed to
    continue at its average rate (the policy is stationary), giving a
    per-core time-to-failure-drift; the fastest-degrading core's TTF
    anchors a lognormal wire population (``wires_per_core`` segments
    per core behave like the simulated worst segment within process
    spread ``sigma``), and weakest-link statistics produce the chip
    TTF and mission survival.

    Args:
        result: a finished system-simulation result.
        mission_s: mission length to judge against.
        sigma: lognormal spread of the wire population.
        failure_drift_ohm: resistance drift treated as wire failure.
        wires_per_core: EM-exposed segments per core grid.
    """
    if mission_s <= 0.0:
        raise SimulationError("mission must be positive")
    if failure_drift_ohm <= 0.0:
        raise SimulationError("failure_drift_ohm must be positive")
    if wires_per_core < 1:
        raise SimulationError("wires_per_core must be at least 1")
    horizon_s = float(result.times_s[-1])
    if horizon_s <= 0.0:
        raise SimulationError("result has an empty horizon")

    worst_drift = float(result.final_em_drift_ohm.max())
    if worst_drift <= 0.0:
        # No drift observed: the horizon never nucleated.  The median
        # TTF is effectively unbounded at this operating point.
        median_ttf_s = float("inf")
        survival = 1.0
    else:
        rate = worst_drift / horizon_s
        wire_median_s = failure_drift_ohm / rate
        population = WirePopulationSpec(
            n_wires=wires_per_core * len(result.final_em_drift_ohm),
            median_ttf_s=wire_median_s, sigma=sigma)
        median_ttf_s = population.chip_median_ttf_s()
        survival = 1.0 - population.chip_failure_probability(mission_s)

    return ReliabilityReport(
        horizon_s=horizon_s,
        mission_s=mission_s,
        bti_margin=result.guardband,
        em_chip_median_ttf_s=median_ttf_s,
        mission_survival_probability=survival)
