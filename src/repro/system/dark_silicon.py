"""Dark-silicon-aware healing rotation (Section IV-B of the paper).

"The 'dark' parts of the chip usually lead to some 'redundant'
resources which have intrinsic OFF periods ... if these redundant
resources can be scheduled and allocated in such a way that they can be
healed by the generated heat from the neighboring active elements, the
recovery can be further sped up."

The policy keeps ``n_dark`` cores dark each epoch.  Dark cores are in
BTI active recovery; which cores go dark is chosen by a score that
prefers (a) the most-aged cores -- they need healing most -- and,
optionally, (b) cores with many *loaded* neighbours -- they will sit in
the hottest spot of the floorplan, and heat accelerates recovery.
A dwell counter prevents thrashing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import SimulationError
from repro.system.chip import Chip
from repro.system.scheduler import CoreAssignment, _spread


@dataclass
class DarkSiliconRotationPolicy:
    """Heal the most-aged cores in the warmest dark slots.

    Attributes:
        chip: the chip (needed for neighbour lookups).
        n_dark: cores kept dark (healing) each epoch.
        heat_aware: prefer dark slots adjacent to loaded cores, so
            neighbour heat accelerates the recovery.
        dwell_epochs: minimum epochs a core stays dark once selected.
        em_alternate_every: period of EM reverse-current epochs for
            the active cores; 0 disables.
        age_weight: relative weight of wearout vs neighbour heat in
            the dark-slot score.
    """

    chip: Chip
    n_dark: int = 1
    heat_aware: bool = True
    dwell_epochs: int = 4
    em_alternate_every: int = 2
    age_weight: float = 1.0
    _dark_set: List[int] = field(default_factory=list, repr=False)
    _dwell_left: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if not 0 <= self.n_dark < self.chip.n_cores:
            raise SimulationError(
                "n_dark must leave at least one active core")
        if self.dwell_epochs < 1:
            raise SimulationError("dwell_epochs must be at least 1")
        if self.age_weight < 0.0:
            raise SimulationError("age_weight must be non-negative")

    def _score(self, delta_vth_v: np.ndarray,
               previous_utilization: Optional[np.ndarray]) -> np.ndarray:
        scale = max(float(delta_vth_v.max()), 1e-12)
        score = self.age_weight * delta_vth_v / scale
        if self.heat_aware and previous_utilization is not None:
            for index in range(self.chip.n_cores):
                neighbours = self.chip.neighbours_of(index)
                if neighbours:
                    heat = float(np.mean(
                        previous_utilization[neighbours]))
                    score[index] += 0.5 * heat
        return score

    def assign(self, epoch: int, demand: float,
               delta_vth_v: np.ndarray,
               previous_utilization: Optional[np.ndarray] = None
               ) -> CoreAssignment:
        """Pick the dark set, then spread the demand over the rest."""
        n = self.chip.n_cores
        delta_vth_v = np.asarray(delta_vth_v, dtype=float)
        if delta_vth_v.shape != (n,):
            raise SimulationError(
                f"delta_vth_v must have shape ({n},)")
        if self.n_dark == 0:
            dark = np.zeros(n, dtype=bool)
        else:
            if self._dwell_left <= 0 or not self._dark_set:
                score = self._score(delta_vth_v, previous_utilization)
                self._dark_set = list(
                    np.argsort(score)[::-1][:self.n_dark])
                self._dwell_left = self.dwell_epochs
            self._dwell_left -= 1
            dark = np.zeros(n, dtype=bool)
            dark[self._dark_set] = True
        available = ~dark
        utilization = _spread(demand, available)
        placed = float(utilization.sum())
        em = np.zeros(n, dtype=bool)
        if self.em_alternate_every and \
                epoch % self.em_alternate_every == 0:
            em = available & (utilization > 0.0)
        return CoreAssignment(
            utilization=utilization,
            bti_recovering=dark,
            em_recovering=em,
            dropped_demand=max(demand - placed, 0.0))
