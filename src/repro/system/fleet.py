"""Structure-of-arrays fleet engine: a population of chips per step.

The paper's headline results (Figs. 12-14) are population statements --
guardband reduction and EM lifetime gains across many chips -- but the
pooled sweep layer pays one Python simulator (and often one process
task) per chip.  For the *homogeneous* population that dominates those
studies (one chip design, one workload, one policy, per-chip process
variation) this module advances every chip in lockstep instead:

* :class:`FleetState` owns the whole population's aging state as
  stacked arrays -- trap occupancies/ages/weights and permanent Vth in
  a :class:`~repro.bti.fleet.StackedTrapPopulations`, EM
  nucleation/void accumulators in one flat
  :class:`~repro.system.aging.FleetEmState` -- plus the per-chip
  process-variation scales drawn up front.
* :class:`FleetSimulator` runs the same epoch loop as
  :class:`~repro.system.simulator.SystemSimulator`, but evaluates the
  BTI condition kernels and EM rate factors over the whole
  ``(n_chips, n_cores)`` stack in single ufunc passes.  All chips
  share each epoch's assignment, so the thermal steady state is
  solved (and memoized) once per assignment for the entire
  population.
* :func:`run_fleet_lifetime_study` is the population entry point that
  replaces ``run_lifetime_sweep`` for homogeneous fleets; the pool
  remains the right tool for genuinely heterogeneous grids (different
  chips, policies or workload seeds per cell).

Exactness: chip ``i`` of a fleet advances bit-identically to a
standalone :class:`~repro.system.simulator.SystemSimulator` built with
``variation.chip(i)`` -- both paths share
:func:`~repro.system.simulator.base_epoch_conditions`, apply the same
variation multiplies, and the stacked BTI/EM steps are elementwise in
the unit dimension (see :mod:`repro.bti.fleet`).  The equivalence
tests assert agreement to <= 1e-10 per chip; in practice it is exact.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple, Union

import numpy as np

from repro import units
from repro.bti.calibration import BtiCalibration, default_calibration
from repro.bti.conditions import BtiConditionKernels
from repro.bti.fleet import StackedTrapPopulations
from repro.em.line import EmStressCondition
from repro.errors import SimulationError
from repro.solvers import FactorizationCache
from repro.solvers.sweep import task_seed_sequence
from repro.system.aging import FleetEmState
from repro.system.chip import Chip
from repro.system.simulator import (
    ChipVariation,
    SchedulingPolicy,
    SystemResult,
    Workload,
    base_epoch_conditions,
)
from repro.system.sweeps import ChipConfig


# -- process variation ------------------------------------------------------


@dataclass(frozen=True)
class FleetVariation:
    """Drawn per-chip variation scales for a whole population.

    Attributes:
        capture_scale / recovery_scale / em_current_scale: positive
            ``(n_chips,)`` multipliers; see
            :class:`~repro.system.simulator.ChipVariation` for their
            meaning.
    """

    capture_scale: np.ndarray
    recovery_scale: np.ndarray
    em_current_scale: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.capture_scale)
        for name in ("capture_scale", "recovery_scale",
                     "em_current_scale"):
            array = getattr(self, name)
            if array.shape != (n,):
                raise SimulationError(
                    "variation arrays must share one (n_chips,) shape")
            if np.any(array <= 0.0):
                raise SimulationError(f"{name} must be positive")

    @property
    def n_chips(self) -> int:
        """Population size of the draw."""
        return len(self.capture_scale)

    @classmethod
    def none(cls, n_chips: int) -> "FleetVariation":
        """An exact no-op draw (every scale 1.0)."""
        if n_chips < 1:
            raise SimulationError("n_chips must be at least 1")
        ones = np.ones(n_chips)
        return cls(capture_scale=ones.copy(),
                   recovery_scale=ones.copy(),
                   em_current_scale=ones.copy())

    def chip(self, index: int) -> ChipVariation:
        """The scalar :class:`ChipVariation` of one fleet member."""
        return ChipVariation(
            capture_scale=float(self.capture_scale[index]),
            recovery_scale=float(self.recovery_scale[index]),
            em_current_scale=float(self.em_current_scale[index]))


@dataclass(frozen=True)
class FleetVariationSpec:
    """Lognormal process-variation law for a fleet draw.

    Each chip's scales are ``exp(sigma * z)`` with independent
    standard-normal ``z`` per knob, so the medians stay at 1.0 and a
    sigma of 0 degenerates to *exactly* 1.0 (bitwise no-op).  Chip
    ``k`` draws from ``task_seed_sequence(seed, k)`` -- the same
    deterministic per-index stream the sweep runner uses -- so the
    draw of a chip never depends on the population size and a fleet
    member can be reproduced standalone.

    Attributes:
        capture_sigma / recovery_sigma / em_current_sigma: log-space
            standard deviations of the three scales.
    """

    capture_sigma: float = 0.0
    recovery_sigma: float = 0.0
    em_current_sigma: float = 0.0

    def __post_init__(self) -> None:
        for name in ("capture_sigma", "recovery_sigma",
                     "em_current_sigma"):
            if getattr(self, name) < 0.0:
                raise SimulationError(f"{name} must be non-negative")

    def draw_chip(self, index: int, seed: int = 0) -> ChipVariation:
        """The variation of one chip (independent of fleet size)."""
        rng = np.random.default_rng(task_seed_sequence(seed, index))
        z = rng.standard_normal(3)
        return ChipVariation(
            capture_scale=float(np.exp(self.capture_sigma * z[0])),
            recovery_scale=float(np.exp(self.recovery_sigma * z[1])),
            em_current_scale=float(
                np.exp(self.em_current_sigma * z[2])))

    def draw(self, n_chips: int, seed: int = 0) -> FleetVariation:
        """Draw a whole population (chip ``k`` == ``draw_chip(k)``)."""
        if n_chips < 1:
            raise SimulationError("n_chips must be at least 1")
        capture = np.empty(n_chips)
        recovery = np.empty(n_chips)
        em = np.empty(n_chips)
        for index in range(n_chips):
            chip = self.draw_chip(index, seed)
            capture[index] = chip.capture_scale
            recovery[index] = chip.recovery_scale
            em[index] = chip.em_current_scale
        return FleetVariation(capture_scale=capture,
                              recovery_scale=recovery,
                              em_current_scale=em)


# -- results ----------------------------------------------------------------


@dataclass(frozen=True)
class FleetResult:
    """Timeline and summary of one fleet simulation.

    The per-epoch observables carry a trailing chip axis; scalars that
    are shared across the population (times, demand bookkeeping,
    migration count -- all chips run the same schedule) are stored
    once.

    Attributes:
        times_s: recorded end-of-epoch stamps, ``(n_records,)``.
        worst_degradation: worst-core delay degradation per record and
            chip, ``(n_records, n_chips)``.
        mean_degradation: chip-mean degradation, same shape.
        dropped_demand: unplaced demand per record (shared).
        final_delta_vth_v: ``(n_chips, n_cores)`` total shift at the
            end; ``final_permanent_vth_v`` / ``final_em_drift_ohm`` /
            ``em_failures`` likewise.
        variation: the per-chip scales the fleet ran with.
        migration_events: per-chip transitions into BTI recovery
            (identical for every chip of a homogeneous fleet).
        n_epochs / total_demand / total_dropped_demand: as in
            :class:`~repro.system.simulator.SystemResult`.
    """

    times_s: np.ndarray
    worst_degradation: np.ndarray
    mean_degradation: np.ndarray
    dropped_demand: np.ndarray
    final_delta_vth_v: np.ndarray
    final_permanent_vth_v: np.ndarray
    final_em_drift_ohm: np.ndarray
    em_failures: np.ndarray
    variation: FleetVariation
    migration_events: int = 0
    n_epochs: int = 0
    total_demand: float = 0.0
    total_dropped_demand: float = 0.0

    @property
    def n_chips(self) -> int:
        """Population size."""
        return self.final_delta_vth_v.shape[0]

    @property
    def guardbands(self) -> np.ndarray:
        """Per-chip required delay margin, ``(n_chips,)``."""
        return self.worst_degradation.max(axis=0, initial=0.0)

    def guardband_quantile(self, fraction: float) -> float:
        """Population quantile of the per-chip guardband."""
        if not 0.0 <= fraction <= 1.0:
            raise SimulationError("fraction must be in [0, 1]")
        return float(np.quantile(self.guardbands, fraction))

    @property
    def em_failure_fraction(self) -> float:
        """Fraction of chips with at least one failed local grid."""
        return float(self.em_failures.any(axis=1).mean())

    def chip_result(self, index: int) -> SystemResult:
        """The :class:`SystemResult` view of one fleet member.

        Field-for-field what a standalone
        :class:`~repro.system.simulator.SystemSimulator` with this
        chip's variation returns (the equivalence tests compare
        exactly this object).
        """
        if not 0 <= index < self.n_chips:
            raise SimulationError(
                f"chip index must be in [0, {self.n_chips})")
        return SystemResult(
            times_s=self.times_s.copy(),
            worst_degradation=self.worst_degradation[:, index].copy(),
            mean_degradation=self.mean_degradation[:, index].copy(),
            dropped_demand=self.dropped_demand.copy(),
            final_delta_vth_v=self.final_delta_vth_v[index].copy(),
            final_permanent_vth_v=self.final_permanent_vth_v[
                index].copy(),
            final_em_drift_ohm=self.final_em_drift_ohm[index].copy(),
            em_failures=self.em_failures[index].copy(),
            migration_events=self.migration_events,
            n_epochs=self.n_epochs,
            total_demand=self.total_demand,
            total_dropped_demand=self.total_dropped_demand)

    def describe(self) -> str:
        """One-line population summary used by examples and benches."""
        bands = self.guardbands
        return (f"{self.n_chips} chips: guardband p50 "
                f"{np.quantile(bands, 0.50):.2%}, p99 "
                f"{np.quantile(bands, 0.99):.2%}, max "
                f"{bands.max():.2%}; EM-failed chips "
                f"{self.em_failure_fraction:.2%}")


# -- the engine -------------------------------------------------------------


class _EpochConditions:
    """One assignment's condition bundle for the whole stack."""

    __slots__ = ("temps", "stressing", "capture_safe", "recovery",
                 "j_flat", "temps_flat", "token")

    def __init__(self, temps, stressing, capture_safe, recovery,
                 j_flat, temps_flat, token):
        self.temps = temps
        self.stressing = stressing
        self.capture_safe = capture_safe
        self.recovery = recovery
        self.j_flat = j_flat
        self.temps_flat = temps_flat
        self.token = token


def _budget_entries(budget_bytes: int, entry_bytes: int,
                    cap: int) -> int:
    """Cache capacity that keeps ``cap`` entries under a byte budget."""
    if entry_bytes <= 0:
        return cap
    return int(min(cap, max(0, budget_bytes // entry_bytes)))


class FleetState:
    """Structure-of-arrays aging state of a chip population.

    Owns the stacked BTI trap populations, the flat per-core EM
    accumulators and the drawn per-chip variation scales.  The layout
    is chip-major: core ``c`` of chip ``k`` is flat unit
    ``k * n_cores + c``.
    """

    def __init__(self, chip: Chip, variation: FleetVariation,
                 calibration: BtiCalibration,
                 em_reference: EmStressCondition,
                 kernel_cache_budget_bytes: int):
        self.n_chips = variation.n_chips
        self.n_cores = chip.n_cores
        self.variation = variation
        rows = self.n_chips * self.n_cores
        population = replace(
            calibration.model_config.population, n_bins=64)
        # A cached BTI kernel holds two dense (rows, n_bins) float
        # arrays plus three (rows, 1) columns; size the memo so a
        # cycling schedule can be fully resident without letting a
        # million-chip fleet allocate gigabytes.
        kernel_entries = _budget_entries(
            kernel_cache_budget_bytes,
            (2 * population.n_bins + 3) * rows * 8, cap=16)
        self.bti = StackedTrapPopulations(
            self.n_chips, self.n_cores, population,
            kernel_cache_size=kernel_entries)
        # EM rate entries are five (rows,) arrays -- far lighter.
        em_entries = max(1, _budget_entries(
            64 * 2 ** 20, 5 * rows * 8, cap=64))
        self.em = FleetEmState(rows, em_reference,
                               step_cache_size=em_entries)

    def delta_vth_v(self) -> np.ndarray:
        """Total per-core shift, ``(n_chips, n_cores)``."""
        return self.bti.delta_vth_v()


class FleetSimulator:
    """Drives a whole chip population through its lifetime.

    The epoch loop mirrors
    :class:`~repro.system.simulator.SystemSimulator.run` -- demand,
    assignment, thermal solve, BTI/EM advance, recording -- with every
    per-core quantity carrying a chip axis.  All chips execute the
    same schedule (the homogeneity contract), so the policy is
    consulted once per epoch; it sees the population-worst per-core
    shift as its aging observable.  Policies that ignore the shift
    values (the round-robin and no-recovery policies) therefore
    produce assignments identical to any single chip's standalone run,
    which is what makes fleet-vs-serial equivalence exact.

    Args:
        chip: the shared chip design (one thermal network, memoized
            across the whole fleet).
        variation: per-chip scales, a spec to draw them from, or
            ``None`` for an identical population.
        seed: draw seed used when ``variation`` is a spec.
        kernel_cache_budget_bytes: memory budget of the stacked BTI
            sub-step kernel memo (the dominant cache at fleet scale).
    """

    def __init__(self, chip: Chip, n_chips: int,
                 calibration: Optional[BtiCalibration] = None,
                 em_reference: Optional[EmStressCondition] = None,
                 epoch_s: float = units.hours(1.0),
                 variation: Union[FleetVariation, FleetVariationSpec,
                                  None] = None,
                 seed: int = 0,
                 kernel_cache_budget_bytes: int = 256 * 2 ** 20):
        if epoch_s <= 0.0:
            raise SimulationError("epoch_s must be positive")
        if n_chips < 1:
            raise SimulationError("n_chips must be at least 1")
        self.chip = chip
        self.epoch_s = epoch_s
        self.calibration = calibration or default_calibration()
        if variation is None:
            variation = FleetVariation.none(n_chips)
        elif isinstance(variation, FleetVariationSpec):
            variation = variation.draw(n_chips, seed)
        if variation.n_chips != n_chips:
            raise SimulationError(
                f"variation draw covers {variation.n_chips} chips, "
                f"fleet has {n_chips}")
        self.em_reference = em_reference or EmStressCondition(
            current_density_a_m2=chip.core.grid_current_density_a_m2,
            temperature_k=units.celsius_to_kelvin(85.0),
            name="grid reference")
        self.state = FleetState(chip, variation, self.calibration,
                                self.em_reference,
                                kernel_cache_budget_bytes)
        self.kernels = BtiConditionKernels(
            self.calibration.model_config.acceleration,
            self.calibration.model_config.reference_stress,
            stress_voltage_v=chip.core.stress_voltage_v)
        # One bundle per distinct assignment: the base conditions are
        # computed once (shared thermal memo), the variation scales
        # broadcast once, and every repeat epoch is a dictionary hit.
        rows = n_chips * chip.n_cores
        bundle_entries = max(1, _budget_entries(
            64 * 2 ** 20, 33 * rows, cap=64))
        self._condition_cache = FactorizationCache(
            maxsize=bundle_entries, name="fleet.conditions")

    @property
    def variation(self) -> FleetVariation:
        """The per-chip scales this fleet runs with."""
        return self.state.variation

    def _epoch_conditions(self, assignment) -> _EpochConditions:
        key = (assignment.utilization.tobytes(),
               assignment.bti_recovering.tobytes(),
               assignment.em_recovering.tobytes())
        return self._condition_cache.get_or_build(
            key, lambda: self._build_conditions(assignment, key))

    def _build_conditions(self, assignment, key) -> _EpochConditions:
        temps, active, capture, recovery, j = base_epoch_conditions(
            self.chip, self.kernels, assignment)
        v = self.variation
        n_chips, n_cores = self.state.n_chips, self.state.n_cores
        shape = (n_chips, n_cores)
        # Outer products against the variation scales: element (k, c)
        # is base[c] * scale[k], the same single multiply the scalar
        # simulator applies, so each row matches its standalone chip
        # bitwise.
        capture2d = capture[None, :] * v.capture_scale[:, None]
        capture_safe = np.where(capture2d > 0.0, capture2d, 1.0)
        recovery2d = recovery[None, :] * v.recovery_scale[:, None]
        j2d = j[None, :] * v.em_current_scale[:, None]
        stressing = np.ascontiguousarray(
            np.broadcast_to(active[None, :], shape))
        temps_flat = np.ascontiguousarray(
            np.broadcast_to(temps[None, :], shape)).reshape(-1)
        return _EpochConditions(temps, stressing, capture_safe,
                                recovery2d, j2d.reshape(-1),
                                temps_flat, key)

    def run(self, n_epochs: int, workload: Workload,
            policy: SchedulingPolicy,
            record_every: int = 1) -> FleetResult:
        """Simulate ``n_epochs`` epochs for the whole population."""
        if n_epochs < 1:
            raise SimulationError("n_epochs must be at least 1")
        if record_every < 1:
            raise SimulationError("record_every must be at least 1")
        state = self.state
        thermal = self.chip.thermal
        oscillator = self.chip.core.oscillator
        previous_utilization: Optional[np.ndarray] = None
        previous_recovering = np.zeros(self.chip.n_cores, dtype=bool)
        migration_events = 0
        total_demand = 0.0
        total_dropped = 0.0
        times: List[float] = []
        worst: List[np.ndarray] = []
        mean: List[np.ndarray] = []
        dropped: List[float] = []
        delta_vth = state.delta_vth_v()
        for epoch in range(n_epochs):
            demand = workload.demand(epoch)
            assignment = policy.assign(
                epoch, demand, delta_vth.max(axis=0),
                previous_utilization)
            recovering = assignment.bti_recovering
            cond = self._epoch_conditions(assignment)
            state.bti.step(self.epoch_s, cond.stressing,
                           cond.capture_safe, cond.recovery,
                           kernel_key=cond.token)
            state.em.step(self.epoch_s, cond.j_flat, cond.temps_flat,
                          key=(self.epoch_s, cond.token))
            migration_events += int(np.count_nonzero(
                recovering & ~previous_recovering))
            previous_recovering = recovering
            previous_utilization = assignment.utilization
            total_demand += demand
            total_dropped += assignment.dropped_demand
            delta_vth = state.delta_vth_v()
            if (epoch + 1) % record_every == 0 or epoch == n_epochs - 1:
                degradation = oscillator.delay_degradation_array(
                    delta_vth)
                times.append((epoch + 1) * self.epoch_s)
                worst.append(degradation.max(axis=1))
                mean.append(degradation.mean(axis=1))
                dropped.append(assignment.dropped_demand)
        # Same read-out refresh as the scalar simulator: the network's
        # state reflects the last epoch's (shared) solve.
        thermal.temperatures_k = cond.temps.copy()
        read_t = float(np.max(thermal.temperatures_k))
        shape = (state.n_chips, state.n_cores)
        return FleetResult(
            times_s=np.array(times),
            worst_degradation=np.array(worst),
            mean_degradation=np.array(mean),
            dropped_demand=np.array(dropped),
            final_delta_vth_v=state.bti.delta_vth_v(),
            final_permanent_vth_v=state.bti.permanent_vth_v().copy(),
            final_em_drift_ohm=state.em.delta_resistance_ohm()
            .reshape(shape),
            em_failures=state.em.failed(read_t).reshape(shape),
            variation=self.variation,
            migration_events=migration_events,
            n_epochs=n_epochs,
            total_demand=total_demand,
            total_dropped_demand=total_dropped)


def run_fleet_lifetime_study(
        chip: Union[Chip, ChipConfig, Tuple[int, int]],
        n_chips: int,
        workload: Workload,
        policy: SchedulingPolicy,
        *,
        n_epochs: int,
        epoch_s: float = units.hours(1.0),
        record_every: int = 1,
        variation: Union[FleetVariation, FleetVariationSpec,
                         None] = None,
        seed: int = 0,
        calibration: Optional[BtiCalibration] = None,
        em_reference: Optional[EmStressCondition] = None) -> FleetResult:
    """Monte Carlo lifetime study of a homogeneous chip population.

    The in-process replacement for fanning ``n_chips`` identical
    cells through ``run_lifetime_sweep``: one
    :class:`FleetSimulator` advances the whole population as stacked
    arrays, with per-chip diversity coming from the ``variation``
    draw.  Use the pooled sweep when the cells genuinely differ
    (chip designs, policies, per-cell workload seeds).

    Args:
        chip: the shared design -- a live :class:`Chip`, a
            :class:`ChipConfig`, or a bare ``(rows, cols)`` tuple.
        n_chips: population size.
        workload / policy: shared demand generator and scheduling
            policy (consulted once per epoch for the whole fleet).
        n_epochs / epoch_s / record_every: as in
            :meth:`SystemSimulator.run`.
        variation: per-chip process variation -- a
            :class:`FleetVariationSpec` to draw from ``seed``, a
            pre-drawn :class:`FleetVariation`, or ``None`` for an
            identical population.
        seed: variation draw seed (chip ``k`` draws from
            ``task_seed_sequence(seed, k)``).
        calibration / em_reference: forwarded to the simulator.

    Returns:
        A :class:`FleetResult`; ``chip_result(i)`` recovers any
        member's full :class:`SystemResult`.
    """
    if isinstance(chip, Chip):
        built = chip
    elif isinstance(chip, ChipConfig):
        built = chip.build()
    else:
        rows, cols = chip
        built = Chip(int(rows), int(cols))
    simulator = FleetSimulator(
        built, n_chips, calibration=calibration,
        em_reference=em_reference, epoch_s=epoch_s,
        variation=variation, seed=seed)
    return simulator.run(n_epochs, workload, policy,
                         record_every=record_every)
