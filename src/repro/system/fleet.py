"""Structure-of-arrays fleet engine: a population of chips per step.

The paper's headline results (Figs. 12-14) are population statements --
guardband reduction and EM lifetime gains across many chips -- but the
pooled sweep layer pays one Python simulator (and often one process
task) per chip.  This module advances every chip in lockstep instead:

* :class:`FleetState` owns the whole population's aging state as
  stacked arrays -- trap occupancies/ages/weights and permanent Vth in
  a :class:`~repro.bti.fleet.StackedTrapPopulations`, EM
  nucleation/void accumulators in one flat
  :class:`~repro.system.aging.FleetEmState` -- plus the per-chip
  process-variation scales drawn up front.
* :class:`FleetSimulator` runs the same epoch loop as
  :class:`~repro.system.simulator.SystemSimulator`, but evaluates the
  BTI condition kernels and EM rate factors over the whole
  ``(n_chips, n_cores)`` stack in single ufunc passes.
* :class:`FleetGroup` generalizes the engine beyond "one workload, one
  policy": a population is a sequence of groups, each with its own
  workload, scheduling policy, and optional per-chip *workload phase*
  offsets.  Internally each group splits into *cohorts* -- maximal
  runs of consecutive chips sharing one phase -- and every cohort gets
  its own fresh policy/workload copy and its own per-epoch scheduling
  decision, while the BTI/EM state still advances in one stacked
  sweep over all cohorts.  Chips in different timezones, racks with
  different healing policies, and a control group all batch into one
  tensor advance.
* :func:`run_fleet_lifetime_study` is the population entry point; for
  populations too large to hold in memory at once it streams the fleet
  in row chunks under a byte budget (``max_chunk_chips`` /
  ``state_budget_bytes``), re-using one chip (and one thermal memo)
  across every chunk.  Chunks are whole-lifetime and independent, so
  with ``max_workers > 1`` they dispatch across a process pool
  (:func:`repro.solvers.sweep.run_sweep`'s crash-safe machinery:
  bounded retries, chunk-level serial re-execution after worker
  death, :class:`~repro.solvers.SweepReport` telemetry with
  per-worker cache counters aggregated), shipping per-chip outputs
  back through one preallocated ``multiprocessing.shared_memory``
  slab instead of pickling multi-hundred-MB arrays.  Results merge
  by a deterministic row-ordered scatter, so the outcome is bitwise
  identical to the serial chunk stream for every worker count and
  completion order; ``state_budget_bytes`` is a *per-worker* budget
  (total residency is ``n_workers x budget`` by construction).

Exactness: chip ``i`` of a fleet advances bit-identically to a
standalone :class:`~repro.system.simulator.SystemSimulator` built with
``variation.chip(i)``, driven by the chip's (phase-shifted) workload
and a fresh copy of its group's policy -- both paths share
:func:`~repro.system.simulator.base_epoch_conditions`, apply the same
variation multiplies, and the stacked BTI/EM steps are elementwise in
the unit dimension (see :mod:`repro.bti.fleet`).  The one coupling is
the aging observable handed to the policy: a cohort's policy sees the
*cohort-worst* per-core shift.  With no variation the cohort's rows
are identical, so this equals every member's own observable and the
equivalence is exact for any policy; with variation it stays exact for
policies that ignore the shift values (the round-robin and
no-recovery policies) and for singleton cohorts.  The same contract
makes chunked execution invariant in the chunk size.

Reduced precision: ``state_dtype=np.float32`` halves the trap-state
memory.  Condition kernels and sub-step counts are still derived in
float64 and rounded once per epoch, so the float32 trajectory tracks
the float64 one within :data:`FLOAT32_MAX_RELATIVE_ERROR` (pinned by
the fleet tests); ``state_dtype=np.float64`` (the default) is bitwise
identical to the single-chip engine.
"""

from __future__ import annotations

import copy
import os
import threading
import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import units
from repro.bti.calibration import BtiCalibration, default_calibration
from repro.bti.conditions import BtiConditionKernels
from repro.bti.fleet import StackedTrapPopulations
from repro.em.line import EmStressCondition
from repro.errors import SimulationError
from repro.solvers import FactorizationCache, cache_counters, record_counters
from repro.solvers.sweep import (
    ChunkRecord,
    ChunkTask,
    SweepReport,
    _cache_delta,
    chunk_tasks,
    run_sweep,
    task_seed_sequence,
)
from repro.system.aging import FleetEmState
from repro.system.chip import Chip
from repro.system.simulator import (
    ChipVariation,
    SchedulingPolicy,
    SystemResult,
    Workload,
    base_epoch_conditions,
)
from repro.system.sweeps import ChipConfig
from repro.system.workload import PhasedWorkload

#: Measured accuracy budget of ``state_dtype=np.float32``: the maximum
#: relative error of any chip's final per-core threshold shift (and of
#: the recorded degradation timeline) against the bit-exact float64
#: engine.  Kernels are built in float64 and rounded once per epoch,
#: so the error does not compound through the transcendental factor
#: math; it is dominated by the ~1e-7 rounding of the state
#: accumulators and grows sub-linearly with the horizon (measured
#: ~1.7e-7 at 26 epochs, ~1e-6 at 720 epochs, on mixed-phase /
#: mixed-policy variated fleets).  The bound leaves two orders of
#: headroom for multi-year horizons; the fleet tests pin it.
FLOAT32_MAX_RELATIVE_ERROR = 1e-4

#: Trap-bin count of the system-level population (the fleet engine
#: always runs the 64-bin configuration, see :class:`FleetState`).
_FLEET_N_BINS = 64


# -- process variation ------------------------------------------------------


@dataclass(frozen=True)
class FleetVariation:
    """Drawn per-chip variation scales for a whole population.

    Attributes:
        capture_scale / recovery_scale / em_current_scale: positive
            ``(n_chips,)`` multipliers; see
            :class:`~repro.system.simulator.ChipVariation` for their
            meaning.
    """

    capture_scale: np.ndarray
    recovery_scale: np.ndarray
    em_current_scale: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.capture_scale)
        for name in ("capture_scale", "recovery_scale",
                     "em_current_scale"):
            array = getattr(self, name)
            if array.shape != (n,):
                raise SimulationError(
                    "variation arrays must share one (n_chips,) shape")
            if np.any(array <= 0.0):
                raise SimulationError(f"{name} must be positive")

    @property
    def n_chips(self) -> int:
        """Population size of the draw."""
        return len(self.capture_scale)

    @classmethod
    def none(cls, n_chips: int) -> "FleetVariation":
        """An exact no-op draw (every scale 1.0)."""
        if n_chips < 1:
            raise SimulationError("n_chips must be at least 1")
        ones = np.ones(n_chips)
        return cls(capture_scale=ones.copy(),
                   recovery_scale=ones.copy(),
                   em_current_scale=ones.copy())

    def chip(self, index: int) -> ChipVariation:
        """The scalar :class:`ChipVariation` of one fleet member."""
        return ChipVariation(
            capture_scale=float(self.capture_scale[index]),
            recovery_scale=float(self.recovery_scale[index]),
            em_current_scale=float(self.em_current_scale[index]))

    def slice_range(self, start: int, stop: int) -> "FleetVariation":
        """The draw restricted to chips ``[start, stop)``.

        Chunked execution slices a pre-drawn population so chip ``k``
        keeps exactly the scales it would have in the unchunked run.
        """
        if not 0 <= start < stop <= self.n_chips:
            raise SimulationError(
                "slice must satisfy 0 <= start < stop <= n_chips")
        return FleetVariation(
            capture_scale=self.capture_scale[start:stop].copy(),
            recovery_scale=self.recovery_scale[start:stop].copy(),
            em_current_scale=self.em_current_scale[start:stop].copy())

    @classmethod
    def concatenate(cls, parts: Sequence["FleetVariation"]
                    ) -> "FleetVariation":
        """Stitch chunked draws back into one population draw."""
        if not parts:
            raise SimulationError("need at least one part")
        return cls(
            capture_scale=np.concatenate(
                [p.capture_scale for p in parts]),
            recovery_scale=np.concatenate(
                [p.recovery_scale for p in parts]),
            em_current_scale=np.concatenate(
                [p.em_current_scale for p in parts]))


@dataclass(frozen=True)
class FleetVariationSpec:
    """Lognormal process-variation law for a fleet draw.

    Each chip's scales are ``exp(sigma * z)`` with independent
    standard-normal ``z`` per knob, so the medians stay at 1.0 and a
    sigma of 0 degenerates to *exactly* 1.0 (bitwise no-op).  Chip
    ``k`` draws from ``task_seed_sequence(seed, k)`` -- the same
    deterministic per-index stream the sweep runner uses -- so the
    draw of a chip never depends on the population size (or on how
    the population is chunked) and a fleet member can be reproduced
    standalone.

    Attributes:
        capture_sigma / recovery_sigma / em_current_sigma: log-space
            standard deviations of the three scales.
    """

    capture_sigma: float = 0.0
    recovery_sigma: float = 0.0
    em_current_sigma: float = 0.0

    def __post_init__(self) -> None:
        for name in ("capture_sigma", "recovery_sigma",
                     "em_current_sigma"):
            if getattr(self, name) < 0.0:
                raise SimulationError(f"{name} must be non-negative")

    def draw_chip(self, index: int, seed: int = 0) -> ChipVariation:
        """The variation of one chip (independent of fleet size)."""
        rng = np.random.default_rng(task_seed_sequence(seed, index))
        z = rng.standard_normal(3)
        return ChipVariation(
            capture_scale=float(np.exp(self.capture_sigma * z[0])),
            recovery_scale=float(np.exp(self.recovery_sigma * z[1])),
            em_current_scale=float(
                np.exp(self.em_current_sigma * z[2])))

    def draw_range(self, start: int, stop: int,
                   seed: int = 0) -> FleetVariation:
        """Draw chips ``[start, stop)`` by their global indices.

        Chunked execution draws each chunk's rows directly, so the
        concatenation over chunks is bit-identical to one
        :meth:`draw` of the whole population.
        """
        if start < 0 or stop <= start:
            raise SimulationError(
                "draw range must satisfy 0 <= start < stop")
        n = stop - start
        capture = np.empty(n)
        recovery = np.empty(n)
        em = np.empty(n)
        for offset, index in enumerate(range(start, stop)):
            chip = self.draw_chip(index, seed)
            capture[offset] = chip.capture_scale
            recovery[offset] = chip.recovery_scale
            em[offset] = chip.em_current_scale
        return FleetVariation(capture_scale=capture,
                              recovery_scale=recovery,
                              em_current_scale=em)

    def draw(self, n_chips: int, seed: int = 0) -> FleetVariation:
        """Draw a whole population (chip ``k`` == ``draw_chip(k)``)."""
        if n_chips < 1:
            raise SimulationError("n_chips must be at least 1")
        return self.draw_range(0, n_chips, seed)


# -- population structure ---------------------------------------------------


@dataclass(frozen=True)
class FleetGroup:
    """A contiguous slice of the population sharing workload and policy.

    A heterogeneous fleet is a sequence of groups laid out
    back-to-back in chip order.  Every chip of a group runs the same
    scheduling policy and draws demand from the same workload
    template, optionally shifted by a per-chip ``phases`` offset (the
    chip observes ``workload.demand(epoch + phase)`` while its policy
    still sees the unshifted epoch -- see
    :class:`~repro.system.workload.PhasedWorkload`).

    The engine treats ``workload`` and ``policy`` as *templates*: each
    internal cohort (a maximal run of chips sharing one phase) gets a
    fresh ``copy.deepcopy`` before the run, so stateful policies
    (rotation cursors) and workloads (AR(1) streams) start fresh and a
    group's trajectory never depends on how the population is chunked.
    A ``policy`` without an ``assign`` method is treated as a factory
    called with the chip, mirroring the sweep layer.

    Attributes:
        n_chips: chips in the group.
        workload: shared demand template.
        policy: shared scheduling policy template (or factory).
        phases: optional per-chip non-negative epoch offsets,
            ``len == n_chips``.  Consecutive equal phases batch into
            one cohort, so sorted/blocked phase layouts schedule in
            O(distinct phases) per epoch.
        name: optional label for reports.
    """

    n_chips: int
    workload: Workload
    policy: SchedulingPolicy
    phases: Optional[Tuple[int, ...]] = None
    name: str = ""

    def __post_init__(self) -> None:
        if self.n_chips < 1:
            raise SimulationError("group n_chips must be at least 1")
        if self.phases is not None:
            phases = tuple(int(p) for p in self.phases)
            object.__setattr__(self, "phases", phases)
            if len(phases) != self.n_chips:
                raise SimulationError(
                    "phases must provide one offset per chip")
            if any(p < 0 for p in phases):
                raise SimulationError(
                    "phases must be non-negative")


class _Cohort:
    """One run of consecutive chips sharing workload, phase, policy."""

    __slots__ = ("start", "stop", "workload", "policy",
                 "previous_utilization", "previous_recovering")

    def __init__(self, start: int, stop: int, workload, policy,
                 n_cores: int):
        self.start = start
        self.stop = stop
        self.workload = workload
        self.policy = policy
        self.previous_utilization: Optional[np.ndarray] = None
        self.previous_recovering = np.zeros(n_cores, dtype=bool)


# -- results ----------------------------------------------------------------


@dataclass(frozen=True)
class FleetResult:
    """Timeline and summary of one fleet simulation.

    Every observable carries a chip axis -- a heterogeneous fleet has
    per-chip schedules, so demand bookkeeping and migration counts are
    per-chip arrays (for a homogeneous fleet every column/entry is
    identical).

    Attributes:
        times_s: recorded end-of-epoch stamps, ``(n_records,)``.
        worst_degradation: worst-core delay degradation per record and
            chip, ``(n_records, n_chips)``.
        mean_degradation: chip-mean degradation, same shape.
        dropped_demand: unplaced demand per record and chip,
            ``(n_records, n_chips)``.
        final_delta_vth_v: ``(n_chips, n_cores)`` total shift at the
            end; ``final_permanent_vth_v`` / ``final_em_drift_ohm`` /
            ``em_failures`` likewise.
        variation: the per-chip scales the fleet ran with.
        migration_events: per-chip transitions into BTI recovery,
            ``(n_chips,)``.
        n_epochs: epochs simulated (shared).
        total_demand / total_dropped_demand: per-chip demand
            bookkeeping, ``(n_chips,)``.
    """

    times_s: np.ndarray
    worst_degradation: np.ndarray
    mean_degradation: np.ndarray
    dropped_demand: np.ndarray
    final_delta_vth_v: np.ndarray
    final_permanent_vth_v: np.ndarray
    final_em_drift_ohm: np.ndarray
    em_failures: np.ndarray
    variation: FleetVariation
    migration_events: np.ndarray
    n_epochs: int
    total_demand: np.ndarray
    total_dropped_demand: np.ndarray

    @property
    def n_chips(self) -> int:
        """Population size."""
        return self.final_delta_vth_v.shape[0]

    @property
    def guardbands(self) -> np.ndarray:
        """Per-chip required delay margin, ``(n_chips,)``."""
        return self.worst_degradation.max(axis=0, initial=0.0)

    def guardband_quantile(self, fraction: float) -> float:
        """Population quantile of the per-chip guardband."""
        if not 0.0 <= fraction <= 1.0:
            raise SimulationError("fraction must be in [0, 1]")
        return float(np.quantile(self.guardbands, fraction))

    @property
    def em_failure_fraction(self) -> float:
        """Fraction of chips with at least one failed local grid."""
        return float(self.em_failures.any(axis=1).mean())

    def chip_result(self, index: int) -> SystemResult:
        """The :class:`SystemResult` view of one fleet member.

        Field-for-field what a standalone
        :class:`~repro.system.simulator.SystemSimulator` with this
        chip's variation, (phase-shifted) workload and a fresh policy
        copy returns (the equivalence tests compare exactly this
        object).
        """
        if not 0 <= index < self.n_chips:
            raise SimulationError(
                f"chip index must be in [0, {self.n_chips})")
        return SystemResult(
            times_s=self.times_s.copy(),
            worst_degradation=self.worst_degradation[:, index].copy(),
            mean_degradation=self.mean_degradation[:, index].copy(),
            dropped_demand=self.dropped_demand[:, index].copy(),
            final_delta_vth_v=self.final_delta_vth_v[index].copy(),
            final_permanent_vth_v=self.final_permanent_vth_v[
                index].copy(),
            final_em_drift_ohm=self.final_em_drift_ohm[index].copy(),
            em_failures=self.em_failures[index].copy(),
            migration_events=int(self.migration_events[index]),
            n_epochs=self.n_epochs,
            total_demand=float(self.total_demand[index]),
            total_dropped_demand=float(
                self.total_dropped_demand[index]))

    def describe(self) -> str:
        """One-line population summary used by examples and benches."""
        bands = self.guardbands
        return (f"{self.n_chips} chips: guardband p50 "
                f"{np.quantile(bands, 0.50):.2%}, p99 "
                f"{np.quantile(bands, 0.99):.2%}, max "
                f"{bands.max():.2%}; EM-failed chips "
                f"{self.em_failure_fraction:.2%}")


def _merge_fleet_results(parts: List[FleetResult]) -> FleetResult:
    """Concatenate chunk results back into one population result."""
    if len(parts) == 1:
        return parts[0]
    first = parts[0]
    return FleetResult(
        times_s=first.times_s,
        worst_degradation=np.concatenate(
            [p.worst_degradation for p in parts], axis=1),
        mean_degradation=np.concatenate(
            [p.mean_degradation for p in parts], axis=1),
        dropped_demand=np.concatenate(
            [p.dropped_demand for p in parts], axis=1),
        final_delta_vth_v=np.concatenate(
            [p.final_delta_vth_v for p in parts], axis=0),
        final_permanent_vth_v=np.concatenate(
            [p.final_permanent_vth_v for p in parts], axis=0),
        final_em_drift_ohm=np.concatenate(
            [p.final_em_drift_ohm for p in parts], axis=0),
        em_failures=np.concatenate(
            [p.em_failures for p in parts], axis=0),
        variation=FleetVariation.concatenate(
            [p.variation for p in parts]),
        migration_events=np.concatenate(
            [p.migration_events for p in parts]),
        n_epochs=first.n_epochs,
        total_demand=np.concatenate(
            [p.total_demand for p in parts]),
        total_dropped_demand=np.concatenate(
            [p.total_dropped_demand for p in parts]))


# -- the engine -------------------------------------------------------------


class _EpochConditions:
    """One epoch's condition bundle for the whole stack.

    Holds the full ``(n_chips, n_cores)`` stress/capture/recovery
    stack plus the per-cohort base temperature vectors (needed for
    the end-of-run EM read-out, which evaluates each cohort at its
    own hottest core).
    """

    __slots__ = ("temps", "stressing", "capture_safe", "recovery",
                 "j_flat", "temps_flat", "cohort_temps", "token")

    def __init__(self, temps, stressing, capture_safe, recovery,
                 j_flat, temps_flat, cohort_temps, token):
        self.temps = temps
        self.stressing = stressing
        self.capture_safe = capture_safe
        self.recovery = recovery
        self.j_flat = j_flat
        self.temps_flat = temps_flat
        self.cohort_temps = cohort_temps
        self.token = token


def _budget_entries(budget_bytes: int, entry_bytes: int,
                    cap: int) -> int:
    """Cache capacity that keeps ``cap`` entries under a byte budget."""
    if entry_bytes <= 0:
        return cap
    return int(min(cap, max(0, budget_bytes // entry_bytes)))


def state_bytes_per_chip(n_cores: int,
                         state_dtype=np.float64) -> int:
    """Resident aging-state bytes one fleet chip costs.

    Counts the stacked trap arrays (three state + three scratch
    ``(n_cores, n_bins)`` blocks in ``state_dtype`` plus two boolean
    masks) and the flat float64 EM accumulators.  The chunked runner
    divides ``state_budget_bytes`` by this to pick its row-block
    height.
    """
    itemsize = np.dtype(state_dtype).itemsize
    trap = n_cores * _FLEET_N_BINS * (6 * itemsize + 2)
    em = n_cores * 5 * 8
    return trap + em


class FleetState:
    """Structure-of-arrays aging state of a chip population.

    Owns the stacked BTI trap populations, the flat per-core EM
    accumulators and the drawn per-chip variation scales.  The layout
    is chip-major: core ``c`` of chip ``k`` is flat unit
    ``k * n_cores + c``.
    """

    def __init__(self, chip: Chip, variation: FleetVariation,
                 calibration: BtiCalibration,
                 em_reference: EmStressCondition,
                 kernel_cache_budget_bytes: int,
                 state_dtype=np.float64):
        self.n_chips = variation.n_chips
        self.n_cores = chip.n_cores
        self.variation = variation
        self.state_dtype = np.dtype(state_dtype)
        rows = self.n_chips * self.n_cores
        population = replace(
            calibration.model_config.population, n_bins=_FLEET_N_BINS)
        # A cached BTI kernel holds two dense (rows, n_bins) state-
        # dtype arrays plus three (rows, 1) columns; size the memo so
        # a cycling schedule can be fully resident without letting a
        # million-chip fleet allocate gigabytes.
        kernel_entries = _budget_entries(
            kernel_cache_budget_bytes,
            (2 * population.n_bins + 3) * rows
            * self.state_dtype.itemsize, cap=16)
        self.bti = StackedTrapPopulations(
            self.n_chips, self.n_cores, population,
            kernel_cache_size=kernel_entries,
            dtype=self.state_dtype)
        # EM rate entries are five (rows,) arrays -- far lighter.
        em_entries = max(1, _budget_entries(
            64 * 2 ** 20, 5 * rows * 8, cap=64))
        self.em = FleetEmState(rows, em_reference,
                               step_cache_size=em_entries)

    def delta_vth_v(self) -> np.ndarray:
        """Total per-core shift, ``(n_chips, n_cores)``, as float64.

        In float64 mode this is the state's own array (no copy); in
        float32 mode the reduced-precision state is upcast once here
        so every downstream observable (policy inputs, degradation
        records, results) stays float64.
        """
        return np.asarray(self.bti.delta_vth_v(), dtype=np.float64)


class FleetSimulator:
    """Drives a whole chip population through its lifetime.

    The epoch loop mirrors
    :class:`~repro.system.simulator.SystemSimulator.run` -- demand,
    assignment, thermal solve, BTI/EM advance, recording -- with every
    per-core quantity carrying a chip axis.  :meth:`run` drives a
    homogeneous population (one workload, one policy, one cohort);
    :meth:`run_groups` drives a heterogeneous one, consulting each
    cohort's policy once per epoch and assembling the per-cohort
    conditions into one stacked advance.  Cohort policies see their
    cohort-worst per-core shift as the aging observable (see the
    module docstring for the exactness contract this preserves).

    Args:
        chip: the shared chip design (one thermal network, memoized
            across the whole fleet -- and, in chunked runs, across
            chunks).
        variation: per-chip scales, a spec to draw them from, or
            ``None`` for an identical population.
        seed: draw seed used when ``variation`` is a spec.
        kernel_cache_budget_bytes: memory budget of the stacked BTI
            sub-step kernel memo (the dominant cache at fleet scale).
        state_dtype: trap-state dtype; ``np.float64`` (default,
            bit-exact) or ``np.float32`` (half the state memory,
            error within :data:`FLOAT32_MAX_RELATIVE_ERROR`).
    """

    def __init__(self, chip: Chip, n_chips: int,
                 calibration: Optional[BtiCalibration] = None,
                 em_reference: Optional[EmStressCondition] = None,
                 epoch_s: float = units.hours(1.0),
                 variation: Union[FleetVariation, FleetVariationSpec,
                                  None] = None,
                 seed: int = 0,
                 kernel_cache_budget_bytes: int = 256 * 2 ** 20,
                 state_dtype=np.float64):
        if epoch_s <= 0.0:
            raise SimulationError("epoch_s must be positive")
        if n_chips < 1:
            raise SimulationError("n_chips must be at least 1")
        self.chip = chip
        self.epoch_s = epoch_s
        self.calibration = calibration or default_calibration()
        if variation is None:
            variation = FleetVariation.none(n_chips)
        elif isinstance(variation, FleetVariationSpec):
            variation = variation.draw(n_chips, seed)
        if variation.n_chips != n_chips:
            raise SimulationError(
                f"variation draw covers {variation.n_chips} chips, "
                f"fleet has {n_chips}")
        self.em_reference = em_reference or EmStressCondition(
            current_density_a_m2=chip.core.grid_current_density_a_m2,
            temperature_k=units.celsius_to_kelvin(85.0),
            name="grid reference")
        self.state = FleetState(chip, variation, self.calibration,
                                self.em_reference,
                                kernel_cache_budget_bytes,
                                state_dtype=state_dtype)
        self.kernels = BtiConditionKernels(
            self.calibration.model_config.acceleration,
            self.calibration.model_config.reference_stress,
            stress_voltage_v=chip.core.stress_voltage_v)
        # One bundle per distinct epoch decision: the per-cohort base
        # conditions are computed once (shared thermal memo), the
        # variation scales broadcast once, and every repeat epoch is a
        # dictionary hit.  The token covers the cohort layout plus
        # every cohort's assignment bytes, so distinct schedules (or
        # layouts across run calls) never collide.
        rows = n_chips * chip.n_cores
        bundle_entries = max(1, _budget_entries(
            64 * 2 ** 20, 33 * rows, cap=64))
        self._condition_cache = FactorizationCache(
            maxsize=bundle_entries, name="fleet.conditions")

    @property
    def variation(self) -> FleetVariation:
        """The per-chip scales this fleet runs with."""
        return self.state.variation

    # -- cohorts -----------------------------------------------------------

    def _build_cohorts(self, groups: Sequence[FleetGroup]
                       ) -> List[_Cohort]:
        """Split groups into per-phase cohorts with fresh templates."""
        if not groups:
            raise SimulationError("need at least one group")
        cohorts: List[_Cohort] = []
        start = 0
        for group in groups:
            phases = group.phases or (0,) * group.n_chips
            run_start = 0
            while run_start < group.n_chips:
                run_stop = run_start + 1
                while (run_stop < group.n_chips
                       and phases[run_stop] == phases[run_start]):
                    run_stop += 1
                if hasattr(group.policy, "assign"):
                    policy = copy.deepcopy(group.policy)
                else:
                    policy = group.policy(self.chip)
                workload = copy.deepcopy(group.workload)
                phase = phases[run_start]
                if phase:
                    workload = PhasedWorkload(workload, phase)
                cohorts.append(_Cohort(
                    start + run_start, start + run_stop, workload,
                    policy, self.chip.n_cores))
                run_start = run_stop
            start += group.n_chips
        if start != self.state.n_chips:
            raise SimulationError(
                f"groups cover {start} chips, fleet has "
                f"{self.state.n_chips}")
        return cohorts

    # -- conditions --------------------------------------------------------

    def _build_group_conditions(self, keyed, token) -> _EpochConditions:
        """Assemble one full-stack bundle from per-cohort assignments.

        Element ``(k, c)`` of every array is ``base[c] * scale[k]``
        with the cohort's own base conditions -- the same single
        multiply the scalar simulator applies, so each row matches
        its standalone chip bitwise.
        """
        v = self.variation
        n_chips, n_cores = self.state.n_chips, self.state.n_cores
        shape = (n_chips, n_cores)
        capture_safe = np.empty(shape)
        recovery2d = np.empty(shape)
        j2d = np.empty(shape)
        stressing = np.empty(shape, dtype=bool)
        temps_full = np.empty(shape)
        cohort_temps = []
        for start, stop, assignment in keyed:
            temps, active, capture, recovery, j = \
                base_epoch_conditions(self.chip, self.kernels,
                                      assignment)
            rows = slice(start, stop)
            capture2d = capture[None, :] * v.capture_scale[rows, None]
            capture_safe[rows] = np.where(
                capture2d > 0.0, capture2d, 1.0)
            recovery2d[rows] = (recovery[None, :]
                                * v.recovery_scale[rows, None])
            j2d[rows] = j[None, :] * v.em_current_scale[rows, None]
            stressing[rows] = active[None, :]
            temps_full[rows] = temps[None, :]
            cohort_temps.append((start, stop, temps))
        return _EpochConditions(
            cohort_temps[-1][2], stressing, capture_safe, recovery2d,
            j2d.reshape(-1), temps_full.reshape(-1), cohort_temps,
            token)

    # -- epoch loops -------------------------------------------------------

    def run(self, n_epochs: int, workload: Workload,
            policy: SchedulingPolicy,
            record_every: int = 1) -> FleetResult:
        """Simulate a homogeneous population: one workload, one policy.

        Equivalent to :meth:`run_groups` with a single all-chips
        group; the workload and policy are treated as templates
        (deep-copied before the run), so calling ``run`` never
        mutates the caller's objects.
        """
        group = FleetGroup(n_chips=self.state.n_chips,
                           workload=workload, policy=policy)
        return self.run_groups(n_epochs, (group,),
                               record_every=record_every)

    def run_groups(self, n_epochs: int,
                   groups: Sequence[FleetGroup],
                   record_every: int = 1) -> FleetResult:
        """Simulate a heterogeneous population of policy/phase groups.

        Each cohort's scheduler is consulted per epoch with its own
        demand and cohort-worst aging observable; the resulting
        per-cohort conditions are assembled into one stacked bundle
        and the whole population's BTI/EM state advances in single
        tensor passes.  Repeated epoch decisions (same cohort layout,
        same assignment bytes) hit the condition and kernel memos.
        """
        if n_epochs < 1:
            raise SimulationError("n_epochs must be at least 1")
        run = _FleetRun(self, groups, record_every=record_every,
                        n_epochs=n_epochs)
        run.advance(n_epochs)
        return run.result()


class _FleetRun:
    """Resumable epoch-loop state of one fleet simulation.

    Owns everything :meth:`FleetSimulator.run_groups` used to keep in
    loop locals -- the per-cohort policy/workload copies with their
    mutable cursors, the epoch cursor, the demand/migration
    accumulators and the recorded timeline -- so an advance can stop
    after any epoch and continue later (or in another process, via
    :mod:`repro.system.checkpoint`) with a trajectory bit-identical
    to an uninterrupted run: every cross-epoch input is either stored
    here or recomputed as the same pure function of the stored state.

    ``n_epochs=None`` leaves the horizon open (the incremental
    :class:`~repro.system.checkpoint.FleetSession` mode): records then
    follow the ``record_every`` modulo rule only, while a declared
    horizon additionally records its final epoch exactly like the
    one-shot loop.
    """

    def __init__(self, simulator: FleetSimulator,
                 groups: Sequence[FleetGroup],
                 record_every: int = 1,
                 n_epochs: Optional[int] = None):
        if record_every < 1:
            raise SimulationError("record_every must be at least 1")
        if n_epochs is not None and n_epochs < 1:
            raise SimulationError("n_epochs must be at least 1")
        self.simulator = simulator
        self.groups = tuple(groups)
        self.record_every = record_every
        self.n_epochs = n_epochs
        self.cohorts = simulator._build_cohorts(self.groups)
        n_chips = simulator.state.n_chips
        self.epoch = 0
        self.migration_events = np.zeros(n_chips, dtype=np.int64)
        self.total_demand = np.zeros(n_chips)
        self.total_dropped = np.zeros(n_chips)
        self.times: List[float] = []
        self.worst: List[np.ndarray] = []
        self.mean: List[np.ndarray] = []
        self.dropped: List[np.ndarray] = []
        self._dropped_epoch = np.empty(n_chips)
        # Per-cohort (start, stop, temps) of the last advanced epoch;
        # result() evaluates the EM read-out and the thermal refresh
        # from these, so they are part of the resumable state.
        self.cohort_temps: Optional[
            List[Tuple[int, int, np.ndarray]]] = None

    def advance(self, n_epochs: int) -> None:
        """Advance the population by ``n_epochs`` more epochs."""
        if n_epochs < 1:
            raise SimulationError("n_epochs must be at least 1")
        if (self.n_epochs is not None
                and self.epoch + n_epochs > self.n_epochs):
            raise SimulationError(
                f"advance past the declared horizon: "
                f"{self.epoch} + {n_epochs} > {self.n_epochs}")
        simulator = self.simulator
        state = simulator.state
        epoch_s = simulator.epoch_s
        oscillator = simulator.chip.core.oscillator
        cohorts = self.cohorts
        record_every = self.record_every
        horizon = self.n_epochs
        migration_events = self.migration_events
        total_demand = self.total_demand
        total_dropped = self.total_dropped
        dropped_epoch = self._dropped_epoch
        delta_vth = state.delta_vth_v()
        cond = None
        for epoch in range(self.epoch, self.epoch + n_epochs):
            if _TEST_EPOCH_SLEEP_S > 0.0:
                time.sleep(_TEST_EPOCH_SLEEP_S)
            keyed = []
            key_parts = []
            for cohort in cohorts:
                demand = cohort.workload.demand(epoch)
                assignment = cohort.policy.assign(
                    epoch, demand,
                    delta_vth[cohort.start:cohort.stop].max(axis=0),
                    cohort.previous_utilization)
                recovering = assignment.bti_recovering
                migrated = int(np.count_nonzero(
                    recovering & ~cohort.previous_recovering))
                if migrated:
                    migration_events[cohort.start:cohort.stop] += \
                        migrated
                cohort.previous_recovering = recovering
                cohort.previous_utilization = assignment.utilization
                total_demand[cohort.start:cohort.stop] += demand
                total_dropped[cohort.start:cohort.stop] += \
                    assignment.dropped_demand
                dropped_epoch[cohort.start:cohort.stop] = \
                    assignment.dropped_demand
                keyed.append((cohort.start, cohort.stop, assignment))
                key_parts.append((cohort.start, cohort.stop)
                                 + assignment.cache_key())
            token = tuple(key_parts)
            cond = simulator._condition_cache.get_or_build(
                token,
                lambda: simulator._build_group_conditions(keyed,
                                                          token))
            state.bti.step(epoch_s, cond.stressing,
                           cond.capture_safe, cond.recovery,
                           kernel_key=token)
            state.em.step(epoch_s, cond.j_flat, cond.temps_flat,
                          key=(epoch_s, token))
            delta_vth = state.delta_vth_v()
            if ((epoch + 1) % record_every == 0
                    or (horizon is not None and epoch == horizon - 1)):
                degradation = oscillator.delay_degradation_array(
                    delta_vth)
                self.times.append((epoch + 1) * epoch_s)
                self.worst.append(degradation.max(axis=1))
                self.mean.append(degradation.mean(axis=1))
                self.dropped.append(dropped_epoch.copy())
        self.epoch += n_epochs
        self.cohort_temps = [(start, stop, temps.copy())
                             for start, stop, temps
                             in cond.cohort_temps]

    def result(self) -> FleetResult:
        """The :class:`FleetResult` of everything advanced so far."""
        if self.epoch < 1 or self.cohort_temps is None:
            raise SimulationError(
                "advance at least one epoch before taking a result")
        simulator = self.simulator
        state = simulator.state
        # Same read-out refresh as the scalar simulator, per cohort:
        # each cohort's EM failure check evaluates the reference
        # resistance at that cohort's own hottest core.  The shared
        # thermal network is left reflecting the last cohort's solve.
        simulator.chip.thermal.temperatures_k = \
            self.cohort_temps[-1][2].copy()
        shape = (state.n_chips, state.n_cores)
        em_failures = np.empty(shape, dtype=bool)
        for start, stop, temps in self.cohort_temps:
            read_t = float(np.max(temps))
            em_failures[start:stop] = \
                state.em.failed(read_t).reshape(shape)[start:stop]
        record_counters("fleet.engine", chips=state.n_chips,
                        epochs=self.epoch, cohorts=len(self.cohorts))
        return FleetResult(
            times_s=np.array(self.times),
            worst_degradation=np.array(self.worst),
            mean_degradation=np.array(self.mean),
            dropped_demand=np.array(self.dropped),
            final_delta_vth_v=state.delta_vth_v().copy(),
            final_permanent_vth_v=np.asarray(
                state.bti.permanent_vth_v(),
                dtype=np.float64).copy(),
            final_em_drift_ohm=state.em.delta_resistance_ohm()
            .reshape(shape),
            em_failures=em_failures,
            variation=simulator.variation,
            migration_events=self.migration_events.copy(),
            n_epochs=self.epoch,
            total_demand=self.total_demand.copy(),
            total_dropped_demand=self.total_dropped.copy())


# -- population entry point -------------------------------------------------


def _slice_groups(groups: Sequence[FleetGroup], start: int,
                  stop: int) -> Tuple[FleetGroup, ...]:
    """The groups restricted to global chips ``[start, stop)``."""
    out = []
    g0 = 0
    for group in groups:
        g1 = g0 + group.n_chips
        lo, hi = max(g0, start), min(g1, stop)
        if lo < hi:
            phases = None
            if group.phases is not None:
                phases = group.phases[lo - g0:hi - g0]
            out.append(FleetGroup(
                n_chips=hi - lo, workload=group.workload,
                policy=group.policy, phases=phases, name=group.name))
        g0 = g1
    return tuple(out)


def _chunk_size(n_chips: int, n_cores: int, state_dtype,
                max_chunk_chips: Optional[int],
                state_budget_bytes: Optional[int]) -> int:
    """Chips per chunk under the caller's row and byte limits."""
    limit = n_chips
    if max_chunk_chips is not None:
        if max_chunk_chips < 1:
            raise SimulationError(
                "max_chunk_chips must be at least 1")
        limit = min(limit, max_chunk_chips)
    if state_budget_bytes is not None:
        if state_budget_bytes < 1:
            raise SimulationError(
                "state_budget_bytes must be positive")
        per_chip = state_bytes_per_chip(n_cores, state_dtype)
        limit = min(limit, max(1, state_budget_bytes // per_chip))
    return max(1, limit)


# -- parallel chunk execution -----------------------------------------------


#: Below this much stacked work (``n_chips * n_cores * n_epochs``) the
#: chunked runner never starts a process pool: pool spawn plus chip
#: pickling costs tens of milliseconds, which dominates small fleets
#: the way tiny task lists dominate
#: :data:`repro.solvers.sweep.DEFAULT_MIN_TASKS_FOR_POOL`.  Callers
#: with heavier (or lighter) per-chunk work override the gate with an
#: explicit ``min_chunks_for_pool``.
MIN_CORE_EPOCHS_FOR_POOL = 1 << 20

# Fault-injection hooks, mirroring tests/test_sweep_faults.py: pool
# workers are forked on Linux, so a test that monkeypatches these
# module globals reaches the children too.  ``_TEST_STAGGER_S`` delays
# chunk k by ``stagger * (n_chunks - 1 - k)`` so later chunks finish
# *first* (exercising out-of-order completion); ``_TEST_DIE_UNLESS_PID``
# hard-kills any process but the named one (exercising worker-death
# recovery -- the parent survives and re-runs the chunks serially).
_TEST_STAGGER_S = 0.0
_TEST_DIE_UNLESS_PID: Optional[int] = None

#: Per-epoch sleep injected into :meth:`_FleetRun.advance` -- slows a
#: run down so a kill-and-resume test can SIGKILL it mid-lifetime at a
#: controlled epoch.  Forked workers inherit the setting.
_TEST_EPOCH_SLEEP_S = 0.0


def _n_records(n_epochs: int, record_every: int) -> int:
    """Timeline rows :meth:`FleetSimulator.run_groups` will record."""
    return (n_epochs // record_every
            + (1 if n_epochs % record_every else 0))


def _slab_fields(n_chips: int, n_cores: int, n_records: int
                 ) -> Tuple[Tuple[str, Tuple[int, ...], type], ...]:
    """Ordered ``(name, shape, dtype)`` layout of one result slab.

    One entry per :class:`FleetResult` array field; the slab is their
    dense back-to-back packing.  Timeline fields carry the chip axis
    last so a chunk's scatter is a column slice; summary fields are
    chip-major so it is a row slice.
    """
    return (
        ("times_s", (n_records,), np.float64),
        ("worst_degradation", (n_records, n_chips), np.float64),
        ("mean_degradation", (n_records, n_chips), np.float64),
        ("dropped_demand", (n_records, n_chips), np.float64),
        ("final_delta_vth_v", (n_chips, n_cores), np.float64),
        ("final_permanent_vth_v", (n_chips, n_cores), np.float64),
        ("final_em_drift_ohm", (n_chips, n_cores), np.float64),
        ("em_failures", (n_chips, n_cores), np.bool_),
        ("capture_scale", (n_chips,), np.float64),
        ("recovery_scale", (n_chips,), np.float64),
        ("em_current_scale", (n_chips,), np.float64),
        ("migration_events", (n_chips,), np.int64),
        ("total_demand", (n_chips,), np.float64),
        ("total_dropped_demand", (n_chips,), np.float64),
    )


def _slab_nbytes(n_chips: int, n_cores: int, n_records: int) -> int:
    """Total bytes of the packed slab layout."""
    return sum(int(np.prod(shape)) * np.dtype(dtype).itemsize
               for _, shape, dtype
               in _slab_fields(n_chips, n_cores, n_records))


def _slab_views(handle: "_FleetSlabHandle", buf) -> dict:
    """Zero-copy array views of every slab field over ``buf``."""
    views = {}
    offset = 0
    for name, shape, dtype in _slab_fields(
            handle.n_chips, handle.n_cores, handle.n_records):
        views[name] = np.ndarray(shape, dtype=dtype, buffer=buf,
                                 offset=offset)
        offset += int(np.prod(shape)) * np.dtype(dtype).itemsize
    return views


#: Serializes the <3.13 ``resource_tracker.register`` patch below:
#: the patch is process-global, so two threads attaching at once must
#: not install/restore it over each other.
_TRACKER_PATCH_LOCK = threading.Lock()


def _attach_shared_memory(name: str):
    """Attach to an existing slab without adopting its lifetime.

    The parent owns the slab (it created it and unlinks it after the
    gather); an attaching worker must not register the segment with a
    resource tracker, or the tracker would schedule a second unlink
    (and, under fork, workers *share* the parent's tracker, so an
    unregister-after-attach would erase the parent's own
    registration).  Python 3.13+ exposes ``track=False`` for exactly
    this; on older versions the registration is suppressed for the
    duration of the attach.

    The suppression is *surgical*: ``resource_tracker.register`` is a
    process-global hook, so a blanket no-op would silently drop the
    registration of any other ``SharedMemory`` created concurrently
    on another thread and leak that segment.  Instead the patch is
    serialized behind :data:`_TRACKER_PATCH_LOCK` and only swallows
    registrations of *this* segment name, delegating everything else
    to the real tracker.
    """
    from multiprocessing import shared_memory
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        from multiprocessing import resource_tracker
        # POSIX segment names reach the tracker with a leading slash
        # ("/psm_..."), while SharedMemory.name strips it; compare the
        # final path component so both spellings match.
        ours = name.split("/")[-1]
        with _TRACKER_PATCH_LOCK:
            original = resource_tracker.register

            def register_skipping_ours(res_name, rtype,
                                       *args, **kwargs):
                if (rtype == "shared_memory"
                        and str(res_name).split("/")[-1] == ours):
                    return None
                return original(res_name, rtype, *args, **kwargs)

            resource_tracker.register = register_skipping_ours
            try:
                return shared_memory.SharedMemory(name=name)
            finally:
                resource_tracker.register = original


@dataclass(frozen=True)
class _FleetSlabHandle:
    """Picklable name-plus-layout reference to a result slab.

    Workers receive this (a few dozen bytes) instead of shipping
    multi-hundred-MB :class:`FleetResult` arrays back through the
    pool's pickle pipe: each worker attaches to the named segment,
    scatters its chunk's rows in place, and returns only the chunk
    index as an acknowledgement.
    """

    shm_name: str
    n_chips: int
    n_cores: int
    n_records: int

    def scatter(self, result: FleetResult, start: int,
                stop: int) -> None:
        """Write one chunk's rows ``[start, stop)`` into the slab.

        Row ranges of distinct chunks are disjoint, so concurrent
        scatters never race; ``times_s`` is the shared epoch grid,
        identical for every chunk, so its overlapping writes are
        byte-equal.  The views must be dropped before ``close`` --
        an mmap with live exports refuses to close.
        """
        shm = _attach_shared_memory(self.shm_name)
        views = None
        try:
            views = _slab_views(self, shm.buf)
            views["times_s"][:] = result.times_s
            for name in ("worst_degradation", "mean_degradation",
                         "dropped_demand"):
                views[name][:, start:stop] = getattr(result, name)
            for name in ("final_delta_vth_v",
                         "final_permanent_vth_v",
                         "final_em_drift_ohm", "em_failures",
                         "migration_events", "total_demand",
                         "total_dropped_demand"):
                views[name][start:stop] = getattr(result, name)
            for name in ("capture_scale", "recovery_scale",
                         "em_current_scale"):
                views[name][start:stop] = getattr(result.variation,
                                                  name)
        finally:
            views = None
            shm.close()


class _FleetSlab:
    """Parent-side owner of one shared-memory result slab."""

    def __init__(self, n_chips: int, n_cores: int, n_records: int):
        from multiprocessing import shared_memory
        self._shm = shared_memory.SharedMemory(
            create=True,
            size=max(1, _slab_nbytes(n_chips, n_cores, n_records)))
        self.handle = _FleetSlabHandle(
            shm_name=self._shm.name, n_chips=n_chips,
            n_cores=n_cores, n_records=n_records)

    def gather(self, n_epochs: int) -> FleetResult:
        """Copy the fully scattered slab out into an owned result."""
        views = _slab_views(self.handle, self._shm.buf)
        try:
            return FleetResult(
                times_s=views["times_s"].copy(),
                worst_degradation=views["worst_degradation"].copy(),
                mean_degradation=views["mean_degradation"].copy(),
                dropped_demand=views["dropped_demand"].copy(),
                final_delta_vth_v=views["final_delta_vth_v"].copy(),
                final_permanent_vth_v=views[
                    "final_permanent_vth_v"].copy(),
                final_em_drift_ohm=views[
                    "final_em_drift_ohm"].copy(),
                em_failures=views["em_failures"].copy(),
                variation=FleetVariation(
                    capture_scale=views["capture_scale"].copy(),
                    recovery_scale=views["recovery_scale"].copy(),
                    em_current_scale=views[
                        "em_current_scale"].copy()),
                migration_events=views["migration_events"].copy(),
                n_epochs=n_epochs,
                total_demand=views["total_demand"].copy(),
                total_dropped_demand=views[
                    "total_dropped_demand"].copy())
        finally:
            views = None

    def close(self) -> None:
        """Release the parent mapping and unlink the segment."""
        try:
            self._shm.close()
        finally:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass


@dataclass(frozen=True)
class _ChunkCheckpoint:
    """Picklable per-chunk checkpoint configuration.

    ``directory`` is the study's checkpoint directory, ``every`` the
    progress-snapshot cadence in epochs (``None`` writes only the
    final chunk result), ``digest`` the study fingerprint every file
    carries (see :func:`repro.system.checkpoint.study_digest`).
    """

    directory: str
    every: Optional[int]
    digest: str


@dataclass(frozen=True)
class _FleetChunkTask:
    """Everything a pool worker needs for one whole-lifetime chunk.

    The chip travels as a :class:`ChipConfig` (live chips hold an
    unpicklable thermal factorization), the variation as either a
    pre-sliced draw or the spec itself (workers draw their rows by
    global index, so the chunk draw is bit-identical to the
    corresponding slice of an unchunked draw), and the output path as
    an optional slab handle (``None`` falls back to pickling the
    chunk's :class:`FleetResult` through the pool pipe).  With a
    ``checkpoint`` attached the chunk is crash-durable: it restores
    itself from its newest snapshot before advancing and writes
    progress at the configured cadence.
    """

    chunk: ChunkTask
    n_chunks: int
    chip: ChipConfig
    groups: Tuple[FleetGroup, ...]
    n_epochs: int
    epoch_s: float
    record_every: int
    variation: Union[FleetVariation, FleetVariationSpec, None]
    seed: int
    calibration: Optional[BtiCalibration]
    em_reference: Optional[EmStressCondition]
    state_dtype: str
    slab: Optional[_FleetSlabHandle]
    checkpoint: Optional[_ChunkCheckpoint] = None


def _execute_chunk(built: Chip, task: _FleetChunkTask
                   ) -> Tuple[FleetResult, bool]:
    """Run (or restore) one whole-lifetime row chunk on ``built``.

    The shared chunk executor of the serial stream and the pool
    workers.  Resolves the chunk's variation rows by global index,
    honors the chunk's checkpoint configuration -- a complete result
    file short-circuits the run entirely, a progress snapshot
    restores the epoch cursor, and cadenced progress snapshots are
    written while advancing -- and returns ``(result, from_cache)``.
    Splitting the advance at checkpoint boundaries is bitwise
    invariant: every epoch sees the same state, conditions and record
    decisions as one uninterrupted advance.
    """
    ckpt = task.checkpoint
    if ckpt is not None:
        from repro.system import checkpoint as checkpoint_mod
        cached = checkpoint_mod.load_chunk_result(
            ckpt, task.chunk.index)
        if cached is not None:
            return cached, True
    start, stop = task.chunk.start, task.chunk.stop
    variation = task.variation
    if isinstance(variation, FleetVariationSpec):
        variation = variation.draw_range(start, stop, task.seed)
    simulator = FleetSimulator(
        built, stop - start,
        calibration=task.calibration,
        em_reference=task.em_reference, epoch_s=task.epoch_s,
        variation=variation, seed=task.seed,
        state_dtype=np.dtype(task.state_dtype))
    run = _FleetRun(simulator, task.groups,
                    record_every=task.record_every,
                    n_epochs=task.n_epochs)
    every = None
    if ckpt is not None:
        checkpoint_mod.resume_chunk_run(ckpt, task.chunk.index, run)
        every = ckpt.every
    while run.epoch < task.n_epochs:
        if every:
            step = min(every - run.epoch % every,
                       task.n_epochs - run.epoch)
        else:
            step = task.n_epochs - run.epoch
        run.advance(step)
        if every and run.epoch < task.n_epochs:
            checkpoint_mod.save_chunk_progress(
                ckpt, task.chunk.index, run)
    result = run.result()
    if ckpt is not None:
        checkpoint_mod.save_chunk_result(
            ckpt, task.chunk.index, result)
    return result, False


def _run_fleet_chunk(task: _FleetChunkTask):
    """Run one row chunk (inside a pool worker, or the parent on
    serial fallback).

    Returns the chunk's :class:`FleetResult` when no slab is attached;
    with a slab, the rows are scattered in place and only the chunk
    index travels back.
    """
    if (_TEST_DIE_UNLESS_PID is not None
            and os.getpid() != _TEST_DIE_UNLESS_PID):
        os._exit(1)
    if _TEST_STAGGER_S > 0.0:
        time.sleep(_TEST_STAGGER_S
                   * (task.n_chunks - 1 - task.chunk.index))
    result, _ = _execute_chunk(task.chip.build(), task)
    if task.slab is None:
        return result
    task.slab.scatter(result, task.chunk.start, task.chunk.stop)
    return task.chunk.index


def _pool_serial_reason(n_chips: int, n_cores: int, n_epochs: int,
                        n_chunks: int, workers: int,
                        min_chunks_for_pool: Optional[int]
                        ) -> Optional[str]:
    """Why the chunk stream should stay serial (``None`` to pool)."""
    if workers <= 1:
        return "max_workers <= 1"
    if n_chunks < 2:
        return "single chunk"
    if min_chunks_for_pool is not None:
        if min_chunks_for_pool < 1:
            raise SimulationError(
                "min_chunks_for_pool must be at least 1")
        if n_chunks < min_chunks_for_pool:
            return (f"{n_chunks} chunks below "
                    f"min_chunks_for_pool={min_chunks_for_pool}")
        return None
    work = n_chips * n_cores * n_epochs
    if work < MIN_CORE_EPOCHS_FOR_POOL:
        return (f"{work} core-epochs below pool threshold "
                f"{MIN_CORE_EPOCHS_FOR_POOL}")
    return None


def run_fleet_lifetime_study(
        chip: Union[Chip, ChipConfig, Tuple[int, int]],
        n_chips: Optional[int] = None,
        workload: Optional[Workload] = None,
        policy: Optional[SchedulingPolicy] = None,
        *,
        n_epochs: int,
        epoch_s: float = units.hours(1.0),
        record_every: int = 1,
        variation: Union[FleetVariation, FleetVariationSpec,
                         None] = None,
        seed: int = 0,
        calibration: Optional[BtiCalibration] = None,
        em_reference: Optional[EmStressCondition] = None,
        groups: Optional[Sequence[FleetGroup]] = None,
        max_chunk_chips: Optional[int] = None,
        state_budget_bytes: Optional[int] = None,
        state_dtype=np.float64,
        max_workers: Optional[int] = None,
        min_chunks_for_pool: Optional[int] = None,
        retries: int = 0,
        on_report: Optional[Callable[[SweepReport], None]] = None,
        checkpoint_every: Optional[int] = None,
        checkpoint_dir=None
        ) -> FleetResult:
    """Monte Carlo lifetime study of a chip population.

    The in-process replacement for fanning identical (or
    policy/phase-grouped) cells through ``run_lifetime_sweep``: one
    :class:`FleetSimulator` advances the whole population as stacked
    arrays, with per-chip diversity coming from the ``variation``
    draw, the per-chip workload ``phases`` and the per-group
    policies.  Populations larger than memory stream through in row
    chunks: each chunk re-runs its groups' fresh policy/workload
    copies from epoch 0 against the same shared chip (so the thermal
    memo is warm after the first chunk), and results concatenate --
    the outcome is invariant in the chunk size.

    Chunks are whole-lifetime and independent, so with
    ``max_workers > 1`` (and enough work to clear the serial gate)
    they dispatch across :func:`repro.solvers.sweep.run_sweep`'s
    crash-safe process pool: a worker killed mid-fleet degrades the
    study to chunk-level serial re-execution instead of aborting it,
    bounded ``retries`` re-run flaky chunks, and the
    :class:`~repro.solvers.SweepReport` delivered via ``on_report``
    aggregates every worker's named-cache counters.  Workers scatter
    their rows into one preallocated
    ``multiprocessing.shared_memory`` slab (pickling only a tiny
    acknowledgement back), and chunk boundaries are the identical
    :func:`repro.solvers.sweep.chunk_tasks` partition on both paths,
    so a pooled run merges **bit-identically** to the serial chunk
    stream for every worker count and completion order.  Note that
    ``state_budget_bytes`` bounds one *chunk* and each worker holds
    one chunk resident: with pooling the budget is per worker, and
    total residency is ``n_workers x state_budget_bytes`` by
    construction.

    Args:
        chip: the shared design -- a live :class:`Chip`, a
            :class:`ChipConfig`, or a bare ``(rows, cols)`` tuple.
        n_chips: population size (omit when ``groups`` is given).
        workload / policy: shared demand generator and scheduling
            policy of a homogeneous population (omit with
            ``groups``).
        n_epochs / epoch_s / record_every: as in
            :meth:`SystemSimulator.run`.
        variation: per-chip process variation -- a
            :class:`FleetVariationSpec` to draw from ``seed``, a
            pre-drawn :class:`FleetVariation`, or ``None`` for an
            identical population.  Draws are by global chip index,
            so chunking never reshuffles them.
        seed: variation draw seed (chip ``k`` draws from
            ``task_seed_sequence(seed, k)``).
        calibration / em_reference: forwarded to the simulator.
        groups: heterogeneous population layout, a sequence of
            :class:`FleetGroup` laid out back-to-back in chip order;
            mutually exclusive with ``workload`` / ``policy``.
        max_chunk_chips: upper bound on chips resident at once (per
            worker, when pooled).
        state_budget_bytes: byte budget for the resident aging state;
            the chunk height is ``budget // state_bytes_per_chip``.
            A *per-worker* budget under pooling: total residency is
            ``n_workers x budget``.
        state_dtype: trap-state dtype (``np.float64`` bit-exact, or
            ``np.float32`` at half the state memory within
            :data:`FLOAT32_MAX_RELATIVE_ERROR`).
        max_workers: process count for parallel chunk execution;
            ``None`` picks the CPU count, ``0``/``1`` forces the
            serial chunk stream.  Results are bitwise identical
            either way.
        min_chunks_for_pool: explicit pooling threshold -- fewer
            chunks than this run serially.  ``None`` (default)
            applies the work-aware gate: pool only when the stacked
            work ``n_chips * n_cores * n_epochs`` reaches
            :data:`MIN_CORE_EPOCHS_FOR_POOL` (mirroring
            ``min_tasks_for_pool`` in
            :func:`~repro.solvers.sweep.run_sweep`).
        retries: bounded per-chunk re-executions before the study
            fails (chunk results are deterministic, so a retry
            reproduces the identical rows).
        on_report: optional callback receiving the run's
            :class:`~repro.solvers.SweepReport` -- mode ``"fleet"``
            for the serial stream, ``"fleet+pool"`` /
            ``"fleet+pool+serial-fallback"`` for pooled runs, with
            per-chunk wall times and cache counters aggregated
            across workers.  A run that dies before producing any
            sweep report still emits one, under mode
            ``"fleet+failed"``, so failed runs leave telemetry.
        checkpoint_every / checkpoint_dir: crash durability.  With a
            ``checkpoint_dir``, every chunk writes its finished
            :class:`FleetResult` there, and (with a
            ``checkpoint_every`` cadence) an in-progress snapshot
            every that many epochs; re-invoking the identical study
            against the same directory restores complete chunks
            (``executed_in == "cached"`` in the report) and resumes
            incomplete ones from their newest snapshot.  The resumed
            result is **bitwise-equal** to an uninterrupted run, for
            serial and pooled execution alike.  See
            :mod:`repro.system.checkpoint` (and
            :func:`~repro.system.checkpoint
            .resume_fleet_lifetime_study` for resuming without
            restating the study).

    Returns:
        A :class:`FleetResult`; ``chip_result(i)`` recovers any
        member's full :class:`SystemResult`.
    """
    if isinstance(chip, Chip):
        built = chip
    elif isinstance(chip, ChipConfig):
        built = chip.build()
    else:
        rows, cols = chip
        built = Chip(int(rows), int(cols))
    if groups is None:
        if n_chips is None or workload is None or policy is None:
            raise SimulationError(
                "provide n_chips, workload and policy, or groups")
        groups = (FleetGroup(n_chips=n_chips, workload=workload,
                             policy=policy),)
    else:
        if workload is not None or policy is not None:
            raise SimulationError(
                "groups and workload/policy are mutually exclusive")
        groups = tuple(groups)
        total = sum(group.n_chips for group in groups)
        if n_chips is not None and n_chips != total:
            raise SimulationError(
                f"groups cover {total} chips, n_chips says {n_chips}")
        n_chips = total
    chunk = _chunk_size(n_chips, built.n_cores, state_dtype,
                        max_chunk_chips, state_budget_bytes)
    bounds = chunk_tasks(n_chips, chunk)
    n_chunks = len(bounds)
    workers = (max_workers if max_workers is not None
               else (os.cpu_count() or 1))
    if workers < 0:
        raise SimulationError("max_workers must be non-negative")
    if retries < 0:
        raise SimulationError("retries must be non-negative")
    reason = _pool_serial_reason(n_chips, built.n_cores, n_epochs,
                                 n_chunks, workers,
                                 min_chunks_for_pool)
    if isinstance(chip, ChipConfig):
        config = chip
    else:
        config = ChipConfig(rows=built.rows, cols=built.cols,
                            core=built.core,
                            thermal=built.thermal.config)
    dtype_str = np.dtype(state_dtype).str
    ckpt: Optional[_ChunkCheckpoint] = None
    if checkpoint_dir is not None:
        from repro.system import checkpoint as checkpoint_mod
        ckpt = checkpoint_mod.prepare_study_directory(
            checkpoint_dir, every=checkpoint_every, chip=config,
            groups=groups, n_epochs=n_epochs, epoch_s=epoch_s,
            record_every=record_every, variation=variation,
            seed=seed, calibration=calibration,
            em_reference=em_reference, state_dtype=dtype_str,
            bounds=bounds, max_chunk_chips=max_chunk_chips,
            state_budget_bytes=state_budget_bytes)
    elif checkpoint_every is not None:
        raise SimulationError(
            "checkpoint_every requires checkpoint_dir")
    # One task list feeds both paths: the serial stream executes the
    # tasks in-process against the shared chip, the pooled path ships
    # them to workers.  Chunk boundaries, variation draws and group
    # slices are identical either way, so the merged result is
    # bitwise identical for every worker count.
    sweep_tasks: List[_FleetChunkTask] = []
    for task in bounds:
        if variation is None or isinstance(variation,
                                           FleetVariationSpec):
            chunk_variation = variation
        else:
            chunk_variation = variation.slice_range(task.start,
                                                    task.stop)
        sweep_tasks.append(_FleetChunkTask(
            chunk=task, n_chunks=n_chunks, chip=config,
            groups=_slice_groups(groups, task.start, task.stop),
            n_epochs=n_epochs, epoch_s=epoch_s,
            record_every=record_every, variation=chunk_variation,
            seed=seed, calibration=calibration,
            em_reference=em_reference, state_dtype=dtype_str,
            slab=None, checkpoint=ckpt))
    started = time.perf_counter()

    if reason is not None:
        # Serial chunk stream: one shared chip (warm thermal memo
        # after the first chunk), chunks advanced in order.  The
        # report is emitted from the finally block so a chunk that
        # raises still leaves telemetry (mode "fleet+failed" with the
        # chunks that did complete).
        before = cache_counters() if on_report is not None else None
        parts: List[FleetResult] = []
        records: List[ChunkRecord] = []
        failed = True
        try:
            for task in sweep_tasks:
                chunk_started = time.perf_counter()
                part, from_cache = _execute_chunk(built, task)
                parts.append(part)
                records.append(ChunkRecord(
                    index=task.chunk.index, start=task.chunk.index,
                    stop=task.chunk.index + 1,
                    executed_in="cached" if from_cache else "serial",
                    wall_time_s=time.perf_counter() - chunk_started,
                    retries=0, n_failures=0))
            failed = False
        finally:
            if not failed:
                record_counters("fleet.engine", chunks=n_chunks)
            if on_report is not None:
                counters = _cache_delta(before, cache_counters())
                if failed:
                    entry = counters.setdefault(
                        "fleet.engine", {"hits": 0, "misses": 0})
                    entry["chunks"] = (entry.get("chunks", 0)
                                       + len(records))
                on_report(SweepReport(
                    n_tasks=n_chunks, n_chunks=n_chunks,
                    max_workers=workers,
                    mode="fleet+failed" if failed else "fleet",
                    serial_reason=reason, fallback_reasons=(),
                    wall_time_s=time.perf_counter() - started,
                    chunks=tuple(records), retries=0, failures=(),
                    cache_counters=counters))
        return _merge_fleet_results(parts)

    # Pooled chunk execution: ship each chunk as one sweep task and
    # scatter the rows into a shared-memory slab.
    slab: Optional[_FleetSlab] = None
    try:
        slab = _FleetSlab(n_chips, built.n_cores,
                          _n_records(n_epochs, record_every))
    except Exception:
        # No shared memory available (exotic sandboxes): fall back to
        # pickling chunk results through the pool pipe.
        slab = None
    handle = slab.handle if slab is not None else None
    if handle is not None:
        sweep_tasks = [replace(task, slab=handle)
                       for task in sweep_tasks]
    inner: List[SweepReport] = []
    cached_records: List[ChunkRecord] = []
    cached_results: Dict[int, FleetResult] = {}
    pending = sweep_tasks
    before = cache_counters() if on_report is not None else None
    completed = False
    try:
        if ckpt is not None:
            # Resume: restore complete chunks in the parent and
            # dispatch only the incomplete ones through run_sweep's
            # crash-safe machinery.
            from repro.system import checkpoint as checkpoint_mod
            pending = []
            for task in sweep_tasks:
                load_started = time.perf_counter()
                loaded = checkpoint_mod.load_chunk_result(
                    ckpt, task.chunk.index)
                if loaded is None:
                    pending.append(task)
                    continue
                cached_results[task.chunk.index] = loaded
                if handle is not None:
                    handle.scatter(loaded, task.chunk.start,
                                   task.chunk.stop)
                cached_records.append(ChunkRecord(
                    index=task.chunk.index, start=task.chunk.index,
                    stop=task.chunk.index + 1, executed_in="cached",
                    wall_time_s=(time.perf_counter()
                                 - load_started),
                    retries=0, n_failures=0))
        returned: Sequence = ()
        if pending:
            returned = run_sweep(
                _run_fleet_chunk, pending, max_workers=workers,
                chunk_size=1, min_tasks_for_pool=1,
                on_error="raise", retries=retries,
                on_report=inner.append if on_report is not None
                else None)
        record_counters("fleet.engine", chunks=n_chunks)
        if slab is not None:
            result = slab.gather(n_epochs)
        else:
            by_index = dict(cached_results)
            for task, value in zip(pending, returned):
                by_index[task.chunk.index] = value
            result = _merge_fleet_results(
                [by_index[index] for index in range(n_chunks)])
        completed = True
    finally:
        if slab is not None:
            slab.close()
        if on_report is not None:
            elapsed = time.perf_counter() - started
            if inner:
                # Re-emit the sweep's report under fleet mode names,
                # with the parent's chunk counter folded into the
                # aggregated worker cache deltas and run_sweep's
                # local chunk indices remapped to global ones.
                # Delivered even when a chunk exhausted its retries
                # (run_sweep reports before it raises), so telemetry
                # survives failure.
                report = inner[0]
                mode = {"pool": "fleet+pool",
                        "pool+serial-fallback":
                            "fleet+pool+serial-fallback",
                        "serial": "fleet"}.get(report.mode,
                                               report.mode)
                counters = {name: dict(values) for name, values
                            in report.cache_counters.items()}
                entry = counters.setdefault(
                    "fleet.engine", {"hits": 0, "misses": 0})
                entry["chunks"] = entry.get("chunks", 0) + n_chunks
                chunks = [replace(
                    record,
                    index=pending[record.index].chunk.index,
                    start=pending[record.index].chunk.index,
                    stop=pending[record.index].chunk.index + 1)
                    for record in report.chunks]
                chunks = tuple(sorted(
                    chunks + cached_records,
                    key=lambda record: record.index))
                on_report(replace(
                    report, mode=mode, n_tasks=n_chunks,
                    n_chunks=n_chunks, chunks=chunks,
                    wall_time_s=elapsed, cache_counters=counters))
            else:
                # run_sweep died before reporting (or never ran):
                # emit the failure-mode report -- or, when every
                # chunk was restored from checkpoint, the all-cached
                # success report.
                counters = _cache_delta(before, cache_counters())
                entry = counters.setdefault(
                    "fleet.engine", {"hits": 0, "misses": 0})
                if not completed:
                    entry["chunks"] = (entry.get("chunks", 0)
                                       + len(cached_records))
                on_report(SweepReport(
                    n_tasks=n_chunks, n_chunks=n_chunks,
                    max_workers=workers,
                    mode="fleet" if completed else "fleet+failed",
                    serial_reason=(
                        "every chunk restored from checkpoint"
                        if completed else None),
                    fallback_reasons=(),
                    wall_time_s=elapsed,
                    chunks=tuple(cached_records), retries=0,
                    failures=(), cache_counters=counters))
    return result
