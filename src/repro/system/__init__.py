"""System-level deep healing: multicore chips, workloads, schedulers.

Implements Section IV-B of the paper: localized active recovery at the
core/block level, dark-silicon-aware rotation that lets idle cores be
healed by the heat of their active neighbours, and the run-time
scheduling loop of Fig. 12(b) evaluated over long horizons.

The aging state of the whole core fleet is vectorized
(:mod:`repro.system.aging`), so simulating years of epoch-by-epoch
operation for tens of cores stays fast.
"""

from repro.system.aging import FleetBtiState, FleetEmState
from repro.system.chip import Chip, CoreSpec
from repro.system.workload import (
    ConstantWorkload,
    DiurnalWorkload,
    PhasedWorkload,
    RandomWorkload,
    TraceWorkload,
)
from repro.system.scheduler import (
    CoreAssignment,
    NoRecoveryPolicy,
    RoundRobinRecoveryPolicy,
)
from repro.system.dark_silicon import DarkSiliconRotationPolicy
from repro.system.simulator import (
    ChipVariation,
    SystemResult,
    SystemSimulator,
)
from repro.system.fleet import (
    FleetGroup,
    FleetResult,
    FleetSimulator,
    FleetState,
    FleetVariation,
    FleetVariationSpec,
    run_fleet_lifetime_study,
)
from repro.system.sweeps import (
    ChipConfig,
    SweepCellResult,
    SweepResult,
    run_lifetime_sweep,
)
from repro.system.checkpoint import (
    FleetSession,
    FleetSnapshot,
    resume_fleet_lifetime_study,
)
from repro.system.reliability import ReliabilityReport, \
    reliability_report

__all__ = [
    "ReliabilityReport",
    "reliability_report",
    "FleetBtiState",
    "FleetEmState",
    "Chip",
    "CoreSpec",
    "ConstantWorkload",
    "RandomWorkload",
    "DiurnalWorkload",
    "PhasedWorkload",
    "TraceWorkload",
    "CoreAssignment",
    "NoRecoveryPolicy",
    "RoundRobinRecoveryPolicy",
    "DarkSiliconRotationPolicy",
    "ChipVariation",
    "SystemResult",
    "SystemSimulator",
    "FleetGroup",
    "FleetResult",
    "FleetSimulator",
    "FleetState",
    "FleetVariation",
    "FleetVariationSpec",
    "run_fleet_lifetime_study",
    "FleetSession",
    "FleetSnapshot",
    "resume_fleet_lifetime_study",
    "ChipConfig",
    "SweepCellResult",
    "SweepResult",
    "run_lifetime_sweep",
]
