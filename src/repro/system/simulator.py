"""Epoch-driven system-level lifetime simulator.

Each epoch the simulator:

1. asks the workload for the compute demand,
2. asks the policy which cores run, which heal, and how the demand is
   spread (migrating work away from healing cores),
3. solves the thermal network for per-core temperatures,
4. advances the vectorized BTI and EM fleet states under the resulting
   per-core stress/recovery conditions, and
5. records the fleet's performance envelope.

The output exposes the Fig. 12(b) observables directly: the worst-core
performance degradation over time with and without scheduled recovery,
the implied guardband, and EM failure times of the local grids.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Protocol

import numpy as np

from repro import units
from repro.bti.calibration import BtiCalibration, default_calibration
from repro.bti.conditions import (
    ACTIVE_RECOVERY_BIAS_V,
    BtiRecoveryCondition,
    BtiStressCondition,
)
from repro.em.line import EmStressCondition
from repro.errors import SimulationError
from repro.system.aging import FleetBtiState, FleetEmState
from repro.system.chip import Chip
from repro.system.scheduler import CoreAssignment


class SchedulingPolicy(Protocol):
    """Interface every scheduling policy implements."""

    def assign(self, epoch: int, demand: float,
               delta_vth_v: np.ndarray,
               previous_utilization: Optional[np.ndarray] = None
               ) -> CoreAssignment:
        """Produce the epoch's core assignment."""
        ...


class Workload(Protocol):
    """Interface every workload generator implements."""

    def demand(self, epoch: int) -> float:
        """Compute demand (core-equivalents) for an epoch."""
        ...


@dataclass(frozen=True)
class SystemResult:
    """Timeline and summary of one system simulation.

    Attributes:
        times_s: end-of-epoch time stamps.
        worst_degradation: per-epoch worst-core fractional delay
            degradation (the Fig. 12(b) performance envelope, flipped).
        mean_degradation: per-epoch fleet-average degradation.
        dropped_demand: per-epoch unplaced demand (core-equivalents).
        final_delta_vth_v: per-core BTI shift at the end.
        final_permanent_vth_v: per-core permanent component at the end.
        final_em_drift_ohm: per-core grid resistance drift at the end.
        em_failures: per-core hard-failure flags at the end.
        migration_events: number of core transitions into BTI recovery
            over the run; each one implies a state-retention or
            workload-migration action (Section IV-B: "certain states
            need to be in retention mode, alternatively, workload can
            be shifted to other redundant resources").
        n_epochs: simulated epoch count (for overhead normalization).
    """

    times_s: np.ndarray
    worst_degradation: np.ndarray
    mean_degradation: np.ndarray
    dropped_demand: np.ndarray
    final_delta_vth_v: np.ndarray
    final_permanent_vth_v: np.ndarray
    final_em_drift_ohm: np.ndarray
    em_failures: np.ndarray
    migration_events: int = 0
    n_epochs: int = 0

    @property
    def guardband(self) -> float:
        """Delay margin this run would require (peak worst-core
        degradation over the horizon)."""
        return float(self.worst_degradation.max(initial=0.0))

    @property
    def lost_demand_fraction(self) -> float:
        """Unplaced fraction of total demanded compute."""
        total = self.dropped_demand.sum()
        return float(total / max(len(self.times_s), 1))

    def migration_overhead(self, cost_epoch_fraction: float = 0.01
                           ) -> float:
        """Compute overhead of recovery-entry migrations.

        Each transition into BTI recovery costs
        ``cost_epoch_fraction`` of one core-epoch (state save +
        workload shift); returns the total as a fraction of the
        simulated core-epochs.  The paper expects this to be "a small
        switching overhead" -- typically well under a percent.
        """
        if cost_epoch_fraction < 0.0:
            raise SimulationError(
                "cost_epoch_fraction must be non-negative")
        core_epochs = max(self.n_epochs, 1) \
            * max(len(self.final_delta_vth_v), 1)
        return self.migration_events * cost_epoch_fraction \
            / core_epochs

    def describe(self) -> str:
        """One-line summary used by examples and benches."""
        return (f"guardband {self.guardband:.2%}, "
                f"final worst dVth "
                f"{self.final_delta_vth_v.max() * 1e3:.2f} mV "
                f"(permanent {self.final_permanent_vth_v.max() * 1e3:.2f}"
                f" mV), EM failures {int(self.em_failures.sum())}")


class SystemSimulator:
    """Drives a chip + workload + policy through its lifetime."""

    def __init__(self, chip: Chip,
                 calibration: Optional[BtiCalibration] = None,
                 em_reference: Optional[EmStressCondition] = None,
                 epoch_s: float = units.hours(1.0)):
        if epoch_s <= 0.0:
            raise SimulationError("epoch_s must be positive")
        self.chip = chip
        self.calibration = calibration or default_calibration()
        self.epoch_s = epoch_s
        n = chip.n_cores
        population = self.calibration.model_config.population
        # Fewer bins per core: system horizons don't need the full
        # Table-I resolution, and the dynamics are identical.
        from dataclasses import replace
        self.bti = FleetBtiState(
            n, replace(population, n_bins=64))
        self.em_reference = em_reference or EmStressCondition(
            current_density_a_m2=chip.core.grid_current_density_a_m2,
            temperature_k=units.celsius_to_kelvin(85.0),
            name="grid reference")
        self.em = FleetEmState(n, self.em_reference)
        self._accel_params = self.calibration.model_config.acceleration
        self._reference_stress = \
            self.calibration.model_config.reference_stress

    # -- per-epoch condition helpers -----------------------------------

    def _capture_acceleration(self, utilization: np.ndarray,
                              temps_k: np.ndarray) -> np.ndarray:
        accel = np.zeros(len(utilization))
        for i, (util, temp) in enumerate(zip(utilization, temps_k)):
            if util <= 0.0:
                continue
            condition = BtiStressCondition(
                voltage=self.chip.core.stress_voltage_v,
                temperature_k=float(temp))
            accel[i] = util * condition.capture_acceleration(
                self._reference_stress)
        return accel

    def _recovery_acceleration(self, bti_recovering: np.ndarray,
                               temps_k: np.ndarray) -> np.ndarray:
        accel = np.ones(len(bti_recovering))
        for i, temp in enumerate(temps_k):
            bias = ACTIVE_RECOVERY_BIAS_V if bti_recovering[i] else 0.0
            condition = BtiRecoveryCondition(
                gate_bias_v=bias, temperature_k=float(temp))
            accel[i] = condition.acceleration(self._accel_params)
        return accel

    # -- main loop -------------------------------------------------------

    def run(self, n_epochs: int, workload: Workload,
            policy: SchedulingPolicy,
            record_every: int = 1) -> SystemResult:
        """Simulate ``n_epochs`` epochs and collect the timeline.

        Args:
            n_epochs: horizon in epochs.
            workload: demand generator.
            policy: scheduling policy.
            record_every: decimation factor of the recorded timeline.
        """
        if n_epochs < 1:
            raise SimulationError("n_epochs must be at least 1")
        if record_every < 1:
            raise SimulationError("record_every must be at least 1")
        n = self.chip.n_cores
        oscillator = self.chip.core.oscillator
        previous_utilization: Optional[np.ndarray] = None
        previous_recovering = np.zeros(n, dtype=bool)
        migration_events = 0
        times: List[float] = []
        worst: List[float] = []
        mean: List[float] = []
        dropped: List[float] = []
        for epoch in range(n_epochs):
            demand = workload.demand(epoch)
            assignment = policy.assign(
                epoch, demand, self.bti.delta_vth_v(),
                previous_utilization)
            powers = np.array([
                self.chip.core.recovery_power_w
                if assignment.bti_recovering[i]
                else self.chip.core.power_w(
                    float(assignment.utilization[i]))
                for i in range(n)])
            temps = self.chip.thermal.steady_state(powers)
            stressing = ~assignment.bti_recovering
            capture = self._capture_acceleration(
                assignment.utilization, temps)
            # Cores that are "stressing" but idle (zero utilization)
            # accumulate nothing and recover passively; model that by
            # marking them as recovering at bias 0.
            active = stressing & (assignment.utilization > 0.0)
            recovery = self._recovery_acceleration(
                assignment.bti_recovering, temps)
            capture_safe = np.where(capture > 0.0, capture, 1.0)
            self.bti.step(self.epoch_s, active, capture_safe, recovery)
            j = (self.chip.core.grid_current_density_a_m2
                 * assignment.utilization)
            j = np.where(assignment.em_recovering, -j, j)
            self.em.step(self.epoch_s, j, temps)
            migration_events += int(np.count_nonzero(
                assignment.bti_recovering & ~previous_recovering))
            previous_recovering = assignment.bti_recovering
            previous_utilization = assignment.utilization
            if (epoch + 1) % record_every == 0 or epoch == n_epochs - 1:
                degradation = np.array([
                    oscillator.delay_degradation(float(dv))
                    for dv in self.bti.delta_vth_v()])
                times.append((epoch + 1) * self.epoch_s)
                worst.append(float(degradation.max()))
                mean.append(float(degradation.mean()))
                dropped.append(assignment.dropped_demand)
        read_t = float(np.max(self.chip.thermal.temperatures_k))
        return SystemResult(
            times_s=np.array(times),
            worst_degradation=np.array(worst),
            mean_degradation=np.array(mean),
            dropped_demand=np.array(dropped),
            final_delta_vth_v=self.bti.delta_vth_v(),
            final_permanent_vth_v=self.bti.permanent_v.copy(),
            final_em_drift_ohm=self.em.delta_resistance_ohm(),
            em_failures=self.em.failed(read_t),
            migration_events=migration_events,
            n_epochs=n_epochs)
