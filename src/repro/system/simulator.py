"""Epoch-driven system-level lifetime simulator.

Each epoch the simulator:

1. asks the workload for the compute demand,
2. asks the policy which cores run, which heal, and how the demand is
   spread (migrating work away from healing cores),
3. solves the thermal network for per-core temperatures,
4. advances the vectorized BTI and EM fleet states under the resulting
   per-core stress/recovery conditions, and
5. records the fleet's performance envelope.

The output exposes the Fig. 12(b) observables directly: the worst-core
performance degradation over time with and without scheduled recovery,
the implied guardband, and EM failure times of the local grids.

The per-epoch hot path is fully array-native: per-core stress/recovery
accelerations come from the precomputed
:class:`~repro.bti.conditions.BtiConditionKernels` lookup tables, the
power vector and the recorded delay degradations are single vectorized
expressions, and the thermal steady state is memoized on the power
vector (:meth:`~repro.thermal.network.ThermalRCNetwork
.steady_state_cached`) so repeating schedules skip the solve.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Protocol

import numpy as np

from repro import units
from repro.bti.calibration import BtiCalibration, default_calibration
from repro.bti.conditions import BtiConditionKernels
from repro.em.line import EmStressCondition
from repro.errors import SimulationError
from repro.solvers import FactorizationCache
from repro.system.aging import FleetBtiState, FleetEmState
from repro.system.chip import Chip
from repro.system.scheduler import CoreAssignment


@dataclass(frozen=True)
class ChipVariation:
    """Per-chip process-variation multipliers on the aging rates.

    A fleet study draws one of these per chip (see
    :class:`repro.system.fleet.FleetVariationSpec`); the scalar
    simulator accepts the same description so a fleet member can be
    re-simulated standalone for cross-checks.  The defaults are exact
    no-ops (multiplying by 1.0 is bitwise identity), so a simulator
    without variation reproduces the pre-variation trajectories
    bit-for-bit.

    Attributes:
        capture_scale: multiplier on the BTI capture acceleration
            (fast-aging corner > 1).
        recovery_scale: multiplier on the BTI de-trapping acceleration.
        em_current_scale: multiplier on the signed grid current
            density (local-grid IR/width variation).
    """

    capture_scale: float = 1.0
    recovery_scale: float = 1.0
    em_current_scale: float = 1.0

    def __post_init__(self) -> None:
        for name in ("capture_scale", "recovery_scale",
                     "em_current_scale"):
            if getattr(self, name) <= 0.0:
                raise SimulationError(f"{name} must be positive")


def base_epoch_conditions(chip: Chip, kernels: BtiConditionKernels,
                          assignment: CoreAssignment):
    """Variation-independent per-core conditions of one assignment.

    The shared heart of the scalar and fleet epoch loops: power
    vector, memoized thermal solve, BTI condition-kernel lookups and
    signed grid current for one :class:`CoreAssignment`.  Both
    simulators apply their (per-chip) variation scales *on top* of
    these arrays, so a fleet chip and a standalone simulator with the
    same :class:`ChipVariation` see bit-identical conditions.

    Returns:
        ``(temps, active, capture, recovery, j)`` -- per-core
        temperatures (K), stressing mask, unscaled capture and
        recovery accelerations, and signed grid current density.
    """
    core = chip.core
    utilization = assignment.utilization
    recovering = assignment.bti_recovering
    powers = np.where(
        recovering, core.recovery_power_w,
        core.idle_power_w + utilization
        * (core.active_power_w - core.idle_power_w))
    temps = chip.thermal.steady_state_cached(powers)
    capture = kernels.capture_acceleration_array(temps, utilization)
    # Cores that are "stressing" but idle (zero utilization)
    # accumulate nothing and recover passively; model that by
    # marking them as recovering at bias 0.
    active = ~recovering & (utilization > 0.0)
    recovery = kernels.recovery_acceleration_array(temps, recovering)
    j = core.grid_current_density_a_m2 * utilization
    j = np.where(assignment.em_recovering, -j, j)
    return temps, active, capture, recovery, j


class SchedulingPolicy(Protocol):
    """Interface every scheduling policy implements."""

    def assign(self, epoch: int, demand: float,
               delta_vth_v: np.ndarray,
               previous_utilization: Optional[np.ndarray] = None
               ) -> CoreAssignment:
        """Produce the epoch's core assignment."""
        ...


class Workload(Protocol):
    """Interface every workload generator implements."""

    def demand(self, epoch: int) -> float:
        """Compute demand (core-equivalents) for an epoch."""
        ...


@dataclass(frozen=True)
class SystemResult:
    """Timeline and summary of one system simulation.

    Attributes:
        times_s: end-of-epoch time stamps.
        worst_degradation: per-epoch worst-core fractional delay
            degradation (the Fig. 12(b) performance envelope, flipped).
        mean_degradation: per-epoch fleet-average degradation.
        dropped_demand: per-epoch unplaced demand (core-equivalents).
        final_delta_vth_v: per-core BTI shift at the end.
        final_permanent_vth_v: per-core permanent component at the end.
        final_em_drift_ohm: per-core grid resistance drift at the end.
        em_failures: per-core hard-failure flags at the end.
        migration_events: number of core transitions into BTI recovery
            over the run; each one implies a state-retention or
            workload-migration action (Section IV-B: "certain states
            need to be in retention mode, alternatively, workload can
            be shifted to other redundant resources").
        n_epochs: simulated epoch count (for overhead normalization).
        total_demand: demanded core-epochs summed over *all* epochs
            (not just the recorded ones).
        total_dropped_demand: unplaced core-epochs over all epochs.
    """

    times_s: np.ndarray
    worst_degradation: np.ndarray
    mean_degradation: np.ndarray
    dropped_demand: np.ndarray
    final_delta_vth_v: np.ndarray
    final_permanent_vth_v: np.ndarray
    final_em_drift_ohm: np.ndarray
    em_failures: np.ndarray
    migration_events: int = 0
    n_epochs: int = 0
    total_demand: float = 0.0
    total_dropped_demand: float = 0.0

    @property
    def guardband(self) -> float:
        """Delay margin this run would require (peak worst-core
        degradation over the horizon)."""
        return float(self.worst_degradation.max(initial=0.0))

    @property
    def lost_demand_fraction(self) -> float:
        """Unplaced fraction of total demanded compute.

        ``total_dropped_demand / total_demand`` over every simulated
        epoch, so the value is independent of ``record_every`` (0 when
        nothing was demanded).
        """
        if self.total_demand <= 0.0:
            return 0.0
        return float(self.total_dropped_demand / self.total_demand)

    def migration_overhead(self, cost_epoch_fraction: float = 0.01
                           ) -> float:
        """Compute overhead of recovery-entry migrations.

        Each transition into BTI recovery costs
        ``cost_epoch_fraction`` of one core-epoch (state save +
        workload shift); returns the total as a fraction of the
        simulated core-epochs.  The paper expects this to be "a small
        switching overhead" -- typically well under a percent.
        """
        if cost_epoch_fraction < 0.0:
            raise SimulationError(
                "cost_epoch_fraction must be non-negative")
        core_epochs = max(self.n_epochs, 1) \
            * max(len(self.final_delta_vth_v), 1)
        return self.migration_events * cost_epoch_fraction \
            / core_epochs

    def describe(self) -> str:
        """One-line summary used by examples and benches."""
        return (f"guardband {self.guardband:.2%}, "
                f"final worst dVth "
                f"{self.final_delta_vth_v.max() * 1e3:.2f} mV "
                f"(permanent {self.final_permanent_vth_v.max() * 1e3:.2f}"
                f" mV), EM failures {int(self.em_failures.sum())}")


class SystemSimulator:
    """Drives a chip + workload + policy through its lifetime."""

    def __init__(self, chip: Chip,
                 calibration: Optional[BtiCalibration] = None,
                 em_reference: Optional[EmStressCondition] = None,
                 epoch_s: float = units.hours(1.0),
                 variation: Optional[ChipVariation] = None):
        if epoch_s <= 0.0:
            raise SimulationError("epoch_s must be positive")
        self.chip = chip
        self.calibration = calibration or default_calibration()
        self.epoch_s = epoch_s
        self.variation = variation or ChipVariation()
        n = chip.n_cores
        population = self.calibration.model_config.population
        # Fewer bins per core: system horizons don't need the full
        # Table-I resolution, and the dynamics are identical.
        self.bti = FleetBtiState(
            n, replace(population, n_bins=64))
        self.em_reference = em_reference or EmStressCondition(
            current_density_a_m2=chip.core.grid_current_density_a_m2,
            temperature_k=units.celsius_to_kelvin(85.0),
            name="grid reference")
        self.em = FleetEmState(n, self.em_reference)
        self._accel_params = self.calibration.model_config.acceleration
        self._reference_stress = \
            self.calibration.model_config.reference_stress
        self.kernels = BtiConditionKernels(
            self._accel_params, self._reference_stress,
            stress_voltage_v=chip.core.stress_voltage_v)
        # Scheduling loops cycle through a small set of assignments;
        # everything derived from one (power vector, thermal solve,
        # condition-kernel evaluations, signed grid current) is a pure
        # function of its content, so the whole bundle is memoized on
        # the assignment bytes.  Cached arrays are shared, never
        # mutated downstream.
        self._condition_cache = FactorizationCache(
            maxsize=64, name="system.conditions")

    def _epoch_conditions(self, assignment: CoreAssignment):
        key = assignment.cache_key()
        return self._condition_cache.get_or_build(
            key, lambda: self._build_epoch_conditions(assignment))

    def _build_epoch_conditions(self, assignment: CoreAssignment):
        temps, active, capture, recovery, j = base_epoch_conditions(
            self.chip, self.kernels, assignment)
        # Variation scales apply after the shared kernels; at the
        # default 1.0 every multiply is bitwise identity, so a
        # simulator without variation reproduces the historical
        # trajectories exactly.
        v = self.variation
        capture = capture * v.capture_scale
        capture_safe = np.where(capture > 0.0, capture, 1.0)
        recovery = recovery * v.recovery_scale
        j = j * v.em_current_scale
        return temps, active, capture_safe, recovery, j

    # -- main loop -------------------------------------------------------

    def run(self, n_epochs: int, workload: Workload,
            policy: SchedulingPolicy,
            record_every: int = 1) -> SystemResult:
        """Simulate ``n_epochs`` epochs and collect the timeline.

        Args:
            n_epochs: horizon in epochs.
            workload: demand generator.
            policy: scheduling policy.
            record_every: decimation factor of the recorded timeline.
        """
        if n_epochs < 1:
            raise SimulationError("n_epochs must be at least 1")
        if record_every < 1:
            raise SimulationError("record_every must be at least 1")
        core = self.chip.core
        thermal = self.chip.thermal
        oscillator = core.oscillator
        previous_utilization: Optional[np.ndarray] = None
        previous_recovering = np.zeros(self.chip.n_cores, dtype=bool)
        migration_events = 0
        total_demand = 0.0
        total_dropped = 0.0
        times: List[float] = []
        worst: List[float] = []
        mean: List[float] = []
        dropped: List[float] = []
        # The fleet BTI state only changes in bti.step, so the shift
        # vector computed for recording is still current at the next
        # epoch's assign.
        delta_vth = self.bti.delta_vth_v()
        for epoch in range(n_epochs):
            demand = workload.demand(epoch)
            assignment = policy.assign(
                epoch, demand, delta_vth, previous_utilization)
            recovering = assignment.bti_recovering
            temps, active, capture_safe, recovery, j = \
                self._epoch_conditions(assignment)
            self.bti.step(self.epoch_s, active, capture_safe, recovery)
            self.em.step(self.epoch_s, j, temps)
            migration_events += int(np.count_nonzero(
                recovering & ~previous_recovering))
            previous_recovering = recovering
            previous_utilization = assignment.utilization
            total_demand += demand
            total_dropped += assignment.dropped_demand
            delta_vth = self.bti.delta_vth_v()
            if (epoch + 1) % record_every == 0 or epoch == n_epochs - 1:
                degradation = oscillator.delay_degradation_array(
                    delta_vth)
                times.append((epoch + 1) * self.epoch_s)
                worst.append(float(degradation.max()))
                mean.append(float(degradation.mean()))
                dropped.append(assignment.dropped_demand)
        # A bundle hit skips steady_state_cached, so refresh the
        # network's read-out state from the last epoch's solve.
        thermal.temperatures_k = temps.copy()
        read_t = float(np.max(thermal.temperatures_k))
        return SystemResult(
            times_s=np.array(times),
            worst_degradation=np.array(worst),
            mean_degradation=np.array(mean),
            dropped_demand=np.array(dropped),
            final_delta_vth_v=self.bti.delta_vth_v(),
            final_permanent_vth_v=self.bti.permanent_v.copy(),
            final_em_drift_ohm=self.em.delta_resistance_ohm(),
            em_failures=self.em.failed(read_t),
            migration_events=migration_events,
            n_epochs=n_epochs,
            total_demand=total_demand,
            total_dropped_demand=total_dropped)
