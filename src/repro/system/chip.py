"""Multicore chip description for system-level simulation.

A :class:`Chip` is a grid floorplan of identical cores, each with a
local power grid (the EM-sensitive structure of Fig. 11), a thermal
node, and BTI-aging logic monitored by a ring oscillator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro import units
from repro.errors import SimulationError
from repro.sensors.ring_oscillator import RingOscillator
from repro.thermal.floorplan import Floorplan
from repro.thermal.network import ThermalNetworkConfig, ThermalRCNetwork


@dataclass(frozen=True)
class CoreSpec:
    """Electrical/thermal description of one core.

    Attributes:
        active_power_w: power at 100 % utilization.
        idle_power_w: power when idle (clock-gated).
        recovery_power_w: power while in BTI active recovery (rails
            swapped, load idle; essentially leakage).
        stress_voltage_v: gate overdrive during operation, feeding the
            BTI stress model.
        grid_current_density_a_m2: local-grid current density at 100 %
            utilization, feeding the EM model.
        width_m / height_m: core footprint.
        oscillator: the per-core wearout monitor / performance proxy.
    """

    active_power_w: float = 1.5
    idle_power_w: float = 0.15
    recovery_power_w: float = 0.05
    stress_voltage_v: float = 0.45
    grid_current_density_a_m2: float = units.ma_per_cm2(2.0)
    width_m: float = 2e-3
    height_m: float = 2e-3
    oscillator: RingOscillator = field(default_factory=RingOscillator)

    def __post_init__(self) -> None:
        if self.active_power_w <= 0.0:
            raise SimulationError("active_power_w must be positive")
        if not 0.0 <= self.idle_power_w <= self.active_power_w:
            raise SimulationError(
                "idle power must be within [0, active_power_w]")
        if self.recovery_power_w < 0.0:
            raise SimulationError("recovery_power_w must be >= 0")
        if self.grid_current_density_a_m2 <= 0.0:
            raise SimulationError(
                "grid_current_density_a_m2 must be positive")

    def power_w(self, utilization: float) -> float:
        """Core power at a given utilization."""
        if not 0.0 <= utilization <= 1.0:
            raise SimulationError("utilization must be within [0, 1]")
        return self.idle_power_w + utilization * (
            self.active_power_w - self.idle_power_w)


class Chip:
    """A rows x cols grid of identical cores with a thermal model."""

    def __init__(self, rows: int, cols: int,
                 core: Optional[CoreSpec] = None,
                 thermal: Optional[ThermalNetworkConfig] = None):
        if rows < 1 or cols < 1:
            raise SimulationError("chip needs at least one core")
        self.rows = rows
        self.cols = cols
        self.core = core or CoreSpec()
        self.floorplan = Floorplan.grid(
            rows, cols, core_width_m=self.core.width_m,
            core_height_m=self.core.height_m)
        self.thermal = ThermalRCNetwork(self.floorplan, thermal)

    @property
    def n_cores(self) -> int:
        """Total core count."""
        return self.rows * self.cols

    @property
    def core_names(self) -> List[str]:
        """Core names in floorplan order."""
        return [block.name for block in self.floorplan.blocks]

    def neighbours_of(self, index: int) -> List[int]:
        """Indices of cores adjacent to core ``index``."""
        name = self.floorplan.blocks[index].name
        return [self.floorplan.index_of(other)
                for other in self.floorplan.neighbours_of(name)]
