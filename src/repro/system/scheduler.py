"""Scheduling policies: which cores run, which cores heal.

A policy turns (epoch, demand, aging observables) into a
:class:`CoreAssignment`: per-core utilizations plus per-core recovery
flags.  The baseline :class:`NoRecoveryPolicy` never heals;
:class:`RoundRobinRecoveryPolicy` rotates short BTI recovery intervals
through the fleet and alternates EM recovery epochs on the active
cores (the "EM active period can be scheduled alternately with normal
operation" recipe of Section IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import SimulationError


@dataclass(frozen=True)
class CoreAssignment:
    """One epoch's scheduling decision.

    Attributes:
        utilization: per-core utilization in [0, 1].
        bti_recovering: per-core flags -- core idles with swapped rails
            (BTI active recovery; contributes no compute).
        em_recovering: per-core flags -- core runs with reversed grid
            current (EM active recovery; still contributes compute).
        dropped_demand: demand (core-equivalents) that could not be
            placed this epoch because too few cores were available.
    """

    utilization: np.ndarray
    bti_recovering: np.ndarray
    em_recovering: np.ndarray
    dropped_demand: float = 0.0

    def __post_init__(self) -> None:
        n = len(self.utilization)
        if len(self.bti_recovering) != n or len(self.em_recovering) != n:
            raise SimulationError("assignment arrays must align")
        low = self.utilization.min(initial=0.0)
        high = self.utilization.max(initial=0.0)
        if low < 0.0 or high > 1.0:
            raise SimulationError("utilizations must be within [0, 1]")
        if (self.bti_recovering & (self.utilization > 0.0)).any():
            raise SimulationError(
                "a BTI-recovering core cannot carry load")

    def cache_key(self) -> tuple:
        """A hashable digest of the assignment's full content.

        Everything the epoch engines derive from an assignment (power
        vector, thermal solve, condition-kernel lookups, signed grid
        current) is a pure function of these three arrays, so the
        scalar and fleet simulators memoize their per-assignment
        condition bundles on exactly this key.  Keying on the raw
        bytes -- never on rounded floats -- keeps distinct assignments
        distinct bit for bit.
        """
        return (self.utilization.tobytes(),
                self.bti_recovering.tobytes(),
                self.em_recovering.tobytes())


def _spread(demand: float, available: np.ndarray) -> np.ndarray:
    """Distribute demand evenly over the available cores (capped at 1)."""
    n = len(available)
    utilization = np.zeros(n)
    idx = np.nonzero(available)[0]
    if idx.size == 0:
        return utilization
    per_core = min(demand / idx.size, 1.0)
    utilization[idx] = per_core
    return utilization


@dataclass(frozen=True)
class NoRecoveryPolicy:
    """Baseline: spread the demand, never heal."""

    def assign(self, epoch: int, demand: float,
               delta_vth_v: np.ndarray,
               previous_utilization: Optional[np.ndarray] = None
               ) -> CoreAssignment:
        """Evenly load all cores; no recovery epochs ever."""
        n = len(delta_vth_v)
        available = np.ones(n, dtype=bool)
        utilization = _spread(demand, available)
        placed = float(utilization.sum())
        return CoreAssignment(
            utilization=utilization,
            bti_recovering=np.zeros(n, dtype=bool),
            em_recovering=np.zeros(n, dtype=bool),
            dropped_demand=max(demand - placed, 0.0))


@dataclass
class RoundRobinRecoveryPolicy:
    """Rotating BTI recovery plus alternating EM recovery.

    Every epoch, ``recovery_slots`` cores (a rotating window) go into
    BTI active recovery; their share of the demand migrates to the
    remaining cores.  Independently, every ``em_alternate_every``
    epochs the *active* cores run one epoch with reversed grid
    current -- EM active recovery costs no compute, so it can simply
    alternate with normal polarity.

    Attributes:
        recovery_slots: cores in BTI recovery per epoch.
        em_alternate_every: period (in epochs) of EM reverse-current
            epochs for the active cores; 0 disables EM recovery.
    """

    recovery_slots: int = 1
    em_alternate_every: int = 2
    _cursor: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.recovery_slots < 0:
            raise SimulationError("recovery_slots must be >= 0")
        if self.em_alternate_every < 0:
            raise SimulationError("em_alternate_every must be >= 0")

    def assign(self, epoch: int, demand: float,
               delta_vth_v: np.ndarray,
               previous_utilization: Optional[np.ndarray] = None
               ) -> CoreAssignment:
        """Rotate the healing window and spread demand over the rest."""
        n = len(delta_vth_v)
        if self.recovery_slots >= n:
            raise SimulationError(
                "recovery_slots must leave at least one active core")
        healing = np.zeros(n, dtype=bool)
        for slot in range(self.recovery_slots):
            healing[(self._cursor + slot) % n] = True
        self._cursor = (self._cursor + self.recovery_slots) % n
        available = ~healing
        utilization = _spread(demand, available)
        placed = float(utilization.sum())
        em = np.zeros(n, dtype=bool)
        if self.em_alternate_every and \
                epoch % self.em_alternate_every == 0:
            em = available & (utilization > 0.0)
        return CoreAssignment(
            utilization=utilization,
            bti_recovering=healing,
            em_recovering=em,
            dropped_demand=max(demand - placed, 0.0))
