"""Vectorized per-core aging states for system-level simulation.

The mechanistic models in :mod:`repro.bti` and :mod:`repro.em` track a
single device/wire with high fidelity.  A system simulation needs the
same dynamics for every core of a fleet over years of epochs, so this
module re-expresses them with the unit (core) dimension vectorized in
numpy:

* :class:`FleetBtiState` -- the trap-population dynamics of
  :class:`repro.bti.traps.TrapPopulation` batched over cores, with the
  same capture/emission/lock-in behaviour (and therefore the same
  Table I / Fig. 4 calibration).
* :class:`FleetEmState` -- a lumped per-core EM state built on the
  square-root stress kernel of :mod:`repro.em.lumped`: nucleation
  progress accumulates at a rate proportional to ``j^2 * kappa(T)``
  (the inverse of the closed-form nucleation time), reverses under
  reverse current, and post-nucleation void growth/refill/lock-in
  follows the same rates as :class:`repro.em.line.EmLine`.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.bti.conditions import RecoveryAccelerationParams
from repro.bti.traps import TrapPopulationConfig
from repro.em.line import EmLineConfig, EmStressCondition
from repro.em.lumped import LumpedEmModel
from repro.em.wire import PAPER_TEST_WIRE, Wire
from repro.errors import SimulationError
from repro.solvers import FactorizationCache


class FleetBtiState:
    """Batched trap-population state for ``n_units`` cores.

    The per-bin dynamics are identical to
    :class:`repro.bti.traps.TrapPopulation`; every step takes
    *per-unit* boolean stress masks and rate multipliers, so different
    cores can stress, idle and heal in the same epoch.

    The sub-step fill/drain/lock-in factors depend only on the epoch's
    ``(step, stressing, capture, recovery)`` inputs, never on the trap
    state, so they are hoisted out of the sub-step loop *and* memoized
    across epochs in ``kernel_cache`` (scheduling loops revisit a small
    set of stress patterns).  The cached kernels feed in-place masked
    full-array updates (``where=`` ufunc writes), which replace the
    boolean fancy-indexing of the original per-epoch code without
    changing a single bit of the trajectory.
    """

    def __init__(self, n_units: int,
                 config: Optional[TrapPopulationConfig] = None,
                 kernel_cache_size: int = 64):
        if n_units < 1:
            raise SimulationError("n_units must be at least 1")
        self.n_units = n_units
        self.config = config or TrapPopulationConfig(n_bins=64)
        cfg = self.config
        self.tau_c = np.logspace(math.log10(cfg.tau_min_s),
                                 math.log10(cfg.tau_max_s), cfg.n_bins)
        fresh_weight = cfg.vth_full_shift_v / cfg.n_bins
        self.weights = np.full((n_units, cfg.n_bins), fresh_weight)
        self.occupancy = np.zeros((n_units, cfg.n_bins))
        self.age_s = np.zeros((n_units, cfg.n_bins))
        self.permanent_v = np.zeros(n_units)
        self.time_s = 0.0
        self.kernel_cache = FactorizationCache(
            maxsize=kernel_cache_size, name="system.aging.kernels")
        shape = (n_units, cfg.n_bins)
        self._buf_a = np.empty(shape)
        self._buf_b = np.empty(shape)
        self._buf_c = np.empty(shape)
        self._mask = np.empty(shape, dtype=bool)
        self._mask_b = np.empty(shape, dtype=bool)

    # -- observables ----------------------------------------------------

    def delta_vth_v(self) -> np.ndarray:
        """Per-unit total threshold shift (volts)."""
        return self.recoverable_vth_v() + self.permanent_v

    def recoverable_vth_v(self) -> np.ndarray:
        """Per-unit recoverable shift (volts)."""
        # Fused multiply-reduce: no (n_units, n_bins) temporary.
        return np.einsum("ij,ij->i", self.occupancy, self.weights)

    def step(self, dt_s: float, stressing: np.ndarray,
             capture_acceleration: np.ndarray,
             recovery_acceleration: np.ndarray) -> None:
        """Advance every unit by ``dt_s``.

        Args:
            dt_s: epoch length.
            stressing: boolean (n_units,) -- True = unit under stress,
                False = unit recovering.
            capture_acceleration: (n_units,) capture-rate multipliers
                for the stressing units.
            recovery_acceleration: (n_units,) de-trapping multipliers
                for the recovering units.
        """
        if dt_s < 0.0:
            raise SimulationError("dt_s must be non-negative")
        stressing = np.asarray(stressing, dtype=bool)
        capture = np.asarray(capture_acceleration, dtype=float)
        recovery = np.asarray(recovery_acceleration, dtype=float)
        for array in (stressing, capture, recovery):
            if array.shape != (self.n_units,):
                raise SimulationError(
                    f"per-unit arrays must have shape ({self.n_units},)")
        cfg = self.config
        # Ageing/lock-in advance in equivalent stress time (dt scaled
        # by the per-unit capture acceleration), mirroring
        # TrapPopulation.stress() -- including its bounded sub-step
        # count for extreme accelerations.
        any_stress = bool(stressing.any())
        peak_accel = float(capture.max(initial=-np.inf,
                                       where=stressing)) \
            if any_stress else 1.0
        n_steps = int(np.ceil(dt_s * max(peak_accel, 1e-12)
                              / max(cfg.lock_age_s / 8.0, 1e-9)))
        n_steps = min(max(n_steps, 1), 64)
        step = dt_s / n_steps
        key = (step, stressing.tobytes(), capture.tobytes(),
               recovery.tobytes())
        eq_full, stress_full, decay, inflow, fraction = \
            self.kernel_cache.get_or_build(
                key,
                lambda: self._build_step_kernel(step, stressing, capture,
                                                recovery))
        occupancy = self.occupancy
        age = self.age_s
        weights = self.weights
        buf_a, buf_b, buf_c = self._buf_a, self._buf_b, self._buf_c
        mask = self._mask
        # Every update below is an in-place masked write (`where=` /
        # copyto) or a same-shape ufunc pass; both produce the same
        # elementwise values as the boolean fancy indexing they
        # replace, so the trajectory is bit-identical.
        for _ in range(n_steps):
            # The fill-towards-1 / drain updates fused into one affine
            # map per bin: occupancy = occupancy * decay + inflow
            # (see _build_step_kernel).
            np.multiply(occupancy, decay, out=occupancy)
            np.add(occupancy, inflow, out=occupancy)
            # Age bookkeeping: occupied bins age in equivalent stress
            # time, emptied bins reset.
            np.greater_equal(occupancy, cfg.age_on_occupancy, out=mask)
            np.add(age, eq_full, out=age, where=mask)
            np.less_equal(occupancy, cfg.age_off_occupancy, out=mask)
            np.copyto(age, 0.0, where=mask)
            # Lock-in (stress only).
            if fraction is not None and any_stress:
                np.greater(age, cfg.lock_age_s, out=mask)
                np.logical_and(mask, stress_full, out=mask)
                if mask.any():
                    aged = mask
                    np.multiply(weights, occupancy, out=buf_a)
                    np.multiply(buf_a, fraction, out=buf_b)
                    # Masked row sum of the converted charge (the
                    # False rows contribute exactly 0).
                    self.permanent_v += np.einsum(
                        "ij,ij->i", buf_b, aged)
                    np.multiply(occupancy, fraction, out=buf_c)
                    np.subtract(1.0, buf_c, out=buf_c)
                    np.multiply(weights, buf_c, out=weights,
                                where=aged)
                    positive = self._mask_b
                    np.greater(weights, 0.0, out=positive)
                    np.logical_and(positive, aged, out=positive)
                    # occupancy = remaining charge / new weight on the
                    # aged, still-weighted bins.
                    np.subtract(buf_a, buf_b, out=buf_a)
                    np.maximum(weights, 1e-300, out=buf_c)
                    np.divide(buf_a, buf_c, out=occupancy,
                              where=positive)
            self.time_s += step

    def _build_step_kernel(self, step: float, stressing: np.ndarray,
                           capture: np.ndarray, recovery: np.ndarray):
        """Sub-step-invariant factors for one ``(step, inputs)`` tuple.

        Copies its inputs (the cache key is their content at build
        time, so cached kernels must not alias caller buffers).
        """
        cfg = self.config
        shape = (self.n_units, cfg.n_bins)
        stressing = stressing.copy()
        equivalent = np.where(stressing, capture * step, 0.0)
        eq_col = equivalent[:, None]
        # equivalent is 0 on resting units, so fill is exactly 0 there.
        fill = -np.expm1(-eq_col / self.tau_c[None, :])
        tau_e = cfg.emission_scale * self.tau_c
        drain = np.ones(shape)
        resting = ~stressing
        if np.any(resting):
            drain[resting] = np.exp(-step * recovery[resting, None]
                                    / tau_e[None, :])
        # occ' = (occ + (1 - occ) * fill) * drain, rearranged into the
        # two-pass affine form occ' = occ * decay + inflow.  One extra
        # rounding per bin vs the four-pass original (~1 ulp; the
        # system equivalence tests bound the accumulated effect).
        decay = (1.0 - fill) * drain
        inflow = fill * drain
        # The per-unit columns are materialized to full (units, bins)
        # arrays once per kernel so every sub-step op is a contiguous
        # same-shape pass (broadcasting in the hot loop is slower).
        eq_full = np.ascontiguousarray(np.broadcast_to(eq_col, shape))
        stress_full = np.ascontiguousarray(
            np.broadcast_to(stressing[:, None], shape))
        fraction = None
        if cfg.lock_rate_per_s > 0.0:
            fraction = np.ascontiguousarray(np.broadcast_to(
                -np.expm1(-cfg.lock_rate_per_s * equivalent)[:, None],
                shape))
        return (eq_full, stress_full, decay, inflow, fraction)


class FleetEmState:
    """Batched lumped EM state for the local grid of each core.

    Nucleation progress is tracked as the *equivalent stress time at a
    reference condition*: a unit accrues progress at the rate
    ``j^2 kappa(T) / (j_ref^2 kappa(T_ref))`` (forward current),
    unwinds it under reverse current, and nucleates when the progress
    reaches the closed-form nucleation time of the reference
    condition.  After nucleation the void grows at the drift velocity,
    refills at ``recovery_boost`` times it under reverse current, and
    immobilizes at the calibrated lock rate.
    """

    def __init__(self, n_units: int,
                 reference: EmStressCondition,
                 wire: Wire = PAPER_TEST_WIRE,
                 config: Optional[EmLineConfig] = None,
                 step_cache_size: int = 64):
        if n_units < 1:
            raise SimulationError("n_units must be at least 1")
        if reference.current_density_a_m2 <= 0.0:
            raise SimulationError(
                "reference condition must carry forward current")
        self.n_units = n_units
        self.wire = wire
        self.config = config or EmLineConfig()
        self.reference = reference
        self._lumped = LumpedEmModel(wire, self.config.failure_fraction)
        self.nucleation_time_ref_s = self._lumped.nucleation_time(reference)
        material = wire.material
        self._ref_rate = (reference.current_density_a_m2 ** 2
                          * material.stress_diffusivity_at(
                              reference.temperature_k))
        if self._ref_rate <= 0.0:
            raise SimulationError(
                "reference condition must carry forward current")
        self.progress_s = np.zeros(n_units)
        self.nucleated = np.zeros(n_units, dtype=bool)
        self.void_reversible_m = np.zeros(n_units)
        self.void_locked_m = np.zeros(n_units)
        self.time_s = 0.0
        # The Arrhenius/drift factors of a step depend only on
        # (dt, j, T), never on the void state, so epoch loops that
        # revisit a few (current, temperature) patterns skip both
        # exponential evaluations on a hit.  ``step_cache_size`` lets
        # fleet-scale callers bound the entry memory (each entry holds
        # five (n_units,) arrays).
        if step_cache_size < 1:
            raise SimulationError("step_cache_size must be at least 1")
        self._step_cache = FactorizationCache(
            maxsize=step_cache_size, name="system.aging.steps")

    # -- observables ----------------------------------------------------

    def total_void_m(self) -> np.ndarray:
        """Per-unit total void length."""
        return self.void_reversible_m + self.void_locked_m

    def delta_resistance_ohm(self) -> np.ndarray:
        """Per-unit resistance drift from voiding."""
        return self.wire.void_resistance_per_m * self.total_void_m()

    def failed(self, temperature_k: float) -> np.ndarray:
        """Per-unit hard-failure flags at a read-out temperature."""
        fresh = self.wire.resistance_at(temperature_k)
        return self.delta_resistance_ohm() >= \
            self.config.failure_fraction * fresh

    def step(self, dt_s: float, current_density_a_m2: np.ndarray,
             temperature_k: np.ndarray, key=None) -> None:
        """Advance every unit by ``dt_s``.

        Args:
            dt_s: epoch length.
            current_density_a_m2: signed per-unit grid current density
                (negative = active EM recovery).
            temperature_k: per-unit grid temperature.
            key: optional hashable cache key standing in for the
                ``(dt_s, j, T)`` content.  By default the rate cache
                keys on the raw array bytes; a fleet-scale caller that
                already identifies the epoch's conditions by a compact
                token (e.g. the assignment digest) can pass it here to
                avoid hashing megabytes per epoch.  The caller must
                guarantee the key uniquely determines the inputs.
        """
        if dt_s < 0.0:
            raise SimulationError("dt_s must be non-negative")
        j = np.asarray(current_density_a_m2, dtype=float)
        temp = np.asarray(temperature_k, dtype=float)
        if j.shape != (self.n_units,) or temp.shape != (self.n_units,):
            raise SimulationError(
                f"per-unit arrays must have shape ({self.n_units},)")
        if key is None:
            key = (dt_s, j.tobytes(), temp.tobytes())
        signed_rate, forward, reverse, growth_m, healed_m = \
            self._step_cache.get_or_build(
                key, lambda: self._build_step_rates(dt_s, j, temp))
        # Nucleation progress: accrues forward, unwinds in reverse.
        self.progress_s = np.maximum(
            self.progress_s + signed_rate, 0.0)
        self.nucleated |= self.progress_s >= self.nucleation_time_ref_s
        # Void dynamics for nucleated units.  Masked full-array writes
        # replace boolean fancy indexing: the update expressions are
        # evaluated elementwise either way, so the written values are
        # bit-identical.
        growing = self.nucleated & forward
        np.add(self.void_reversible_m, growth_m,
               out=self.void_reversible_m, where=growing)
        refilling = reverse & (self.void_reversible_m > 0.0)
        np.copyto(self.void_reversible_m,
                  np.maximum(self.void_reversible_m - healed_m, 0.0),
                  where=refilling)
        # Lock-in of existing reversible void volume.
        if self.config.lock_rate_per_s > 0.0:
            locked = self.void_reversible_m * (
                -math.expm1(-self.config.lock_rate_per_s * dt_s))
            self.void_reversible_m -= locked
            self.void_locked_m += locked
        self.time_s += dt_s

    def _build_step_rates(self, dt_s: float, j: np.ndarray,
                          temp: np.ndarray):
        """State-independent rate factors for one ``(dt, j, T)`` key.

        Copies nothing: every returned array is freshly allocated and
        consumed read-only by :meth:`step`.
        """
        if np.any(temp <= 0.0):
            raise SimulationError("temperatures must be positive")
        material = self.wire.material
        # One vectorized Arrhenius/drift evaluation for the whole
        # fleet (the former per-core Python loops dominated the epoch).
        kappa = material.stress_diffusivities_at(temp)
        rate = (j * j) * kappa / self._ref_rate
        signed_rate = np.where(j >= 0.0, rate, -rate) * dt_s
        drift = np.abs(material.drift_velocities(j, temp))
        growth_m = drift * dt_s
        healed_m = self.config.recovery_boost * drift * dt_s
        return (signed_rate, j > 0.0, j < 0.0, growth_m, healed_m)
