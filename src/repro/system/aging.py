"""Vectorized per-core aging states for system-level simulation.

The mechanistic models in :mod:`repro.bti` and :mod:`repro.em` track a
single device/wire with high fidelity.  A system simulation needs the
same dynamics for every core of a fleet over years of epochs, so this
module re-expresses them with the unit (core) dimension vectorized in
numpy:

* :class:`FleetBtiState` -- the trap-population dynamics of
  :class:`repro.bti.traps.TrapPopulation` batched over cores, with the
  same capture/emission/lock-in behaviour (and therefore the same
  Table I / Fig. 4 calibration).
* :class:`FleetEmState` -- a lumped per-core EM state built on the
  square-root stress kernel of :mod:`repro.em.lumped`: nucleation
  progress accumulates at a rate proportional to ``j^2 * kappa(T)``
  (the inverse of the closed-form nucleation time), reverses under
  reverse current, and post-nucleation void growth/refill/lock-in
  follows the same rates as :class:`repro.em.line.EmLine`.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.bti.conditions import RecoveryAccelerationParams
from repro.bti.traps import TrapPopulationConfig
from repro.em.line import EmLineConfig, EmStressCondition
from repro.em.lumped import LumpedEmModel
from repro.em.wire import PAPER_TEST_WIRE, Wire
from repro.errors import SimulationError


class FleetBtiState:
    """Batched trap-population state for ``n_units`` cores.

    The per-bin dynamics are identical to
    :class:`repro.bti.traps.TrapPopulation`; every step takes
    *per-unit* boolean stress masks and rate multipliers, so different
    cores can stress, idle and heal in the same epoch.
    """

    def __init__(self, n_units: int,
                 config: Optional[TrapPopulationConfig] = None):
        if n_units < 1:
            raise SimulationError("n_units must be at least 1")
        self.n_units = n_units
        self.config = config or TrapPopulationConfig(n_bins=64)
        cfg = self.config
        self.tau_c = np.logspace(math.log10(cfg.tau_min_s),
                                 math.log10(cfg.tau_max_s), cfg.n_bins)
        fresh_weight = cfg.vth_full_shift_v / cfg.n_bins
        self.weights = np.full((n_units, cfg.n_bins), fresh_weight)
        self.occupancy = np.zeros((n_units, cfg.n_bins))
        self.age_s = np.zeros((n_units, cfg.n_bins))
        self.permanent_v = np.zeros(n_units)
        self.time_s = 0.0

    # -- observables ----------------------------------------------------

    def delta_vth_v(self) -> np.ndarray:
        """Per-unit total threshold shift (volts)."""
        return self.recoverable_vth_v() + self.permanent_v

    def recoverable_vth_v(self) -> np.ndarray:
        """Per-unit recoverable shift (volts)."""
        return (self.occupancy * self.weights).sum(axis=1)

    def step(self, dt_s: float, stressing: np.ndarray,
             capture_acceleration: np.ndarray,
             recovery_acceleration: np.ndarray) -> None:
        """Advance every unit by ``dt_s``.

        Args:
            dt_s: epoch length.
            stressing: boolean (n_units,) -- True = unit under stress,
                False = unit recovering.
            capture_acceleration: (n_units,) capture-rate multipliers
                for the stressing units.
            recovery_acceleration: (n_units,) de-trapping multipliers
                for the recovering units.
        """
        if dt_s < 0.0:
            raise SimulationError("dt_s must be non-negative")
        stressing = np.asarray(stressing, dtype=bool)
        capture = np.asarray(capture_acceleration, dtype=float)
        recovery = np.asarray(recovery_acceleration, dtype=float)
        for array in (stressing, capture, recovery):
            if array.shape != (self.n_units,):
                raise SimulationError(
                    f"per-unit arrays must have shape ({self.n_units},)")
        cfg = self.config
        # Ageing/lock-in advance in equivalent stress time (dt scaled
        # by the per-unit capture acceleration), mirroring
        # TrapPopulation.stress() -- including its bounded sub-step
        # count for extreme accelerations.
        peak_accel = float(capture[stressing].max()) \
            if np.any(stressing) else 1.0
        n_steps = int(np.ceil(dt_s * max(peak_accel, 1e-12)
                              / max(cfg.lock_age_s / 8.0, 1e-9)))
        n_steps = min(max(n_steps, 1), 64)
        step = dt_s / n_steps
        tau_e = cfg.emission_scale * self.tau_c
        for _ in range(n_steps):
            equivalent = np.where(stressing, capture * step, 0.0)
            # Stress update for stressing units.
            if np.any(stressing):
                fill = -np.expm1(-equivalent[stressing, None]
                                 / self.tau_c[None, :])
                self.occupancy[stressing] += (
                    (1.0 - self.occupancy[stressing]) * fill)
            # Recovery update for the rest.
            resting = ~stressing
            if np.any(resting):
                drain = np.exp(-step * recovery[resting, None]
                               / tau_e[None, :])
                self.occupancy[resting] *= drain
            # Age bookkeeping and lock-in (stress only).
            occupied = self.occupancy >= cfg.age_on_occupancy
            emptied = self.occupancy <= cfg.age_off_occupancy
            self.age_s += np.where(occupied, equivalent[:, None], 0.0)
            self.age_s[emptied] = 0.0
            if cfg.lock_rate_per_s > 0.0 and np.any(stressing):
                aged = (self.age_s > cfg.lock_age_s) \
                    & stressing[:, None]
                if np.any(aged):
                    fraction = -np.expm1(
                        -cfg.lock_rate_per_s * equivalent)[:, None]
                    converted_v = np.where(
                        aged, self.weights * self.occupancy * fraction,
                        0.0)
                    self.permanent_v += converted_v.sum(axis=1)
                    new_weights = np.where(
                        aged,
                        self.weights * (1.0 - self.occupancy * fraction),
                        self.weights)
                    remaining_charge = self.weights * self.occupancy \
                        - converted_v
                    self.occupancy = np.where(
                        aged & (new_weights > 0.0),
                        remaining_charge / np.maximum(new_weights, 1e-300),
                        self.occupancy)
                    self.weights = new_weights
            self.time_s += step


class FleetEmState:
    """Batched lumped EM state for the local grid of each core.

    Nucleation progress is tracked as the *equivalent stress time at a
    reference condition*: a unit accrues progress at the rate
    ``j^2 kappa(T) / (j_ref^2 kappa(T_ref))`` (forward current),
    unwinds it under reverse current, and nucleates when the progress
    reaches the closed-form nucleation time of the reference
    condition.  After nucleation the void grows at the drift velocity,
    refills at ``recovery_boost`` times it under reverse current, and
    immobilizes at the calibrated lock rate.
    """

    def __init__(self, n_units: int,
                 reference: EmStressCondition,
                 wire: Wire = PAPER_TEST_WIRE,
                 config: Optional[EmLineConfig] = None):
        if n_units < 1:
            raise SimulationError("n_units must be at least 1")
        if reference.current_density_a_m2 <= 0.0:
            raise SimulationError(
                "reference condition must carry forward current")
        self.n_units = n_units
        self.wire = wire
        self.config = config or EmLineConfig()
        self.reference = reference
        self._lumped = LumpedEmModel(wire, self.config.failure_fraction)
        self.nucleation_time_ref_s = self._lumped.nucleation_time(reference)
        material = wire.material
        self._ref_rate = (reference.current_density_a_m2 ** 2
                          * material.stress_diffusivity_at(
                              reference.temperature_k))
        if self._ref_rate <= 0.0:
            raise SimulationError(
                "reference condition must carry forward current")
        self.progress_s = np.zeros(n_units)
        self.nucleated = np.zeros(n_units, dtype=bool)
        self.void_reversible_m = np.zeros(n_units)
        self.void_locked_m = np.zeros(n_units)
        self.time_s = 0.0

    # -- observables ----------------------------------------------------

    def total_void_m(self) -> np.ndarray:
        """Per-unit total void length."""
        return self.void_reversible_m + self.void_locked_m

    def delta_resistance_ohm(self) -> np.ndarray:
        """Per-unit resistance drift from voiding."""
        return self.wire.void_resistance_per_m * self.total_void_m()

    def failed(self, temperature_k: float) -> np.ndarray:
        """Per-unit hard-failure flags at a read-out temperature."""
        fresh = self.wire.resistance_at(temperature_k)
        return self.delta_resistance_ohm() >= \
            self.config.failure_fraction * fresh

    def step(self, dt_s: float, current_density_a_m2: np.ndarray,
             temperature_k: np.ndarray) -> None:
        """Advance every unit by ``dt_s``.

        Args:
            dt_s: epoch length.
            current_density_a_m2: signed per-unit grid current density
                (negative = active EM recovery).
            temperature_k: per-unit grid temperature.
        """
        if dt_s < 0.0:
            raise SimulationError("dt_s must be non-negative")
        j = np.asarray(current_density_a_m2, dtype=float)
        temp = np.asarray(temperature_k, dtype=float)
        if j.shape != (self.n_units,) or temp.shape != (self.n_units,):
            raise SimulationError(
                f"per-unit arrays must have shape ({self.n_units},)")
        if np.any(temp <= 0.0):
            raise SimulationError("temperatures must be positive")
        material = self.wire.material
        # One vectorized Arrhenius/drift evaluation for the whole
        # fleet (the former per-core Python loops dominated the epoch).
        kappa = material.stress_diffusivities_at(temp)
        rate = (j * j) * kappa / self._ref_rate
        signed_rate = np.where(j >= 0.0, rate, -rate)
        # Nucleation progress: accrues forward, unwinds in reverse.
        self.progress_s = np.maximum(
            self.progress_s + signed_rate * dt_s, 0.0)
        self.nucleated |= self.progress_s >= self.nucleation_time_ref_s
        # Void dynamics for nucleated units.
        drift = np.abs(material.drift_velocities(j, temp))
        growing = self.nucleated & (j > 0.0)
        self.void_reversible_m[growing] += drift[growing] * dt_s
        refilling = (j < 0.0) & (self.void_reversible_m > 0.0)
        healed = self.config.recovery_boost * drift * dt_s
        self.void_reversible_m[refilling] = np.maximum(
            self.void_reversible_m[refilling] - healed[refilling], 0.0)
        # Lock-in of existing reversible void volume.
        if self.config.lock_rate_per_s > 0.0:
            locked = self.void_reversible_m * (
                -math.expm1(-self.config.lock_rate_per_s * dt_s))
            self.void_reversible_m -= locked
            self.void_locked_m += locked
        self.time_s += dt_s
