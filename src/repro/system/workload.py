"""Workload generators for the system-level simulator.

A workload maps an epoch index to a total compute demand expressed in
core-equivalents (0 .. n_cores); the scheduling policy then distributes
that demand over the cores it keeps active.  The three generators cover
the scenarios the paper's introduction motivates: steady server-style
load, bursty/random load, and duty-cycled (day/night or IoT
sense-sleep) load with intrinsic OFF periods that deep healing can
exploit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError


@dataclass(frozen=True)
class ConstantWorkload:
    """A steady demand at a fixed fraction of total capacity.

    Attributes:
        n_cores: chip capacity in cores.
        utilization: demanded fraction of total capacity, in [0, 1].
    """

    n_cores: int
    utilization: float = 0.6

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise SimulationError("n_cores must be at least 1")
        if not 0.0 <= self.utilization <= 1.0:
            raise SimulationError("utilization must be within [0, 1]")

    def demand(self, epoch: int) -> float:
        """Demand in core-equivalents for an epoch."""
        return self.n_cores * self.utilization


@dataclass
class RandomWorkload:
    """AR(1) random demand (bursty but correlated across epochs).

    Attributes:
        n_cores: chip capacity in cores.
        mean_utilization: long-run demanded fraction of capacity.
        volatility: standard deviation of the per-epoch innovation,
            as a fraction of capacity.
        correlation: AR(1) coefficient in [0, 1).
        seed: RNG seed for reproducibility.
    """

    n_cores: int
    mean_utilization: float = 0.6
    volatility: float = 0.15
    correlation: float = 0.9
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise SimulationError("n_cores must be at least 1")
        if not 0.0 <= self.mean_utilization <= 1.0:
            raise SimulationError("mean_utilization must be in [0, 1]")
        if self.volatility < 0.0:
            raise SimulationError("volatility must be non-negative")
        if not 0.0 <= self.correlation < 1.0:
            raise SimulationError("correlation must be in [0, 1)")
        self._rng = np.random.default_rng(self.seed)
        self._state = 0.0
        self._last_epoch = -1

    def demand(self, epoch: int) -> float:
        """Demand in core-equivalents for an epoch.

        Epochs must be queried in non-decreasing order; re-querying
        the last epoch returns the same value.
        """
        if epoch < self._last_epoch:
            raise SimulationError("epochs must be non-decreasing")
        while self._last_epoch < epoch:
            innovation = self._rng.normal(0.0, self.volatility)
            self._state = self.correlation * self._state + innovation
            self._last_epoch += 1
        utilization = min(max(self.mean_utilization + self._state, 0.0),
                          1.0)
        return self.n_cores * utilization


@dataclass(frozen=True)
class TraceWorkload:
    """Replay a recorded demand trace (datacenter logs, test vectors).

    Attributes:
        n_cores: chip capacity in cores.
        utilizations: per-epoch demanded fractions of capacity; epochs
            beyond the trace wrap around (periodic replay).
    """

    n_cores: int
    utilizations: tuple

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise SimulationError("n_cores must be at least 1")
        if not self.utilizations:
            raise SimulationError("trace must not be empty")
        for value in self.utilizations:
            if not 0.0 <= value <= 1.0:
                raise SimulationError(
                    "trace utilizations must be within [0, 1]")

    @classmethod
    def from_sequence(cls, n_cores: int, values) -> "TraceWorkload":
        """Build from any iterable of per-epoch utilizations."""
        return cls(n_cores=n_cores, utilizations=tuple(values))

    def demand(self, epoch: int) -> float:
        """Demand in core-equivalents for an epoch (trace wraps)."""
        value = self.utilizations[epoch % len(self.utilizations)]
        return self.n_cores * value


@dataclass(frozen=True)
class PhasedWorkload:
    """A workload observed with a fixed epoch offset.

    Wraps any workload so its demand stream starts ``phase_epochs``
    into the inner stream -- chip 7 of a rack sees the same diurnal
    curve as chip 0, just shifted by its deployment (or timezone)
    offset.  This is the per-chip *workload phase* the heterogeneous
    fleet engine batches over: a fleet chip with phase ``p`` is
    bitwise-equivalent to a standalone simulator driven by
    ``PhasedWorkload(workload, p)``.

    The offset applies to the demand stream only; scheduling policies
    still see the unshifted epoch index (a policy's clock starts at
    its own chip's deployment).  Stateful inner workloads (e.g.
    :class:`RandomWorkload`) require non-decreasing queries, which a
    constant non-negative offset preserves.

    Attributes:
        workload: the wrapped demand generator.
        phase_epochs: non-negative epoch offset added to every query.
    """

    workload: object
    phase_epochs: int = 0

    def __post_init__(self) -> None:
        if self.phase_epochs < 0:
            raise SimulationError("phase_epochs must be non-negative")

    @property
    def name(self) -> str:
        """Label of the wrapped workload plus its offset."""
        inner = getattr(self.workload, "name", "") \
            or type(self.workload).__name__
        return f"{inner}+{self.phase_epochs}"

    def demand(self, epoch: int) -> float:
        """Demand of the wrapped workload at the shifted epoch."""
        return self.workload.demand(epoch + self.phase_epochs)


@dataclass(frozen=True)
class DiurnalWorkload:
    """Sinusoidal day/night demand (or IoT duty cycling).

    Attributes:
        n_cores: chip capacity in cores.
        peak_utilization: demanded fraction at the daily peak.
        trough_utilization: demanded fraction at the nightly trough.
        period_epochs: epochs per day (e.g. 48 with 30-min epochs).
    """

    n_cores: int
    peak_utilization: float = 0.9
    trough_utilization: float = 0.2
    period_epochs: int = 48

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise SimulationError("n_cores must be at least 1")
        if not (0.0 <= self.trough_utilization
                <= self.peak_utilization <= 1.0):
            raise SimulationError(
                "require 0 <= trough <= peak <= 1 utilization")
        if self.period_epochs < 2:
            raise SimulationError("period_epochs must be at least 2")

    def demand(self, epoch: int) -> float:
        """Demand in core-equivalents for an epoch."""
        phase = 2.0 * math.pi * (epoch % self.period_epochs) \
            / self.period_epochs
        mid = 0.5 * (self.peak_utilization + self.trough_utilization)
        amplitude = 0.5 * (self.peak_utilization
                           - self.trough_utilization)
        return self.n_cores * (mid - amplitude * math.cos(phase))
