"""Policy x workload x chip lifetime sweeps over the process pool.

The Fig. 12(b) experiments compare a handful of scheduling policies on
one chip; design-space work multiplies that by workload mixes and chip
configurations.  :func:`run_lifetime_sweep` fans the full Cartesian
grid out through :func:`repro.solvers.sweep.run_sweep`, so every cell
runs a fresh :class:`~repro.system.simulator.SystemSimulator` in its
own process with deterministic per-cell seeding, and the results come
back as a structured :class:`SweepResult` table (guardband, permanent
Vth, EM failures, migration overhead per cell).

Cells are independent by construction: the worker deep-copies stateful
policies/workloads (or builds them fresh from factories) and builds
the chip inside the worker, so no mutable state crosses cell
boundaries and serial and pooled runs are identical.

When every cell shares one chip design, the grid is exactly the
heterogeneous-population shape the structure-of-arrays fleet engine
batches: one :class:`~repro.system.fleet.FleetGroup` per
(policy, workload) pair, one chip per cell, advanced in stacked tensor
sweeps instead of one Python simulator per cell.  ``engine="auto"``
(the default) routes such grids to the fleet engine and keeps
genuinely heterogeneous grids (mixed chip designs, per-cell workload
reseeding, pool fault-tolerance knobs) on the pooled path; results are
identical either way because the per-cell policy observable degenerates
to the cell's own aging state when the cohort's chips are identical.
"""

from __future__ import annotations

import copy
import dataclasses
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro import units
from repro.errors import SimulationError
from repro.solvers.sweep import SweepReport, run_sweep
from repro.system.chip import Chip, CoreSpec
from repro.system.simulator import SystemSimulator
from repro.thermal.network import ThermalNetworkConfig


@dataclass(frozen=True)
class ChipConfig:
    """A buildable chip description (picklable, unlike a live Chip).

    Attributes:
        rows / cols: core-grid dimensions.
        core: core specification (default :class:`CoreSpec`).
        thermal: thermal network parameters (defaults apply).
        name: label used in the result table; defaults to
            ``"{rows}x{cols}"``.
    """

    rows: int
    cols: int
    core: Optional[CoreSpec] = None
    thermal: Optional[ThermalNetworkConfig] = None
    name: str = ""

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise SimulationError("chip needs at least one core")

    @property
    def label(self) -> str:
        """Table label of this configuration."""
        return self.name or f"{self.rows}x{self.cols}"

    def build(self) -> Chip:
        """A fresh :class:`Chip` (thermal state included)."""
        return Chip(self.rows, self.cols, core=self.core,
                    thermal=self.thermal)


@dataclass(frozen=True)
class _SweepCell:
    """One task of the sweep grid (everything the worker needs)."""

    policy_label: str
    workload_label: str
    chip_label: str
    policy: Any
    workload: Any
    chip: ChipConfig
    n_epochs: int
    epoch_s: float
    record_every: int


@dataclass(frozen=True)
class SweepCellResult:
    """Summary observables of one (policy, workload, chip) cell.

    Attributes:
        policy / workload / chip: the grid labels of this cell.
        guardband: peak worst-core delay degradation over the horizon.
        final_delta_vth_v: worst-core total Vth shift at the end.
        final_permanent_vth_v: worst-core permanent Vth at the end.
        em_failures: hard-failed local grids at the end.
        migration_events: transitions into BTI recovery over the run.
        migration_overhead: those transitions as a fraction of the
            simulated core-epochs (at the default per-migration cost).
        lost_demand_fraction: unplaced fraction of demanded compute.
    """

    policy: str
    workload: str
    chip: str
    guardband: float
    final_delta_vth_v: float
    final_permanent_vth_v: float
    em_failures: int
    migration_events: int
    migration_overhead: float
    lost_demand_fraction: float


@dataclass(frozen=True)
class SweepResult:
    """The full sweep grid with tabular accessors."""

    cells: Tuple[SweepCellResult, ...]
    n_epochs: int
    epoch_s: float

    _SCHEMA = ("policy", "workload", "chip", "guardband",
               "final_delta_vth_v", "final_permanent_vth_v",
               "em_failures", "migration_events",
               "migration_overhead", "lost_demand_fraction")

    def __len__(self) -> int:
        return len(self.cells)

    def column(self, name: str) -> np.ndarray:
        """One result field across all cells, in grid order."""
        if name not in self._SCHEMA:
            raise SimulationError(
                f"unknown column {name!r}; one of {self._SCHEMA}")
        return np.array([getattr(cell, name) for cell in self.cells])

    def cell(self, policy: str, workload: str,
             chip: str) -> SweepCellResult:
        """The cell with the given grid labels."""
        for candidate in self.cells:
            if (candidate.policy, candidate.workload,
                    candidate.chip) == (policy, workload, chip):
                return candidate
        raise KeyError(f"no cell ({policy!r}, {workload!r}, {chip!r})")

    def best_policy(self, metric: str = "guardband") -> str:
        """Policy label with the lowest worst-case ``metric``."""
        values: Dict[str, float] = {}
        for cell in self.cells:
            current = values.get(cell.policy, -np.inf)
            values[cell.policy] = max(current, getattr(cell, metric))
        return min(values, key=lambda label: values[label])

    def table(self) -> str:
        """A fixed-width text table of every cell."""
        header = ("policy", "workload", "chip", "guardband",
                  "perm dVth", "EM fails", "migr ovh", "lost")
        rows = [(cell.policy, cell.workload, cell.chip,
                 f"{cell.guardband:.2%}",
                 f"{cell.final_permanent_vth_v * 1e3:.2f} mV",
                 str(cell.em_failures),
                 f"{cell.migration_overhead:.4%}",
                 f"{cell.lost_demand_fraction:.2%}")
                for cell in self.cells]
        widths = [max(len(header[i]), *(len(row[i]) for row in rows))
                  for i in range(len(header))]
        def fmt(row: Sequence[str]) -> str:
            return "  ".join(cell.ljust(width)
                             for cell, width in zip(row, widths))
        lines = [fmt(header), fmt(["-" * width for width in widths])]
        lines.extend(fmt(row) for row in rows)
        return "\n".join(lines)


def _labelled(items: Union[Mapping[str, Any], Sequence[Any]],
              kind: str) -> List[Tuple[str, Any]]:
    """Normalize a mapping or sequence into unique (label, item) pairs."""
    if isinstance(items, Mapping):
        pairs = list(items.items())
    else:
        pairs = []
        for index, item in enumerate(items):
            name = getattr(item, "name", "") or type(item).__name__
            pairs.append((f"{name}#{index}" if len(items) > 1
                          else str(name), item))
    if not pairs:
        raise SimulationError(f"at least one {kind} is required")
    labels = [label for label, _ in pairs]
    if len(set(labels)) != len(labels):
        raise SimulationError(f"{kind} labels must be unique")
    return pairs


def _as_chip_config(chip: Union[ChipConfig, Tuple[int, int]]
                    ) -> ChipConfig:
    if isinstance(chip, ChipConfig):
        return chip
    rows, cols = chip
    return ChipConfig(rows=int(rows), cols=int(cols))


def _cell_summary(policy_label: str, workload_label: str,
                  chip_label: str, result) -> SweepCellResult:
    """Condense one cell's SystemResult into the sweep table row."""
    return SweepCellResult(
        policy=policy_label,
        workload=workload_label,
        chip=chip_label,
        guardband=result.guardband,
        final_delta_vth_v=float(result.final_delta_vth_v.max()),
        final_permanent_vth_v=float(result.final_permanent_vth_v.max()),
        em_failures=int(result.em_failures.sum()),
        migration_events=result.migration_events,
        migration_overhead=result.migration_overhead(),
        lost_demand_fraction=result.lost_demand_fraction)


def _run_cell(cell: _SweepCell,
              seed_sequence: Optional[np.random.SeedSequence] = None
              ) -> SweepCellResult:
    """Simulate one grid cell (runs inside a pool worker)."""
    chip = cell.chip.build()
    policy = cell.policy
    if not hasattr(policy, "assign"):
        # A factory: build the policy against this cell's chip (the
        # dark-silicon policy needs the floorplan for neighbour heat).
        policy = policy(chip)
    else:
        policy = copy.deepcopy(policy)
    workload = copy.deepcopy(cell.workload)
    if (seed_sequence is not None and dataclasses.is_dataclass(workload)
            and hasattr(workload, "seed")):
        workload = dataclasses.replace(
            workload, seed=int(seed_sequence.generate_state(1)[0]))
    simulator = SystemSimulator(chip, epoch_s=cell.epoch_s)
    result = simulator.run(cell.n_epochs, workload, policy,
                           record_every=cell.record_every)
    return _cell_summary(cell.policy_label, cell.workload_label,
                         cell.chip_label, result)


def _fleet_incompatibility(chip_configs: Sequence[ChipConfig],
                           workload_pairs: Sequence[Tuple[str, Any]],
                           seed: Optional[int],
                           min_tasks_for_pool: Optional[int],
                           on_error: str, retries: int,
                           progress) -> Optional[str]:
    """Why this grid cannot run on the fleet engine (None if it can).

    Three things force the pooled path: distinct chip designs (the
    fleet stacks one design), per-cell workload reseeding (the pool
    reseeds from its own per-task streams, which the fleet cannot
    reproduce chip by chip), and any pool fault-tolerance or
    scheduling knob (the fleet is one in-process advance -- there is
    no per-cell pool to configure).  ``on_report`` is *not* a pool
    knob (the fleet path synthesizes its own report), and neither is
    ``max_workers``: the fleet engine has its own parallel chunk
    executor, so worker counts forward to it.
    """
    first = chip_configs[0]
    for config in chip_configs[1:]:
        if (config.rows, config.cols, config.core, config.thermal) \
                != (first.rows, first.cols, first.core, first.thermal):
            return "chip grid mixes distinct chip designs"
    if seed is not None:
        for label, workload in workload_pairs:
            if dataclasses.is_dataclass(workload) \
                    and hasattr(workload, "seed"):
                return (f"workload {label!r} carries a seed field and "
                        "would be reseeded per cell")
    knobs = [name for name, off in (
        ("min_tasks_for_pool", min_tasks_for_pool is None),
        ("on_error", on_error == "raise"),
        ("retries", retries == 0),
        ("progress", progress is None)) if not off]
    if knobs:
        return "pool knobs set: " + ", ".join(knobs)
    return None


def _run_fleet_grid(cells: Sequence[_SweepCell],
                    chip_configs: Sequence[ChipConfig],
                    policy_pairs: Sequence[Tuple[str, Any]],
                    workload_pairs: Sequence[Tuple[str, Any]],
                    n_epochs: int, epoch_s: float, record_every: int,
                    max_workers: Optional[int],
                    on_report, checkpoint_every: Optional[int] = None,
                    checkpoint_dir=None
                    ) -> Tuple[SweepCellResult, ...]:
    """Evaluate the whole grid as one stacked fleet advance.

    Cells are policy-major, then workload, then chip -- exactly one
    :class:`~repro.system.fleet.FleetGroup` per (policy, workload)
    pair with one fleet chip per grid chip, laid out back-to-back in
    cell order.  The chips of a group are identical (no variation),
    so each cohort's policy observable equals every member cell's own
    observable and the per-cell results match the pooled path
    bit for bit.

    ``max_workers`` forwards to the fleet engine's parallel chunk
    executor: with more than one worker the stacked rows split into
    one whole-lifetime chunk per worker (results are invariant in
    the chunk size, so this is purely a scheduling decision, and the
    engine's work-aware serial gate still keeps small grids in one
    in-process advance).
    """
    from repro.system.fleet import FleetGroup, run_fleet_lifetime_study
    groups = tuple(
        FleetGroup(n_chips=len(chip_configs), workload=workload,
                   policy=policy, name=f"{policy_label}/{workload_label}")
        for policy_label, policy in policy_pairs
        for workload_label, workload in workload_pairs)
    max_chunk_chips = None
    if max_workers is not None and max_workers > 1:
        max_chunk_chips = max(1, -(-len(cells) // max_workers))
    captured: List[SweepReport] = []
    fleet = run_fleet_lifetime_study(
        chip_configs[0], groups=groups, n_epochs=n_epochs,
        epoch_s=epoch_s, record_every=record_every,
        max_chunk_chips=max_chunk_chips, max_workers=max_workers,
        on_report=captured.append if on_report is not None else None,
        checkpoint_every=checkpoint_every,
        checkpoint_dir=checkpoint_dir)
    results = tuple(
        _cell_summary(cell.policy_label, cell.workload_label,
                      cell.chip_label, fleet.chip_result(index))
        for index, cell in enumerate(cells))
    if on_report is not None:
        # The fleet report counts chunks as its tasks; grid callers
        # read n_tasks as the cell count, so restate it.
        on_report(dataclasses.replace(captured[0],
                                      n_tasks=len(cells)))
    return results


#: Below this many simulated core-epochs (summed over every cell of
#: the grid) the sweep runs serially by default: the vectorized
#: simulator clears a 9-core epoch in ~1 ms, so a sub-threshold grid
#: finishes in well under the ~hundreds of ms of pool startup plus
#: per-cell pickling (BENCH_system.json measured the 32-cell, 48k
#: core-epoch grid at only 1.13x pooled -- barely past break-even).
#: Cell *count* is the wrong gate: what decides pool profitability is
#: the work inside the cells.
_MIN_POOL_CORE_EPOCHS = 32_000


def run_lifetime_sweep(
        policies: Union[Mapping[str, Any], Sequence[Any]],
        workloads: Union[Mapping[str, Any], Sequence[Any]],
        chips: Sequence[Union[ChipConfig, Tuple[int, int]]],
        *,
        n_epochs: int,
        epoch_s: float = units.hours(1.0),
        record_every: int = 1,
        seed: Optional[int] = 0,
        engine: str = "auto",
        max_workers: Optional[int] = None,
        min_tasks_for_pool: Optional[int] = None,
        on_error: str = "raise",
        retries: int = 0,
        progress=None,
        on_report=None,
        checkpoint_every: Optional[int] = None,
        checkpoint_dir=None) -> SweepResult:
    """Simulate every policy x workload x chip cell of a design grid.

    Args:
        policies: scheduling policies, as a ``{label: policy}`` mapping
            or a plain sequence (labelled by class name).  An entry
            without an ``assign`` method is treated as a *factory*
            called with the cell's freshly built :class:`Chip` --
            use that for chip-bound policies like
            :class:`~repro.system.dark_silicon
            .DarkSiliconRotationPolicy` on heterogeneous chip grids.
            Stateful policies are deep-copied per cell.
        workloads: demand generators, mapping or sequence as above;
            deep-copied per cell.  When ``seed`` is given, workloads
            with a ``seed`` field (e.g.
            :class:`~repro.system.workload.RandomWorkload`) are
            re-seeded per cell from the sweep's deterministic
            per-task stream.
        chips: chip configurations (:class:`ChipConfig` or bare
            ``(rows, cols)`` tuples).
        n_epochs: horizon of every cell, in epochs.
        epoch_s: epoch length in seconds.
        record_every: timeline decimation inside each cell (guardband
            is computed from the recorded timeline, so keep 1 unless
            the horizon is very long).
        seed: root seed of the per-cell workload reseeding; ``None``
            runs every cell with the workloads' own seeds.
        engine: ``"auto"`` (default) runs the grid on the
            structure-of-arrays fleet engine whenever every cell
            shares one chip design, no workload is reseeded per cell
            and no per-cell pool knob is set, falling back to the
            pooled path otherwise; ``"fleet"`` forces the fleet
            engine (raising :class:`~repro.errors.SimulationError`
            with the blocking reason when the grid is incompatible);
            ``"pooled"`` forces the per-cell path.  Results are
            identical either way; the fleet path reports
            ``mode="fleet"`` (or ``"fleet+pool"`` when its chunks
            pooled) on its ``on_report``
            :class:`~repro.solvers.SweepReport`, with the fleet
            engine's chip/cohort/kernel-dedup counters in
            ``cache_counters``.
        max_workers: process count.  On the pooled path it is
            forwarded to :func:`repro.solvers.sweep.run_sweep`; on
            the fleet path it forwards to the fleet engine's
            parallel chunk executor (the stacked rows split into one
            whole-lifetime chunk per worker -- results stay
            bitwise identical, and small grids remain one serial
            in-process advance behind the engine's work gate).
        min_tasks_for_pool: forwarded to
            :func:`repro.solvers.sweep.run_sweep` (setting it forces
            the pooled path); results are identical whichever path
            runs.  When left at ``None``, a work-aware gate keeps
            sub-threshold grids serial: the pool only starts once
            the total simulated core-epochs reach
            :data:`_MIN_POOL_CORE_EPOCHS` (pass an explicit value to
            override).
        on_error / retries / progress / on_report: fault-tolerance
            and telemetry knobs forwarded to
            :func:`repro.solvers.sweep.run_sweep`.  Under ``"skip"``
            / ``"collect"`` failed grid cells are omitted from the
            returned table (their
            :class:`~repro.solvers.TaskFailure` records arrive on the
            ``on_report`` :class:`~repro.solvers.SweepReport`), so a
            multi-day design sweep survives one pathological cell.
        checkpoint_every / checkpoint_dir: crash-durable execution,
            fleet route only: forwarded to
            :func:`~repro.system.fleet.run_fleet_lifetime_study`, so
            every chunk of the stacked grid persists its result (and
            in-flight progress every ``checkpoint_every`` epochs)
            under ``checkpoint_dir``, and re-invoking the identical
            sweep resumes instead of recomputing -- see
            :mod:`repro.system.checkpoint`.  Requesting
            checkpointing on a grid the fleet engine cannot run (or
            with ``engine="pooled"``) raises
            :class:`~repro.errors.SimulationError` naming the
            blocking reason: the per-cell pooled path has no durable
            chunk state.

    Returns:
        A :class:`SweepResult` with one cell per grid point, ordered
        policy-major, then workload, then chip.
    """
    if n_epochs < 1:
        raise SimulationError("n_epochs must be at least 1")
    if epoch_s <= 0.0:
        raise SimulationError("epoch_s must be positive")
    if record_every < 1:
        raise SimulationError("record_every must be at least 1")
    policy_pairs = _labelled(policies, "policy")
    workload_pairs = _labelled(workloads, "workload")
    chip_configs = [_as_chip_config(chip) for chip in chips]
    if not chip_configs:
        raise SimulationError("at least one chip is required")
    chip_labels = [config.label for config in chip_configs]
    if len(set(chip_labels)) != len(chip_labels):
        raise SimulationError("chip labels must be unique")
    cells = [
        _SweepCell(
            policy_label=policy_label,
            workload_label=workload_label,
            chip_label=config.label,
            policy=policy,
            workload=workload,
            chip=config,
            n_epochs=n_epochs,
            epoch_s=epoch_s,
            record_every=record_every)
        for policy_label, policy in policy_pairs
        for workload_label, workload in workload_pairs
        for config in chip_configs]
    if engine not in ("auto", "fleet", "pooled"):
        raise SimulationError(
            f"engine must be 'auto', 'fleet' or 'pooled', "
            f"got {engine!r}")
    wants_checkpoint = (checkpoint_dir is not None
                        or checkpoint_every is not None)
    if wants_checkpoint and engine == "pooled":
        raise SimulationError(
            "checkpointing requires the fleet engine; the per-cell "
            "pooled path has no durable chunk state "
            "(drop engine='pooled')")
    if engine != "pooled":
        reason = _fleet_incompatibility(
            chip_configs, workload_pairs, seed,
            min_tasks_for_pool, on_error, retries, progress)
        if reason is None:
            survivors = _run_fleet_grid(
                cells, chip_configs, policy_pairs, workload_pairs,
                n_epochs, epoch_s, record_every, max_workers,
                on_report, checkpoint_every=checkpoint_every,
                checkpoint_dir=checkpoint_dir)
            return SweepResult(cells=survivors, n_epochs=n_epochs,
                               epoch_s=epoch_s)
        if engine == "fleet":
            raise SimulationError(
                f"engine='fleet' cannot run this grid: {reason}")
        if wants_checkpoint:
            raise SimulationError(
                "checkpointing requires the fleet engine, but this "
                f"grid cannot run on it: {reason}")
    if min_tasks_for_pool is None:
        total_core_epochs = n_epochs * len(policy_pairs) \
            * len(workload_pairs) \
            * sum(config.rows * config.cols for config in chip_configs)
        if total_core_epochs < _MIN_POOL_CORE_EPOCHS:
            # Serial and pooled runs are identical, so the gate is
            # purely a performance decision (see _MIN_POOL_CORE_EPOCHS).
            min_tasks_for_pool = len(cells) + 1
    results = run_sweep(_run_cell, cells, max_workers=max_workers,
                        seed=seed,
                        min_tasks_for_pool=min_tasks_for_pool,
                        on_error=on_error, retries=retries,
                        progress=progress, on_report=on_report)
    survivors = tuple(result for result in results
                      if isinstance(result, SweepCellResult))
    return SweepResult(cells=survivors, n_epochs=n_epochs,
                       epoch_s=epoch_s)
