"""Signal-probability and duty-cycle views of BTI stress.

The paper's related work (its refs [14] GNOMO, [15] Penelope) mitigates
BTI by *rebalancing signal probabilities*: a PMOS device suffers NBTI
stress only while its gate is low, so the fraction of time a node
spends at each logic level sets the device's stress duty cycle.  Deep
healing goes further -- it adds *active* recovery during the OFF
fraction -- but the duty-cycle bookkeeping is the same, and a fair
comparison between rebalancing and deep healing needs both in one
framework.

This module provides that bookkeeping:

* :func:`stress_duty_from_signal_probability` -- device-level stress
  duty for NBTI (PMOS) and PBTI (NMOS) given a node's probability of
  being logic-1;
* :class:`DutyCycledStressModel` -- long-run shift of a device whose
  stress is duty-cycled at a frequency far above the trap time
  constants (the standard AC-BTI reduction: effective stress time =
  duty * wall-clock time);
* :func:`rebalancing_gain` -- the shift reduction achievable by moving
  the signal probability alone (the prior-work knob), to contrast with
  the active-recovery gain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.bti.analytic import PowerLawStressModel
from repro.bti.conditions import BtiStressCondition
from repro.errors import SimulationError


def stress_duty_from_signal_probability(probability_one: float,
                                        polarity: str) -> float:
    """Fraction of time a device is under BTI stress.

    Args:
        probability_one: probability that the device's *gate input
            node* is at logic 1.
        polarity: ``"pmos"`` (NBTI: stressed while the input is 0,
            which turns the PMOS on) or ``"nmos"`` (PBTI: stressed
            while the input is 1).

    Returns:
        The stress duty cycle in [0, 1].
    """
    if not 0.0 <= probability_one <= 1.0:
        raise SimulationError("probability must be within [0, 1]")
    if polarity == "pmos":
        return 1.0 - probability_one
    if polarity == "nmos":
        return probability_one
    raise SimulationError("polarity must be 'pmos' or 'nmos'")


@dataclass(frozen=True)
class DutyCycledStressModel:
    """Long-run BTI shift of a duty-cycled device.

    For switching activity far faster than the trap time constants the
    standard AC reduction applies: the device behaves like one under
    DC stress for ``duty * t`` wall-clock seconds (plus a small AC
    attenuation factor often folded into the prefactor).

    Attributes:
        stress_model: underlying DC power-law model.
        ac_attenuation: multiplicative factor (<= 1) accounting for the
            partial recovery inside each fast cycle.
    """

    stress_model: PowerLawStressModel = field(
        default_factory=PowerLawStressModel)
    ac_attenuation: float = 0.9

    def __post_init__(self) -> None:
        if not 0.0 < self.ac_attenuation <= 1.0:
            raise SimulationError("ac_attenuation must be in (0, 1]")

    def shift(self, wall_clock_s: float, duty: float,
              condition: Optional[BtiStressCondition] = None) -> float:
        """Shift after ``wall_clock_s`` at the given stress duty."""
        if not 0.0 <= duty <= 1.0:
            raise SimulationError("duty must be within [0, 1]")
        if wall_clock_s < 0.0:
            raise SimulationError("time must be non-negative")
        if duty == 0.0 or wall_clock_s == 0.0:
            return 0.0
        effective = duty * wall_clock_s
        return self.ac_attenuation * self.stress_model.shift(
            effective, condition)

    def shift_from_signal_probability(self, wall_clock_s: float,
                                      probability_one: float,
                                      polarity: str,
                                      condition: Optional[
                                          BtiStressCondition] = None
                                      ) -> float:
        """Shift of a device given its input-node signal probability."""
        duty = stress_duty_from_signal_probability(probability_one,
                                                   polarity)
        return self.shift(wall_clock_s, duty, condition)


def rebalancing_gain(model: DutyCycledStressModel,
                     wall_clock_s: float,
                     duty_before: float, duty_after: float,
                     condition: Optional[BtiStressCondition] = None
                     ) -> float:
    """Relative shift reduction from signal-probability rebalancing.

    Returns ``1 - shift(after) / shift(before)``: the fraction of the
    BTI shift removed by moving the stress duty from ``duty_before``
    to ``duty_after`` (the GNOMO/Penelope knob).  Because the shift is
    a weak power law in time, halving the duty removes only
    ``1 - 0.5^n`` (~11 % at n = 0.17) -- which is exactly why the paper
    argues passive-time engineering cannot match active recovery.
    """
    before = model.shift(wall_clock_s, duty_before, condition)
    if before <= 0.0:
        raise SimulationError("duty_before produces no stress to reduce")
    after = model.shift(wall_clock_s, duty_after, condition)
    return 1.0 - after / before
