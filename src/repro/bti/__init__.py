"""Bias Temperature Instability (BTI) wearout and recovery models.

This package is the device-physics substrate that replaces the paper's
40 nm FPGA hardware measurements (Section III-B/C of Guo & Stan 2017).
It provides:

* :class:`~repro.bti.traps.TrapPopulation` -- a capture/emission trap
  population with logarithmically distributed time constants, the
  mechanism behind both stress build-up and (active, accelerated)
  recovery, including the *lock-in* process that creates the
  quasi-permanent wearout component.
* :class:`~repro.bti.model.BtiModel` -- the user-facing stateful model
  that applies stress and recovery phases and reports threshold-voltage
  shift over time.
* :class:`~repro.bti.conditions.BtiRecoveryCondition` /
  :class:`~repro.bti.conditions.BtiStressCondition` -- operating points,
  including the paper's four Fig. 2(a) recovery regimes as presets.
* :mod:`~repro.bti.calibration` -- fits the recovery acceleration
  parameters to the paper's Table I measurements.
* :mod:`~repro.bti.analytic` -- closed-form stress/relaxation models
  (power-law stress, universal relaxation) for fast system-level use.
"""

from repro.bti.conditions import (
    BtiRecoveryCondition,
    BtiStressCondition,
    PASSIVE_RECOVERY,
    ACTIVE_RECOVERY,
    ACCELERATED_RECOVERY,
    ACTIVE_ACCELERATED_RECOVERY,
    TABLE1_RECOVERY_CONDITIONS,
    TABLE1_STRESS,
)
from repro.bti.fleet import StackedTrapPopulations
from repro.bti.traps import TrapPopulation, TrapPopulationConfig
from repro.bti.model import BtiModel, BtiModelConfig, BtiPhaseResult
from repro.bti.calibration import (
    BtiCalibration,
    Table1Measurement,
    TABLE1_MEASUREMENTS,
    calibrate_to_table1,
    default_calibration,
)
from repro.bti.analytic import (
    UniversalRelaxationModel,
    PowerLawStressModel,
    AnalyticBtiModel,
)
from repro.bti.duty import (
    DutyCycledStressModel,
    rebalancing_gain,
    stress_duty_from_signal_probability,
)
from repro.bti.variability import (
    BtiVariabilityModel,
    margin_amplification,
)
from repro.bti.reaction_diffusion import (
    ReactionDiffusionBtiModel,
    ReactionDiffusionConfig,
)
from repro.bti.experiment import (
    FrequencyDomainExperiment,
    FrequencyMeasurement,
)

__all__ = [
    "ReactionDiffusionBtiModel",
    "ReactionDiffusionConfig",
    "FrequencyDomainExperiment",
    "FrequencyMeasurement",
    "BtiVariabilityModel",
    "margin_amplification",
    "DutyCycledStressModel",
    "rebalancing_gain",
    "stress_duty_from_signal_probability",
    "BtiRecoveryCondition",
    "BtiStressCondition",
    "PASSIVE_RECOVERY",
    "ACTIVE_RECOVERY",
    "ACCELERATED_RECOVERY",
    "ACTIVE_ACCELERATED_RECOVERY",
    "TABLE1_RECOVERY_CONDITIONS",
    "TABLE1_STRESS",
    "StackedTrapPopulations",
    "TrapPopulation",
    "TrapPopulationConfig",
    "BtiModel",
    "BtiModelConfig",
    "BtiPhaseResult",
    "BtiCalibration",
    "Table1Measurement",
    "TABLE1_MEASUREMENTS",
    "calibrate_to_table1",
    "default_calibration",
    "UniversalRelaxationModel",
    "PowerLawStressModel",
    "AnalyticBtiModel",
]
