"""User-facing stateful BTI wearout/recovery model.

:class:`BtiModel` binds a :class:`~repro.bti.traps.TrapPopulation` to
the operating-condition abstractions of :mod:`repro.bti.conditions`, so
callers think in terms of *"stress for 24 h, then recover for 6 h at
110 degC and -0.3 V"* rather than rate multipliers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.bti.conditions import (
    BtiRecoveryCondition,
    BtiStressCondition,
    PASSIVE_RECOVERY,
    RecoveryAccelerationParams,
    TABLE1_STRESS,
)
from repro.bti.traps import TrapPopulation, TrapPopulationConfig


@dataclass(frozen=True)
class BtiModelConfig:
    """Complete configuration of a :class:`BtiModel`.

    Attributes:
        population: trap-population parameters (bin layout, emission
            scale, lock-in behaviour).
        acceleration: coefficients of the recovery-acceleration law,
            normally taken from a Table I calibration.
        reference_stress: the stress condition whose capture rate the
            trap time constants are expressed in; stressing at any other
            condition rescales capture rates relative to this one.
    """

    population: TrapPopulationConfig = field(
        default_factory=TrapPopulationConfig)
    acceleration: RecoveryAccelerationParams = field(
        default_factory=lambda: RecoveryAccelerationParams(
            bias_efold_volts=0.1, activation_energy_ev=0.5,
            synergy_coefficient=0.0))
    reference_stress: BtiStressCondition = TABLE1_STRESS


@dataclass(frozen=True)
class BtiPhaseResult:
    """Outcome of one stress or recovery phase.

    Attributes:
        kind: ``"stress"`` or ``"recovery"``.
        duration_s: phase length in seconds.
        vth_before_v / vth_after_v: total threshold shift at the phase
            boundaries.
        permanent_after_v: permanent component after the phase.
    """

    kind: str
    duration_s: float
    vth_before_v: float
    vth_after_v: float
    permanent_after_v: float

    @property
    def delta_v(self) -> float:
        """Signed shift change over the phase (negative = healed)."""
        return self.vth_after_v - self.vth_before_v


class BtiModel:
    """Stateful BTI model for one transistor (or one matched block).

    Example (the paper's Table I protocol)::

        model = default_calibration().build_model()
        model.apply_stress(hours(24))
        before = model.delta_vth_v
        model.apply_recovery(hours(6), ACTIVE_ACCELERATED_RECOVERY)
        recovered = (before - model.delta_vth_v) / before   # ~0.724
    """

    def __init__(self, config: Optional[BtiModelConfig] = None):
        self.config = config or BtiModelConfig()
        self.population = TrapPopulation(self.config.population)
        self.history: List[BtiPhaseResult] = []

    # -- observables ----------------------------------------------------

    @property
    def delta_vth_v(self) -> float:
        """Total threshold-voltage shift in volts."""
        return self.population.total_vth_v

    @property
    def recoverable_vth_v(self) -> float:
        """Still-recoverable part of the shift."""
        return self.population.recoverable_vth_v

    @property
    def permanent_vth_v(self) -> float:
        """Locked-in (permanent) part of the shift."""
        return self.population.permanent_vth_v

    @property
    def permanent_fraction(self) -> float:
        """Permanent share of the total shift."""
        return self.population.permanent_fraction

    @property
    def elapsed_s(self) -> float:
        """Total simulated time across all phases."""
        return self.population.time_s

    def copy(self) -> "BtiModel":
        """Deep copy (state and history) sharing the immutable config."""
        clone = BtiModel(self.config)
        clone.population = self.population.copy()
        clone.history = list(self.history)
        return clone

    def reset(self) -> None:
        """Return the model to the fresh state and clear the history."""
        self.population.reset()
        self.history.clear()

    # -- phases -----------------------------------------------------------

    def apply_stress(self, duration_s: float,
                     condition: Optional[BtiStressCondition] = None
                     ) -> BtiPhaseResult:
        """Stress the device for ``duration_s`` seconds.

        Args:
            duration_s: stress time in seconds.
            condition: stress operating point; defaults to the
                calibration reference stress.
        """
        condition = condition or self.config.reference_stress
        accel = condition.capture_acceleration(self.config.reference_stress)
        before = self.delta_vth_v
        self.population.stress(duration_s, accel)
        result = BtiPhaseResult(
            kind="stress", duration_s=duration_s, vth_before_v=before,
            vth_after_v=self.delta_vth_v,
            permanent_after_v=self.permanent_vth_v)
        self.history.append(result)
        return result

    def apply_recovery(self, duration_s: float,
                       condition: BtiRecoveryCondition = PASSIVE_RECOVERY
                       ) -> BtiPhaseResult:
        """Recover the device for ``duration_s`` seconds.

        Args:
            duration_s: recovery time in seconds.
            condition: recovery operating point (one of the Fig. 2a
                presets, or any custom bias/temperature).
        """
        accel = condition.acceleration(self.config.acceleration)
        before = self.delta_vth_v
        self.population.recover(duration_s, accel)
        result = BtiPhaseResult(
            kind="recovery", duration_s=duration_s, vth_before_v=before,
            vth_after_v=self.delta_vth_v,
            permanent_after_v=self.permanent_vth_v)
        self.history.append(result)
        return result

    # -- traced phases (for figure reproduction) --------------------------

    def stress_trace(self, duration_s: float, n_points: int,
                     condition: Optional[BtiStressCondition] = None
                     ) -> Tuple[np.ndarray, np.ndarray]:
        """Stress while sampling the total shift at ``n_points`` times.

        Returns ``(times_s, delta_vth_v)`` arrays; ``times_s`` is
        relative to the start of this phase.
        """
        return self._traced(duration_s, n_points,
                            lambda dt: self.apply_stress(dt, condition))

    def recovery_trace(self, duration_s: float, n_points: int,
                       condition: BtiRecoveryCondition = PASSIVE_RECOVERY
                       ) -> Tuple[np.ndarray, np.ndarray]:
        """Recover while sampling the total shift at ``n_points`` times."""
        return self._traced(duration_s, n_points,
                            lambda dt: self.apply_recovery(dt, condition))

    def _traced(self, duration_s: float, n_points: int, phase
                ) -> Tuple[np.ndarray, np.ndarray]:
        if n_points < 2:
            raise ValueError("n_points must be at least 2")
        times = np.linspace(0.0, duration_s, n_points)
        shifts = np.empty(n_points)
        shifts[0] = self.delta_vth_v
        for i in range(1, n_points):
            phase(times[i] - times[i - 1])
            shifts[i] = self.delta_vth_v
        return times, shifts

    # -- convenience -----------------------------------------------------

    def recovery_fraction_after(self, stress_s: float, recovery_s: float,
                                condition: BtiRecoveryCondition
                                ) -> float:
        """Run the Table I protocol from fresh and report recovery %.

        Stresses a *fresh copy* of this model for ``stress_s``, recovers
        it under ``condition`` for ``recovery_s``, and returns the
        recovered fraction of the post-stress shift.  The model itself
        is not mutated.
        """
        probe = BtiModel(self.config)
        probe.apply_stress(stress_s)
        before = probe.delta_vth_v
        probe.apply_recovery(recovery_s, condition)
        if before <= 0.0:
            return 0.0
        return (before - probe.delta_vth_v) / before
