"""Capture/emission trap population with a lock-in (permanent) pathway.

This is the mechanistic heart of the BTI substrate.  It follows the
widely used picture (paper refs [2], [4], [18]) in which the BTI
threshold-voltage shift is carried by a population of oxide/interface
traps whose capture and emission time constants are distributed over
many decades:

* During **stress** each trap bin fills towards occupancy 1 with its
  capture time constant ``tau_c``.
* During **recovery** each bin empties with an emission time constant
  ``tau_e = kappa * tau_c``; the *recovery condition* (reverse bias,
  elevated temperature) divides every emission time constant by an
  acceleration factor -- that is the "activate / accelerate the
  recovery" knob of the paper.
* A trap that stays occupied for longer than a *lock-in age* starts
  converting into the quasi-**permanent** component at a fixed rate;
  locked charge no longer responds to recovery, and the conversion
  consumes the bin's *capacity* (the trap is transformed, not just
  emptied), so the permanent component saturates instead of growing
  without bound under indefinite stress.  This reproduces the paper's
  central observation: a one-shot recovery (even active + accelerated)
  leaves a >27 % permanent residue after a long stress, while *in-time
  scheduled* recovery that empties traps before they lock keeps the
  permanent component at essentially zero (Fig. 4).

All per-bin state is stored in numpy arrays, so stepping the model is a
handful of vector operations regardless of the number of bins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import SimulationError


@dataclass(frozen=True)
class TrapPopulationConfig:
    """Static configuration of a trap population.

    Attributes:
        tau_min_s: smallest capture time constant (seconds).
        tau_max_s: largest capture time constant (seconds).
        n_bins: number of logarithmically spaced trap bins.
        emission_scale: ``kappa`` -- ratio of passive emission to capture
            time constant per bin.  Large values make passive recovery
            very slow, as the paper measures (0.66 % in 6 h).
        vth_full_shift_v: threshold shift (volts) if every bin were
            fully occupied; sets the overall scale of the model.
        lock_age_s: continuous-occupancy age after which a trap starts
            converting to the permanent component.
        lock_rate_per_s: conversion rate of aged, occupied traps.
        age_on_occupancy: occupancy above which a bin's age advances.
        age_off_occupancy: occupancy below which a bin's age resets.
    """

    tau_min_s: float = 1e-2
    tau_max_s: float = 1e8
    n_bins: int = 201
    emission_scale: float = 1.0e6
    vth_full_shift_v: float = 0.050
    lock_age_s: float = 75.0 * 60.0
    lock_rate_per_s: float = 2.0e-5
    age_on_occupancy: float = 0.5
    age_off_occupancy: float = 0.05

    def __post_init__(self) -> None:
        if self.tau_min_s <= 0.0 or self.tau_max_s <= self.tau_min_s:
            raise ValueError("require 0 < tau_min_s < tau_max_s")
        if self.n_bins < 2:
            raise ValueError("n_bins must be at least 2")
        if self.emission_scale <= 0.0:
            raise ValueError("emission_scale must be positive")
        if self.vth_full_shift_v <= 0.0:
            raise ValueError("vth_full_shift_v must be positive")
        if self.lock_age_s < 0.0 or self.lock_rate_per_s < 0.0:
            raise ValueError("lock parameters must be non-negative")
        if not (0.0 <= self.age_off_occupancy
                < self.age_on_occupancy <= 1.0):
            raise ValueError(
                "require 0 <= age_off_occupancy < age_on_occupancy <= 1")


class TrapPopulation:
    """Mutable trap-population state with stress/recovery stepping.

    The class deliberately exposes only *phase* operations --
    :meth:`stress` and :meth:`recover` -- because a transistor is always
    in exactly one of the two regimes; mixed AC operation is modelled by
    alternating short phases.
    """

    def __init__(self, config: Optional[TrapPopulationConfig] = None):
        self.config = config or TrapPopulationConfig()
        cfg = self.config
        # Bin centres, logarithmically spaced; log-uniform weighting
        # (equal Vth contribution per decade), the standard flat
        # capture/emission-time map assumption.
        self.tau_c = np.logspace(np.log10(cfg.tau_min_s),
                                 np.log10(cfg.tau_max_s), cfg.n_bins)
        self._fresh_weight = cfg.vth_full_shift_v / cfg.n_bins
        self.weights = np.full(cfg.n_bins, self._fresh_weight)
        self.occupancy = np.zeros(cfg.n_bins)
        self.age_s = np.zeros(cfg.n_bins)
        self.permanent_v = 0.0
        self.time_s = 0.0

    # -- observables --------------------------------------------------

    @property
    def recoverable_vth_v(self) -> float:
        """Threshold shift carried by (still recoverable) trapped charge."""
        return float(np.dot(self.weights, self.occupancy))

    @property
    def permanent_vth_v(self) -> float:
        """Threshold shift carried by locked-in (permanent) charge."""
        return self.permanent_v

    @property
    def total_vth_v(self) -> float:
        """Total threshold-voltage shift in volts."""
        return self.recoverable_vth_v + self.permanent_v

    @property
    def permanent_fraction(self) -> float:
        """Permanent share of the total shift (0 when fresh)."""
        total = self.total_vth_v
        if total <= 0.0:
            return 0.0
        return self.permanent_v / total

    def copy(self) -> "TrapPopulation":
        """Deep copy of the mutable state (shares the static config)."""
        clone = TrapPopulation(self.config)
        clone.occupancy = self.occupancy.copy()
        clone.weights = self.weights.copy()
        clone.age_s = self.age_s.copy()
        clone.permanent_v = self.permanent_v
        clone.time_s = self.time_s
        return clone

    def reset(self) -> None:
        """Return the population to the fresh (unstressed) state."""
        self.occupancy[:] = 0.0
        self.weights[:] = self._fresh_weight
        self.age_s[:] = 0.0
        self.permanent_v = 0.0
        self.time_s = 0.0

    # -- phase stepping ------------------------------------------------

    def stress(self, duration_s: float,
               capture_acceleration: float = 1.0) -> None:
        """Apply a stress phase.

        Args:
            duration_s: phase length in seconds.
            capture_acceleration: capture-rate multiplier of the stress
                condition relative to the calibration reference (from
                :meth:`repro.bti.conditions.BtiStressCondition.capture_acceleration`).
        """
        self._check_phase_args(duration_s, capture_acceleration)
        if duration_s == 0.0:
            return
        cfg = self.config
        # Sub-step so that lock-age crossings are resolved; the capture
        # update itself is an exact exponential and needs no sub-steps.
        # Ageing and lock-in are the same field/temperature-activated
        # second-stage process as capture, so they advance in
        # *equivalent stress time* (dt scaled by the acceleration).
        # The sub-step count is bounded: for extreme accelerations the
        # lock dynamics saturate within the first few steps anyway, so
        # finer slicing would only burn time.
        equivalent_total = duration_s * capture_acceleration
        n_steps = int(np.ceil(equivalent_total
                              / max(cfg.lock_age_s / 8.0, 1e-9)))
        n_steps = min(max(n_steps, 1), 256)
        dt = duration_s / n_steps
        equivalent = equivalent_total / n_steps
        for _ in range(n_steps):
            fill = -np.expm1(-equivalent / self.tau_c)
            self.occupancy += (1.0 - self.occupancy) * fill
            self._advance_age(equivalent)
            self._lock_aged_traps(equivalent)
            self.time_s += dt

    def recover(self, duration_s: float, acceleration: float = 1.0) -> None:
        """Apply a recovery phase.

        Args:
            duration_s: phase length in seconds.
            acceleration: de-trapping rate multiplier of the recovery
                condition (1 = passive room-temperature recovery; see
                :meth:`repro.bti.conditions.BtiRecoveryCondition.acceleration`).
        """
        self._check_phase_args(duration_s, acceleration)
        if duration_s == 0.0:
            return
        cfg = self.config
        tau_e = cfg.emission_scale * self.tau_c
        remaining = duration_s
        # Sub-step only to keep the age bookkeeping responsive; eight
        # sub-steps resolve resets well before the next lock window.
        max_dt = max(duration_s / 8.0, 1e-6)
        while remaining > 0.0:
            dt = min(remaining, max_dt)
            self.occupancy *= np.exp(-dt * acceleration / tau_e)
            # No stress -> no ageing towards lock-in; only resets apply.
            self._advance_age(0.0)
            self.time_s += dt
            remaining -= dt

    # -- internals -----------------------------------------------------

    def _advance_age(self, equivalent_dt: float) -> None:
        cfg = self.config
        occupied = self.occupancy >= cfg.age_on_occupancy
        emptied = self.occupancy <= cfg.age_off_occupancy
        if equivalent_dt > 0.0:
            self.age_s[occupied] += equivalent_dt
        self.age_s[emptied] = 0.0

    def _lock_aged_traps(self, equivalent_dt: float) -> None:
        cfg = self.config
        if cfg.lock_rate_per_s == 0.0 or equivalent_dt <= 0.0:
            return
        aged = self.age_s > cfg.lock_age_s
        if not np.any(aged):
            return
        # Convert occupied charge into the permanent component AND
        # consume the corresponding bin capacity: a locked trap is
        # transformed, so it neither recovers nor refills.  This makes
        # the permanent component saturate at the finite trap budget.
        fraction = -np.expm1(-cfg.lock_rate_per_s * equivalent_dt)
        occupancy = self.occupancy[aged]
        weights = self.weights[aged]
        converted_v = weights * occupancy * fraction
        self.permanent_v += float(converted_v.sum())
        new_weights = weights * (1.0 - occupancy * fraction)
        remaining_charge = weights * occupancy - converted_v
        self.occupancy[aged] = np.where(
            new_weights > 0.0,
            remaining_charge / np.maximum(new_weights, 1e-300), 0.0)
        self.weights[aged] = new_weights

    @staticmethod
    def _check_phase_args(duration_s: float, factor: float) -> None:
        if duration_s < 0.0:
            raise SimulationError("phase duration must be non-negative")
        if factor <= 0.0:
            raise SimulationError("rate factor must be positive")
