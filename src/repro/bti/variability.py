"""Device-to-device variability of BTI in scaled technologies.

The paper's IoT motivation rests on near-threshold operation, where
"the sensitivity of transistor ON current to threshold voltages is much
higher than in super-threshold regimes".  In scaled devices BTI is not
only larger in relative terms -- it is *stochastic*: the shift is
carried by a countable number of trapped charges, so small transistors
show a distribution of shifts around the deterministic mean.

The standard description (Kaczer et al.) makes the trap count Poisson
with mean ``N(t)`` and the per-trap impact exponentially distributed
with mean ``eta``; then::

    mean(dVth)     = N * eta
    variance(dVth) = 2 * N * eta^2

This module layers that statistical envelope on any deterministic mean
model (the calibrated trap population or the compact power law) to
answer design questions like "what N-sigma margin does a million-device
near-threshold array need?" -- with and without deep healing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np
from scipy.stats import norm

from repro.errors import SimulationError


@dataclass(frozen=True)
class BtiVariabilityModel:
    """Stochastic envelope around a deterministic mean shift.

    Attributes:
        per_trap_impact_v: mean threshold impact of one trapped charge
            (``eta``); scales inversely with device area, a few mV for
            near-minimum devices in scaled nodes.
    """

    per_trap_impact_v: float = 2e-3

    def __post_init__(self) -> None:
        if self.per_trap_impact_v <= 0.0:
            raise SimulationError("per_trap_impact_v must be positive")

    # -- moments ----------------------------------------------------------

    def mean_trap_count(self, mean_shift_v: float) -> float:
        """Poisson mean implied by a deterministic mean shift."""
        if mean_shift_v < 0.0:
            raise SimulationError("mean shift must be non-negative")
        return mean_shift_v / self.per_trap_impact_v

    def std_v(self, mean_shift_v: float) -> float:
        """Standard deviation of the shift across devices."""
        count = self.mean_trap_count(mean_shift_v)
        return math.sqrt(2.0 * count) * self.per_trap_impact_v

    def quantile_v(self, mean_shift_v: float, fraction: float) -> float:
        """Shift below which ``fraction`` of devices stay (normal
        approximation; adequate for trap counts above ~10)."""
        if not 0.0 < fraction < 1.0:
            raise SimulationError("fraction must be in (0, 1)")
        return max(mean_shift_v + float(norm.ppf(fraction))
                   * self.std_v(mean_shift_v), 0.0)

    def worst_of_population_v(self, mean_shift_v: float,
                              n_devices: int) -> float:
        """Expected worst shift among ``n_devices`` (extreme value).

        Uses the standard normal extreme-value approximation: the
        maximum of n samples sits near the ``1 - 1/n`` quantile.
        """
        if n_devices < 1:
            raise SimulationError("n_devices must be at least 1")
        if n_devices == 1:
            return mean_shift_v
        return self.quantile_v(mean_shift_v, 1.0 - 1.0 / n_devices)

    # -- sampling -----------------------------------------------------------

    def sample(self, mean_shift_v: float, n_devices: int,
               rng: np.random.Generator) -> np.ndarray:
        """Monte Carlo shifts for ``n_devices`` (Poisson x exponential)."""
        if n_devices < 1:
            raise SimulationError("n_devices must be at least 1")
        count_mean = self.mean_trap_count(mean_shift_v)
        counts = rng.poisson(count_mean, size=n_devices)
        shifts = np.zeros(n_devices)
        # Sum of k exponentials with mean eta is Gamma(k, eta).
        occupied = counts > 0
        shifts[occupied] = rng.gamma(
            shape=counts[occupied], scale=self.per_trap_impact_v)
        return shifts

    # -- design margins ------------------------------------------------------

    def population_margin_v(self, mean_shift_v: float,
                            n_devices: int) -> float:
        """Threshold-shift budget that covers a whole device array.

        The binding constraint of an array is its worst device, so the
        array's wearout margin is the expected population maximum --
        substantially above the mean for large arrays, which is what
        makes the *mean*-reducing effect of deep healing so much more
        valuable at scale.
        """
        return self.worst_of_population_v(mean_shift_v, n_devices)


def margin_amplification(variability: BtiVariabilityModel,
                         mean_shift_v: float,
                         n_devices: int) -> float:
    """How much a population inflates the margin over the mean.

    Returns ``worst-of-n / mean``; diverges as the mean shrinks (the
    stochastic part dominates small shifts), which quantifies the
    paper's near-threshold sensitivity argument.
    """
    if mean_shift_v <= 0.0:
        raise SimulationError("mean shift must be positive")
    return variability.population_margin_v(mean_shift_v, n_devices) \
        / mean_shift_v
