"""Operating conditions for BTI stress and recovery.

The paper (Fig. 2a) distinguishes four recovery regimes for a transistor:

=====  =====================  =========================================
No.    Condition              Name
=====  =====================  =========================================
1      Vsg = 0, room T        passive recovery (baseline)
2      Vsg negative, room T   active recovery ("reverse" the stress)
3      Vsg = 0, high T        accelerated recovery
4      Vsg negative, high T   active + accelerated recovery
=====  =====================  =========================================

A recovery condition is reduced to a single *acceleration factor* that
multiplies the passive de-trapping rate of every trap.  The factor is the
product of a bias term, an Arrhenius temperature term and a bias-assisted
thermal synergy term; the three coefficients are calibrated against the
paper's Table I by :mod:`repro.bti.calibration`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro import units

#: Temperature of the paper's room-temperature recovery experiments (20 degC).
ROOM_TEMPERATURE_K = units.celsius_to_kelvin(20.0)

#: Temperature of the paper's high-temperature recovery experiments (110 degC).
HIGH_TEMPERATURE_K = units.celsius_to_kelvin(110.0)

#: Gate bias used for "active" recovery in the paper (-0.3 V source-gate).
ACTIVE_RECOVERY_BIAS_V = -0.3


@dataclass(frozen=True)
class BtiStressCondition:
    """An accelerated-stress operating point for a transistor.

    Attributes:
        voltage: gate stress overdrive in volts (positive = stressing).
        temperature_k: junction temperature in kelvin.
        name: human-readable label used in reports.
    """

    voltage: float
    temperature_k: float
    name: str = "stress"

    def __post_init__(self) -> None:
        if self.temperature_k <= 0.0:
            raise ValueError("stress temperature must be positive (kelvin)")
        if self.voltage < 0.0:
            raise ValueError(
                "stress voltage must be non-negative; use a recovery "
                "condition for negative bias")

    def capture_acceleration(self,
                             reference: "BtiStressCondition") -> float:
        """Trap-capture rate multiplier relative to a reference stress.

        Uses an exponential field-acceleration law and an Arrhenius
        temperature law; both are standard first-order BTI stress
        dependences (Mahapatra 2016, cited as [2] in the paper).
        """
        field_factor = math.exp((self.voltage - reference.voltage)
                                / _FIELD_ACCELERATION_VOLTS)
        temp_factor = units.arrhenius_factor(
            _STRESS_ACTIVATION_EV, self.temperature_k,
            reference.temperature_k)
        return field_factor * temp_factor


#: Field-acceleration constant of the stress process (V per e-fold).
_FIELD_ACCELERATION_VOLTS = 0.12

#: Activation energy of the stress (capture) process in eV.
_STRESS_ACTIVATION_EV = 0.10


@dataclass(frozen=True)
class BtiRecoveryCondition:
    """A recovery operating point for a transistor.

    Attributes:
        gate_bias_v: source-gate voltage applied during recovery; 0 for
            passive recovery, negative to actively push trapped charge
            out (the paper uses -0.3 V).
        temperature_k: junction temperature in kelvin during recovery.
        name: human-readable label used in reports.
    """

    gate_bias_v: float
    temperature_k: float
    name: str = "recovery"

    def __post_init__(self) -> None:
        if self.temperature_k <= 0.0:
            raise ValueError("recovery temperature must be positive (kelvin)")
        if self.gate_bias_v > 0.0:
            raise ValueError(
                "a positive gate bias stresses the device; recovery bias "
                "must be zero or negative")

    @property
    def is_active(self) -> bool:
        """True when a reverse (negative) bias is applied."""
        return self.gate_bias_v < 0.0

    @property
    def is_accelerated(self) -> bool:
        """True when the condition is hotter than room temperature."""
        return self.temperature_k > ROOM_TEMPERATURE_K + 1e-9

    def acceleration(self, params: "RecoveryAccelerationParams") -> float:
        """De-trapping rate multiplier relative to passive room recovery.

        The multiplier is::

            A = A_bias(V) * A_temp(T) * A_synergy(V, T)

        where ``A_bias`` is exponential in the bias magnitude, ``A_temp``
        is an Arrhenius factor referenced to room temperature, and
        ``A_synergy`` captures the super-multiplicative interaction the
        paper measures between bias and temperature (Table I: the joint
        condition recovers far more than the product of the individual
        gains would suggest).
        """
        bias = abs(min(self.gate_bias_v, 0.0))
        bias_factor = math.exp(bias / params.bias_efold_volts)
        temp_factor = units.arrhenius_factor(
            params.activation_energy_ev, self.temperature_k,
            ROOM_TEMPERATURE_K)
        synergy = math.exp(
            params.synergy_coefficient
            * (bias / abs(ACTIVE_RECOVERY_BIAS_V))
            * _normalized_thermal_drive(self.temperature_k))
        return bias_factor * temp_factor * synergy


def _normalized_thermal_drive(temperature_k: float) -> float:
    """Thermal drive normalized to 0 at 20 degC and 1 at 110 degC.

    Uses the (1/T_ref - 1/T) form so the synergy term follows the same
    reciprocal-temperature behaviour as the Arrhenius factor.
    """
    span = 1.0 / ROOM_TEMPERATURE_K - 1.0 / HIGH_TEMPERATURE_K
    drive = (1.0 / ROOM_TEMPERATURE_K - 1.0 / temperature_k) / span
    return drive


@dataclass(frozen=True)
class RecoveryAccelerationParams:
    """Coefficients of the recovery-acceleration law.

    Produced by :func:`repro.bti.calibration.calibrate_to_table1`;
    consumed by :meth:`BtiRecoveryCondition.acceleration`.

    Attributes:
        bias_efold_volts: bias magnitude (in volts) that multiplies the
            de-trapping rate by *e*.
        activation_energy_ev: Arrhenius activation energy of thermally
            accelerated de-trapping, in eV.
        synergy_coefficient: log-scale strength of the bias*temperature
            interaction term; 0 disables the synergy.
    """

    bias_efold_volts: float
    activation_energy_ev: float
    synergy_coefficient: float

    def __post_init__(self) -> None:
        if self.bias_efold_volts <= 0.0:
            raise ValueError("bias_efold_volts must be positive")
        if self.activation_energy_ev < 0.0:
            raise ValueError("activation_energy_ev must be non-negative")


# ---------------------------------------------------------------------------
# Array-native kernels for the system epoch loop.
# ---------------------------------------------------------------------------


class _AffineExponentTable:
    """A log-acceleration exponent tabulated over ``u = 1/T``.

    Every per-core acceleration in this module has the form
    ``exp(e(u))`` with ``e`` *affine* in the reciprocal temperature
    ``u``: the Arrhenius factor contributes ``(Ea/k) * (u_ref - u)``,
    the synergy term is a scaled :func:`_normalized_thermal_drive`
    (also linear in ``u``), and the bias factor is a constant offset.
    Linear interpolation over a ``u`` grid is therefore *exact* (up to
    one rounding of the fused multiply-add), including outside the
    grid, where the edge-segment slope extrapolates the same affine
    law.  That is what lets the vectorized epoch engine match the
    scalar ``math.exp`` path to ~1e-15 instead of a table tolerance.
    """

    def __init__(self, u_grid: np.ndarray, values: np.ndarray):
        self.u_grid = u_grid
        self.values = values
        self._slopes = np.diff(values) / np.diff(u_grid)
        # The grid is uniform (np.linspace), so the segment index is a
        # multiply + floor instead of a searchsorted; picking the
        # neighbouring segment at a knot is harmless because every
        # segment lies on the same affine law (1-ulp agreement).
        self._u0 = float(u_grid[0])
        self._inv_du = float((len(u_grid) - 1)
                             / (u_grid[-1] - u_grid[0]))
        self._max_index = len(u_grid) - 2

    def __call__(self, u: np.ndarray) -> np.ndarray:
        index = ((u - self._u0) * self._inv_du).astype(np.intp)
        np.maximum(index, 0, out=index)
        np.minimum(index, self._max_index, out=index)
        return (self.values[index]
                + self._slopes[index] * (u - self.u_grid[index]))


class BtiConditionKernels:
    """Vectorized capture/recovery accelerations for a core fleet.

    Precomputes the exponent tables of the scalar
    :meth:`BtiStressCondition.capture_acceleration` and
    :meth:`BtiRecoveryCondition.acceleration` laws at a fixed stress
    voltage / recovery bias, then evaluates whole temperature vectors
    per epoch with one interpolation + one ``np.exp`` instead of
    thousands of dataclass constructions and ``math.exp`` calls.

    The array methods are strictly elementwise and rank-agnostic:
    ``(n_cores,)`` vectors from the single-chip epoch loop and
    stacked ``(n_chips, n_cores)`` blocks from the fleet engines
    evaluate through the identical table lookups, so a stacked row
    is bit-equal to evaluating that chip's cores alone.  The
    companion array (``utilization`` / ``recovering``) must match
    the temperature array's shape exactly -- implicit broadcasting
    is rejected so a transposed or squeezed stacked block fails
    loudly instead of silently fanning out.

    Args:
        params: recovery-acceleration coefficients (calibrated).
        reference: the capture-rate reference stress condition.
        stress_voltage_v: gate overdrive of stressing cores.
        recovery_bias_v: gate bias of actively recovering cores
            (zero or negative; default the paper's -0.3 V).
        temperature_range_k: ``(low, high)`` span of the 1/T grid.
            Temperatures outside the span are extrapolated exactly
            (the exponents are affine in 1/T), so the range only
            positions the grid, it does not limit validity.
        n_points: grid resolution.
    """

    def __init__(self, params: RecoveryAccelerationParams,
                 reference: BtiStressCondition,
                 stress_voltage_v: float,
                 recovery_bias_v: float = ACTIVE_RECOVERY_BIAS_V,
                 temperature_range_k: Tuple[float, float] = (250.0, 450.0),
                 n_points: int = 128):
        if stress_voltage_v < 0.0:
            raise ValueError("stress_voltage_v must be non-negative")
        if recovery_bias_v > 0.0:
            raise ValueError("recovery_bias_v must be zero or negative")
        low, high = temperature_range_k
        if not 0.0 < low < high:
            raise ValueError(
                "temperature_range_k must be an increasing positive pair")
        if n_points < 2:
            raise ValueError("n_points must be at least 2")
        self.params = params
        self.reference = reference
        self.stress_voltage_v = stress_voltage_v
        self.recovery_bias_v = recovery_bias_v
        # Grid in u = 1/T, ascending (so from high T down to low T).
        u_grid = np.linspace(1.0 / high, 1.0 / low, n_points)
        k = units.BOLTZMANN_EV

        self._capture_field_factor = math.exp(
            (stress_voltage_v - reference.voltage)
            / _FIELD_ACCELERATION_VOLTS)
        self._capture_table = _AffineExponentTable(
            u_grid, (_STRESS_ACTIVATION_EV / k)
            * (1.0 / reference.temperature_k - u_grid))

        u_room = 1.0 / ROOM_TEMPERATURE_K
        span = u_room - 1.0 / HIGH_TEMPERATURE_K
        arrhenius = (params.activation_energy_ev / k) * (u_room - u_grid)
        bias = abs(min(recovery_bias_v, 0.0))
        synergy = (params.synergy_coefficient
                   * (bias / abs(ACTIVE_RECOVERY_BIAS_V))
                   * (u_room - u_grid) / span)
        self._passive_table = _AffineExponentTable(u_grid, arrhenius)
        self._active_table = _AffineExponentTable(
            u_grid, bias / params.bias_efold_volts + arrhenius + synergy)

    @staticmethod
    def _reciprocal(temps_k: np.ndarray) -> np.ndarray:
        temps = np.asarray(temps_k, dtype=float)
        if np.any(temps <= 0.0):
            raise ValueError("temperatures must be positive (kelvin)")
        return 1.0 / temps

    @staticmethod
    def _companion(value, shape: Tuple[int, ...], dtype,
                   name: str) -> np.ndarray:
        arr = np.asarray(value, dtype=dtype)
        if arr.shape != shape:
            raise ValueError(
                f"{name} must match the temperature array's shape "
                f"{shape}, got {arr.shape}")
        return arr

    def capture_acceleration_array(self, temps_k: np.ndarray,
                                   utilization: np.ndarray) -> np.ndarray:
        """Per-core capture-rate multipliers, scaled by utilization.

        Matches ``util * BtiStressCondition(stress_voltage_v,
        T).capture_acceleration(reference)`` elementwise, with idle
        cores (``util <= 0``) pinned to exactly 0.  Any array rank is
        accepted; ``utilization`` must have ``temps_k``'s exact shape.
        """
        u = self._reciprocal(temps_k)
        util = self._companion(utilization, u.shape, float,
                               "utilization")
        accel = self._capture_field_factor * np.exp(self._capture_table(u))
        return np.where(util > 0.0, util * accel, 0.0)

    def recovery_acceleration_array(self, temps_k: np.ndarray,
                                    recovering: np.ndarray) -> np.ndarray:
        """Per-core de-trapping multipliers.

        Matches ``BtiRecoveryCondition(bias, T).acceleration(params)``
        elementwise, with ``bias = recovery_bias_v`` where
        ``recovering`` is True and 0 (passive recovery) elsewhere.
        Any array rank is accepted; ``recovering`` must have
        ``temps_k``'s exact shape.
        """
        u = self._reciprocal(temps_k)
        recovering = self._companion(recovering, u.shape, bool,
                                     "recovering")
        exponent = np.where(recovering, self._active_table(u),
                            self._passive_table(u))
        return np.exp(exponent)


# ---------------------------------------------------------------------------
# Presets mirroring the paper's experiments.
# ---------------------------------------------------------------------------

#: Fig. 2a No. 1 -- stress removed, room temperature.
PASSIVE_RECOVERY = BtiRecoveryCondition(
    gate_bias_v=0.0, temperature_k=ROOM_TEMPERATURE_K,
    name="No.1 passive (20C, 0V)")

#: Fig. 2a No. 2 -- reverse bias, room temperature.
ACTIVE_RECOVERY = BtiRecoveryCondition(
    gate_bias_v=ACTIVE_RECOVERY_BIAS_V, temperature_k=ROOM_TEMPERATURE_K,
    name="No.2 active (20C, -0.3V)")

#: Fig. 2a No. 3 -- stress removed, high temperature.
ACCELERATED_RECOVERY = BtiRecoveryCondition(
    gate_bias_v=0.0, temperature_k=HIGH_TEMPERATURE_K,
    name="No.3 accelerated (110C, 0V)")

#: Fig. 2a No. 4 -- reverse bias and high temperature ("deep healing").
ACTIVE_ACCELERATED_RECOVERY = BtiRecoveryCondition(
    gate_bias_v=ACTIVE_RECOVERY_BIAS_V, temperature_k=HIGH_TEMPERATURE_K,
    name="No.4 active+accelerated (110C, -0.3V)")

#: The four Table I recovery conditions in the paper's order.
TABLE1_RECOVERY_CONDITIONS = (
    PASSIVE_RECOVERY,
    ACTIVE_RECOVERY,
    ACCELERATED_RECOVERY,
    ACTIVE_ACCELERATED_RECOVERY,
)

#: The accelerated stress condition used before every Table I recovery
#: run ("high voltage and temperature"); it is also the calibration
#: reference so its capture acceleration is exactly 1.
TABLE1_STRESS = BtiStressCondition(
    voltage=0.6, temperature_k=HIGH_TEMPERATURE_K,
    name="accelerated stress (high V, 110C)")
