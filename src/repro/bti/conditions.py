"""Operating conditions for BTI stress and recovery.

The paper (Fig. 2a) distinguishes four recovery regimes for a transistor:

=====  =====================  =========================================
No.    Condition              Name
=====  =====================  =========================================
1      Vsg = 0, room T        passive recovery (baseline)
2      Vsg negative, room T   active recovery ("reverse" the stress)
3      Vsg = 0, high T        accelerated recovery
4      Vsg negative, high T   active + accelerated recovery
=====  =====================  =========================================

A recovery condition is reduced to a single *acceleration factor* that
multiplies the passive de-trapping rate of every trap.  The factor is the
product of a bias term, an Arrhenius temperature term and a bias-assisted
thermal synergy term; the three coefficients are calibrated against the
paper's Table I by :mod:`repro.bti.calibration`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro import units

#: Temperature of the paper's room-temperature recovery experiments (20 degC).
ROOM_TEMPERATURE_K = units.celsius_to_kelvin(20.0)

#: Temperature of the paper's high-temperature recovery experiments (110 degC).
HIGH_TEMPERATURE_K = units.celsius_to_kelvin(110.0)

#: Gate bias used for "active" recovery in the paper (-0.3 V source-gate).
ACTIVE_RECOVERY_BIAS_V = -0.3


@dataclass(frozen=True)
class BtiStressCondition:
    """An accelerated-stress operating point for a transistor.

    Attributes:
        voltage: gate stress overdrive in volts (positive = stressing).
        temperature_k: junction temperature in kelvin.
        name: human-readable label used in reports.
    """

    voltage: float
    temperature_k: float
    name: str = "stress"

    def __post_init__(self) -> None:
        if self.temperature_k <= 0.0:
            raise ValueError("stress temperature must be positive (kelvin)")
        if self.voltage < 0.0:
            raise ValueError(
                "stress voltage must be non-negative; use a recovery "
                "condition for negative bias")

    def capture_acceleration(self,
                             reference: "BtiStressCondition") -> float:
        """Trap-capture rate multiplier relative to a reference stress.

        Uses an exponential field-acceleration law and an Arrhenius
        temperature law; both are standard first-order BTI stress
        dependences (Mahapatra 2016, cited as [2] in the paper).
        """
        field_factor = math.exp((self.voltage - reference.voltage)
                                / _FIELD_ACCELERATION_VOLTS)
        temp_factor = units.arrhenius_factor(
            _STRESS_ACTIVATION_EV, self.temperature_k,
            reference.temperature_k)
        return field_factor * temp_factor


#: Field-acceleration constant of the stress process (V per e-fold).
_FIELD_ACCELERATION_VOLTS = 0.12

#: Activation energy of the stress (capture) process in eV.
_STRESS_ACTIVATION_EV = 0.10


@dataclass(frozen=True)
class BtiRecoveryCondition:
    """A recovery operating point for a transistor.

    Attributes:
        gate_bias_v: source-gate voltage applied during recovery; 0 for
            passive recovery, negative to actively push trapped charge
            out (the paper uses -0.3 V).
        temperature_k: junction temperature in kelvin during recovery.
        name: human-readable label used in reports.
    """

    gate_bias_v: float
    temperature_k: float
    name: str = "recovery"

    def __post_init__(self) -> None:
        if self.temperature_k <= 0.0:
            raise ValueError("recovery temperature must be positive (kelvin)")
        if self.gate_bias_v > 0.0:
            raise ValueError(
                "a positive gate bias stresses the device; recovery bias "
                "must be zero or negative")

    @property
    def is_active(self) -> bool:
        """True when a reverse (negative) bias is applied."""
        return self.gate_bias_v < 0.0

    @property
    def is_accelerated(self) -> bool:
        """True when the condition is hotter than room temperature."""
        return self.temperature_k > ROOM_TEMPERATURE_K + 1e-9

    def acceleration(self, params: "RecoveryAccelerationParams") -> float:
        """De-trapping rate multiplier relative to passive room recovery.

        The multiplier is::

            A = A_bias(V) * A_temp(T) * A_synergy(V, T)

        where ``A_bias`` is exponential in the bias magnitude, ``A_temp``
        is an Arrhenius factor referenced to room temperature, and
        ``A_synergy`` captures the super-multiplicative interaction the
        paper measures between bias and temperature (Table I: the joint
        condition recovers far more than the product of the individual
        gains would suggest).
        """
        bias = abs(min(self.gate_bias_v, 0.0))
        bias_factor = math.exp(bias / params.bias_efold_volts)
        temp_factor = units.arrhenius_factor(
            params.activation_energy_ev, self.temperature_k,
            ROOM_TEMPERATURE_K)
        synergy = math.exp(
            params.synergy_coefficient
            * (bias / abs(ACTIVE_RECOVERY_BIAS_V))
            * _normalized_thermal_drive(self.temperature_k))
        return bias_factor * temp_factor * synergy


def _normalized_thermal_drive(temperature_k: float) -> float:
    """Thermal drive normalized to 0 at 20 degC and 1 at 110 degC.

    Uses the (1/T_ref - 1/T) form so the synergy term follows the same
    reciprocal-temperature behaviour as the Arrhenius factor.
    """
    span = 1.0 / ROOM_TEMPERATURE_K - 1.0 / HIGH_TEMPERATURE_K
    drive = (1.0 / ROOM_TEMPERATURE_K - 1.0 / temperature_k) / span
    return drive


@dataclass(frozen=True)
class RecoveryAccelerationParams:
    """Coefficients of the recovery-acceleration law.

    Produced by :func:`repro.bti.calibration.calibrate_to_table1`;
    consumed by :meth:`BtiRecoveryCondition.acceleration`.

    Attributes:
        bias_efold_volts: bias magnitude (in volts) that multiplies the
            de-trapping rate by *e*.
        activation_energy_ev: Arrhenius activation energy of thermally
            accelerated de-trapping, in eV.
        synergy_coefficient: log-scale strength of the bias*temperature
            interaction term; 0 disables the synergy.
    """

    bias_efold_volts: float
    activation_energy_ev: float
    synergy_coefficient: float

    def __post_init__(self) -> None:
        if self.bias_efold_volts <= 0.0:
            raise ValueError("bias_efold_volts must be positive")
        if self.activation_energy_ev < 0.0:
            raise ValueError("activation_energy_ev must be non-negative")


# ---------------------------------------------------------------------------
# Presets mirroring the paper's experiments.
# ---------------------------------------------------------------------------

#: Fig. 2a No. 1 -- stress removed, room temperature.
PASSIVE_RECOVERY = BtiRecoveryCondition(
    gate_bias_v=0.0, temperature_k=ROOM_TEMPERATURE_K,
    name="No.1 passive (20C, 0V)")

#: Fig. 2a No. 2 -- reverse bias, room temperature.
ACTIVE_RECOVERY = BtiRecoveryCondition(
    gate_bias_v=ACTIVE_RECOVERY_BIAS_V, temperature_k=ROOM_TEMPERATURE_K,
    name="No.2 active (20C, -0.3V)")

#: Fig. 2a No. 3 -- stress removed, high temperature.
ACCELERATED_RECOVERY = BtiRecoveryCondition(
    gate_bias_v=0.0, temperature_k=HIGH_TEMPERATURE_K,
    name="No.3 accelerated (110C, 0V)")

#: Fig. 2a No. 4 -- reverse bias and high temperature ("deep healing").
ACTIVE_ACCELERATED_RECOVERY = BtiRecoveryCondition(
    gate_bias_v=ACTIVE_RECOVERY_BIAS_V, temperature_k=HIGH_TEMPERATURE_K,
    name="No.4 active+accelerated (110C, -0.3V)")

#: The four Table I recovery conditions in the paper's order.
TABLE1_RECOVERY_CONDITIONS = (
    PASSIVE_RECOVERY,
    ACTIVE_RECOVERY,
    ACCELERATED_RECOVERY,
    ACTIVE_ACCELERATED_RECOVERY,
)

#: The accelerated stress condition used before every Table I recovery
#: run ("high voltage and temperature"); it is also the calibration
#: reference so its capture acceleration is exactly 1.
TABLE1_STRESS = BtiStressCondition(
    voltage=0.6, temperature_k=HIGH_TEMPERATURE_K,
    name="accelerated stress (high V, 110C)")
