"""Frequency-domain BTI experiment harness (how the paper measured).

The paper's BTI numbers are not direct threshold measurements: "the
test structure is a 75-stage LUT-mapped ring oscillator, the
oscillation frequency change is captured during BTI wearout and
recovery".  Table I's recovery percentages are therefore *frequency*
recovery fractions.

This harness reruns any stress/recovery protocol the way the hardware
experiment did: the device model evolves underneath, but every
observable is an oscillator frequency, optionally quantized by the
measurement gate window.  For small shifts the frequency-domain
recovery fraction closely tracks the threshold-domain one (the mapping
is locally linear), which the tests verify -- closing the loop between
our calibration (done on shift fractions) and the paper's measured
quantity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro import units
from repro.bti.conditions import BtiRecoveryCondition, \
    BtiStressCondition
from repro.bti.model import BtiModel
from repro.errors import SensorError
from repro.sensors.ring_oscillator import RingOscillator


@dataclass(frozen=True)
class FrequencyMeasurement:
    """One frequency read-out during an experiment.

    Attributes:
        time_s: experiment time of the measurement.
        phase: ``"fresh"``, ``"stress"`` or ``"recovery"``.
        frequency_hz: (possibly quantized) measured frequency.
    """

    time_s: float
    phase: str
    frequency_hz: float


@dataclass
class FrequencyDomainExperiment:
    """Stress/recovery protocol with frequency observables.

    Attributes:
        model: the device model under test (mutated by the protocol).
        oscillator: the sensing ring oscillator.
        gate_window_s: edge-counter window; 0 disables quantization.
    """

    model: BtiModel
    oscillator: RingOscillator = field(default_factory=RingOscillator)
    gate_window_s: float = 0.0
    log: List[FrequencyMeasurement] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.gate_window_s < 0.0:
            raise SensorError("gate_window_s must be non-negative")

    # -- observables ----------------------------------------------------

    def measure(self, phase: str) -> FrequencyMeasurement:
        """Take one frequency measurement and log it."""
        frequency = self.oscillator.frequency_hz(self.model.delta_vth_v)
        if self.gate_window_s > 0.0:
            quantum = 1.0 / self.gate_window_s
            frequency = max(round(frequency / quantum) * quantum,
                            quantum)
        measurement = FrequencyMeasurement(
            time_s=self.model.elapsed_s, phase=phase,
            frequency_hz=frequency)
        self.log.append(measurement)
        return measurement

    # -- protocol -----------------------------------------------------------

    def run_table1_protocol(self, recovery: BtiRecoveryCondition,
                            stress_s: float = units.hours(24.0),
                            recovery_s: float = units.hours(6.0),
                            stress: Optional[BtiStressCondition] = None
                            ) -> float:
        """The paper's Table I protocol in the frequency domain.

        Measures the fresh frequency, stresses, measures the degraded
        frequency, recovers, measures again, and returns the
        *frequency* recovery fraction::

            (f_recovered - f_stressed) / (f_fresh - f_stressed)

        which is what the FPGA experiment reports.
        """
        fresh = self.measure("fresh").frequency_hz
        self.model.apply_stress(stress_s, stress)
        stressed = self.measure("stress").frequency_hz
        self.model.apply_recovery(recovery_s, recovery)
        recovered = self.measure("recovery").frequency_hz
        drop = fresh - stressed
        if drop <= 0.0:
            return 0.0
        return (recovered - stressed) / drop

    def frequency_recovery_trace(self, recovery: BtiRecoveryCondition,
                                 recovery_s: float,
                                 n_points: int = 13) -> List[
                                     FrequencyMeasurement]:
        """Sample the frequency during a recovery phase."""
        if n_points < 2:
            raise SensorError("n_points must be at least 2")
        step = recovery_s / (n_points - 1)
        samples = [self.measure("recovery")]
        for _ in range(n_points - 1):
            self.model.apply_recovery(step, recovery)
            samples.append(self.measure("recovery"))
        return samples
