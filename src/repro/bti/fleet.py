"""Stacked trap-population dynamics for whole chip populations.

:class:`repro.system.aging.FleetBtiState` batches the Table-I trap
dynamics over the cores of *one* chip.  A fleet study needs the same
dynamics for every core of every chip of a population, so this module
stacks the chip dimension as well: a
:class:`StackedTrapPopulations` holds ``n_chips * n_units`` rows of
trap state in one structure-of-arrays block and advances them with the
same sub-step kernels, evaluated as single full-stack ufunc passes.

Exactness contract: every per-row update below is elementwise in the
row (unit) dimension -- fills, drains, age bookkeeping and lock-in all
read and write only their own row -- so stacking chips does not change
any chip's trajectory.  The only cross-row coupling in the scalar
engine is the *sub-step count*, which
:meth:`repro.system.aging.FleetBtiState.step` derives from the chip's
peak capture acceleration.  The stacked step computes that count per
chip and advances chips in groups sharing a count, which keeps the
trajectory of every chip bit-identical to its standalone
:class:`~repro.system.aging.FleetBtiState` (the fleet equivalence
tests assert exactly this).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.bti.traps import TrapPopulationConfig
from repro.errors import SimulationError
from repro.solvers import FactorizationCache, record_counters

#: Row-block height of the sub-step loop.  One block touches about
#: ten ``(block, n_bins)`` arrays (state, kernel slices, scratch), so
#: 256 rows x 64 bins keeps the working set around 1 MiB -- small
#: enough to survive in a per-core L2 across every sub-step of the
#: block, which is what turns the ~15 elementwise passes per sub-step
#: from DRAM streams into cache hits.
_SUBSTEP_BLOCK_ROWS = 256


class StackedTrapPopulations:
    """Trap-population state for ``n_chips`` chips of ``n_units`` cores.

    The state lives in flat ``(n_chips * n_units, n_bins)`` arrays
    (chip-major), so the homogeneous fast path -- every chip sharing
    one sub-step count -- advances the whole population with the same
    in-place masked full-array passes as the single-chip engine,
    touching no Python per chip.

    Args:
        n_chips: population size.
        n_units: cores per chip.
        config: trap-population parameters (defaults to the 64-bin
            system configuration).
        kernel_cache_size: LRU capacity of the sub-step kernel memo;
            0 disables it.  A cached kernel holds two dense
            ``(rows, n_bins)`` arrays plus three ``(rows, 1)``
            columns, so fleet-scale callers should size this from a
            memory budget (the fleet simulator does).
            Kernels are only memoized when the caller passes a
            ``kernel_key`` identifying the epoch's conditions.
        dtype: dtype of the trap-state arrays, ``np.float64``
            (default, bit-exact vs the single-chip engine) or
            ``np.float32`` (halves state memory; kernels are still
            built in float64 and rounded once, sub-step counts are
            still derived in float64, so the float32 trajectory
            tracks the float64 one within the documented budget --
            see ``repro.system.fleet.FLOAT32_MAX_RELATIVE_ERROR``).
    """

    def __init__(self, n_chips: int, n_units: int,
                 config: Optional[TrapPopulationConfig] = None,
                 kernel_cache_size: int = 0,
                 dtype=np.float64):
        if n_chips < 1:
            raise SimulationError("n_chips must be at least 1")
        if n_units < 1:
            raise SimulationError("n_units must be at least 1")
        if kernel_cache_size < 0:
            raise SimulationError(
                "kernel_cache_size must be non-negative")
        dtype = np.dtype(dtype)
        if dtype not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise SimulationError(
                "dtype must be float64 or float32")
        self.n_chips = n_chips
        self.n_units = n_units
        self.dtype = dtype
        self.config = config or TrapPopulationConfig(n_bins=64)
        cfg = self.config
        rows = n_chips * n_units
        self.tau_c = np.logspace(math.log10(cfg.tau_min_s),
                                 math.log10(cfg.tau_max_s), cfg.n_bins)
        fresh_weight = cfg.vth_full_shift_v / cfg.n_bins
        shape = (rows, cfg.n_bins)
        self.weights = np.full(shape, fresh_weight, dtype=dtype)
        self.occupancy = np.zeros(shape, dtype=dtype)
        self.age_s = np.zeros(shape, dtype=dtype)
        self.permanent_v = np.zeros(rows, dtype=dtype)
        self.time_s = 0.0
        self.kernel_cache = (
            FactorizationCache(maxsize=kernel_cache_size,
                               name="bti.fleet.kernels")
            if kernel_cache_size else None)
        self._buf_a = np.empty(shape, dtype=dtype)
        self._buf_b = np.empty(shape, dtype=dtype)
        self._buf_c = np.empty(shape, dtype=dtype)
        self._mask = np.empty(shape, dtype=bool)
        self._mask_b = np.empty(shape, dtype=bool)

    # -- observables ----------------------------------------------------

    def delta_vth_v(self) -> np.ndarray:
        """Total threshold shift, shaped ``(n_chips, n_units)``."""
        return self.recoverable_vth_v() + self.permanent_vth_v()

    def recoverable_vth_v(self) -> np.ndarray:
        """Recoverable shift, shaped ``(n_chips, n_units)``."""
        flat = np.einsum("ij,ij->i", self.occupancy, self.weights)
        return flat.reshape(self.n_chips, self.n_units)

    def permanent_vth_v(self) -> np.ndarray:
        """Permanent shift, shaped ``(n_chips, n_units)`` (a view)."""
        return self.permanent_v.reshape(self.n_chips, self.n_units)

    # -- advance --------------------------------------------------------

    def step(self, dt_s: float, stressing: np.ndarray,
             capture_acceleration: np.ndarray,
             recovery_acceleration: np.ndarray,
             kernel_key=None) -> None:
        """Advance every chip by ``dt_s``.

        Args:
            dt_s: epoch length.
            stressing: boolean ``(n_chips, n_units)`` stress mask.
            capture_acceleration: ``(n_chips, n_units)`` capture-rate
                multipliers for the stressing units.
            recovery_acceleration: ``(n_chips, n_units)`` de-trapping
                multipliers for the recovering units.
            kernel_key: optional hashable token uniquely identifying
                the epoch's ``(dt_s, stressing, capture, recovery)``
                content (e.g. the fleet's assignment digest).  When
                given and a kernel cache is configured, the sub-step
                factors are memoized on it; when ``None`` they are
                rebuilt each call.
        """
        if dt_s < 0.0:
            raise SimulationError("dt_s must be non-negative")
        shape = (self.n_chips, self.n_units)
        stressing = np.asarray(stressing, dtype=bool)
        capture = np.asarray(capture_acceleration, dtype=float)
        recovery = np.asarray(recovery_acceleration, dtype=float)
        for array in (stressing, capture, recovery):
            if array.shape != shape:
                raise SimulationError(
                    f"per-unit arrays must have shape {shape}")
        cfg = self.config
        # Per-chip sub-step count, matching FleetBtiState.step's
        # scalar derivation chip by chip (same operation order, so the
        # same floats and the same ceil).
        any_stress = stressing.any(axis=1)
        if any_stress.any():
            peak = np.max(capture, axis=1, initial=-np.inf,
                          where=stressing)
            peak = np.where(any_stress, peak, 1.0)
        else:
            peak = np.ones(self.n_chips)
        raw = np.ceil(dt_s * np.maximum(peak, 1e-12)
                      / max(cfg.lock_age_s / 8.0, 1e-9))
        n_steps = np.clip(raw.astype(np.int64), 1, 64)
        flat_stress = stressing.reshape(-1)
        flat_capture = capture.reshape(-1)
        flat_recovery = recovery.reshape(-1)
        # Chips sharing a sub-step count advance together; with no (or
        # mild) process variation that is one group covering the whole
        # stack, i.e. zero gather/scatter.
        for group, count in enumerate(np.unique(n_steps)):
            chips = np.nonzero(n_steps == count)[0]
            if chips.size == self.n_chips:
                rows: object = slice(None)
            else:
                rows = (chips[:, None] * self.n_units
                        + np.arange(self.n_units)[None, :]).reshape(-1)
            sub_key = (None if kernel_key is None
                       else (kernel_key, int(count), group))
            self._advance_rows(
                rows, dt_s, int(count), flat_stress, flat_capture,
                flat_recovery, bool(any_stress[chips].any()), sub_key)
        self.time_s += dt_s

    def _advance_rows(self, rows, dt_s: float, n_steps: int,
                      flat_stress: np.ndarray,
                      flat_capture: np.ndarray,
                      flat_recovery: np.ndarray,
                      any_stress: bool, kernel_key) -> None:
        """Advance one group of chips sharing a sub-step count."""
        step = dt_s / n_steps
        full = isinstance(rows, slice)
        if full:
            occupancy = self.occupancy
            age = self.age_s
            weights = self.weights
            permanent = self.permanent_v
            stress_rows = flat_stress
            capture_rows = flat_capture
            recovery_rows = flat_recovery
        else:
            occupancy = self.occupancy[rows]
            age = self.age_s[rows]
            weights = self.weights[rows]
            permanent = self.permanent_v[rows]
            stress_rows = flat_stress[rows]
            capture_rows = flat_capture[rows]
            recovery_rows = flat_recovery[rows]
        m = occupancy.shape[0]
        if self.kernel_cache is not None and kernel_key is not None:
            kernel = self.kernel_cache.get_or_build(
                kernel_key,
                lambda: self._build_step_kernel(
                    step, stress_rows, capture_rows, recovery_rows))
        else:
            kernel = self._build_step_kernel(
                step, stress_rows, capture_rows, recovery_rows)
        eq_col, stress_col, decay, inflow, fraction = kernel
        # Row-block the sub-step loop so one block's state and kernel
        # slices stay cache-resident across all ``n_steps`` passes --
        # at fleet scale the full stack is tens of megabytes and the
        # ~15 streaming passes per sub-step are otherwise pure DRAM
        # traffic.  Every op below is elementwise per row, so block
        # order changes nothing: each row sees the exact op sequence
        # of the unblocked (and single-chip) engine, bit for bit.
        for start in range(0, m, _SUBSTEP_BLOCK_ROWS):
            stop = min(start + _SUBSTEP_BLOCK_ROWS, m)
            self._advance_block(
                occupancy[start:stop], age[start:stop],
                weights[start:stop], permanent[start:stop],
                eq_col[start:stop], stress_col[start:stop],
                decay[start:stop], inflow[start:stop],
                None if fraction is None else fraction[start:stop],
                n_steps, any_stress)
        if not full:
            self.occupancy[rows] = occupancy
            self.age_s[rows] = age
            self.weights[rows] = weights
            self.permanent_v[rows] = permanent

    def _advance_block(self, occupancy, age, weights, permanent,
                       eq_col, stress_col, decay, inflow, fraction,
                       n_steps: int, any_stress: bool) -> None:
        """All sub-steps of one cache-sized row block, in place.

        Same in-place masked passes as
        :meth:`repro.system.aging.FleetBtiState.step` -- every op is
        elementwise in the row dimension, so each chip's trajectory
        matches its standalone single-chip advance bit for bit.  The
        per-row-constant factors (``eq_col``, ``stress_col``,
        ``fraction``) stay ``(m, 1)`` columns and broadcast inside the
        ufuncs: same values per element, a fraction of the memory
        traffic.
        """
        cfg = self.config
        m = occupancy.shape[0]
        buf_a = self._buf_a[:m]
        buf_b = self._buf_b[:m]
        buf_c = self._buf_c[:m]
        mask = self._mask[:m]
        for _ in range(n_steps):
            np.multiply(occupancy, decay, out=occupancy)
            np.add(occupancy, inflow, out=occupancy)
            np.greater_equal(occupancy, cfg.age_on_occupancy, out=mask)
            np.add(age, eq_col, out=age, where=mask)
            np.less_equal(occupancy, cfg.age_off_occupancy, out=mask)
            np.copyto(age, 0.0, where=mask)
            if fraction is not None and any_stress:
                np.greater(age, cfg.lock_age_s, out=mask)
                np.logical_and(mask, stress_col, out=mask)
                if mask.any():
                    aged = mask
                    np.multiply(weights, occupancy, out=buf_a)
                    np.multiply(buf_a, fraction, out=buf_b)
                    permanent += np.einsum("ij,ij->i", buf_b, aged)
                    np.multiply(occupancy, fraction, out=buf_c)
                    np.subtract(1.0, buf_c, out=buf_c)
                    np.multiply(weights, buf_c, out=weights,
                                where=aged)
                    positive = self._mask_b[:m]
                    np.greater(weights, 0.0, out=positive)
                    np.logical_and(positive, aged, out=positive)
                    np.subtract(buf_a, buf_b, out=buf_a)
                    np.maximum(weights, 1e-300, out=buf_c)
                    np.divide(buf_a, buf_c, out=occupancy,
                              where=positive)

    def _build_step_kernel(self, step: float, stressing: np.ndarray,
                           capture: np.ndarray, recovery: np.ndarray):
        """Sub-step-invariant factors for one group of rows.

        Identical math to
        :meth:`repro.system.aging.FleetBtiState._build_step_kernel`,
        evaluated over the group's rows.  Every factor is elementwise
        per row, so the transcendental work runs once per *distinct*
        ``(stressing, capture, recovery)`` triple (a fleet of 1k
        chips typically has only ``n_units`` of them) and gathers back
        to full rows -- the gather reproduces each row's value bit for
        bit.  Rows are deduplicated on their raw bytes, never through
        float comparisons, so even ``-0.0`` vs ``0.0`` rows keep their
        own kernels.

        Returns ``(eq_col, stress_col, decay, inflow, fraction)``
        where ``decay`` / ``inflow`` are dense ``(rows, n_bins)``
        factors and the per-row constants stay ``(rows, 1)`` columns
        (they broadcast in the sub-step ufuncs).  All arrays are
        freshly allocated, so cached kernels never alias caller
        buffers.
        """
        cfg = self.config
        m = stressing.shape[0]
        triples = np.empty((m, 3))
        triples[:, 0] = stressing
        triples[:, 1] = capture
        triples[:, 2] = recovery
        packed = np.ascontiguousarray(triples).view(
            np.dtype((np.void, triples.dtype.itemsize * 3))).ravel()
        _, first, inverse = np.unique(packed, return_index=True,
                                      return_inverse=True)
        record_counters("bti.fleet.kernels",
                        kernel_builds=1,
                        dedup_rows_in=m,
                        dedup_rows_unique=first.size)
        u_stress = stressing[first]
        u_capture = capture[first]
        u_recovery = recovery[first]
        shape = (first.size, cfg.n_bins)
        equivalent = np.where(u_stress, u_capture * step, 0.0)
        eq_unique = equivalent[:, None]
        fill = -np.expm1(-eq_unique / self.tau_c[None, :])
        tau_e = cfg.emission_scale * self.tau_c
        drain = np.ones(shape)
        resting = ~u_stress
        if np.any(resting):
            drain[resting] = np.exp(-step * u_recovery[resting, None]
                                    / tau_e[None, :])
        decay = ((1.0 - fill) * drain)[inverse]
        inflow = (fill * drain)[inverse]
        eq_col = eq_unique[inverse]
        stress_col = u_stress[inverse][:, None].copy()
        fraction = None
        if cfg.lock_rate_per_s > 0.0:
            fraction = -np.expm1(
                -cfg.lock_rate_per_s * equivalent)[inverse][:, None]
        if self.dtype != np.float64:
            # Kernels are derived in float64 above and rounded once
            # here, so reduced-precision state never compounds errors
            # through the transcendental factor math itself.
            eq_col = eq_col.astype(self.dtype)
            decay = decay.astype(self.dtype)
            inflow = inflow.astype(self.dtype)
            if fraction is not None:
                fraction = fraction.astype(self.dtype)
        return (eq_col, stress_col, decay, inflow, fraction)
