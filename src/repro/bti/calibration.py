"""Calibration of the BTI model against the paper's Table I.

Table I of the paper reports the recovered fraction of BTI wearout after
a 24-hour accelerated stress followed by a 6-hour recovery under each of
the four Fig. 2(a) conditions:

=====  ======================  ===========  =====
No.    Condition               Measurement  Model
=====  ======================  ===========  =====
1      20 degC and 0 V         0.66 %       1 %
2      20 degC and -0.3 V      16.7 %       14.4 %
3      110 degC and 0 V        28.7 %       29.2 %
4      110 degC and -0.3 V     72.4 %       72.7 %
=====  ======================  ===========  =====

and the text adds that a permanent component of **more than 27 %**
survives even arbitrarily long No. 4 recovery.

The calibration is a sequence of one-dimensional bisection fits, each
solving for exactly one parameter from one monotonic response:

1. ``lock_rate_per_s`` -- so the permanent fraction at the end of the
   24 h stress equals the paper's residue (~27.6 %, i.e. 1 - 72.4 %
   once the recoverable part is fully healed).
2. ``emission_scale`` (kappa) -- so *passive* recovery reproduces the
   No. 1 row.
3. the bias acceleration at -0.3 V -- from the No. 2 row.
4. the Arrhenius acceleration at 110 degC -- from the No. 3 row.
5. the bias*temperature synergy -- from the No. 4 row.

Because every fit is a bisection on a monotonic scalar function the
calibration is deterministic and lands on the published numbers to
within the bisection tolerance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro import units
from repro.bti.conditions import (
    ACTIVE_ACCELERATED_RECOVERY,
    ACTIVE_RECOVERY,
    ACCELERATED_RECOVERY,
    ACTIVE_RECOVERY_BIAS_V,
    BtiRecoveryCondition,
    HIGH_TEMPERATURE_K,
    PASSIVE_RECOVERY,
    RecoveryAccelerationParams,
    ROOM_TEMPERATURE_K,
)
from repro.bti.model import BtiModel, BtiModelConfig
from repro.bti.traps import TrapPopulation, TrapPopulationConfig
from repro.errors import CalibrationError


@dataclass(frozen=True)
class Table1Measurement:
    """One row of Table I.

    Attributes:
        condition: the recovery operating point of the row.
        measured_fraction: the paper's hardware-measured recovery
            fraction (0..1).
        paper_model_fraction: the paper's own analytical-model column.
    """

    condition: BtiRecoveryCondition
    measured_fraction: float
    paper_model_fraction: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.measured_fraction <= 1.0:
            raise ValueError("measured_fraction must be within [0, 1]")
        if not 0.0 <= self.paper_model_fraction <= 1.0:
            raise ValueError("paper_model_fraction must be within [0, 1]")


#: The four rows of Table I, in the paper's order.
TABLE1_MEASUREMENTS: Tuple[Table1Measurement, ...] = (
    Table1Measurement(PASSIVE_RECOVERY, 0.0066, 0.010),
    Table1Measurement(ACTIVE_RECOVERY, 0.167, 0.144),
    Table1Measurement(ACCELERATED_RECOVERY, 0.287, 0.292),
    Table1Measurement(ACTIVE_ACCELERATED_RECOVERY, 0.724, 0.727),
)

#: Stress time of the Table I protocol (24 hours).
TABLE1_STRESS_S = units.hours(24.0)

#: Recovery time of the Table I protocol (6 hours).
TABLE1_RECOVERY_S = units.hours(6.0)


@dataclass(frozen=True)
class BtiCalibration:
    """A fitted BTI model configuration plus its fit diagnostics.

    Attributes:
        model_config: the ready-to-use :class:`BtiModelConfig`.
        permanent_fraction_after_stress: permanent share of the shift
            at the end of the 24 h calibration stress.
        fitted_fractions: recovery fraction the calibrated model
            produces for each Table I row, keyed by condition name.
        acceleration_factors: the raw fitted de-trapping multipliers
            for rows 2-4 (bias, temperature, joint).
    """

    model_config: BtiModelConfig
    permanent_fraction_after_stress: float
    fitted_fractions: Dict[str, float]
    acceleration_factors: Dict[str, float]

    def build_model(self) -> BtiModel:
        """Instantiate a fresh :class:`BtiModel` with this calibration."""
        return BtiModel(self.model_config)

    def recovery_acceleration(self,
                              condition: BtiRecoveryCondition) -> float:
        """De-trapping multiplier of ``condition`` under this fit."""
        return condition.acceleration(self.model_config.acceleration)


def calibrate_to_table1(
        measurements: Sequence[Table1Measurement] = TABLE1_MEASUREMENTS,
        base_population: Optional[TrapPopulationConfig] = None,
        tolerance: float = 1e-4,
) -> BtiCalibration:
    """Fit the BTI model so it reproduces Table I.

    Args:
        measurements: the four recovery rows (passive, active,
            accelerated, active+accelerated, in that order).
        base_population: trap-population template; the fit overrides its
            ``lock_rate_per_s`` and ``emission_scale``.
        tolerance: absolute tolerance on each fitted recovery fraction.

    Returns:
        A :class:`BtiCalibration` whose model reproduces all four rows.

    Raises:
        CalibrationError: if a bisection bracket cannot enclose a
            target, which happens only for physically inconsistent
            measurement sets (e.g. a passive row recovering more than
            the joint row).
    """
    rows = _validate_rows(measurements)
    base = base_population or TrapPopulationConfig()

    # The permanent residue is whatever even the strongest (No. 4)
    # condition cannot heal.  Leave a small share of the residue to the
    # slowest recoverable traps so the fitted No. 4 acceleration stays
    # finite.
    residue = 1.0 - rows[3].measured_fraction
    permanent_target = residue * 0.97

    lock_rate = _fit_lock_rate(base, permanent_target, tolerance)
    population = replace(base, lock_rate_per_s=lock_rate)

    stressed = TrapPopulation(population)
    stressed.stress(TABLE1_STRESS_S)
    vth_after_stress = stressed.total_vth_v
    if vth_after_stress <= 0.0:
        raise CalibrationError("calibration stress produced no wearout")

    def fraction_recovered(rate: float, kappa: float) -> float:
        probe = stressed.copy()
        probe = _with_emission_scale(probe, kappa)
        probe.recover(TABLE1_RECOVERY_S, rate)
        return (vth_after_stress - probe.total_vth_v) / vth_after_stress

    kappa = _bisect_log(
        lambda k: -fraction_recovered(1.0, k),
        low=1.0, high=1e14, target=-rows[0].measured_fraction,
        tolerance=tolerance, label="emission scale (passive row)")
    population = replace(population, emission_scale=kappa)

    accel_bias = _bisect_log(
        lambda a: fraction_recovered(a, kappa),
        low=1.0, high=1e14, target=rows[1].measured_fraction,
        tolerance=tolerance, label="bias acceleration (active row)")
    accel_temp = _bisect_log(
        lambda a: fraction_recovered(a, kappa),
        low=1.0, high=1e14, target=rows[2].measured_fraction,
        tolerance=tolerance, label="thermal acceleration (accelerated row)")
    accel_joint = _bisect_log(
        lambda a: fraction_recovered(a, kappa),
        low=1.0, high=1e16, target=rows[3].measured_fraction,
        tolerance=tolerance, label="joint acceleration (deep-healing row)")

    synergy = accel_joint / (accel_bias * accel_temp)
    params = RecoveryAccelerationParams(
        bias_efold_volts=abs(ACTIVE_RECOVERY_BIAS_V) / math.log(accel_bias),
        activation_energy_ev=_activation_energy_from_factor(accel_temp),
        synergy_coefficient=math.log(max(synergy, 1e-300)),
    )
    model_config = BtiModelConfig(population=population,
                                  acceleration=params)

    fitted = {
        row.condition.name: fraction_recovered(
            row.condition.acceleration(params), kappa)
        for row in rows
    }
    return BtiCalibration(
        model_config=model_config,
        permanent_fraction_after_stress=(
            stressed.permanent_vth_v / vth_after_stress),
        fitted_fractions=fitted,
        acceleration_factors={
            "bias": accel_bias,
            "temperature": accel_temp,
            "joint": accel_joint,
            "synergy": synergy,
        },
    )


@lru_cache(maxsize=1)
def default_calibration() -> BtiCalibration:
    """The library-default calibration: Table I, default trap layout.

    The fit is deterministic and takes well under a second, so it is
    computed on first use and cached for the process lifetime.
    """
    return calibrate_to_table1()


# ---------------------------------------------------------------------------
# fitting internals
# ---------------------------------------------------------------------------

def _validate_rows(measurements: Sequence[Table1Measurement]
                   ) -> Sequence[Table1Measurement]:
    if len(measurements) != 4:
        raise CalibrationError(
            "Table I calibration needs exactly four rows "
            f"(got {len(measurements)})")
    fractions = [row.measured_fraction for row in measurements]
    if not (fractions[0] < fractions[1] < fractions[3]
            and fractions[0] < fractions[2] < fractions[3]):
        raise CalibrationError(
            "rows must be ordered passive < active/accelerated < joint; "
            f"got {fractions}")
    return measurements


def _fit_lock_rate(base: TrapPopulationConfig, permanent_target: float,
                   tolerance: float) -> float:
    def permanent_fraction(lock_rate: float) -> float:
        population = TrapPopulation(replace(base,
                                            lock_rate_per_s=lock_rate))
        population.stress(TABLE1_STRESS_S)
        return population.permanent_fraction

    return _bisect_log(permanent_fraction, low=1e-10, high=1e-1,
                       target=permanent_target, tolerance=tolerance,
                       label="lock-in rate (permanent residue)")


def _with_emission_scale(population: TrapPopulation,
                         kappa: float) -> TrapPopulation:
    """Clone ``population`` with a different emission scale.

    Emission plays no role during stress in this model, so swapping the
    scale on an already-stressed state is exact.
    """
    clone = TrapPopulation(replace(population.config,
                                   emission_scale=kappa))
    clone.occupancy = population.occupancy.copy()
    clone.weights = population.weights.copy()
    clone.age_s = population.age_s.copy()
    clone.permanent_v = population.permanent_v
    clone.time_s = population.time_s
    return clone


def _bisect_log(func: Callable[[float], float], low: float, high: float,
                target: float, tolerance: float, label: str,
                max_iterations: int = 200) -> float:
    """Solve ``func(x) == target`` for x on a log-spaced bracket.

    ``func`` must be monotonically increasing in x over the bracket.
    """
    f_low = func(low)
    f_high = func(high)
    if not (f_low <= target <= f_high):
        raise CalibrationError(
            f"cannot bracket {label}: f({low:g})={f_low:g}, "
            f"f({high:g})={f_high:g}, target={target:g}")
    log_low, log_high = math.log(low), math.log(high)
    for _ in range(max_iterations):
        mid = math.exp(0.5 * (log_low + log_high))
        value = func(mid)
        if abs(value - target) <= tolerance:
            return mid
        if value < target:
            log_low = math.log(mid)
        else:
            log_high = math.log(mid)
    return math.exp(0.5 * (log_low + log_high))


def _activation_energy_from_factor(accel_temp: float) -> float:
    """Back out Ea from the fitted 20->110 degC acceleration factor."""
    reciprocal_span = (1.0 / ROOM_TEMPERATURE_K
                       - 1.0 / HIGH_TEMPERATURE_K)
    return math.log(accel_temp) * units.BOLTZMANN_EV / reciprocal_span
