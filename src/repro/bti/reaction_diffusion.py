"""Reaction-diffusion (R-D) BTI model -- the historical alternative.

The trap-based (capture/emission) picture in :mod:`repro.bti.traps` is
the modern mainstream, but much of the BTI literature -- and the
paper's own caveat that "a consensus has still not been reached
regarding the exact physical mechanisms" -- grew from the
reaction-diffusion framework: stress breaks Si-H bonds at the
interface (reaction), the released hydrogen diffuses into the oxide
(diffusion), and recovery is hydrogen diffusing back and re-passivating
the bonds.

Its signature predictions:

* stress follows ``dVth ~ t^n`` with ``n = 1/6`` (H2 diffusion) or
  ``1/4`` (atomic H),
* fractional recovery depends only on the ratio ``xi = t_rec/t_stress``
  (universal in normalized time), approximately
  ``r(xi) = 1 / (1 + sqrt(delta * xi))``,
* temperature accelerates both directions through the hydrogen
  diffusivity.

Having a second, mechanistically different substrate lets the library
demonstrate that the paper's *scheduling* conclusions (balanced
periodic recovery keeps a system near fresh; one-shot late recovery
does not) are robust to the choice of BTI physics -- an important
reproduction-quality check given the acknowledged mechanism debate.
The R-D model exposes the same phase-based interface as
:class:`repro.bti.model.BtiModel`, so the schedule runners accept
either.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro import units
from repro.bti.conditions import (
    BtiRecoveryCondition,
    BtiStressCondition,
    RecoveryAccelerationParams,
    TABLE1_STRESS,
)
from repro.bti.model import BtiPhaseResult
from repro.errors import SimulationError


@dataclass(frozen=True)
class ReactionDiffusionConfig:
    """Parameters of the R-D model.

    Attributes:
        prefactor_v: shift after 1 s of reference stress.
        exponent: the time exponent ``n`` (1/6 for H2 kinetics).
        recovery_shape: the ``delta`` coefficient of the universal
            recovery expression; larger heals faster at equal ``xi``.
            The default is calibrated to Table I's passive and joint
            rows; the sqrt shape then *cannot* also fit the middle
            rows -- a structural limitation of R-D recovery that the
            tests document, and one of the reasons the trap model is
            the primary substrate.
        permanent_fraction: share of the *post-deadline* shift gain
            that relaxes into a non-recoverable configuration; with
            the 1/6 power law, ~39 % of a 24 h stress gain falls past
            the 75-minute deadline, so the default reproduces the
            measured >27 % total residue.
        lock_age_s: continuous-stress time beyond which the permanent
            channel opens (equivalent reference-stress time).
        acceleration: recovery-condition law shared with the trap
            model, so both substrates see the same Fig. 2(a) knobs.
    """

    prefactor_v: float = 2.6e-3
    exponent: float = 1.0 / 6.0
    recovery_shape: float = 3.2e-4
    permanent_fraction: float = 0.70
    lock_age_s: float = 75.0 * 60.0
    acceleration: RecoveryAccelerationParams = field(
        default_factory=lambda: RecoveryAccelerationParams(
            bias_efold_volts=0.0595, activation_energy_ev=0.83,
            synergy_coefficient=6.73))

    def __post_init__(self) -> None:
        if self.prefactor_v <= 0.0:
            raise SimulationError("prefactor_v must be positive")
        if not 0.0 < self.exponent < 1.0:
            raise SimulationError("exponent must be in (0, 1)")
        if self.recovery_shape <= 0.0:
            raise SimulationError("recovery_shape must be positive")
        if not 0.0 <= self.permanent_fraction < 1.0:
            raise SimulationError(
                "permanent_fraction must be in [0, 1)")
        if self.lock_age_s <= 0.0:
            raise SimulationError("lock_age_s must be positive")


class ReactionDiffusionBtiModel:
    """Stateful R-D BTI model with the BtiModel phase interface.

    State is carried as an *equivalent stress time* ``t_eq`` (the
    reference-condition stress time that would produce the current
    recoverable shift) plus the permanent component.  Stress advances
    ``t_eq`` in accelerated time; recovery shrinks the recoverable
    shift by the universal expression and maps back to a smaller
    ``t_eq`` (the standard R-D bookkeeping for arbitrary schedules).
    """

    def __init__(self,
                 config: Optional[ReactionDiffusionConfig] = None,
                 reference_stress: BtiStressCondition = TABLE1_STRESS):
        self.config = config or ReactionDiffusionConfig()
        self.reference_stress = reference_stress
        self.equivalent_stress_s = 0.0
        self.permanent_v = 0.0
        self.continuous_stress_s = 0.0
        self.time_s = 0.0

    # -- observables ----------------------------------------------------

    @property
    def recoverable_vth_v(self) -> float:
        """Recoverable shift implied by the equivalent stress time."""
        if self.equivalent_stress_s <= 0.0:
            return 0.0
        return self.config.prefactor_v \
            * self.equivalent_stress_s ** self.config.exponent

    @property
    def permanent_vth_v(self) -> float:
        """Non-recoverable component."""
        return self.permanent_v

    @property
    def delta_vth_v(self) -> float:
        """Total threshold shift."""
        return self.recoverable_vth_v + self.permanent_v

    @property
    def elapsed_s(self) -> float:
        """Total simulated time."""
        return self.time_s

    def reset(self) -> None:
        """Return to the fresh state."""
        self.equivalent_stress_s = 0.0
        self.permanent_v = 0.0
        self.continuous_stress_s = 0.0
        self.time_s = 0.0

    # -- phases -----------------------------------------------------------

    def apply_stress(self, duration_s: float,
                     condition: Optional[BtiStressCondition] = None
                     ) -> BtiPhaseResult:
        """Stress for ``duration_s`` under an optional condition."""
        if duration_s < 0.0:
            raise SimulationError("duration must be non-negative")
        before = self.delta_vth_v
        condition = condition or self.reference_stress
        accel = condition.capture_acceleration(self.reference_stress)
        equivalent = duration_s * accel
        cfg = self.config
        # Permanent channel: the share of the shift gained while the
        # continuous-stress clock is past the lock-in deadline feeds
        # the non-recoverable component.  Splitting the phase at the
        # deadline crossing makes the bookkeeping exactly composable
        # across consecutive stress phases.
        pre_lock_eq = max(min(cfg.lock_age_s
                              - self.continuous_stress_s, equivalent),
                          0.0)
        locked_eq = equivalent - pre_lock_eq
        if locked_eq > 0.0:
            t_start = self.equivalent_stress_s + pre_lock_eq
            t_end = self.equivalent_stress_s + equivalent
            gain_locked = cfg.prefactor_v * (
                t_end ** cfg.exponent - t_start ** cfg.exponent)
            self.permanent_v += cfg.permanent_fraction * gain_locked
        self.continuous_stress_s += equivalent
        self.equivalent_stress_s += equivalent
        self.time_s += duration_s
        return BtiPhaseResult(
            kind="stress", duration_s=duration_s,
            vth_before_v=before, vth_after_v=self.delta_vth_v,
            permanent_after_v=self.permanent_v)

    def apply_recovery(self, duration_s: float,
                       condition: BtiRecoveryCondition
                       ) -> BtiPhaseResult:
        """Recover for ``duration_s`` under a Fig. 2(a) condition."""
        if duration_s < 0.0:
            raise SimulationError("duration must be non-negative")
        before = self.delta_vth_v
        if duration_s == 0.0 or self.equivalent_stress_s <= 0.0:
            self.time_s += duration_s
            return BtiPhaseResult(
                kind="recovery", duration_s=duration_s,
                vth_before_v=before, vth_after_v=self.delta_vth_v,
                permanent_after_v=self.permanent_v)
        cfg = self.config
        accel = condition.acceleration(cfg.acceleration)
        xi = accel * duration_s / self.equivalent_stress_s
        remaining = 1.0 / (1.0 + math.sqrt(cfg.recovery_shape * xi))
        # Map the surviving recoverable shift back to equivalent time.
        surviving_shift = self.recoverable_vth_v * remaining
        self.equivalent_stress_s = (
            surviving_shift / cfg.prefactor_v) ** (1.0 / cfg.exponent)
        # A healing interval interrupts the continuous-stress clock
        # when it removes most of the recent damage.
        if remaining < 0.5:
            self.continuous_stress_s = 0.0
        self.time_s += duration_s
        return BtiPhaseResult(
            kind="recovery", duration_s=duration_s,
            vth_before_v=before, vth_after_v=self.delta_vth_v,
            permanent_after_v=self.permanent_v)

    # -- convenience -----------------------------------------------------

    def recovery_fraction_after(self, stress_s: float,
                                recovery_s: float,
                                condition: BtiRecoveryCondition
                                ) -> float:
        """Table I protocol from fresh (non-mutating)."""
        probe = ReactionDiffusionBtiModel(self.config,
                                          self.reference_stress)
        probe.apply_stress(stress_s)
        before = probe.delta_vth_v
        probe.apply_recovery(recovery_s, condition)
        if before <= 0.0:
            return 0.0
        return (before - probe.delta_vth_v) / before
