"""Closed-form BTI models for fast architectural/system-level use.

The paper's future-work section calls for "high-level compact models
that capture the accurate device and circuit level BTI/EM recovery
information while being able to apply at the architectural and system
level".  This module provides exactly that layer:

* :class:`PowerLawStressModel` -- the classic ``dVth = A * t^n``
  stress law with voltage and temperature acceleration.
* :class:`UniversalRelaxationModel` -- Grasser's universal relaxation
  expression ``r(xi) = 1 / (1 + B * xi^beta)`` with the recovery
  acceleration folded into the normalized recovery time ``xi``.
* :class:`AnalyticBtiModel` -- combines the two with a permanent
  fraction, suitable for multi-year simulations at large time steps.

These are intentionally stateless formulas; the stateful, mechanistic
model lives in :mod:`repro.bti.model`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro import units
from repro.bti.conditions import (
    BtiRecoveryCondition,
    BtiStressCondition,
    RecoveryAccelerationParams,
    TABLE1_STRESS,
)


@dataclass(frozen=True)
class PowerLawStressModel:
    """Power-law BTI stress: ``dVth(t) = prefactor * a(V,T) * t^exponent``.

    Attributes:
        prefactor_v: shift in volts after 1 second at the reference
            stress condition.
        exponent: the time exponent ``n`` (typically 0.1-0.25 for BTI).
        reference: stress condition at which ``prefactor_v`` holds.
    """

    prefactor_v: float = 1.15e-3
    exponent: float = 0.17
    reference: BtiStressCondition = TABLE1_STRESS

    def __post_init__(self) -> None:
        if self.prefactor_v <= 0.0:
            raise ValueError("prefactor_v must be positive")
        if not 0.0 < self.exponent < 1.0:
            raise ValueError("exponent must be in (0, 1)")

    def shift(self, stress_time_s: float,
              condition: BtiStressCondition = None) -> float:
        """Threshold shift after ``stress_time_s`` of constant stress."""
        if stress_time_s < 0.0:
            raise ValueError("stress time must be non-negative")
        if stress_time_s == 0.0:
            return 0.0
        condition = condition or self.reference
        accel = condition.capture_acceleration(self.reference)
        # Acceleration rescales effective stress time: t_eff = a * t.
        return self.prefactor_v * (accel * stress_time_s) ** self.exponent

    def equivalent_stress_time(self, shift_v: float,
                               condition: BtiStressCondition = None
                               ) -> float:
        """Invert :meth:`shift`: stress time that produces ``shift_v``."""
        if shift_v < 0.0:
            raise ValueError("shift must be non-negative")
        if shift_v == 0.0:
            return 0.0
        condition = condition or self.reference
        accel = condition.capture_acceleration(self.reference)
        return (shift_v / self.prefactor_v) ** (1.0 / self.exponent) / accel


@dataclass(frozen=True)
class UniversalRelaxationModel:
    """Universal BTI relaxation ``r(xi) = 1 / (1 + B * xi^beta)``.

    ``r`` is the fraction of the *recoverable* shift that remains after
    a recovery time ``t_rec`` following a stress time ``t_stress``, with
    ``xi = A * t_rec / t_stress`` and ``A`` the recovery-condition
    acceleration factor (1 for passive room-temperature recovery).

    Attributes:
        magnitude: the ``B`` coefficient.
        dispersion: the ``beta`` exponent (0 < beta <= 1).
        acceleration: the fitted acceleration-law coefficients used to
            convert a recovery condition to the factor ``A``.
    """

    magnitude: float = 0.037
    dispersion: float = 0.30
    acceleration: RecoveryAccelerationParams = RecoveryAccelerationParams(
        bias_efold_volts=0.086, activation_energy_ev=0.66,
        synergy_coefficient=1.3)

    def __post_init__(self) -> None:
        if self.magnitude <= 0.0:
            raise ValueError("magnitude must be positive")
        if not 0.0 < self.dispersion <= 1.0:
            raise ValueError("dispersion must be in (0, 1]")

    def remaining_fraction(self, recovery_time_s: float,
                           stress_time_s: float,
                           condition: BtiRecoveryCondition) -> float:
        """Fraction of the recoverable shift that survives recovery."""
        if recovery_time_s < 0.0 or stress_time_s <= 0.0:
            raise ValueError("require t_rec >= 0 and t_stress > 0")
        if recovery_time_s == 0.0:
            return 1.0
        accel = condition.acceleration(self.acceleration)
        xi = accel * recovery_time_s / stress_time_s
        return 1.0 / (1.0 + self.magnitude * xi ** self.dispersion)

    def recovered_fraction(self, recovery_time_s: float,
                           stress_time_s: float,
                           condition: BtiRecoveryCondition) -> float:
        """Complement of :meth:`remaining_fraction`."""
        return 1.0 - self.remaining_fraction(recovery_time_s,
                                             stress_time_s, condition)


@dataclass(frozen=True)
class AnalyticBtiModel:
    """Compact stress + relaxation + permanent-fraction model.

    Good enough for decade-long system simulations where stepping the
    trap population would be wasteful; calibrated so its one-shot
    Table I predictions are close to the mechanistic model.

    Attributes:
        stress_model: the power-law stress component.
        relaxation_model: the universal relaxation component.
        permanent_fraction: share of the stress-induced shift that
            locks in when stress intervals exceed ``lock_age_s``.
        lock_age_s: stress-interval length below which (with recovery
            in between) essentially nothing locks in; the paper's
            1 h : 1 h result pins this near one hour.
    """

    stress_model: PowerLawStressModel = PowerLawStressModel()
    relaxation_model: UniversalRelaxationModel = UniversalRelaxationModel()
    permanent_fraction: float = 0.27
    lock_age_s: float = 75.0 * 60.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.permanent_fraction < 1.0:
            raise ValueError("permanent_fraction must be in [0, 1)")
        if self.lock_age_s <= 0.0:
            raise ValueError("lock_age_s must be positive")

    def one_shot_shift(self, stress_time_s: float, recovery_time_s: float,
                       condition: BtiRecoveryCondition,
                       stress: BtiStressCondition = None) -> float:
        """Shift after a single stress phase and a single recovery phase."""
        total = self.stress_model.shift(stress_time_s, stress)
        locks = stress_time_s > self.lock_age_s
        permanent = total * self.permanent_fraction if locks else 0.0
        recoverable = total - permanent
        remaining = self.relaxation_model.remaining_fraction(
            recovery_time_s, stress_time_s, condition)
        return permanent + recoverable * remaining

    def duty_cycled_shift(self, total_time_s: float, stress_interval_s: float,
                          recovery_interval_s: float,
                          condition: BtiRecoveryCondition,
                          stress: BtiStressCondition = None) -> float:
        """Long-run shift under a periodic stress/recovery schedule.

        Approximates the periodic steady state.  Each cycle adds one
        stress interval of damage and the recovery interval removes a
        fraction ``1 - r`` of the recoverable part, so the steady-state
        envelope corresponds to an *effective* accumulated stress time
        of ``stress_interval / (1 - r)`` (a geometric sum of per-cycle
        survivals) -- strong recovery pins the envelope near one
        interval's worth of damage, weak (passive) recovery lets it
        climb towards the continuous-stress level.  The permanent part
        accrues only when individual stress intervals exceed the
        lock-in age.
        """
        if total_time_s < 0.0:
            raise ValueError("total time must be non-negative")
        cycle = stress_interval_s + recovery_interval_s
        if cycle <= 0.0 or stress_interval_s < 0.0 or recovery_interval_s < 0.0:
            raise ValueError("intervals must be non-negative with a "
                             "positive cycle length")
        n_cycles = total_time_s / cycle
        accumulated_stress_s = n_cycles * stress_interval_s
        if accumulated_stress_s <= 0.0:
            return 0.0
        total = self.stress_model.shift(accumulated_stress_s, stress)
        if stress_interval_s > self.lock_age_s:
            over = ((stress_interval_s - self.lock_age_s)
                    / max(stress_interval_s, 1e-12))
            permanent = total * self.permanent_fraction * over
        else:
            permanent = 0.0
        remaining = self.relaxation_model.remaining_fraction(
            recovery_interval_s, stress_interval_s, condition)
        effective_stress_s = min(
            stress_interval_s / max(1.0 - remaining, 1e-12),
            accumulated_stress_s)
        recoverable = self.stress_model.shift(effective_stress_s, stress)
        return min(permanent + recoverable, total)
