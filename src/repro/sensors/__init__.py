"""On-chip wearout sensors.

The paper's Fig. 12(b) scheduling loop is closed by "novel BTI and EM
sensors ... employed to track wearout and feed back the run-time
degradation information".  This package models those sensors:

* :class:`~repro.sensors.ring_oscillator.RingOscillator` -- the
  BTI-sensitive structure the paper itself measured (a 75-stage
  LUT-mapped RO on a 40 nm FPGA): threshold shift -> frequency shift.
* :class:`~repro.sensors.bti_sensor.BtiSensor` -- an RO-based sensor
  with counter quantization and noise.
* :class:`~repro.sensors.em_sensor.EmResistanceSensor` -- a
  resistance-tracking EM sensor with ADC quantization and slope-based
  nucleation detection.
"""

from repro.sensors.ring_oscillator import RingOscillator
from repro.sensors.bti_sensor import BtiSensor, BtiSensorReading
from repro.sensors.em_sensor import EmResistanceSensor, EmSensorReading

__all__ = [
    "RingOscillator",
    "BtiSensor",
    "BtiSensorReading",
    "EmResistanceSensor",
    "EmSensorReading",
]
