"""Resistance-tracking EM sensor with quantization and slope detection.

EM monitors measure the resistance of a victim (or replica) wire; the
interesting events are (a) the onset of void growth -- a sustained
upward resistance slope after the flat nucleation phase -- and (b) the
approach to the failure threshold.  The sensor wraps an
:class:`~repro.em.line.EmLine` (or any object exposing
``resistance_ohm(temperature_k)``) and keeps a short history so it can
estimate slopes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol

import numpy as np

from repro.errors import SensorError


class _HasResistance(Protocol):
    def resistance_ohm(self, temperature_k: float) -> float: ...


@dataclass(frozen=True)
class EmSensorReading:
    """One sensor read-out.

    Attributes:
        time_s: time stamp supplied by the caller.
        resistance_ohm: quantized resistance measurement.
        drift_ohm: measured increase over the first (fresh) reading.
    """

    time_s: float
    resistance_ohm: float
    drift_ohm: float


class EmResistanceSensor:
    """An EM wearout monitor attached to a wire model.

    Attributes:
        target: object whose resistance is being monitored.
        temperature_k: read-out temperature passed to the target.
        quantum_ohm: ADC resolution of the resistance measurement.
        noise_ohm_rms: RMS measurement noise added before quantization.
        seed: RNG seed for reproducible noise.
    """

    def __init__(self, target: _HasResistance, temperature_k: float,
                 quantum_ohm: float = 0.01,
                 noise_ohm_rms: float = 0.0,
                 seed: int = 0):
        if temperature_k <= 0.0:
            raise SensorError("temperature must be positive (kelvin)")
        if quantum_ohm <= 0.0:
            raise SensorError("quantum_ohm must be positive")
        if noise_ohm_rms < 0.0:
            raise SensorError("noise_ohm_rms must be non-negative")
        self.target = target
        self.temperature_k = temperature_k
        self.quantum_ohm = quantum_ohm
        self.noise_ohm_rms = noise_ohm_rms
        self._rng = np.random.default_rng(seed)
        self.history: List[EmSensorReading] = []

    def read(self, time_s: float) -> EmSensorReading:
        """Take one measurement, appending it to the history."""
        true_value = self.target.resistance_ohm(self.temperature_k)
        noisy = true_value
        if self.noise_ohm_rms > 0.0:
            noisy += self._rng.normal(0.0, self.noise_ohm_rms)
        quantized = round(noisy / self.quantum_ohm) * self.quantum_ohm
        baseline = (self.history[0].resistance_ohm
                    if self.history else quantized)
        reading = EmSensorReading(time_s=time_s,
                                  resistance_ohm=quantized,
                                  drift_ohm=quantized - baseline)
        self.history.append(reading)
        return reading

    def drift_fraction(self) -> float:
        """Latest relative drift over the fresh reading (0 if unread)."""
        if len(self.history) < 2:
            return 0.0
        fresh = self.history[0].resistance_ohm
        return self.history[-1].drift_ohm / fresh

    def slope_ohm_per_s(self, window: int = 5) -> float:
        """Least-squares resistance slope over the last ``window`` reads.

        A sustained positive slope marks the onset of void growth --
        the trigger for scheduling EM active recovery (Fig. 12b).
        """
        if window < 2:
            raise SensorError("window must be at least 2")
        if len(self.history) < 2:
            return 0.0
        recent = self.history[-window:]
        times = np.array([reading.time_s for reading in recent])
        values = np.array([reading.resistance_ohm for reading in recent])
        if np.ptp(times) <= 0.0:
            return 0.0
        slope, _intercept = np.polyfit(times, values, 1)
        return float(slope)

    def growth_detected(self, slope_threshold_ohm_per_s: float,
                        window: int = 5) -> bool:
        """True when the resistance slope crosses a trigger threshold."""
        if slope_threshold_ohm_per_s <= 0.0:
            raise SensorError("slope threshold must be positive")
        return self.slope_ohm_per_s(window) >= slope_threshold_ohm_per_s
