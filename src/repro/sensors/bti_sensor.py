"""RO-based BTI sensor with counter quantization and noise.

A real BTI monitor counts ring-oscillator edges in a fixed gate window,
so the measured frequency is quantized to ``1 / window`` and carries
jitter.  The sensor wraps a :class:`~repro.bti.model.BtiModel` (or any
object exposing ``delta_vth_v``) and reports calibrated threshold-shift
estimates the runtime controller can act on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol

import numpy as np

from repro.errors import SensorError
from repro.sensors.ring_oscillator import RingOscillator


class _HasDeltaVth(Protocol):
    @property
    def delta_vth_v(self) -> float: ...


@dataclass(frozen=True)
class BtiSensorReading:
    """One sensor read-out.

    Attributes:
        frequency_hz: quantized, noisy frequency measurement.
        delta_vth_v: threshold shift inferred from the measurement.
        degradation: fractional frequency loss vs fresh.
    """

    frequency_hz: float
    delta_vth_v: float
    degradation: float


class BtiSensor:
    """A BTI wearout monitor attached to a device model.

    Attributes:
        target: object whose ``delta_vth_v`` is being monitored.
        oscillator: the sensing RO.
        gate_window_s: edge-counting window; sets the frequency
            quantum ``1 / gate_window_s``.
        jitter_hz_rms: RMS measurement noise added before quantization.
        seed: RNG seed for reproducible noise.
    """

    def __init__(self, target: _HasDeltaVth,
                 oscillator: Optional[RingOscillator] = None,
                 gate_window_s: float = 1e-3,
                 jitter_hz_rms: float = 0.0,
                 seed: int = 0):
        if gate_window_s <= 0.0:
            raise SensorError("gate_window_s must be positive")
        if jitter_hz_rms < 0.0:
            raise SensorError("jitter_hz_rms must be non-negative")
        self.target = target
        self.oscillator = oscillator or RingOscillator()
        self.gate_window_s = gate_window_s
        self.jitter_hz_rms = jitter_hz_rms
        self._rng = np.random.default_rng(seed)

    @property
    def frequency_quantum_hz(self) -> float:
        """Smallest resolvable frequency step of the edge counter."""
        return 1.0 / self.gate_window_s

    def read(self) -> BtiSensorReading:
        """Take one measurement of the attached target."""
        true_frequency = self.oscillator.frequency_hz(
            self.target.delta_vth_v)
        noisy = true_frequency
        if self.jitter_hz_rms > 0.0:
            noisy += self._rng.normal(0.0, self.jitter_hz_rms)
        quantum = self.frequency_quantum_hz
        quantized = max(round(noisy / quantum) * quantum, quantum)
        return BtiSensorReading(
            frequency_hz=quantized,
            delta_vth_v=self.oscillator.infer_delta_vth_v(quantized),
            degradation=max(
                0.0, 1.0 - quantized / self.oscillator.fresh_frequency_hz))

    def exceeds(self, degradation_threshold: float) -> bool:
        """True when measured degradation crosses a scheduling threshold.

        This is the trigger the paper's Fig. 12(b) controller uses to
        insert a BTI active-recovery interval.
        """
        if not 0.0 <= degradation_threshold < 1.0:
            raise SensorError("threshold must be within [0, 1)")
        return self.read().degradation >= degradation_threshold
