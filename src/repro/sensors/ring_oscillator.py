"""Ring-oscillator frequency model under BTI wearout.

The paper measures BTI through the oscillation frequency of a 75-stage
LUT-mapped ring oscillator.  The stage delay follows the alpha-power
law ``delay ~ C V / (V - Vth)^alpha``; a BTI threshold shift
``dVth`` therefore reduces the frequency by approximately::

    f(dVth) / f0 = ((V - Vth0 - dVth) / (V - Vth0)) ** alpha

which is the mapping this class provides in both directions
(shift -> frequency for simulation, frequency -> shift for sensing).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SensorError


@dataclass(frozen=True)
class RingOscillator:
    """A ring oscillator used as a BTI wearout monitor.

    Attributes:
        stages: number of inverting stages (odd in real hardware; the
            model only uses it for reporting).
        fresh_frequency_hz: oscillation frequency of the unstressed RO.
        supply_v: oscillator supply voltage.
        fresh_vth_v: fresh device threshold magnitude.
        alpha: velocity-saturation exponent of the alpha-power law
            (2.0 = long channel, ~1.3 typical for scaled nodes).
    """

    stages: int = 75
    fresh_frequency_hz: float = 100e6
    supply_v: float = 1.0
    fresh_vth_v: float = 0.30
    alpha: float = 1.3

    def __post_init__(self) -> None:
        if self.stages < 3:
            raise SensorError("a ring oscillator needs at least 3 stages")
        if self.fresh_frequency_hz <= 0.0:
            raise SensorError("fresh_frequency_hz must be positive")
        if self.supply_v <= self.fresh_vth_v:
            raise SensorError("supply must exceed the threshold voltage")
        if self.alpha <= 0.0:
            raise SensorError("alpha must be positive")

    def frequency_hz(self, delta_vth_v: float) -> float:
        """Oscillation frequency at a given BTI threshold shift."""
        if delta_vth_v < 0.0:
            raise SensorError("delta_vth_v must be non-negative")
        overdrive = self.supply_v - self.fresh_vth_v
        remaining = overdrive - delta_vth_v
        if remaining <= 0.0:
            return 0.0
        return self.fresh_frequency_hz * (remaining / overdrive) ** self.alpha

    def frequency_degradation(self, delta_vth_v: float) -> float:
        """Fractional frequency loss ``(f0 - f) / f0``."""
        return 1.0 - self.frequency_hz(delta_vth_v) / self.fresh_frequency_hz

    def infer_delta_vth_v(self, measured_frequency_hz: float) -> float:
        """Invert the frequency model back to a threshold shift."""
        if measured_frequency_hz <= 0.0:
            raise SensorError("measured frequency must be positive")
        if measured_frequency_hz > self.fresh_frequency_hz:
            return 0.0
        overdrive = self.supply_v - self.fresh_vth_v
        ratio = measured_frequency_hz / self.fresh_frequency_hz
        return overdrive * (1.0 - ratio ** (1.0 / self.alpha))

    def delay_degradation(self, delta_vth_v: float) -> float:
        """Fractional stage-delay increase ``(d - d0) / d0``."""
        frequency = self.frequency_hz(delta_vth_v)
        if frequency <= 0.0:
            return float("inf")
        return self.fresh_frequency_hz / frequency - 1.0

    # -- array-native paths (system epoch loop) -------------------------

    def frequency_hz_array(self, delta_vth_v: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`frequency_hz` over a shift vector.

        Elementwise identical to the scalar path (same power law, same
        0 Hz clamp for exhausted overdrive).
        """
        shifts = np.asarray(delta_vth_v, dtype=float)
        if (shifts < 0.0).any():
            raise SensorError("delta_vth_v must be non-negative")
        overdrive = self.supply_v - self.fresh_vth_v
        remaining = np.maximum(overdrive - shifts, 0.0)
        return (self.fresh_frequency_hz
                * (remaining / overdrive) ** self.alpha)

    def frequency_degradation_array(self,
                                    delta_vth_v: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`frequency_degradation`."""
        return 1.0 - (self.frequency_hz_array(delta_vth_v)
                      / self.fresh_frequency_hz)

    def infer_delta_vth_v_array(self,
                                measured_frequency_hz: np.ndarray
                                ) -> np.ndarray:
        """Vectorized :meth:`infer_delta_vth_v` over a frequency vector.

        Matches the scalar inversion to floating-point rounding
        (numpy's ``**`` and libm's can differ in the last ulp),
        including the zero clamp for frequencies above fresh; lets a
        fleet of sensor readouts -- e.g. from
        :func:`repro.assist.sweeps.ring_oscillator_fleet` -- be
        inverted in one call.
        """
        frequencies = np.asarray(measured_frequency_hz, dtype=float)
        if (frequencies <= 0.0).any():
            raise SensorError("measured frequency must be positive")
        overdrive = self.supply_v - self.fresh_vth_v
        ratio = np.minimum(frequencies / self.fresh_frequency_hz, 1.0)
        return overdrive * (1.0 - ratio ** (1.0 / self.alpha))

    def delay_degradation_array(self,
                                delta_vth_v: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`delay_degradation` (``inf`` at 0 Hz)."""
        frequency = self.frequency_hz_array(delta_vth_v)
        positive = frequency > 0.0
        if positive.all():
            return self.fresh_frequency_hz / frequency - 1.0
        out = np.full(frequency.shape, np.inf)
        np.divide(self.fresh_frequency_hz, frequency, out=out,
                  where=positive)
        return out - 1.0
