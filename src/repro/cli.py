"""Command-line interface: run the paper's experiments from a shell.

Usage::

    python -m repro.cli table1
    python -m repro.cli fig4 --cycles 8
    python -m repro.cli fig5
    python -m repro.cli fig7 --stress-min 15 --recovery-min 5
    python -m repro.cli fig9
    python -m repro.cli fig10
    python -m repro.cli margins --years 10
    python -m repro.cli system --epochs 336
    python -m repro.cli fleet --chips 64 --checkpoint-dir ckpt/
    python -m repro.cli resume ckpt/

Each sub-command prints the same rows/series the corresponding paper
table or figure reports.  The heavy lifting lives in the library; the
CLI is a thin argparse layer so results are scriptable without pytest.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro import units
from repro.analysis.reporting import format_series, format_table


def _cmd_table1(args: argparse.Namespace) -> None:
    from repro.bti.calibration import TABLE1_MEASUREMENTS, \
        default_calibration
    model = default_calibration().build_model()
    rows = []
    for row in TABLE1_MEASUREMENTS:
        ours = model.recovery_fraction_after(
            units.hours(args.stress_hours),
            units.hours(args.recovery_hours), row.condition)
        rows.append((row.condition.name,
                     f"{row.measured_fraction:.2%}",
                     f"{row.paper_model_fraction:.2%}",
                     f"{ours:.2%}"))
    print(format_table(
        ("recovery condition", "paper meas.", "paper model", "ours"),
        rows, title=f"Table I ({args.stress_hours:g} h stress, "
                    f"{args.recovery_hours:g} h recovery)"))


def _cmd_fig4(args: argparse.Namespace) -> None:
    from repro.bti.calibration import default_calibration
    from repro.bti.conditions import ACTIVE_ACCELERATED_RECOVERY
    from repro.core.schedule import PeriodicSchedule, run_bti_schedule
    calibration = default_calibration()
    rows = []
    for stress_h, recovery_h in ((1.0, 1.0), (2.0, 1.0), (4.0, 1.0)):
        outcome = run_bti_schedule(
            calibration.build_model(),
            PeriodicSchedule.from_hours(stress_h, recovery_h,
                                        args.cycles),
            ACTIVE_ACCELERATED_RECOVERY)
        per_cycle = " ".join(f"{v * 1e3:6.3f}"
                             for v in outcome.permanent_per_cycle_v)
        rows.append((outcome.schedule.ratio_label, per_cycle))
    print(format_table(
        ("schedule", f"permanent per cycle (mV), {args.cycles} cycles"),
        rows, title="Fig. 4: permanent BTI vs schedule"))


def _cmd_fig5(args: argparse.Namespace) -> None:
    from repro.em.line import EmLine, PAPER_EM_RECOVERY, PAPER_EM_STRESS
    line = EmLine()
    stress_t, stress_r = line.apply_trace(
        units.minutes(args.stress_min), PAPER_EM_STRESS, 21)
    recovery_t, recovery_r = line.apply_trace(
        units.minutes(args.recovery_min), PAPER_EM_RECOVERY, 17)
    print(format_series(
        "Fig. 5 stress (230C, +7.96 MA/cm2)",
        [units.to_minutes(t) for t in stress_t], stress_r,
        x_label="min", y_label="ohm", precision=4))
    print()
    print(format_series(
        "Fig. 5 recovery (-7.96 MA/cm2)",
        [args.stress_min + units.to_minutes(t) for t in recovery_t],
        recovery_r, x_label="min", y_label="ohm", precision=4))


def _cmd_fig7(args: argparse.Namespace) -> None:
    from repro.em.line import PAPER_EM_STRESS
    from repro.em.lumped import LumpedEmModel
    model = LumpedEmModel()
    t_nuc = model.nucleation_time(PAPER_EM_STRESS)
    estimate = model.nucleation_under_periodic_recovery(
        units.minutes(args.stress_min), units.minutes(args.recovery_min),
        PAPER_EM_STRESS)
    print(format_table(("quantity", "value"), [
        ("continuous nucleation",
         f"{units.to_minutes(t_nuc):.0f} min"),
        (f"scheduled ({args.stress_min:g}:{args.recovery_min:g} min)",
         f"{units.to_minutes(estimate.time_s):.0f} min"),
        ("delay factor", f"{estimate.time_s / t_nuc:.2f}x"),
    ], title="Fig. 7: periodic recovery during nucleation"))


def _cmd_fig9(args: argparse.Namespace) -> None:
    from repro.assist.circuitry import AssistCircuit
    from repro.assist.modes import AssistMode
    circuit = AssistCircuit()
    rows = []
    for mode in AssistMode:
        op = circuit.solve_mode(mode)
        rows.append((mode.value, f"{op.load_vdd_v:.3f} V",
                     f"{op.load_vss_v:.3f} V",
                     f"{op.vdd_grid_current_a * 1e3:+.3f} mA"))
    print(format_table(
        ("mode", "load VDD", "load VSS", "grid current"), rows,
        title="Fig. 9: assist-circuit operating points"))


def _cmd_fig10(args: argparse.Namespace) -> None:
    from repro.assist.sizing import sweep_load_size
    rows = [(p.n_loads, f"{p.delay_normalized:.3f}",
             f"{p.switching_time_normalized:.3f}")
            for p in sweep_load_size()]
    print(format_table(
        ("loads", "norm. delay", "norm. switching time"), rows,
        title="Fig. 10: load size sweep"))


def _cmd_margins(args: argparse.Namespace) -> None:
    from repro.bti.conditions import BtiStressCondition
    from repro.core.margins import GuardbandModel
    stress = BtiStressCondition(
        voltage=args.stress_voltage,
        temperature_k=units.celsius_to_kelvin(args.temperature_c),
        name="use")
    comparison = GuardbandModel().compare(units.years(args.years),
                                          stress)
    print(comparison.describe())


def _print_fleet_result(result, title: str) -> None:
    import numpy as np
    worst = result.final_delta_vth_v.max(axis=1)
    rows = [
        ("chips", f"{result.n_chips}"),
        ("epochs", f"{result.n_epochs}"),
        ("median worst-core dVth",
         f"{np.median(worst) * 1e3:.3f} mV"),
        ("p99 worst-core dVth",
         f"{np.quantile(worst, 0.99) * 1e3:.3f} mV"),
        ("EM failures",
         f"{int(np.count_nonzero(result.em_failures.any(axis=1)))}"
         " chips"),
        ("migration events",
         f"{int(result.migration_events.sum())}"),
    ]
    print(format_table(("quantity", "value"), rows, title=title))


def _cmd_fleet(args: argparse.Namespace) -> None:
    from repro.system.fleet import (FleetVariationSpec,
                                    run_fleet_lifetime_study)
    from repro.system.scheduler import RoundRobinRecoveryPolicy
    from repro.system.workload import ConstantWorkload
    rows, cols = (int(part) for part in args.chip.split("x"))
    result = run_fleet_lifetime_study(
        (rows, cols), args.chips,
        ConstantWorkload(n_cores=rows * cols,
                         utilization=args.utilization),
        RoundRobinRecoveryPolicy(recovery_slots=2,
                                 em_alternate_every=2),
        n_epochs=args.epochs,
        record_every=max(args.epochs // 40, 1),
        variation=FleetVariationSpec(
            capture_sigma=args.variation_sigma,
            recovery_sigma=args.variation_sigma,
            em_current_sigma=args.variation_sigma),
        seed=args.seed, max_workers=args.workers,
        checkpoint_every=args.checkpoint_every,
        checkpoint_dir=args.checkpoint_dir)
    _print_fleet_result(
        result, f"Fleet lifetime study ({args.chips} chips, "
                f"{args.epochs} epochs)")
    if args.checkpoint_dir:
        print(f"\ncheckpoints in {args.checkpoint_dir}; resume a "
              f"killed run with:\n  python -m repro.cli resume "
              f"{args.checkpoint_dir}")


def _cmd_resume(args: argparse.Namespace) -> None:
    from repro.system.checkpoint import resume_fleet_lifetime_study
    result = resume_fleet_lifetime_study(
        args.checkpoint_dir, max_workers=args.workers)
    _print_fleet_result(
        result, f"Resumed fleet study ({args.checkpoint_dir})")


def _cmd_blech(args: argparse.Namespace) -> None:
    from repro.em.blech import assess, critical_length_m
    from repro.em.line import EmStressCondition
    from repro.em.wire import PAPER_TEST_WIRE
    condition = EmStressCondition(
        units.ma_per_cm2(args.density_ma_cm2),
        units.celsius_to_kelvin(args.temperature_c),
        name="cli condition")
    audit = assess(PAPER_TEST_WIRE, condition)
    print(audit.describe())
    l_crit = critical_length_m(PAPER_TEST_WIRE.material,
                               condition.current_density_a_m2,
                               condition.temperature_k)
    print(f"critical (immortal) segment length: {l_crit * 1e6:.1f} um")


def _cmd_plan(args: argparse.Namespace) -> None:
    from repro.bti.conditions import BtiStressCondition
    from repro.core.planner import RecoveryPlanner
    from repro.em.line import EmStressCondition
    stress = BtiStressCondition(
        voltage=args.stress_voltage,
        temperature_k=units.celsius_to_kelvin(args.temperature_c),
        name="use")
    grid = EmStressCondition(
        units.ma_per_cm2(args.grid_density_ma_cm2),
        units.celsius_to_kelvin(args.grid_temperature_c),
        name="grid")
    plan = RecoveryPlanner().plan(units.years(args.years), stress,
                                  grid,
                                  min_availability=args.availability)
    print(plan.describe())


def _cmd_system(args: argparse.Namespace) -> None:
    from repro.system.chip import Chip
    from repro.system.scheduler import (NoRecoveryPolicy,
                                        RoundRobinRecoveryPolicy)
    from repro.system.simulator import SystemSimulator
    from repro.system.workload import ConstantWorkload
    rows = []
    for name, policy in (
            ("no recovery", NoRecoveryPolicy()),
            ("round-robin healing",
             RoundRobinRecoveryPolicy(recovery_slots=2,
                                      em_alternate_every=2))):
        chip = Chip(4, 4)
        result = SystemSimulator(chip).run(
            args.epochs,
            ConstantWorkload(n_cores=chip.n_cores,
                             utilization=args.utilization),
            policy, record_every=max(args.epochs // 40, 1))
        rows.append((name, f"{result.guardband:.2%}",
                     f"{result.final_permanent_vth_v.max() * 1e3:.2f}"
                     " mV"))
    print(format_table(
        ("policy", "guardband", "worst permanent dVth"), rows,
        title=f"System comparison over {args.epochs} epochs"))


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Deep-healing paper experiments from the shell")
    sub = parser.add_subparsers(dest="command", required=True)

    table1 = sub.add_parser("table1", help="Table I recovery fractions")
    table1.add_argument("--stress-hours", type=float, default=24.0)
    table1.add_argument("--recovery-hours", type=float, default=6.0)
    table1.set_defaults(func=_cmd_table1)

    fig4 = sub.add_parser("fig4", help="Fig. 4 permanent accumulation")
    fig4.add_argument("--cycles", type=int, default=5)
    fig4.set_defaults(func=_cmd_fig4)

    fig5 = sub.add_parser("fig5", help="Fig. 5 EM stress/recovery trace")
    fig5.add_argument("--stress-min", type=float, default=600.0)
    fig5.add_argument("--recovery-min", type=float, default=480.0)
    fig5.set_defaults(func=_cmd_fig5)

    fig7 = sub.add_parser("fig7", help="Fig. 7 nucleation delay")
    fig7.add_argument("--stress-min", type=float, default=15.0)
    fig7.add_argument("--recovery-min", type=float, default=5.0)
    fig7.set_defaults(func=_cmd_fig7)

    fig9 = sub.add_parser("fig9", help="Fig. 9 assist-circuit modes")
    fig9.set_defaults(func=_cmd_fig9)

    fig10 = sub.add_parser("fig10", help="Fig. 10 load-size sweep")
    fig10.set_defaults(func=_cmd_fig10)

    margins = sub.add_parser("margins", help="Fig. 12b margin savings")
    margins.add_argument("--years", type=float, default=10.0)
    margins.add_argument("--stress-voltage", type=float, default=0.45)
    margins.add_argument("--temperature-c", type=float, default=60.0)
    margins.set_defaults(func=_cmd_margins)

    system = sub.add_parser("system", help="multicore policy study")
    system.add_argument("--epochs", type=int, default=336)
    system.add_argument("--utilization", type=float, default=0.6)
    system.set_defaults(func=_cmd_system)

    fleet = sub.add_parser(
        "fleet", help="checkpointed fleet lifetime study")
    fleet.add_argument("--chips", type=int, default=64)
    fleet.add_argument("--chip", type=str, default="3x3",
                       help="core grid, e.g. 3x3")
    fleet.add_argument("--epochs", type=int, default=168)
    fleet.add_argument("--utilization", type=float, default=0.6)
    fleet.add_argument("--variation-sigma", type=float, default=0.1)
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument("--workers", type=int, default=None)
    fleet.add_argument("--checkpoint-dir", type=str, default=None)
    fleet.add_argument("--checkpoint-every", type=int, default=None,
                       help="epochs between progress snapshots")
    fleet.set_defaults(func=_cmd_fleet)

    resume = sub.add_parser(
        "resume", help="resume a killed fleet study")
    resume.add_argument("checkpoint_dir", type=str)
    resume.add_argument("--workers", type=int, default=None)
    resume.set_defaults(func=_cmd_resume)

    blech = sub.add_parser("blech", help="Blech immortality audit")
    blech.add_argument("--density-ma-cm2", type=float, default=7.96)
    blech.add_argument("--temperature-c", type=float, default=230.0)
    blech.set_defaults(func=_cmd_blech)

    plan = sub.add_parser("plan", help="mission recovery plan")
    plan.add_argument("--years", type=float, default=10.0)
    plan.add_argument("--stress-voltage", type=float, default=0.45)
    plan.add_argument("--temperature-c", type=float, default=60.0)
    plan.add_argument("--grid-density-ma-cm2", type=float, default=6.0)
    plan.add_argument("--grid-temperature-c", type=float,
                      default=105.0)
    plan.add_argument("--availability", type=float, default=0.5)
    plan.set_defaults(func=_cmd_plan)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    args.func(args)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
