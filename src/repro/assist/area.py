"""Area costing and design-point optimization for the assist circuitry.

Fig. 10's conclusion: "To compensate this performance degradation, the
header/footer transistors need to be upsized, which will result in more
area.  This study indicates that each load will have its own optimal
design point which gives the optimal metrics in terms of area and other
metrics."

This module makes that trade-off executable:

* :class:`AssistAreaModel` -- transistor area of one assist-circuit
  instance as a function of the device sizing;
* :func:`compensated_header_scale` -- the header/footer upsizing
  required to hold the load swing (and hence delay) at its 1-load
  value for a larger load;
* :func:`optimal_sharing` -- sweep the number of loads per assist
  instance with compensation and return the granularity minimizing an
  area-delay cost, which is the "optimal design point" the paper
  alludes to.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.assist.circuitry import AssistCircuit, AssistCircuitConfig
from repro.assist.modes import AssistMode
from repro.errors import SimulationError


@dataclass(frozen=True)
class AssistAreaModel:
    """Relative-area model of one assist-circuit instance.

    Areas are expressed in units of one minimum-size device gate; the
    eight grid devices scale with the header upsizing factor, the two
    BTI cross-connect devices are small and fixed.

    Attributes:
        grid_device_area: area of one header/footer/tap device at the
            default sizing.
        bti_device_area: area of one BTI cross-connect device.
        wiring_overhead: fixed per-instance routing/control overhead.
    """

    grid_device_area: float = 20.0
    bti_device_area: float = 2.0
    wiring_overhead: float = 10.0

    def instance_area(self, header_scale: float = 1.0) -> float:
        """Area of one assist instance at a header upsizing factor."""
        if header_scale <= 0.0:
            raise SimulationError("header_scale must be positive")
        return (8.0 * self.grid_device_area * header_scale
                + 2.0 * self.bti_device_area
                + self.wiring_overhead)

    def area_per_load(self, n_loads: int,
                      header_scale: float = 1.0) -> float:
        """Amortized assist area per protected load unit."""
        if n_loads < 1:
            raise SimulationError("n_loads must be at least 1")
        return self.instance_area(header_scale) / n_loads


def compensated_header_scale(n_loads: int,
                             base_config: Optional[AssistCircuitConfig]
                             = None,
                             swing_tolerance_v: float = 0.02,
                             max_scale: float = 24.0) -> float:
    """Header/footer upsizing that restores the 1-load swing.

    Bisection on the width factor of every grid device until the
    Normal-mode load swing of an ``n_loads`` instance matches the
    unscaled 1-load instance within ``swing_tolerance_v`` (the fixed
    grid resistance makes an exact match unreachable for large loads,
    so a small allowance is part of the design target).

    Raises:
        SimulationError: if even ``max_scale`` cannot restore the
            swing.
    """
    base = base_config or AssistCircuitConfig()
    target = AssistCircuit(replace(base, n_loads=1)).solve_mode(
        AssistMode.NORMAL).load_swing_v

    def swing(scale: float) -> float:
        config = replace(
            base, n_loads=n_loads,
            header_params=base.header_params.scaled(scale),
            footer_params=base.footer_params.scaled(scale))
        return AssistCircuit(config).solve_mode(
            AssistMode.NORMAL).load_swing_v

    if n_loads == 1:
        return 1.0
    low, high = 1.0, max_scale
    if swing(high) < target - swing_tolerance_v:
        raise SimulationError(
            f"cannot restore the swing for {n_loads} loads within a "
            f"{max_scale}x upsizing")
    for _ in range(30):
        mid = 0.5 * (low + high)
        if swing(mid) < target - swing_tolerance_v:
            low = mid
        else:
            high = mid
        if high - low < 0.01:
            break
    return high


@dataclass(frozen=True)
class SharingDesignPoint:
    """One candidate assist-sharing granularity.

    Attributes:
        n_loads: loads per assist instance.
        header_scale: compensating upsizing factor.
        area_per_load: amortized assist area per load.
        cost: the optimized composite metric (area per load; the
            delay term is held constant by the compensation).
    """

    n_loads: int
    header_scale: float
    area_per_load: float

    @property
    def cost(self) -> float:
        """Composite cost (area per load at iso-delay)."""
        return self.area_per_load


def optimal_sharing(n_loads_values: Sequence[int] = (1, 2, 3, 4, 5),
                    area_model: Optional[AssistAreaModel] = None,
                    base_config: Optional[AssistCircuitConfig] = None
                    ) -> List[SharingDesignPoint]:
    """Sweep sharing granularities at iso-delay and cost them.

    For each candidate ``n_loads``, the header/footer devices are
    upsized until the load swing (delay) matches the 1-load design,
    then the amortized area per load is computed.  The sweep exposes
    the optimum: sharing amortizes the fixed instance overhead but the
    compensating upsizing grows with the shared load.

    Returns the design points sorted by ``n_loads``; pick the minimum
    ``cost`` for the paper's "optimal design point".
    """
    if not n_loads_values:
        raise SimulationError("n_loads_values must not be empty")
    area_model = area_model or AssistAreaModel()
    points = []
    for n_loads in n_loads_values:
        scale = compensated_header_scale(n_loads, base_config)
        points.append(SharingDesignPoint(
            n_loads=n_loads,
            header_scale=scale,
            area_per_load=area_model.area_per_load(n_loads, scale)))
    return points
