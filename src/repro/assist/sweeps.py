"""Assist-circuit studies at sweep scale (Fig. 9 / Fig. 10), batched
or pooled.

Every Fig. 10 load-size point, every Fig. 9 mode-switch cell and every
member of a ring-oscillator fleet is an independent netlist build plus
DC / transient solve over the *same topology*, which makes these
studies ideal for the batched grid engine
(:mod:`repro.circuit.batched`): all points stack along a leading batch
axis and advance through one tensor Newton iteration per step instead
of one simulation per point.  On one core the batched Fig. 10 study
runs several times faster than the pooled per-point sweep, with
observables identical to the per-point evaluators.

Each study takes an ``engine`` argument:

* ``"auto"`` (default) -- batched, unless any pooled-runner knob
  (``max_workers``, ``min_tasks_for_pool``, ``on_error``, ``retries``,
  ``progress``, ``on_report``) is set, in which case the request
  implies pooled semantics and the study runs through
  :func:`repro.solvers.run_sweep` exactly as before.
* ``"batched"`` -- force the batched engine (pool knobs rejected).
* ``"pooled"`` -- force the deterministic process-pool runner; this
  path remains the one to use for *heterogeneous* populations (e.g. a
  fleet whose members differ in topology), which the batched engine
  rejects by construction.

The pooled path keeps its guarantees: results in task order,
byte-identical to a serial run; per-cell randomness seeded from
``(seed, cell index)`` via :func:`repro.solvers.task_seed_sequence`
(the batched fleet draws the *same* per-member sequences, so both
engines see identical process variation); fault tolerance and
telemetry through ``on_error`` / ``retries`` / ``progress`` /
``on_report``.  Every pooled task function is a module-level callable
bound with ``functools.partial`` over frozen dataclasses, which keeps
the work picklable.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import partial
from itertools import permutations
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.assist.circuitry import (
    AssistCircuit,
    AssistCircuitConfig,
    mode_switch_waveforms,
)
from repro.assist.modes import AssistMode
from repro.assist.sizing import (
    LoadSizingPoint,
    _alpha_power_delay,
    _evaluate_load_point,
    _normalize_load_points,
)
from repro.circuit.batched import dc_batch, transient_batch
from repro.circuit.oscillator import RingOscillatorNetlist
from repro.solvers import run_sweep, task_seed_sequence


def _resolve_engine(engine: str, max_workers, min_tasks_for_pool,
                    on_error, retries, progress, on_report) -> str:
    """Pick ``"batched"`` or ``"pooled"`` from the engine request."""
    if engine not in ("auto", "batched", "pooled"):
        raise ValueError(
            "engine must be 'auto', 'batched' or 'pooled', "
            f"got {engine!r}")
    pool_defaults = (max_workers is None and min_tasks_for_pool is None
                     and on_error == "raise" and retries == 0
                     and progress is None and on_report is None)
    if engine == "auto":
        return "batched" if pool_defaults else "pooled"
    if engine == "batched" and not pool_defaults:
        raise ValueError(
            "max_workers / min_tasks_for_pool / on_error / retries / "
            "progress / on_report configure the pooled runner; leave "
            "them at their defaults with engine='batched', or use "
            "engine='pooled'")
    return engine


# -- Fig. 10: load-size trade-off ------------------------------------------


def _sweep_load_size_batched(n_loads_values: Sequence[int],
                             base: AssistCircuitConfig,
                             ) -> List[LoadSizingPoint]:
    """Every Fig. 10 point as one row of the batched grid engine.

    Mirrors :func:`repro.assist.sizing._evaluate_load_point` exactly:
    a Normal-mode DC (swing and delay), a BTI-recovery DC (settle
    targets) and a Normal -> BTI switching transient, each computed
    for the whole grid in one batched analysis.
    """
    stop_s, dt_s, switch_at_s, tolerance_v = 100e-9, 0.2e-9, 5e-9, 0.02
    cells = [AssistCircuit(replace(base, n_loads=n))
             for n in n_loads_values]
    circuits = [cell.circuit for cell in cells]
    for cell in cells:
        cell.set_mode(AssistMode.NORMAL)
    normals = dc_batch(circuits)
    for cell in cells:
        cell.set_mode(AssistMode.BTI_RECOVERY)
    targets = dc_batch(circuits)
    waveforms = mode_switch_waveforms(AssistMode.NORMAL,
                                      AssistMode.BTI_RECOVERY,
                                      base.supply_v, switch_at_s)
    for cell in cells:
        cell.set_mode(AssistMode.NORMAL)
    results = transient_batch(circuits, stop_s=stop_s, dt_s=dt_s,
                              waveforms=waveforms)
    raw = []
    for n_loads, normal, target, result in zip(n_loads_values, normals,
                                               targets, results):
        swing = normal.voltage("lvdd") - normal.voltage("lvss")
        settled = max(
            result.settle_time("lvdd", target.voltage("lvdd"),
                               tolerance_v),
            result.settle_time("lvss", target.voltage("lvss"),
                               tolerance_v))
        switching = settled - switch_at_s \
            if settled != float("inf") else float("inf")
        raw.append({
            "n_loads": n_loads,
            "swing": swing,
            "delay": _alpha_power_delay(swing),
            "switching": switching,
        })
    return _normalize_load_points(raw)


def sweep_load_size_pooled(
        n_loads_values: Sequence[int] = (1, 2, 3, 4, 5),
        base_config: Optional[AssistCircuitConfig] = None, *,
        engine: str = "auto",
        max_workers: Optional[int] = None,
        min_tasks_for_pool: Optional[int] = None,
        on_error: str = "raise",
        retries: int = 0,
        progress=None,
        on_report=None,
) -> List[LoadSizingPoint]:
    """The Fig. 10 sweep with every load point solved together.

    Point-for-point identical to
    :func:`repro.assist.sizing.sweep_load_size` (same evaluators, same
    normalization to the first entry); only the scheduling differs.
    With ``engine="auto"`` (and no pooled-runner knobs set) the whole
    grid advances through the batched engine in one tensor transient;
    setting any pool knob -- or ``engine="pooled"`` -- fans the points
    over :func:`repro.solvers.run_sweep` instead.  Under ``"skip"`` /
    ``"collect"`` failed points are dropped *before* normalization,
    so the reference point becomes the first surviving entry (the
    failure records arrive on the ``on_report`` report).
    """
    if not n_loads_values:
        raise ValueError("n_loads_values must not be empty")
    base = base_config or AssistCircuitConfig()
    chosen = _resolve_engine(engine, max_workers, min_tasks_for_pool,
                             on_error, retries, progress, on_report)
    if chosen == "batched":
        return _sweep_load_size_batched(list(n_loads_values), base)
    raw = run_sweep(partial(_evaluate_load_point, base),
                    list(n_loads_values), max_workers=max_workers,
                    min_tasks_for_pool=min_tasks_for_pool,
                    on_error=on_error, retries=retries,
                    progress=progress, on_report=on_report)
    raw = [point for point in raw if isinstance(point, dict)]
    if not raw:
        raise ValueError("every load point failed; nothing to "
                         "normalize (see the on_report failures)")
    return _normalize_load_points(raw)


# -- Fig. 9: mode-switch matrix --------------------------------------------


@dataclass(frozen=True)
class ModeSwitchCell:
    """One ordered mode transition of the Fig. 9 matrix.

    Attributes:
        from_mode / to_mode: the transition endpoints.
        switching_time_s: settle time of both load rails after the
            switch instant (``inf`` if a rail never settles).
        settled_load_vdd_v / settled_load_vss_v: the target-mode DC
            rail voltages the transient settles towards.
    """

    from_mode: AssistMode
    to_mode: AssistMode
    switching_time_s: float
    settled_load_vdd_v: float
    settled_load_vss_v: float


def _evaluate_mode_switch(config: AssistCircuitConfig, stop_s: float,
                          dt_s: float, switch_at_s: float,
                          pair: Tuple[AssistMode, AssistMode]
                          ) -> ModeSwitchCell:
    """Sweep worker: one cell of the mode-switch matrix."""
    from_mode, to_mode = pair
    circuit = AssistCircuit(config)
    target = circuit.solve_mode(to_mode)
    switching = circuit.switching_time_s(from_mode, to_mode,
                                         stop_s=stop_s, dt_s=dt_s,
                                         switch_at_s=switch_at_s)
    return ModeSwitchCell(
        from_mode=from_mode,
        to_mode=to_mode,
        switching_time_s=switching,
        settled_load_vdd_v=target.load_vdd_v,
        settled_load_vss_v=target.load_vss_v,
    )


def _mode_switch_matrix_batched(
        config: AssistCircuitConfig,
        mode_pairs: Sequence[Tuple[AssistMode, AssistMode]],
        stop_s: float, dt_s: float, switch_at_s: float,
        ) -> List[ModeSwitchCell]:
    """Every matrix cell as one row of the batched grid engine.

    All cells share one topology; they differ only in gate-source
    values, which enter per row through the DC source settings and the
    per-row step waveforms.
    """
    tolerance_v = 0.02
    cells = [AssistCircuit(config) for _ in mode_pairs]
    circuits = [cell.circuit for cell in cells]
    for cell, (_, to_mode) in zip(cells, mode_pairs):
        cell.set_mode(to_mode)
    targets = dc_batch(circuits)
    wave_rows = [mode_switch_waveforms(from_mode, to_mode,
                                       config.supply_v, switch_at_s)
                 for from_mode, to_mode in mode_pairs]
    for cell, (from_mode, _) in zip(cells, mode_pairs):
        cell.set_mode(from_mode)
    results = transient_batch(circuits, stop_s=stop_s, dt_s=dt_s,
                              waveforms=wave_rows)
    matrix = []
    for (from_mode, to_mode), target, result in zip(mode_pairs,
                                                    targets, results):
        load_vdd = target.voltage("lvdd")
        load_vss = target.voltage("lvss")
        settled = max(
            result.settle_time("lvdd", load_vdd, tolerance_v),
            result.settle_time("lvss", load_vss, tolerance_v))
        switching = settled - switch_at_s \
            if settled != float("inf") else float("inf")
        matrix.append(ModeSwitchCell(
            from_mode=from_mode,
            to_mode=to_mode,
            switching_time_s=switching,
            settled_load_vdd_v=load_vdd,
            settled_load_vss_v=load_vss,
        ))
    return matrix


def mode_switch_matrix(
        config: Optional[AssistCircuitConfig] = None,
        mode_pairs: Optional[Sequence[Tuple[AssistMode,
                                            AssistMode]]] = None, *,
        stop_s: float = 100e-9,
        dt_s: float = 0.2e-9,
        switch_at_s: float = 5e-9,
        engine: str = "auto",
        max_workers: Optional[int] = None,
        min_tasks_for_pool: Optional[int] = None,
        on_error: str = "raise",
        retries: int = 0,
        progress=None,
        on_report=None,
) -> List[ModeSwitchCell]:
    """Switching times of every ordered mode transition.

    The paper's Fig. 9 exercises Normal <-> EM and Normal <-> BTI
    transitions; by default all six ordered pairs of the three modes
    are solved.  With ``engine="auto"`` (and no pooled-runner knobs
    set) the whole matrix runs as one batched transient with per-cell
    gate waveforms; setting a pool knob -- or ``engine="pooled"`` --
    fans one transient per cell over the process pool instead.
    Fault-tolerance knobs forward to :func:`repro.solvers.run_sweep`;
    non-raising policies omit failed cells from the returned matrix.
    """
    if mode_pairs is None:
        mode_pairs = list(permutations(AssistMode, 2))
    if not mode_pairs:
        raise ValueError("mode_pairs must not be empty")
    cfg = config or AssistCircuitConfig()
    chosen = _resolve_engine(engine, max_workers, min_tasks_for_pool,
                             on_error, retries, progress, on_report)
    if chosen == "batched":
        return _mode_switch_matrix_batched(cfg, list(mode_pairs),
                                           stop_s, dt_s, switch_at_s)
    worker = partial(_evaluate_mode_switch, cfg, stop_s, dt_s,
                     switch_at_s)
    cells = run_sweep(worker, list(mode_pairs),
                      max_workers=max_workers,
                      min_tasks_for_pool=min_tasks_for_pool,
                      on_error=on_error, retries=retries,
                      progress=progress, on_report=on_report)
    return [cell for cell in cells
            if isinstance(cell, ModeSwitchCell)]


# -- ring-oscillator fleet -------------------------------------------------


#: Below this many total transient steps (``n_rings`` times the steps
#: of one member's simulation window) the fleet runs serially by
#: default: the compiled engine clears a 5-stage, 480-step transient
#: in under 100 ms, so a small fleet finishes before the pool has even
#: started (BENCH_circuit.json measured the 12-ring fleet at 0.94x
#: pooled).  ~20 default-window members is where pooling starts to
#: win back its startup cost.
_MIN_POOL_TRANSIENT_STEPS = 9_600


@dataclass(frozen=True)
class FleetMember:
    """One simulated oscillator of a process-varied fleet.

    Attributes:
        index: position in the fleet (also the seed key).
        delta_vth_v: the member's effective BTI shift after process
            variation (clamped non-negative).
        frequency_hz: measured oscillation frequency of the aged ring.
    """

    index: int
    delta_vth_v: float
    frequency_hz: float


def _evaluate_fleet_member(netlist: RingOscillatorNetlist,
                           delta_vth_v: float, sigma_vth_v: float,
                           index: int,
                           seed_sequence: np.random.SeedSequence
                           ) -> FleetMember:
    """Sweep worker: age, simulate and measure one fleet member."""
    rng = np.random.default_rng(seed_sequence)
    shift = delta_vth_v + sigma_vth_v * float(rng.standard_normal())
    shift = max(shift, 0.0)
    aged = netlist.aged(shift)
    frequency = aged.measured_frequency_hz()
    return FleetMember(index=index, delta_vth_v=shift,
                       frequency_hz=frequency)


def _ring_oscillator_fleet_batched(
        n_rings: int, delta_vth_v: float, sigma_vth_v: float,
        base: RingOscillatorNetlist, seed: int) -> List[FleetMember]:
    """Advance the whole fleet through one batched transient.

    Each aged ring shares the base topology; vth shifts enter per row
    through the stamped device parameters, and each row carries its
    own (stop, dt) window from :meth:`simulation_window` (the step
    count is shift-independent, so rows stay in lockstep).  Member
    draws reuse ``task_seed_sequence(seed, k)``, matching the pooled
    runner bit for bit.
    """
    netlists = []
    shifts = []
    for index in range(n_rings):
        rng = np.random.default_rng(task_seed_sequence(seed, index))
        shift = delta_vth_v + sigma_vth_v * float(rng.standard_normal())
        shift = max(shift, 0.0)
        shifts.append(shift)
        netlists.append(base.aged(shift))
    circuits = [net.build() for net in netlists]
    windows = [net.simulation_window() for net in netlists]
    results = transient_batch(
        circuits,
        stop_s=[stop for stop, _ in windows],
        dt_s=[dt for _, dt in windows],
        from_dc=False)
    return [FleetMember(index=index, delta_vth_v=shifts[index],
                        frequency_hz=netlists[index]
                        .measured_frequency_hz(results[index]))
            for index in range(n_rings)]


def ring_oscillator_fleet(
        n_rings: int,
        delta_vth_v: float = 0.0,
        sigma_vth_v: float = 0.0,
        netlist: Optional[RingOscillatorNetlist] = None, *,
        seed: int = 0,
        engine: str = "auto",
        max_workers: Optional[int] = None,
        min_tasks_for_pool: Optional[int] = None,
        on_error: str = "raise",
        retries: int = 0,
        progress=None,
        on_report=None,
) -> List[FleetMember]:
    """Simulate a fleet of process-varied transistor-level rings.

    Each member ages the base ``netlist`` by ``delta_vth_v`` plus a
    member-specific Gaussian draw of width ``sigma_vth_v`` (clamped at
    zero -- :meth:`RingOscillatorNetlist.aged` models wearout, not
    rejuvenation), runs a full transient, and measures the frequency
    from the waveform.  Member ``k``'s draw comes from
    ``task_seed_sequence(seed, k)``, so the fleet is reproducible at
    any worker count -- and at any retry count: a retried member
    re-derives the same sequence, so its draw is unchanged.

    With ``engine="auto"`` (and no pooled-runner knobs set) the whole
    fleet advances through one batched transient; the draws match the
    pooled runner exactly.  Setting any pool knob -- or
    ``engine="pooled"`` -- fans one transient per ring over the
    process pool instead.  Fault-tolerance knobs forward to
    :func:`repro.solvers.run_sweep`; non-raising policies omit failed
    members (check :class:`~repro.solvers.SweepReport.failures` via
    ``on_report``).

    When ``min_tasks_for_pool`` is ``None``, a work-aware gate keeps
    small pooled fleets serial: the pool only starts once the fleet's
    total transient steps reach :data:`_MIN_POOL_TRANSIENT_STEPS`
    (serial and pooled results are identical either way).
    """
    if n_rings < 1:
        raise ValueError("n_rings must be at least 1")
    if sigma_vth_v < 0.0:
        raise ValueError("sigma_vth_v must be non-negative")
    base = netlist or RingOscillatorNetlist()
    chosen = _resolve_engine(engine, max_workers, min_tasks_for_pool,
                             on_error, retries, progress, on_report)
    if chosen == "batched":
        return _ring_oscillator_fleet_batched(
            n_rings, delta_vth_v, sigma_vth_v, base, seed)
    if min_tasks_for_pool is None:
        stop_s, dt_s = base.simulation_window()
        if n_rings * int(round(stop_s / dt_s)) \
                < _MIN_POOL_TRANSIENT_STEPS:
            min_tasks_for_pool = n_rings + 1
    worker = partial(_evaluate_fleet_member, base, delta_vth_v,
                     sigma_vth_v)
    members = run_sweep(worker, list(range(n_rings)), seed=seed,
                        max_workers=max_workers,
                        min_tasks_for_pool=min_tasks_for_pool,
                        on_error=on_error, retries=retries,
                        progress=progress, on_report=on_report)
    return [member for member in members
            if isinstance(member, FleetMember)]
