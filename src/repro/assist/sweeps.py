"""Pooled assist-circuit studies (Fig. 9 / Fig. 10 at sweep scale).

The assist observables are embarrassingly parallel: every Fig. 10
load-size point, every Fig. 9 mode-switch cell and every member of a
ring-oscillator fleet is an independent netlist build plus DC /
transient solve (tens of milliseconds each on the compiled engine).
This module fans those studies over
:func:`repro.solvers.run_sweep` -- the same deterministic process-pool
runner the EM Monte Carlo and tornado studies use -- so they inherit
its guarantees:

* results come back in task order, byte-identical to a serial run;
* per-cell randomness (fleet process variation) is seeded from
  ``(seed, cell index)`` via
  :func:`repro.solvers.task_seed_sequence`, so the draw of cell *k*
  never depends on worker count or chunking;
* sweeps below the pool threshold run serially in-process, with the
  threshold overridable through ``min_tasks_for_pool``;
* the runner's fault-tolerance and telemetry knobs (``on_error``,
  ``retries``, ``progress``, ``on_report``) pass straight through, so
  a long fleet simulation survives a dying worker and reports which
  members failed.

Every task function is a module-level callable bound with
``functools.partial`` over frozen dataclasses, which keeps the work
picklable for the pool.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import partial
from itertools import permutations
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.assist.circuitry import AssistCircuit, AssistCircuitConfig
from repro.assist.modes import AssistMode
from repro.assist.sizing import (
    LoadSizingPoint,
    _evaluate_load_point,
    _normalize_load_points,
)
from repro.circuit.oscillator import RingOscillatorNetlist
from repro.solvers import run_sweep


# -- Fig. 10: load-size trade-off ------------------------------------------


def sweep_load_size_pooled(
        n_loads_values: Sequence[int] = (1, 2, 3, 4, 5),
        base_config: Optional[AssistCircuitConfig] = None, *,
        max_workers: Optional[int] = None,
        min_tasks_for_pool: Optional[int] = None,
        on_error: str = "raise",
        retries: int = 0,
        progress=None,
        on_report=None,
) -> List[LoadSizingPoint]:
    """The Fig. 10 sweep with every load point solved in parallel.

    Point-for-point identical to
    :func:`repro.assist.sizing.sweep_load_size` (same evaluator, same
    normalization to the first entry); only the scheduling differs.
    ``on_error`` / ``retries`` / ``progress`` / ``on_report`` forward
    to :func:`repro.solvers.run_sweep`; under ``"skip"`` /
    ``"collect"`` failed points are dropped *before* normalization,
    so the reference point becomes the first surviving entry (the
    failure records arrive on the ``on_report`` report).
    """
    if not n_loads_values:
        raise ValueError("n_loads_values must not be empty")
    base = base_config or AssistCircuitConfig()
    raw = run_sweep(partial(_evaluate_load_point, base),
                    list(n_loads_values), max_workers=max_workers,
                    min_tasks_for_pool=min_tasks_for_pool,
                    on_error=on_error, retries=retries,
                    progress=progress, on_report=on_report)
    raw = [point for point in raw if isinstance(point, dict)]
    if not raw:
        raise ValueError("every load point failed; nothing to "
                         "normalize (see the on_report failures)")
    return _normalize_load_points(raw)


# -- Fig. 9: mode-switch matrix --------------------------------------------


@dataclass(frozen=True)
class ModeSwitchCell:
    """One ordered mode transition of the Fig. 9 matrix.

    Attributes:
        from_mode / to_mode: the transition endpoints.
        switching_time_s: settle time of both load rails after the
            switch instant (``inf`` if a rail never settles).
        settled_load_vdd_v / settled_load_vss_v: the target-mode DC
            rail voltages the transient settles towards.
    """

    from_mode: AssistMode
    to_mode: AssistMode
    switching_time_s: float
    settled_load_vdd_v: float
    settled_load_vss_v: float


def _evaluate_mode_switch(config: AssistCircuitConfig, stop_s: float,
                          dt_s: float, switch_at_s: float,
                          pair: Tuple[AssistMode, AssistMode]
                          ) -> ModeSwitchCell:
    """Sweep worker: one cell of the mode-switch matrix."""
    from_mode, to_mode = pair
    circuit = AssistCircuit(config)
    target = circuit.solve_mode(to_mode)
    switching = circuit.switching_time_s(from_mode, to_mode,
                                         stop_s=stop_s, dt_s=dt_s,
                                         switch_at_s=switch_at_s)
    return ModeSwitchCell(
        from_mode=from_mode,
        to_mode=to_mode,
        switching_time_s=switching,
        settled_load_vdd_v=target.load_vdd_v,
        settled_load_vss_v=target.load_vss_v,
    )


def mode_switch_matrix(
        config: Optional[AssistCircuitConfig] = None,
        mode_pairs: Optional[Sequence[Tuple[AssistMode,
                                            AssistMode]]] = None, *,
        stop_s: float = 100e-9,
        dt_s: float = 0.2e-9,
        switch_at_s: float = 5e-9,
        max_workers: Optional[int] = None,
        min_tasks_for_pool: Optional[int] = None,
        on_error: str = "raise",
        retries: int = 0,
        progress=None,
        on_report=None,
) -> List[ModeSwitchCell]:
    """Switching times of every ordered mode transition.

    The paper's Fig. 9 exercises Normal <-> EM and Normal <-> BTI
    transitions; by default all six ordered pairs of the three modes
    are solved, one transient per cell, fanned over the process pool.
    Fault-tolerance knobs forward to :func:`repro.solvers.run_sweep`;
    non-raising policies omit failed cells from the returned matrix.
    """
    if mode_pairs is None:
        mode_pairs = list(permutations(AssistMode, 2))
    if not mode_pairs:
        raise ValueError("mode_pairs must not be empty")
    worker = partial(_evaluate_mode_switch,
                     config or AssistCircuitConfig(), stop_s, dt_s,
                     switch_at_s)
    cells = run_sweep(worker, list(mode_pairs),
                      max_workers=max_workers,
                      min_tasks_for_pool=min_tasks_for_pool,
                      on_error=on_error, retries=retries,
                      progress=progress, on_report=on_report)
    return [cell for cell in cells
            if isinstance(cell, ModeSwitchCell)]


# -- ring-oscillator fleet -------------------------------------------------


#: Below this many total transient steps (``n_rings`` times the steps
#: of one member's simulation window) the fleet runs serially by
#: default: the compiled engine clears a 5-stage, 480-step transient
#: in under 100 ms, so a small fleet finishes before the pool has even
#: started (BENCH_circuit.json measured the 12-ring fleet at 0.94x
#: pooled).  ~20 default-window members is where pooling starts to
#: win back its startup cost.
_MIN_POOL_TRANSIENT_STEPS = 9_600


@dataclass(frozen=True)
class FleetMember:
    """One simulated oscillator of a process-varied fleet.

    Attributes:
        index: position in the fleet (also the seed key).
        delta_vth_v: the member's effective BTI shift after process
            variation (clamped non-negative).
        frequency_hz: measured oscillation frequency of the aged ring.
    """

    index: int
    delta_vth_v: float
    frequency_hz: float


def _evaluate_fleet_member(netlist: RingOscillatorNetlist,
                           delta_vth_v: float, sigma_vth_v: float,
                           index: int,
                           seed_sequence: np.random.SeedSequence
                           ) -> FleetMember:
    """Sweep worker: age, simulate and measure one fleet member."""
    rng = np.random.default_rng(seed_sequence)
    shift = delta_vth_v + sigma_vth_v * float(rng.standard_normal())
    shift = max(shift, 0.0)
    aged = netlist.aged(shift)
    frequency = aged.measured_frequency_hz()
    return FleetMember(index=index, delta_vth_v=shift,
                       frequency_hz=frequency)


def ring_oscillator_fleet(
        n_rings: int,
        delta_vth_v: float = 0.0,
        sigma_vth_v: float = 0.0,
        netlist: Optional[RingOscillatorNetlist] = None, *,
        seed: int = 0,
        max_workers: Optional[int] = None,
        min_tasks_for_pool: Optional[int] = None,
        on_error: str = "raise",
        retries: int = 0,
        progress=None,
        on_report=None,
) -> List[FleetMember]:
    """Simulate a fleet of process-varied transistor-level rings.

    Each member ages the base ``netlist`` by ``delta_vth_v`` plus a
    member-specific Gaussian draw of width ``sigma_vth_v`` (clamped at
    zero -- :meth:`RingOscillatorNetlist.aged` models wearout, not
    rejuvenation), runs a full transient, and measures the frequency
    from the waveform.  Member ``k``'s draw comes from
    ``task_seed_sequence(seed, k)``, so the fleet is reproducible at
    any worker count -- and at any retry count: a retried member
    re-derives the same sequence, so its draw is unchanged.
    Fault-tolerance knobs forward to :func:`repro.solvers.run_sweep`;
    non-raising policies omit failed members (check
    :class:`~repro.solvers.SweepReport.failures` via ``on_report``).

    When ``min_tasks_for_pool`` is ``None``, a work-aware gate keeps
    small fleets serial: the pool only starts once the fleet's total
    transient steps reach :data:`_MIN_POOL_TRANSIENT_STEPS` (serial
    and pooled results are identical either way).
    """
    if n_rings < 1:
        raise ValueError("n_rings must be at least 1")
    if sigma_vth_v < 0.0:
        raise ValueError("sigma_vth_v must be non-negative")
    base = netlist or RingOscillatorNetlist()
    if min_tasks_for_pool is None:
        stop_s, dt_s = base.simulation_window()
        if n_rings * int(round(stop_s / dt_s)) \
                < _MIN_POOL_TRANSIENT_STEPS:
            min_tasks_for_pool = n_rings + 1
    worker = partial(_evaluate_fleet_member, base, delta_vth_v,
                     sigma_vth_v)
    members = run_sweep(worker, list(range(n_rings)), seed=seed,
                        max_workers=max_workers,
                        min_tasks_for_pool=min_tasks_for_pool,
                        on_error=on_error, retries=retries,
                        progress=progress, on_report=on_report)
    return [member for member in members
            if isinstance(member, FleetMember)]
