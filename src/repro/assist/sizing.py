"""Load-size vs performance / switching-time exploration (Fig. 10).

The paper sweeps the number of load units behind one assist circuit
and reports two normalized metrics:

* **load delay** rises roughly linearly with load size, because the
  extra current through the fixed-size header/footer devices deepens
  the droop at the load rails (performance follows the alpha-power
  delay law of the reduced swing);
* **mode switching time** falls with load size, but at a slower rate,
  because the larger load conduction helps slew the rail nodes during
  a mode change even though the rail capacitance grows too.

The sweep concludes, as the paper does, that each load has its own
optimal design point: compensating the delay requires upsizing the
header/footer devices, which costs area.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.assist.circuitry import AssistCircuit, AssistCircuitConfig
from repro.assist.modes import AssistMode

#: Alpha-power exponent used for the delay metric.
_ALPHA = 1.3

#: Device threshold used for the delay metric (28 nm presets).
_VTH_V = 0.30


def _alpha_power_delay(swing_v: float) -> float:
    """Relative logic delay at a supply swing (alpha-power law)."""
    overdrive = swing_v - _VTH_V
    if overdrive <= 0.0:
        return float("inf")
    return swing_v / overdrive ** _ALPHA


@dataclass(frozen=True)
class LoadSizingPoint:
    """One point of the Fig. 10 sweep.

    Attributes:
        n_loads: number of parallel load units.
        load_swing_v: voltage across the load bank in Normal mode.
        delay_normalized: load delay relative to the 1-load point.
        switching_time_s: Normal -> BTI mode switching time.
        switching_time_normalized: relative to the 1-load point.
    """

    n_loads: int
    load_swing_v: float
    delay_normalized: float
    switching_time_s: float
    switching_time_normalized: float


def _evaluate_load_point(base_config: AssistCircuitConfig,
                         n_loads: int) -> dict:
    """Raw (un-normalized) observables of one Fig. 10 sweep point.

    Module-level (not a closure) so the pooled runner in
    :mod:`repro.assist.sweeps` can pickle it into worker processes;
    each point is an independent DC solve plus a switching transient.
    """
    circuit = AssistCircuit(replace(base_config, n_loads=n_loads))
    normal = circuit.solve_mode(AssistMode.NORMAL)
    switching = circuit.switching_time_s(AssistMode.NORMAL,
                                         AssistMode.BTI_RECOVERY)
    return {
        "n_loads": n_loads,
        "swing": normal.load_swing_v,
        "delay": _alpha_power_delay(normal.load_swing_v),
        "switching": switching,
    }


def _normalize_load_points(raw: Sequence[dict]) -> List[LoadSizingPoint]:
    """Normalize raw sweep points to the first entry (Fig. 10 axes)."""
    delay_ref = raw[0]["delay"]
    switching_ref = raw[0]["switching"]
    return [LoadSizingPoint(
        n_loads=point["n_loads"],
        load_swing_v=point["swing"],
        delay_normalized=point["delay"] / delay_ref,
        switching_time_s=point["switching"],
        switching_time_normalized=point["switching"] / switching_ref,
    ) for point in raw]


def sweep_load_size(n_loads_values: Sequence[int] = (1, 2, 3, 4, 5),
                    base_config: Optional[AssistCircuitConfig] = None,
                    ) -> List[LoadSizingPoint]:
    """Reproduce the Fig. 10 sweep.

    Args:
        n_loads_values: load sizes to evaluate (the paper uses 1..5).
        base_config: circuit configuration template; only ``n_loads``
            is varied.

    Returns:
        One :class:`LoadSizingPoint` per requested size, normalized to
        the first entry.
    """
    if not n_loads_values:
        raise ValueError("n_loads_values must not be empty")
    base = base_config or AssistCircuitConfig()
    raw = [_evaluate_load_point(base, n_loads)
           for n_loads in n_loads_values]
    return _normalize_load_points(raw)
