"""Netlist-level implementation of the assist circuitry (Fig. 8).

Topology (device roles are documented in :mod:`repro.assist.modes`)::

            vdd ----+-------------------+------------- vdd
                    |                   |                |
                   P1                  P2               P5
                    |                   |                |
             A o----+--[ VDD grid ]--+--o B             |
                    |                |                   |
                   P3               P4                   |
                    |                |                   |
                    +------ lvdd ----+          lvss ----+
                            |                     |
                          [load]                [load]
                            |                     |
                    +------ lvss ----+           ...
                    |                |
                   N3               N4
                    |                |
             C o----+--[ VSS grid ]--+--o D
                    |                |
                   N1               N2
                    |                |
            gnd ----+----------------+--------- lvdd --N5-- gnd

The local VDD and VSS grids are the EM-sensitive structures; the load
(a bank of ring oscillators in the paper's simulation) is modelled as
a resistive current draw plus decoupling capacitance, which is what
determines the published observables: grid current magnitude/direction,
load rail voltages, droop, and mode-switching time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.assist.modes import (
    AssistMode,
    DEVICE_NAMES,
    gate_voltages,
)
from repro.circuit.mosfet import MosfetParams, NMOS_28NM, PMOS_28NM
from repro.circuit.netlist import Circuit
from repro.circuit.dc import DcSolution, dc_operating_point
from repro.circuit.transient import TransientResult, transient
from repro.errors import NetlistError


def mode_switch_waveforms(from_mode: AssistMode, to_mode: AssistMode,
                          supply_v: float, switch_at_s: float
                          ) -> Dict[str, Callable]:
    """Gate-drive step waveforms for a mode change at ``switch_at_s``.

    One waveform per assist device, keyed by its gate-source name.
    Each is array-aware (``np.where`` over a whole time grid) so the
    transient engine evaluates it in a single vectorized call; for a
    scalar ``t`` the selection reduces to the same two-level step.
    """
    before = gate_voltages(from_mode, supply_v)
    after = gate_voltages(to_mode, supply_v)
    waveforms = {}
    for device in DEVICE_NAMES:
        def waveform(t, lo=before[device], hi=after[device]):
            return np.where(np.asarray(t) >= switch_at_s, hi, lo)
        waveforms[f"vg_{device}"] = waveform
    return waveforms


@dataclass(frozen=True)
class AssistCircuitConfig:
    """Electrical configuration of one assist-circuit instance.

    Attributes:
        supply_v: nominal supply (1.0 V, 28 nm FD-SOI in the paper).
        grid_resistance_ohm: resistance of each local VDD/VSS grid
            ("the VDD/VSS grid was treated as a resistor for which we
            picked a reasonable value based on the published
            literature").
        load_resistance_ohm: equivalent resistance of ONE load unit (a
            parallel set of ring oscillators draws roughly constant
            current, so a resistor at the operating point is adequate
            for the DC observables).
        rail_capacitance_f: fixed parasitic capacitance of each load
            rail node (local grid wiring plus assist-circuit
            diffusion); dominates the rail capacitance, which is why
            adding load units -- more conduction, little extra
            capacitance -- *shortens* the mode-switching time, as
            Fig. 10 reports.
        load_capacitance_f: additional rail capacitance contributed by
            each load unit.
        n_loads: number of identical load units attached in parallel
            (the Fig. 10 sweep variable).
        header_params / footer_params: headers (P1, P2) and taps
            (P3, P4) share ``header_params``; footers (N1, N2) and
            taps (N3, N4) share ``footer_params``.
        bti_pullup_params / bti_pulldown_params: the BTI cross-connect
            devices P5 / N5; sized so the load rails land near the
            paper's 0.816 V / 0.223 V with ~0.2-0.3 V droop.
    """

    supply_v: float = 1.0
    grid_resistance_ohm: float = 20.0
    load_resistance_ohm: float = 1.6e3
    rail_capacitance_f: float = 15e-12
    load_capacitance_f: float = 1e-12
    n_loads: int = 1
    header_params: MosfetParams = field(
        default_factory=lambda: PMOS_28NM.scaled(10.0))
    footer_params: MosfetParams = field(
        default_factory=lambda: NMOS_28NM.scaled(10.0))
    bti_pullup_params: MosfetParams = field(
        default_factory=lambda: PMOS_28NM.scaled(1.1))
    bti_pulldown_params: MosfetParams = field(
        default_factory=lambda: NMOS_28NM.scaled(0.95))

    def __post_init__(self) -> None:
        if self.supply_v <= 0.0:
            raise NetlistError("supply_v must be positive")
        if self.grid_resistance_ohm <= 0.0 \
                or self.load_resistance_ohm <= 0.0:
            raise NetlistError("resistances must be positive")
        if self.rail_capacitance_f <= 0.0 or self.load_capacitance_f <= 0.0:
            raise NetlistError("rail capacitances must be positive")
        if self.n_loads < 1:
            raise NetlistError("n_loads must be at least 1")


@dataclass(frozen=True)
class ModeOperatingPoint:
    """DC observables of one operating mode (the Fig. 9 quantities).

    Attributes:
        mode: the analysed mode.
        load_vdd_v / load_vss_v: load rail voltages.
        vdd_grid_current_a: current through the VDD grid, positive in
            the normal direction (end A to end B).
        vss_grid_current_a: current through the VSS grid, positive in
            the normal direction (end C to end D).
        load_current_a: current through the load bank (lvdd -> lvss).
        supply_current_a: current drawn from the supply.
    """

    mode: AssistMode
    load_vdd_v: float
    load_vss_v: float
    vdd_grid_current_a: float
    vss_grid_current_a: float
    load_current_a: float
    supply_current_a: float

    @property
    def load_swing_v(self) -> float:
        """Voltage across the load bank."""
        return self.load_vdd_v - self.load_vss_v


class AssistCircuit:
    """A built assist-circuit netlist with mode control."""

    def __init__(self, config: Optional[AssistCircuitConfig] = None):
        self.config = config or AssistCircuitConfig()
        self.circuit = self._build()
        self._mode: Optional[AssistMode] = None

    def _build(self) -> Circuit:
        cfg = self.config
        circuit = Circuit("assist-circuitry")
        circuit.add_voltage_source("vsupply", "vdd", "gnd", cfg.supply_v)
        # Gate-drive sources, one per assist device.
        for device in DEVICE_NAMES:
            circuit.add_voltage_source(f"vg_{device}", f"g_{device}",
                                       "gnd", 0.0)
        # Local grids (the EM-sensitive wires).
        circuit.add_resistor("r_vdd_grid", "ga", "gb",
                             cfg.grid_resistance_ohm)
        circuit.add_resistor("r_vss_grid", "gc", "gd",
                             cfg.grid_resistance_ohm)
        # Headers and VDD-side taps.
        circuit.add_mosfet("P1", "ga", "g_P1", "vdd", cfg.header_params)
        circuit.add_mosfet("P2", "gb", "g_P2", "vdd", cfg.header_params)
        circuit.add_mosfet("P3", "lvdd", "g_P3", "ga", cfg.header_params)
        circuit.add_mosfet("P4", "lvdd", "g_P4", "gb", cfg.header_params)
        # Footers and VSS-side taps.
        circuit.add_mosfet("N1", "gc", "g_N1", "gnd", cfg.footer_params)
        circuit.add_mosfet("N2", "gd", "g_N2", "gnd", cfg.footer_params)
        circuit.add_mosfet("N3", "gc", "g_N3", "lvss", cfg.footer_params)
        circuit.add_mosfet("N4", "gd", "g_N4", "lvss", cfg.footer_params)
        # BTI cross-connect devices.
        circuit.add_mosfet("P5", "lvss", "g_P5", "vdd",
                           cfg.bti_pullup_params)
        circuit.add_mosfet("N5", "lvdd", "g_N5", "gnd",
                           cfg.bti_pulldown_params)
        # Load bank: n identical units in parallel.
        circuit.add_resistor("r_load", "lvdd", "lvss",
                             cfg.load_resistance_ohm / cfg.n_loads)
        rail_c = cfg.rail_capacitance_f + cfg.load_capacitance_f * cfg.n_loads
        circuit.add_capacitor("c_lvdd", "lvdd", "gnd", rail_c)
        circuit.add_capacitor("c_lvss", "lvss", "gnd", rail_c)
        return circuit

    # -- aging ----------------------------------------------------------

    def age_devices(self, delta_vth_v: float) -> None:
        """BTI-age every assist device by a threshold shift.

        The assist circuitry itself wears out (its ON devices are
        under constant bias); this applies a uniform |Vth| increase so
        the mode behaviours can be re-verified on an aged instance.
        """
        if delta_vth_v < 0.0:
            raise NetlistError("delta_vth_v must be non-negative")
        for mosfet in self.circuit.mosfets:
            mosfet.params = mosfet.params.with_vth_shift(delta_vth_v)

    # -- mode control -------------------------------------------------------

    def set_mode(self, mode: AssistMode) -> None:
        """Drive all gate sources to the truth-table values of a mode."""
        for device, volts in gate_voltages(mode,
                                           self.config.supply_v).items():
            self.circuit.find_voltage_source(f"vg_{device}").volts = volts
        self._mode = mode

    @property
    def mode(self) -> Optional[AssistMode]:
        """The last mode applied with :meth:`set_mode`."""
        return self._mode

    # -- analyses -----------------------------------------------------------

    def solve_mode(self, mode: AssistMode) -> ModeOperatingPoint:
        """DC operating point of a mode (the Fig. 9 observables)."""
        self.set_mode(mode)
        solution = self._solve_dc()
        return self._operating_point(mode, solution)

    def _solve_dc(self) -> DcSolution:
        return dc_operating_point(self.circuit)

    def _operating_point(self, mode: AssistMode,
                         solution: DcSolution) -> ModeOperatingPoint:
        return ModeOperatingPoint(
            mode=mode,
            load_vdd_v=solution.voltage("lvdd"),
            load_vss_v=solution.voltage("lvss"),
            vdd_grid_current_a=solution.resistor_current("r_vdd_grid"),
            vss_grid_current_a=solution.resistor_current("r_vss_grid"),
            load_current_a=solution.resistor_current("r_load"),
            supply_current_a=-solution.source_current("vsupply"),
        )

    def mode_switch_transient(self, from_mode: AssistMode,
                              to_mode: AssistMode,
                              stop_s: float = 100e-9,
                              dt_s: float = 0.2e-9,
                              switch_at_s: float = 5e-9
                              ) -> TransientResult:
        """Transient of a mode change at ``switch_at_s``.

        The circuit starts in the DC state of ``from_mode``; at the
        switch instant every gate drive steps to the ``to_mode`` value.
        """
        waveforms = mode_switch_waveforms(from_mode, to_mode,
                                          self.config.supply_v,
                                          switch_at_s)
        self.set_mode(from_mode)
        return transient(self.circuit, stop_s=stop_s, dt_s=dt_s,
                         waveforms=waveforms)

    def switching_time_s(self, from_mode: AssistMode,
                         to_mode: AssistMode,
                         tolerance_v: float = 0.02,
                         stop_s: float = 100e-9,
                         dt_s: float = 0.2e-9,
                         switch_at_s: float = 5e-9) -> float:
        """Retention/switching time between modes (Fig. 10 metric).

        Time from the switch instant until both load rails settle to
        their new DC values within ``tolerance_v``.
        """
        target = self.solve_mode(to_mode)
        result = self.mode_switch_transient(from_mode, to_mode,
                                            stop_s=stop_s, dt_s=dt_s,
                                            switch_at_s=switch_at_s)
        settle_vdd = result.settle_time("lvdd", target.load_vdd_v,
                                        tolerance_v)
        settle_vss = result.settle_time("lvss", target.load_vss_v,
                                        tolerance_v)
        settled = max(settle_vdd, settle_vss)
        return settled - switch_at_s if settled != float("inf") \
            else float("inf")
