"""The paper's assist circuitry for activating BTI and EM recovery.

Implements the Fig. 8 scheme as a real netlist on top of
:mod:`repro.circuit` and reproduces its published behaviours:

* three operating modes (:class:`~repro.assist.modes.AssistMode`) with
  the device ON/OFF truth table of Fig. 8(b),
* *EM Active Recovery*: the current through the local VDD/VSS grids is
  reversed at the same magnitude while the load keeps operating
  (Fig. 9a),
* *BTI Active Recovery*: the idle load's VDD and VSS nodes are swapped
  -- load-VDD is pulled near VSS and load-VSS near VDD, with the
  ~0.2 V pass-device droop the paper reports (Fig. 9b),
* the load-size vs performance / switching-time trade-off of Fig. 10
  (:mod:`repro.assist.sizing`), with pooled sweep-scale variants of
  the Fig. 9 / Fig. 10 studies in :mod:`repro.assist.sweeps`.
"""

from repro.assist.modes import AssistMode, DeviceState, TRUTH_TABLE
from repro.assist.circuitry import (
    AssistCircuit,
    AssistCircuitConfig,
    ModeOperatingPoint,
    mode_switch_waveforms,
)
from repro.assist.sizing import LoadSizingPoint, sweep_load_size
from repro.assist.sweeps import (
    FleetMember,
    ModeSwitchCell,
    mode_switch_matrix,
    ring_oscillator_fleet,
    sweep_load_size_pooled,
)
from repro.assist.area import (
    AssistAreaModel,
    SharingDesignPoint,
    compensated_header_scale,
    optimal_sharing,
)

__all__ = [
    "AssistAreaModel",
    "SharingDesignPoint",
    "compensated_header_scale",
    "optimal_sharing",
    "AssistMode",
    "DeviceState",
    "TRUTH_TABLE",
    "AssistCircuit",
    "AssistCircuitConfig",
    "ModeOperatingPoint",
    "mode_switch_waveforms",
    "LoadSizingPoint",
    "sweep_load_size",
    "sweep_load_size_pooled",
    "ModeSwitchCell",
    "mode_switch_matrix",
    "FleetMember",
    "ring_oscillator_fleet",
]
