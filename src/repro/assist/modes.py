"""Operating modes and device truth table of the assist circuitry.

The assist circuit routes the load's supply through the EM-sensitive
local VDD/VSS grids in either direction, and can cross-connect the
idle load's rails for BTI recovery.  Device naming (see
:mod:`repro.assist.circuitry` for the topology):

========  =======================================================
device    role
========  =======================================================
P1        PMOS header, supply -> grid end A (normal feed)
P2        PMOS header, supply -> grid end B (reversed feed)
P3        PMOS tap, grid end A -> load VDD (reversed tap)
P4        PMOS tap, grid end B -> load VDD (normal tap)
N1        NMOS footer, grid end C -> ground (reversed return)
N2        NMOS footer, grid end D -> ground (normal return)
N3        NMOS tap, load VSS -> grid end C (normal tap)
N4        NMOS tap, load VSS -> grid end D (reversed tap)
P5        PMOS cross-connect, supply -> load VSS (BTI mode)
N5        NMOS cross-connect, load VDD -> ground (BTI mode)
========  =======================================================

The paper's Fig. 8 realizes the same three behaviours with eight
devices by sharing the grid taps; this implementation keeps the BTI
cross-connect devices explicit (ten devices) so each mode is a pure
row of the truth table -- the observable behaviour (Fig. 9) is
identical.  The truth table below is the executable counterpart of the
paper's Fig. 8(b).
"""

from __future__ import annotations

import enum
from typing import Dict, Mapping


class AssistMode(enum.Enum):
    """The three operating modes of the assist circuitry (Fig. 8b)."""

    NORMAL = "normal"
    EM_RECOVERY = "em-active-recovery"
    BTI_RECOVERY = "bti-active-recovery"


class DeviceState(enum.Enum):
    """Conduction state of one assist device."""

    ON = "on"
    OFF = "off"


#: Device states per mode -- the executable Fig. 8(b).
TRUTH_TABLE: Mapping[AssistMode, Dict[str, DeviceState]] = {
    AssistMode.NORMAL: {
        "P1": DeviceState.ON, "P2": DeviceState.OFF,
        "P3": DeviceState.OFF, "P4": DeviceState.ON,
        "N1": DeviceState.OFF, "N2": DeviceState.ON,
        "N3": DeviceState.ON, "N4": DeviceState.OFF,
        "P5": DeviceState.OFF, "N5": DeviceState.OFF,
    },
    AssistMode.EM_RECOVERY: {
        "P1": DeviceState.OFF, "P2": DeviceState.ON,
        "P3": DeviceState.ON, "P4": DeviceState.OFF,
        "N1": DeviceState.ON, "N2": DeviceState.OFF,
        "N3": DeviceState.OFF, "N4": DeviceState.ON,
        "P5": DeviceState.OFF, "N5": DeviceState.OFF,
    },
    AssistMode.BTI_RECOVERY: {
        "P1": DeviceState.OFF, "P2": DeviceState.OFF,
        "P3": DeviceState.OFF, "P4": DeviceState.OFF,
        "N1": DeviceState.OFF, "N2": DeviceState.OFF,
        "N3": DeviceState.OFF, "N4": DeviceState.OFF,
        "P5": DeviceState.ON, "N5": DeviceState.ON,
    },
}

#: All assist device names in a stable order.
DEVICE_NAMES = ("P1", "P2", "P3", "P4", "N1", "N2", "N3", "N4", "P5", "N5")


def gate_voltage(device: str, state: DeviceState, supply_v: float) -> float:
    """Gate drive that puts ``device`` into ``state``.

    PMOS devices conduct with the gate at ground, NMOS devices with
    the gate at the supply.
    """
    is_pmos = device.startswith("P")
    if state is DeviceState.ON:
        return 0.0 if is_pmos else supply_v
    return supply_v if is_pmos else 0.0


def gate_voltages(mode: AssistMode, supply_v: float) -> Dict[str, float]:
    """Gate drives of every assist device for a mode."""
    return {device: gate_voltage(device, state, supply_v)
            for device, state in TRUTH_TABLE[mode].items()}
