"""deep-healing: active and accelerated BTI/EM wearout recovery.

A production-quality reproduction of *"Deep Healing: Ease the BTI and
EM Wearout Crisis by Activating Recovery"* (Xinfei Guo and Mircea R.
Stan, 2017).  The library provides:

* device-physics substrates for BTI (:mod:`repro.bti`) and EM
  (:mod:`repro.em`) wearout including *active* (reverse-stress) and
  *accelerated* (high-temperature) recovery,
* a thermal substrate (:mod:`repro.thermal`), a circuit simulator
  (:mod:`repro.circuit`), a power-delivery-network model
  (:mod:`repro.pdn`) and wearout sensors (:mod:`repro.sensors`),
* the paper's assist circuitry with its three operating modes
  (:mod:`repro.assist`),
* the core contribution -- recovery scheduling, push-pull balancing,
  lifetime and guardband analysis, and a runtime controller
  (:mod:`repro.core`), and
* a system-level multicore lifetime simulator with dark-silicon-aware
  healing (:mod:`repro.system`).

Quickstart::

    from repro import units
    from repro.bti import default_calibration, ACTIVE_ACCELERATED_RECOVERY

    model = default_calibration().build_model()
    model.apply_stress(units.hours(24))
    worn = model.delta_vth_v
    model.apply_recovery(units.hours(6), ACTIVE_ACCELERATED_RECOVERY)
    print(f"recovered {(worn - model.delta_vth_v) / worn:.1%}")  # ~72.4%
"""

__version__ = "1.0.0"

from repro import units
from repro.errors import (
    CalibrationError,
    CheckpointError,
    ConvergenceError,
    NetlistError,
    ReproError,
    ScheduleError,
    SensorError,
    SimulationError,
)

__all__ = [
    "units",
    "ReproError",
    "CalibrationError",
    "CheckpointError",
    "ConvergenceError",
    "NetlistError",
    "ScheduleError",
    "SensorError",
    "SimulationError",
    "__version__",
]
