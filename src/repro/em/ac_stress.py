"""Frequency and duty-cycle dependence of EM under AC / pulsed current.

The paper's related-work section leans on two experimental facts (its
refs [21] Tao et al. 1996 and [22] Abella & Vera 2010):

* under **bidirectional (AC)** stress the EM lifetime *increases with
  frequency*, because each reverse half-cycle heals part of the damage
  done by the forward half-cycle, and the healing becomes more complete
  as the half-cycles get shorter;
* the healing can extend the lifetime by **orders of magnitude**
  depending on the metal.

The standard compact description is an *effective DC current density*::

    j_eff = j_plus * d_plus - gamma(f) * j_minus * d_minus

where ``d_plus``/``d_minus`` are the time fractions of forward and
reverse current and ``gamma(f)`` is the frequency-dependent recovery
efficiency, rising from ``gamma_0`` at DC towards 1 at high frequency.
The lifetime enhancement relative to DC follows from Black's equation:
``(j_dc / j_eff) ** n``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def effective_current_density(forward_density_a_m2: float,
                              forward_duty: float,
                              reverse_density_a_m2: float = 0.0,
                              reverse_duty: float = 0.0,
                              recovery_efficiency: float = 1.0) -> float:
    """EM-effective DC-equivalent current density of a periodic waveform.

    Args:
        forward_density_a_m2: magnitude of the forward (stress) phase.
        forward_duty: fraction of the period spent in the forward phase.
        reverse_density_a_m2: magnitude of the reverse phase.
        reverse_duty: fraction of the period spent in the reverse phase.
        recovery_efficiency: ``gamma`` -- how completely reverse flow
            undoes forward damage (1 = perfect healing).

    Returns:
        The DC current density with the same nucleation-phase damage
        rate; clipped at zero (a net-healing waveform cannot do
        negative damage to a fresh wire).
    """
    if not 0.0 <= forward_duty <= 1.0 or not 0.0 <= reverse_duty <= 1.0:
        raise ValueError("duty factors must be within [0, 1]")
    if forward_duty + reverse_duty > 1.0 + 1e-12:
        raise ValueError("duty factors must sum to at most 1")
    if not 0.0 <= recovery_efficiency <= 1.0:
        raise ValueError("recovery_efficiency must be within [0, 1]")
    effective = (forward_density_a_m2 * forward_duty
                 - recovery_efficiency * reverse_density_a_m2 * reverse_duty)
    return max(effective, 0.0)


@dataclass(frozen=True)
class AcStressModel:
    """Frequency-dependent EM healing under bidirectional stress.

    Attributes:
        dc_recovery_efficiency: healing efficiency ``gamma_0`` in the
            quasi-DC limit, where long forward half-cycles let damage
            consolidate before the reverse half-cycle arrives.
        corner_frequency_hz: frequency at which the efficiency is
            halfway between ``gamma_0`` and 1.
        current_exponent: Black's exponent used for the lifetime ratio.
    """

    dc_recovery_efficiency: float = 0.7
    corner_frequency_hz: float = 1.0
    current_exponent: float = 2.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.dc_recovery_efficiency < 1.0:
            raise ValueError("dc_recovery_efficiency must be in [0, 1)")
        if self.corner_frequency_hz <= 0.0:
            raise ValueError("corner_frequency_hz must be positive")
        if self.current_exponent <= 0.0:
            raise ValueError("current_exponent must be positive")

    def recovery_efficiency(self, frequency_hz: float) -> float:
        """Healing efficiency ``gamma(f)``; monotone rising to 1."""
        if frequency_hz < 0.0:
            raise ValueError("frequency must be non-negative")
        blend = frequency_hz / (frequency_hz + self.corner_frequency_hz)
        return (self.dc_recovery_efficiency
                + (1.0 - self.dc_recovery_efficiency) * blend)

    def effective_density(self, density_a_m2: float,
                          frequency_hz: float) -> float:
        """Effective DC density of a symmetric 50 % bipolar square wave."""
        gamma = self.recovery_efficiency(frequency_hz)
        return effective_current_density(
            density_a_m2, 0.5, density_a_m2, 0.5, gamma)

    def lifetime_enhancement(self, density_a_m2: float,
                             frequency_hz: float) -> float:
        """TTF(AC at f) / TTF(DC at the same amplitude).

        Diverges as ``gamma -> 1`` (complete per-cycle healing), which
        reproduces the "orders of magnitude" improvements reported for
        high-frequency bipolar stress.
        """
        if density_a_m2 <= 0.0:
            raise ValueError("density must be positive")
        effective = self.effective_density(density_a_m2, frequency_hz)
        if effective <= 0.0:
            return float("inf")
        return (density_a_m2 / effective) ** self.current_exponent
