"""Finite-difference solver for Korhonen's EM stress-evolution equation.

Korhonen's model describes the hydrostatic stress ``sigma(x, t)`` in a
confined metal line under an electron-wind driving force::

    d(sigma)/dt = d/dx [ kappa * ( d(sigma)/dx + G ) ]

with ``kappa = D_a * B * Omega / kT`` the stress diffusivity and
``G = e |Z*| rho j / Omega`` the wind force (a stress gradient, Pa/m).
With ``kappa`` and ``G`` uniform along the line the interior equation is
pure diffusion and the drive enters through the boundary conditions:

* a **blocked** end (via/barrier) carries no atomic flux:
  ``d(sigma)/dx = -G`` there;
* a **void** end is a free surface that pins the stress: ``sigma = 0``.

The solver uses backward Euler in time (unconditionally stable -- EM
time scales span minutes to years) and a second-order central scheme in
space with ghost nodes for the flux boundaries.  The tridiagonal
backward-Euler matrix depends only on ``r = kappa dt / dx^2`` and the
boundary kinds, so it is LU-factored once per operating condition
(:class:`repro.solvers.TridiagonalOperator`) and every step is a
single O(n) back-substitution; a change of ``dt``, ``kappa`` or
boundary condition re-keys the factorization cache and transparently
refactors.

Sign convention: positive current density drives *tension* (positive
stress) at ``x = 0`` -- the cathode of the paper's Fig. 1(b) -- and
compression at ``x = L``; voids nucleate where tension exceeds the
material's critical stress.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import SimulationError
from repro.solvers import FactorizationCache, TridiagonalOperator


class BoundaryKind(enum.Enum):
    """Physical condition at a line end."""

    #: No atomic flux through the end (intact via/barrier).
    BLOCKED = "blocked"
    #: A nucleated void keeps the end stress-free.
    VOID = "void"


@dataclass(frozen=True)
class KorhonenConfig:
    """Discretization parameters of the stress PDE.

    Attributes:
        n_nodes: spatial nodes along the line.  The cathode boundary
            layer is ~sqrt(kappa * t) thick; the default resolves the
            paper's accelerated-test layer (~15 um on a 2.7 mm line).
        max_dt_s: upper bound on an individual implicit time step.
    """

    n_nodes: int = 1201
    max_dt_s: float = 30.0

    def __post_init__(self) -> None:
        if self.n_nodes < 3:
            raise ValueError("n_nodes must be at least 3")
        if self.max_dt_s <= 0.0:
            raise ValueError("max_dt_s must be positive")


def _build_step_operator(n: int, r: float, start_boundary: BoundaryKind,
                         end_boundary: BoundaryKind) -> TridiagonalOperator:
    """Factorized backward-Euler matrix ``(I - dt * kappa * Laplacian)``.

    Shared by the serial and batched solvers so both step through
    byte-identical factorizations for the same ``(n, r, boundaries)``.
    """
    lower = np.full(n - 1, -r)
    diag = np.full(n, 1.0 + 2.0 * r)
    upper = np.full(n - 1, -r)
    if start_boundary is BoundaryKind.BLOCKED:
        # Ghost node from d(sigma)/dx = -G at x=0:
        # sigma[-1] = sigma[1] + 2 dx G
        upper[0] = -2.0 * r
    else:
        diag[0] = 1.0
        upper[0] = 0.0
    if end_boundary is BoundaryKind.BLOCKED:
        # Ghost node from d(sigma)/dx = -G at x=L:
        # sigma[n] = sigma[n-2] - 2 dx G
        lower[n - 2] = -2.0 * r
    else:
        diag[n - 1] = 1.0
        lower[n - 2] = 0.0
    return TridiagonalOperator(lower, diag, upper)


class KorhonenSolver:
    """Stress-evolution state for one line.

    The solver is agnostic of material and temperature: callers pass
    the current ``kappa`` and ``G`` to :meth:`advance`, which lets one
    instance model time-varying temperature and current (including the
    paper's reverse-current recovery, which simply flips the sign of
    ``G``).
    """

    def __init__(self, length_m: float,
                 config: Optional[KorhonenConfig] = None):
        if length_m <= 0.0:
            raise ValueError("length_m must be positive")
        self.length_m = length_m
        self.config = config or KorhonenConfig()
        self.n = self.config.n_nodes
        self.dx = length_m / (self.n - 1)
        self.x = np.linspace(0.0, length_m, self.n)
        self.stress = np.zeros(self.n)
        self.time_s = 0.0
        self._operators = FactorizationCache(maxsize=8,
                                             name="em.korhonen.lu")

    # -- observables ----------------------------------------------------

    @property
    def stress_at_start(self) -> float:
        """Stress at ``x = 0`` (tension side for positive current)."""
        return float(self.stress[0])

    @property
    def stress_at_end(self) -> float:
        """Stress at ``x = L``."""
        return float(self.stress[-1])

    def mean_stress(self) -> float:
        """Line-average stress; conserved while both ends are blocked."""
        trapezoid = getattr(np, "trapezoid", None) or np.trapz
        return float(trapezoid(self.stress, self.x) / self.length_m)

    def profile(self) -> Tuple[np.ndarray, np.ndarray]:
        """Copies of ``(x, sigma(x))`` for plotting/inspection."""
        return self.x.copy(), self.stress.copy()

    def copy(self) -> "KorhonenSolver":
        """Deep copy of the solver state."""
        clone = KorhonenSolver(self.length_m, self.config)
        clone.stress = self.stress.copy()
        clone.time_s = self.time_s
        return clone

    def reset(self) -> None:
        """Return to the stress-free fresh state."""
        self.stress[:] = 0.0
        self.time_s = 0.0

    # -- stepping ---------------------------------------------------------

    def advance(self, duration_s: float, kappa_m2_s: float,
                wind_gradient_pa_m: float,
                start_boundary: BoundaryKind = BoundaryKind.BLOCKED,
                end_boundary: BoundaryKind = BoundaryKind.BLOCKED) -> None:
        """Advance the stress field for ``duration_s`` seconds.

        Args:
            duration_s: physical time to advance.
            kappa_m2_s: stress diffusivity at the present temperature.
            wind_gradient_pa_m: signed wind force ``G``; positive
                builds tension at ``x = 0``.
            start_boundary: condition at ``x = 0``.
            end_boundary: condition at ``x = L``.
        """
        if duration_s < 0.0:
            raise SimulationError("duration must be non-negative")
        if kappa_m2_s <= 0.0:
            raise SimulationError("stress diffusivity must be positive")
        if duration_s == 0.0:
            return
        # Group runs of equal dt (everything but a final partial step)
        # so the operator lookup and boundary dispatch happen once per
        # run and the hot loop is a bare back-substitution.  The
        # ``remaining`` bookkeeping mirrors the plain one-step-per-
        # iteration loop exactly, so the dt sequence is unchanged.
        remaining = duration_s
        max_dt = self.config.max_dt_s
        while remaining > 1e-12:
            dt = min(remaining, max_dt)
            remaining -= dt
            n_steps = 1
            while remaining > 1e-12 and min(remaining, max_dt) == dt:
                remaining -= dt
                n_steps += 1
            self._run_steps(n_steps, dt, kappa_m2_s,
                            wind_gradient_pa_m, start_boundary,
                            end_boundary)
            self.time_s += n_steps * dt

    def _operator(self, r: float, start_boundary: BoundaryKind,
                  end_boundary: BoundaryKind) -> TridiagonalOperator:
        """The factorized (I - dt * kappa * Laplacian) system.

        Keyed by ``(n, r, boundaries)``, so any change of ``dt``,
        ``kappa`` or boundary kind rebuilds while the common
        fixed-condition stepping loop reuses one factorization.
        """
        key = (self.n, r, start_boundary, end_boundary)
        return self._operators.get_or_build(
            key, lambda: _build_step_operator(self.n, r, start_boundary,
                                              end_boundary))

    def _implicit_step(self, dt: float, kappa: float, gradient: float,
                       start_boundary: BoundaryKind,
                       end_boundary: BoundaryKind) -> None:
        self._run_steps(1, dt, kappa, gradient, start_boundary,
                        end_boundary)

    def _run_steps(self, n_steps: int, dt: float, kappa: float,
                   gradient: float, start_boundary: BoundaryKind,
                   end_boundary: BoundaryKind) -> None:
        r = kappa * dt / (self.dx * self.dx)
        solve = self._operator(r, start_boundary, end_boundary).solve
        start_blocked = start_boundary is BoundaryKind.BLOCKED
        end_blocked = end_boundary is BoundaryKind.BLOCKED
        injection = 2.0 * r * self.dx * gradient
        last = self.n - 1
        # The previous stress vector doubles as the RHS buffer: only
        # the two boundary entries differ, and the back-substitution
        # overwrites it with the new stress (allocation-free steps).
        stress = self.stress
        for _ in range(n_steps):
            if start_blocked:
                stress[0] += injection
            else:
                stress[0] = 0.0
            if end_blocked:
                stress[last] -= injection
            else:
                stress[last] = 0.0
            stress = solve(stress, overwrite_rhs=True)
        self.stress = stress


def _as_wire_rows(value, n_wires: int, name: str) -> np.ndarray:
    """Broadcast a scalar or per-wire sequence to ``(n_wires,)``."""
    arr = np.asarray(value, dtype=float)
    if arr.ndim == 0:
        return np.full(n_wires, float(arr))
    if arr.shape != (n_wires,):
        raise ValueError(
            f"{name} must be a scalar or have shape ({n_wires},), "
            f"got {arr.shape}")
    return np.array(arr, dtype=float)


def _as_boundary_rows(value, n_wires: int, name: str) -> list:
    if isinstance(value, BoundaryKind):
        return [value] * n_wires
    kinds = list(value)
    if len(kinds) != n_wires:
        raise ValueError(
            f"{name} must be one BoundaryKind or a sequence of "
            f"{n_wires}, got {len(kinds)} entries")
    for kind in kinds:
        if not isinstance(kind, BoundaryKind):
            raise ValueError(f"{name} entries must be BoundaryKind")
    return kinds


def batch_bytes_per_wire(config: Optional[KorhonenConfig] = None) -> int:
    """Resident bytes one wire adds to a :class:`KorhonenBatch`.

    Counts the wire's column in the ``(n_nodes, n_wires)`` stress slab
    plus the per-step right-hand-side scratch column of the same size
    (the batched advance copies the slab before injecting boundary
    terms).  Callers sizing a wire-chunked sweep divide their byte
    budget by this to pick a chunk width.
    """
    n_nodes = (config or KorhonenConfig()).n_nodes
    return 2 * n_nodes * np.dtype(np.float64).itemsize


class KorhonenBatch:
    """Stacked stress-evolution state for a population of lines.

    Holds the stress fields of ``n_wires`` lines sharing one length
    and discretization as a single node-major ``(n_nodes, n_wires)``
    slab, and advances all of them through one multi-right-hand-side
    back-substitution per implicit time step
    (:meth:`repro.solvers.TridiagonalOperator.solve_many`) instead of
    one solve per wire.  Wires may carry per-wire diffusivity, wind
    gradient and boundary conditions: they are grouped by the
    backward-Euler key ``(r, boundaries)`` and each group steps
    through one shared factorization.  The batched sweeps perform the
    exact per-column arithmetic of the scalar solver, so every wire's
    stress trajectory is bit-identical to running it alone through
    :class:`KorhonenSolver` with the same step schedule.
    """

    def __init__(self, length_m: float, n_wires: int,
                 config: Optional[KorhonenConfig] = None):
        if length_m <= 0.0:
            raise ValueError("length_m must be positive")
        if n_wires < 1:
            raise ValueError("n_wires must be at least 1")
        self.length_m = length_m
        self.n_wires = n_wires
        self.config = config or KorhonenConfig()
        self.n = self.config.n_nodes
        self.dx = length_m / (self.n - 1)
        self.x = np.linspace(0.0, length_m, self.n)
        # Node-major so each node's values across the population are
        # contiguous: boundary injections and the vectorized LU sweeps
        # all touch whole rows.
        self._block = np.zeros((self.n, n_wires))
        self.time_s = 0.0
        self._operators = FactorizationCache(
            maxsize=8, name="em.korhonen.lu.batched")

    # -- observables ----------------------------------------------------

    @property
    def stress(self) -> np.ndarray:
        """``(n_wires, n_nodes)`` view; row ``i`` is wire ``i``'s field."""
        return self._block.T

    @property
    def stress_at_start(self) -> np.ndarray:
        """Per-wire stress at ``x = 0`` (tension side), shape ``(n_wires,)``."""
        return self._block[0].copy()

    @property
    def stress_at_end(self) -> np.ndarray:
        """Per-wire stress at ``x = L``, shape ``(n_wires,)``."""
        return self._block[-1].copy()

    def mean_stress(self) -> np.ndarray:
        """Per-wire line-average stress, shape ``(n_wires,)``."""
        trapezoid = getattr(np, "trapezoid", None) or np.trapz
        return trapezoid(self._block, self.x, axis=0) / self.length_m

    def copy(self) -> "KorhonenBatch":
        """Deep copy of the batch state."""
        clone = KorhonenBatch(self.length_m, self.n_wires, self.config)
        clone._block[...] = self._block
        clone.time_s = self.time_s
        return clone

    def reset(self) -> None:
        """Return every wire to the stress-free fresh state."""
        self._block[:] = 0.0
        self.time_s = 0.0

    def retain(self, wires: Union[Sequence[int], np.ndarray]) -> None:
        """Drop all but the given wires (order preserved).

        Wires are independent columns, so compaction never perturbs
        the survivors' trajectories.  Samplers use this to stop
        advancing wires whose event of interest (e.g. void
        nucleation) has already been recorded, mirroring the early
        exit of a per-wire serial loop.
        """
        idx = np.asarray(wires, dtype=np.intp)
        if idx.ndim != 1 or idx.size < 1:
            raise ValueError("retain needs at least one wire index")
        if np.any(idx < 0) or np.any(idx >= self.n_wires):
            raise ValueError("wire index out of range")
        self._block = np.ascontiguousarray(self._block[:, idx])
        self.n_wires = int(idx.size)

    # -- stepping ---------------------------------------------------------

    def advance(self, duration_s: float,
                kappa_m2_s: Union[float, Sequence[float], np.ndarray],
                wind_gradient_pa_m: Union[float, Sequence[float],
                                          np.ndarray],
                start_boundary: Union[BoundaryKind,
                                      Sequence[BoundaryKind]]
                = BoundaryKind.BLOCKED,
                end_boundary: Union[BoundaryKind,
                                    Sequence[BoundaryKind]]
                = BoundaryKind.BLOCKED) -> None:
        """Advance every wire's stress field by ``duration_s`` seconds.

        ``kappa_m2_s``, ``wind_gradient_pa_m`` and the boundary kinds
        accept either one shared value or one value per wire.  The dt
        subdivision matches :meth:`KorhonenSolver.advance` exactly
        (same ``remaining`` bookkeeping), so mixed batched/serial runs
        stay step-for-step comparable.
        """
        if duration_s < 0.0:
            raise SimulationError("duration must be non-negative")
        kappa = _as_wire_rows(kappa_m2_s, self.n_wires, "kappa_m2_s")
        if np.any(kappa <= 0.0):
            raise SimulationError("stress diffusivity must be positive")
        gradient = _as_wire_rows(wind_gradient_pa_m, self.n_wires,
                                 "wind_gradient_pa_m")
        starts = _as_boundary_rows(start_boundary, self.n_wires,
                                   "start_boundary")
        ends = _as_boundary_rows(end_boundary, self.n_wires,
                                 "end_boundary")
        if duration_s == 0.0:
            return
        remaining = duration_s
        max_dt = self.config.max_dt_s
        while remaining > 1e-12:
            dt = min(remaining, max_dt)
            remaining -= dt
            n_steps = 1
            while remaining > 1e-12 and min(remaining, max_dt) == dt:
                remaining -= dt
                n_steps += 1
            self._run_steps(n_steps, dt, kappa, gradient, starts, ends)
            self.time_s += n_steps * dt

    def _run_steps(self, n_steps: int, dt: float, kappa: np.ndarray,
                   gradient: np.ndarray, starts: list,
                   ends: list) -> None:
        r_rows = kappa * dt / (self.dx * self.dx)
        # Group wires sharing a backward-Euler matrix.  Populations
        # swept over current density share kappa, so the common case
        # is a single group covering the whole batch.
        groups: dict = {}
        for wire in range(self.n_wires):
            key = (float(r_rows[wire]), starts[wire], ends[wire])
            groups.setdefault(key, []).append(wire)
        for (r, start_kind, end_kind), members in groups.items():
            operator = self._operators.get_or_build(
                (self.n, r, start_kind, end_kind),
                lambda r=r, s=start_kind, e=end_kind:
                    _build_step_operator(self.n, r, s, e))
            full = len(members) == self.n_wires
            rows = None if full else np.asarray(members, dtype=np.intp)
            self._step_group(operator, n_steps, r, gradient, rows,
                             start_kind, end_kind)

    def _step_group(self, operator: TridiagonalOperator, n_steps: int,
                    r: float, gradient: np.ndarray,
                    rows: Optional[np.ndarray],
                    start_kind: BoundaryKind,
                    end_kind: BoundaryKind) -> None:
        start_blocked = start_kind is BoundaryKind.BLOCKED
        end_blocked = end_kind is BoundaryKind.BLOCKED
        if rows is None:
            injections = 2.0 * r * self.dx * gradient
            block = self._block
        else:
            injections = 2.0 * r * self.dx * gradient[rows]
            block = np.ascontiguousarray(self._block[:, rows])
        # ``block`` is node-major C-contiguous, so the vectorized LU
        # sweeps overwrite it in place: the hot loop allocates nothing
        # beyond the solver's (k,) scratch row.
        solve = operator.solve_many
        telemetry = self._operators
        n_group = block.shape[1]
        for _ in range(n_steps):
            if start_blocked:
                block[0] += injections
            else:
                block[0] = 0.0
            if end_blocked:
                block[-1] -= injections
            else:
                block[-1] = 0.0
            block = solve(block, overwrite_rhs=True)
            telemetry.record_batched_solve(n_group)
        if rows is not None:
            self._block[:, rows] = block
