"""Finite-difference solver for Korhonen's EM stress-evolution equation.

Korhonen's model describes the hydrostatic stress ``sigma(x, t)`` in a
confined metal line under an electron-wind driving force::

    d(sigma)/dt = d/dx [ kappa * ( d(sigma)/dx + G ) ]

with ``kappa = D_a * B * Omega / kT`` the stress diffusivity and
``G = e |Z*| rho j / Omega`` the wind force (a stress gradient, Pa/m).
With ``kappa`` and ``G`` uniform along the line the interior equation is
pure diffusion and the drive enters through the boundary conditions:

* a **blocked** end (via/barrier) carries no atomic flux:
  ``d(sigma)/dx = -G`` there;
* a **void** end is a free surface that pins the stress: ``sigma = 0``.

The solver uses backward Euler in time (unconditionally stable -- EM
time scales span minutes to years) and a second-order central scheme in
space with ghost nodes for the flux boundaries.  The tridiagonal
backward-Euler matrix depends only on ``r = kappa dt / dx^2`` and the
boundary kinds, so it is LU-factored once per operating condition
(:class:`repro.solvers.TridiagonalOperator`) and every step is a
single O(n) back-substitution; a change of ``dt``, ``kappa`` or
boundary condition re-keys the factorization cache and transparently
refactors.

Sign convention: positive current density drives *tension* (positive
stress) at ``x = 0`` -- the cathode of the paper's Fig. 1(b) -- and
compression at ``x = L``; voids nucleate where tension exceeds the
material's critical stress.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.solvers import FactorizationCache, TridiagonalOperator


class BoundaryKind(enum.Enum):
    """Physical condition at a line end."""

    #: No atomic flux through the end (intact via/barrier).
    BLOCKED = "blocked"
    #: A nucleated void keeps the end stress-free.
    VOID = "void"


@dataclass(frozen=True)
class KorhonenConfig:
    """Discretization parameters of the stress PDE.

    Attributes:
        n_nodes: spatial nodes along the line.  The cathode boundary
            layer is ~sqrt(kappa * t) thick; the default resolves the
            paper's accelerated-test layer (~15 um on a 2.7 mm line).
        max_dt_s: upper bound on an individual implicit time step.
    """

    n_nodes: int = 1201
    max_dt_s: float = 30.0

    def __post_init__(self) -> None:
        if self.n_nodes < 3:
            raise ValueError("n_nodes must be at least 3")
        if self.max_dt_s <= 0.0:
            raise ValueError("max_dt_s must be positive")


class KorhonenSolver:
    """Stress-evolution state for one line.

    The solver is agnostic of material and temperature: callers pass
    the current ``kappa`` and ``G`` to :meth:`advance`, which lets one
    instance model time-varying temperature and current (including the
    paper's reverse-current recovery, which simply flips the sign of
    ``G``).
    """

    def __init__(self, length_m: float,
                 config: Optional[KorhonenConfig] = None):
        if length_m <= 0.0:
            raise ValueError("length_m must be positive")
        self.length_m = length_m
        self.config = config or KorhonenConfig()
        self.n = self.config.n_nodes
        self.dx = length_m / (self.n - 1)
        self.x = np.linspace(0.0, length_m, self.n)
        self.stress = np.zeros(self.n)
        self.time_s = 0.0
        self._operators = FactorizationCache(maxsize=8,
                                             name="em.korhonen.lu")

    # -- observables ----------------------------------------------------

    @property
    def stress_at_start(self) -> float:
        """Stress at ``x = 0`` (tension side for positive current)."""
        return float(self.stress[0])

    @property
    def stress_at_end(self) -> float:
        """Stress at ``x = L``."""
        return float(self.stress[-1])

    def mean_stress(self) -> float:
        """Line-average stress; conserved while both ends are blocked."""
        trapezoid = getattr(np, "trapezoid", None) or np.trapz
        return float(trapezoid(self.stress, self.x) / self.length_m)

    def profile(self) -> Tuple[np.ndarray, np.ndarray]:
        """Copies of ``(x, sigma(x))`` for plotting/inspection."""
        return self.x.copy(), self.stress.copy()

    def copy(self) -> "KorhonenSolver":
        """Deep copy of the solver state."""
        clone = KorhonenSolver(self.length_m, self.config)
        clone.stress = self.stress.copy()
        clone.time_s = self.time_s
        return clone

    def reset(self) -> None:
        """Return to the stress-free fresh state."""
        self.stress[:] = 0.0
        self.time_s = 0.0

    # -- stepping ---------------------------------------------------------

    def advance(self, duration_s: float, kappa_m2_s: float,
                wind_gradient_pa_m: float,
                start_boundary: BoundaryKind = BoundaryKind.BLOCKED,
                end_boundary: BoundaryKind = BoundaryKind.BLOCKED) -> None:
        """Advance the stress field for ``duration_s`` seconds.

        Args:
            duration_s: physical time to advance.
            kappa_m2_s: stress diffusivity at the present temperature.
            wind_gradient_pa_m: signed wind force ``G``; positive
                builds tension at ``x = 0``.
            start_boundary: condition at ``x = 0``.
            end_boundary: condition at ``x = L``.
        """
        if duration_s < 0.0:
            raise SimulationError("duration must be non-negative")
        if kappa_m2_s <= 0.0:
            raise SimulationError("stress diffusivity must be positive")
        if duration_s == 0.0:
            return
        # Group runs of equal dt (everything but a final partial step)
        # so the operator lookup and boundary dispatch happen once per
        # run and the hot loop is a bare back-substitution.  The
        # ``remaining`` bookkeeping mirrors the plain one-step-per-
        # iteration loop exactly, so the dt sequence is unchanged.
        remaining = duration_s
        max_dt = self.config.max_dt_s
        while remaining > 1e-12:
            dt = min(remaining, max_dt)
            remaining -= dt
            n_steps = 1
            while remaining > 1e-12 and min(remaining, max_dt) == dt:
                remaining -= dt
                n_steps += 1
            self._run_steps(n_steps, dt, kappa_m2_s,
                            wind_gradient_pa_m, start_boundary,
                            end_boundary)
            self.time_s += n_steps * dt

    def _operator(self, r: float, start_boundary: BoundaryKind,
                  end_boundary: BoundaryKind) -> TridiagonalOperator:
        """The factorized (I - dt * kappa * Laplacian) system.

        Keyed by ``(n, r, boundaries)``, so any change of ``dt``,
        ``kappa`` or boundary kind rebuilds while the common
        fixed-condition stepping loop reuses one factorization.
        """
        key = (self.n, r, start_boundary, end_boundary)

        def build() -> TridiagonalOperator:
            n = self.n
            lower = np.full(n - 1, -r)
            diag = np.full(n, 1.0 + 2.0 * r)
            upper = np.full(n - 1, -r)
            if start_boundary is BoundaryKind.BLOCKED:
                # Ghost node from d(sigma)/dx = -G at x=0:
                # sigma[-1] = sigma[1] + 2 dx G
                upper[0] = -2.0 * r
            else:
                diag[0] = 1.0
                upper[0] = 0.0
            if end_boundary is BoundaryKind.BLOCKED:
                # Ghost node from d(sigma)/dx = -G at x=L:
                # sigma[n] = sigma[n-2] - 2 dx G
                lower[n - 2] = -2.0 * r
            else:
                diag[n - 1] = 1.0
                lower[n - 2] = 0.0
            return TridiagonalOperator(lower, diag, upper)

        return self._operators.get_or_build(key, build)

    def _implicit_step(self, dt: float, kappa: float, gradient: float,
                       start_boundary: BoundaryKind,
                       end_boundary: BoundaryKind) -> None:
        self._run_steps(1, dt, kappa, gradient, start_boundary,
                        end_boundary)

    def _run_steps(self, n_steps: int, dt: float, kappa: float,
                   gradient: float, start_boundary: BoundaryKind,
                   end_boundary: BoundaryKind) -> None:
        r = kappa * dt / (self.dx * self.dx)
        solve = self._operator(r, start_boundary, end_boundary).solve
        start_blocked = start_boundary is BoundaryKind.BLOCKED
        end_blocked = end_boundary is BoundaryKind.BLOCKED
        injection = 2.0 * r * self.dx * gradient
        last = self.n - 1
        # The previous stress vector doubles as the RHS buffer: only
        # the two boundary entries differ, and the back-substitution
        # overwrites it with the new stress (allocation-free steps).
        stress = self.stress
        for _ in range(n_steps):
            if start_blocked:
                stress[0] += injection
            else:
                stress[0] = 0.0
            if end_blocked:
                stress[last] -= injection
            else:
                stress[last] = 0.0
            stress = solve(stress, overwrite_rhs=True)
        self.stress = stress
