"""Electromigration (EM) wearout and recovery models.

This package is the interconnect substrate that replaces the paper's
0.18 um copper test-wire measurements (Section III-B/D of Guo & Stan
2017).  It provides:

* :class:`~repro.em.wire.Wire` / :class:`~repro.em.wire.Material` --
  geometry and material description, including the paper's Fig. 3 test
  wire as a calibrated preset.
* :class:`~repro.em.korhonen.KorhonenSolver` -- a 1-D finite-difference
  solver of Korhonen's stress-evolution equation with blocked or
  void-relaxed boundaries.
* :class:`~repro.em.line.EmLine` -- the stateful line model combining
  stress evolution, void nucleation, void growth/refill with a locked
  (permanent) pathway, and resistance read-out.
* :mod:`~repro.em.lumped` -- fast closed-form nucleation/growth models
  (semi-infinite superposition) for system-level simulation.
* :mod:`~repro.em.blacks` -- Black's-equation lifetime extrapolation.
* :mod:`~repro.em.ac_stress` -- frequency/duty-cycle dependence of EM
  under bidirectional current (paper refs [21], [22]).
"""

from repro.em.wire import Material, Wire, COPPER, PAPER_TEST_WIRE
from repro.em.korhonen import (
    batch_bytes_per_wire,
    BoundaryKind,
    KorhonenBatch,
    KorhonenConfig,
    KorhonenSolver,
)
from repro.em.line import (
    EmLine,
    EmLineConfig,
    EmStressCondition,
    PAPER_EM_STRESS,
    PAPER_EM_RECOVERY,
    VoidState,
)
from repro.em.lumped import LumpedEmModel, NucleationEstimate
from repro.em.blacks import BlacksModel
from repro.em.ac_stress import AcStressModel, effective_current_density
from repro.em.statistics import (
    WirePopulationSpec,
    healing_gain_at_quantile,
    population_from_blacks,
    sample_mixed_population_ttfs,
    sample_nucleation_ttfs_pde,
    sample_population_ttf_matrix,
    sample_population_ttfs,
    sample_population_ttfs_parallel,
)
from repro.em.blech import (
    BlechAssessment,
    assess,
    blech_product_a_per_m,
    critical_length_m,
    is_immortal,
    saturation_stress_pa,
)
from repro.em.chain import InterconnectChain, segment_stripe

__all__ = [
    "InterconnectChain",
    "segment_stripe",
    "BlechAssessment",
    "assess",
    "blech_product_a_per_m",
    "critical_length_m",
    "is_immortal",
    "saturation_stress_pa",
    "WirePopulationSpec",
    "healing_gain_at_quantile",
    "population_from_blacks",
    "sample_mixed_population_ttfs",
    "sample_nucleation_ttfs_pde",
    "sample_population_ttf_matrix",
    "sample_population_ttfs",
    "sample_population_ttfs_parallel",
    "Material",
    "Wire",
    "COPPER",
    "PAPER_TEST_WIRE",
    "BoundaryKind",
    "KorhonenBatch",
    "batch_bytes_per_wire",
    "KorhonenConfig",
    "KorhonenSolver",
    "EmLine",
    "EmLineConfig",
    "EmStressCondition",
    "PAPER_EM_STRESS",
    "PAPER_EM_RECOVERY",
    "VoidState",
    "LumpedEmModel",
    "NucleationEstimate",
    "BlacksModel",
    "AcStressModel",
    "effective_current_density",
]
