"""Fast closed-form EM models for scheduling search and system simulation.

While :class:`~repro.em.line.EmLine` integrates the full Korhonen PDE,
many callers (the push-pull balancer, the system-level lifetime
simulator, wide parameter sweeps) only need the stress at the line ends.
For times at which the diffusion length ``sqrt(kappa * t)`` is small
compared to the line length, the line is effectively semi-infinite and
the blocked-end stress under a *constant* wind force ``G`` has the
classical closed form::

    sigma(0, t) = 2 G sqrt(kappa t / pi)

Because Korhonen's equation is linear, the response to a
piecewise-constant current (the paper's periodic stress/recovery
schedules) is the superposition of such square-root kernels, one per
current step.  That makes nucleation-time prediction under arbitrary
schedules a vectorized numpy evaluation instead of a PDE integration --
about four orders of magnitude faster, and within a few percent of the
PDE for the paper's accelerated conditions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.em.line import EmStressCondition
from repro.em.wire import PAPER_TEST_WIRE, Wire
from repro.errors import SimulationError


@dataclass(frozen=True)
class NucleationEstimate:
    """Result of a nucleation-time prediction.

    Attributes:
        time_s: wall-clock time at which the critical stress is first
            reached (``inf`` if it never is within the horizon).
        stress_time_s: accumulated forward-stress time until then.
        cycles: completed stress/recovery cycles until nucleation
            (0 for constant stress).
    """

    time_s: float
    stress_time_s: float
    cycles: int


class LumpedEmModel:
    """Closed-form EM nucleation / growth / failure estimates for a wire."""

    def __init__(self, wire: Wire = PAPER_TEST_WIRE,
                 failure_fraction: float = 0.08):
        if failure_fraction <= 0.0:
            raise ValueError("failure_fraction must be positive")
        self.wire = wire
        self.failure_fraction = failure_fraction

    # -- constant-stress forms -------------------------------------------

    def cathode_stress(self, time_s: float,
                       condition: EmStressCondition) -> float:
        """Blocked-end tension after ``time_s`` of constant stress."""
        if time_s < 0.0:
            raise SimulationError("time must be non-negative")
        material = self.wire.material
        kappa = material.stress_diffusivity_at(condition.temperature_k)
        gradient = material.wind_stress_gradient(
            condition.current_density_a_m2, condition.temperature_k)
        return 2.0 * gradient * math.sqrt(kappa * time_s / math.pi)

    def nucleation_time(self, condition: EmStressCondition) -> float:
        """Time to reach the critical stress under constant stress.

        Inverts the square-root kernel:
        ``t_nuc = (pi / 4 kappa) * (sigma_c / G)^2``.
        """
        material = self.wire.material
        gradient = material.wind_stress_gradient(
            condition.current_density_a_m2, condition.temperature_k)
        if gradient <= 0.0:
            return float("inf")
        kappa = material.stress_diffusivity_at(condition.temperature_k)
        ratio = material.critical_stress_pa / (2.0 * gradient)
        return math.pi * ratio * ratio / kappa

    def resistance_growth_rate(self, condition: EmStressCondition) -> float:
        """Post-nucleation resistance slope dR/dt (ohm/s)."""
        drift = abs(self.wire.material.drift_velocity(
            condition.current_density_a_m2, condition.temperature_k))
        return self.wire.void_resistance_per_m * drift

    def time_to_failure(self, condition: EmStressCondition) -> float:
        """Nucleation time plus void growth to the failure threshold."""
        t_nuc = self.nucleation_time(condition)
        if math.isinf(t_nuc):
            return float("inf")
        rate = self.resistance_growth_rate(condition)
        if rate <= 0.0:
            return float("inf")
        fail_delta = (self.failure_fraction
                      * self.wire.resistance_at(condition.temperature_k))
        return t_nuc + fail_delta / rate

    # -- piecewise-constant schedules --------------------------------------

    def stress_under_schedule(self, eval_times_s: Sequence[float],
                              step_times_s: Sequence[float],
                              gradients_pa_m: Sequence[float],
                              kappa_m2_s: float) -> np.ndarray:
        """Blocked-end stress under a piecewise-constant wind force.

        Args:
            eval_times_s: times at which to evaluate the stress.
            step_times_s: start time of each constant-force segment
                (must be increasing, starting at 0).
            gradients_pa_m: the signed wind force of each segment.
            kappa_m2_s: stress diffusivity (constant temperature).

        Returns:
            Stress values at ``eval_times_s`` (semi-infinite line).
        """
        steps = np.asarray(step_times_s, dtype=float)
        grads = np.asarray(gradients_pa_m, dtype=float)
        if steps.shape != grads.shape:
            raise ValueError("step_times_s and gradients_pa_m must match")
        if steps.size == 0 or steps[0] != 0.0:
            raise ValueError("the first segment must start at t = 0")
        if np.any(np.diff(steps) <= 0.0):
            raise ValueError("step times must be strictly increasing")
        deltas = np.concatenate(([grads[0]], np.diff(grads)))
        times = np.asarray(eval_times_s, dtype=float)[:, None]
        lag = np.clip(times - steps[None, :], 0.0, None)
        kernel = 2.0 * np.sqrt(kappa_m2_s * lag / math.pi)
        return (kernel * deltas[None, :]).sum(axis=1)

    def nucleation_under_periodic_recovery(
            self, stress_interval_s: float, recovery_interval_s: float,
            condition: EmStressCondition,
            max_cycles: int = 100000,
            samples_per_interval: int = 8) -> NucleationEstimate:
        """Nucleation time when short reverse-current intervals are
        scheduled periodically during the nucleation phase (Fig. 7).

        The schedule alternates ``stress_interval_s`` of forward
        current with ``recovery_interval_s`` of reversed current of the
        same magnitude, starting with stress.  The stress at the
        blocked cathode is evaluated by square-root-kernel
        superposition at several points inside every stress interval
        (the within-interval peak is at the interval end).
        """
        if stress_interval_s <= 0.0 or recovery_interval_s < 0.0:
            raise ValueError("require stress interval > 0 and "
                             "recovery interval >= 0")
        material = self.wire.material
        kappa = material.stress_diffusivity_at(condition.temperature_k)
        gradient = material.wind_stress_gradient(
            condition.current_density_a_m2, condition.temperature_k)
        if gradient <= 0.0:
            return NucleationEstimate(float("inf"), 0.0, 0)
        critical = material.critical_stress_pa

        # Analytic short-circuits keep the superposition loop (which
        # costs O(cycles^2)) away from schedules that either never
        # nucleate or would take astronomically many cycles.
        cycle_len = stress_interval_s + recovery_interval_s
        first_peak = 2.0 * gradient * math.sqrt(
            kappa * stress_interval_s / math.pi)
        mean_gradient = gradient * (
            (stress_interval_s - recovery_interval_s) / cycle_len)
        if first_peak < critical and mean_gradient <= 0.0:
            # Zero or negative mean drift and no single interval can
            # reach the critical stress: the envelope is bounded below
            # sigma_c forever.
            return NucleationEstimate(float("inf"), 0.0, 0)
        if mean_gradient > 0.0:
            mean_t_nuc = math.pi * (critical
                                    / (2.0 * mean_gradient)) ** 2 \
                / kappa
            predicted_cycles = mean_t_nuc / cycle_len
            if predicted_cycles > max_cycles:
                # The mean-drift estimate already tells the answer to
                # within the (small) ripple; return it instead of
                # grinding through millions of superposition terms.
                return NucleationEstimate(
                    time_s=mean_t_nuc,
                    stress_time_s=mean_t_nuc * stress_interval_s
                    / cycle_len,
                    cycles=int(predicted_cycles))

        step_times: List[float] = []
        gradients: List[float] = []
        for cycle in range(max_cycles):
            start = cycle * cycle_len
            step_times.append(start)
            gradients.append(gradient)
            if recovery_interval_s > 0.0:
                step_times.append(start + stress_interval_s)
                gradients.append(-gradient)
            probes = start + np.linspace(
                stress_interval_s / samples_per_interval,
                stress_interval_s, samples_per_interval)
            stress = self.stress_under_schedule(
                probes, step_times, gradients, kappa)
            above = np.nonzero(stress >= critical)[0]
            if above.size:
                t_hit = float(probes[above[0]])
                stress_time = cycle * stress_interval_s \
                    + (t_hit - start)
                return NucleationEstimate(t_hit, stress_time, cycle)
        return NucleationEstimate(float("inf"),
                                  max_cycles * stress_interval_s,
                                  max_cycles)

    def nucleation_delay_factor(self, stress_interval_s: float,
                                recovery_interval_s: float,
                                condition: EmStressCondition) -> float:
        """How much later nucleation happens with periodic recovery.

        Returns ``t_nuc(schedule) / t_nuc(continuous)`` -- the paper
        measures "almost 3x" for its Fig. 7 schedule.
        """
        continuous = self.nucleation_time(condition)
        scheduled = self.nucleation_under_periodic_recovery(
            stress_interval_s, recovery_interval_s, condition).time_s
        return scheduled / continuous
