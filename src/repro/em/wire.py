"""Interconnect geometry and material description for the EM models.

The paper's EM experiments run on a dedicated on-chip test structure
(Fig. 3): a "long and narrow" copper wire in the top metal layer (M6) of
a 0.18 um dual-damascene process -- 2.673 mm long, 1.57 um wide, 0.8 um
thick, 35.76 ohm at room temperature.  :data:`PAPER_TEST_WIRE` encodes
exactly that structure; its temperature coefficient is calibrated so the
fresh resistance at the 230 degC stress temperature matches the ~72.8
ohm starting point of the paper's Fig. 5.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro import units


@dataclass(frozen=True)
class Material:
    """EM-relevant material parameters of an interconnect metal.

    Attributes:
        name: label used in reports.
        resistivity_ohm_m: electrical resistivity at the reference
            temperature (ohm*m).
        tcr_per_k: linear temperature coefficient of resistance (1/K).
        reference_temperature_k: temperature of ``resistivity_ohm_m``.
        diffusivity_prefactor_m2_s: ``D0`` of the atomic diffusivity
            ``D = D0 * exp(-Ea / kT)``.
        activation_energy_ev: ``Ea`` of the dominant diffusion path
            (grain boundary / interface for damascene Cu).
        effective_charge: absolute effective charge number ``|Z*|`` of
            the electron-wind force.
        atomic_volume_m3: atomic volume ``Omega``.
        effective_modulus_pa: effective bulk modulus ``B`` relating
            atomic concentration changes to hydrostatic stress.
        critical_stress_pa: tensile stress at which a void nucleates.
    """

    name: str
    resistivity_ohm_m: float
    tcr_per_k: float
    reference_temperature_k: float
    diffusivity_prefactor_m2_s: float
    activation_energy_ev: float
    effective_charge: float
    atomic_volume_m3: float
    effective_modulus_pa: float
    critical_stress_pa: float

    def __post_init__(self) -> None:
        positive = {
            "resistivity_ohm_m": self.resistivity_ohm_m,
            "reference_temperature_k": self.reference_temperature_k,
            "diffusivity_prefactor_m2_s": self.diffusivity_prefactor_m2_s,
            "activation_energy_ev": self.activation_energy_ev,
            "effective_charge": self.effective_charge,
            "atomic_volume_m3": self.atomic_volume_m3,
            "effective_modulus_pa": self.effective_modulus_pa,
            "critical_stress_pa": self.critical_stress_pa,
        }
        for field_name, value in positive.items():
            if value <= 0.0:
                raise ValueError(f"{field_name} must be positive")

    def resistivity_at(self, temperature_k: float) -> float:
        """Resistivity at ``temperature_k`` with the linear TCR law."""
        delta = temperature_k - self.reference_temperature_k
        return self.resistivity_ohm_m * (1.0 + self.tcr_per_k * delta)

    def diffusivity_at(self, temperature_k: float) -> float:
        """Atomic diffusivity ``D(T)`` in m^2/s."""
        if temperature_k <= 0.0:
            raise ValueError("temperature must be positive (kelvin)")
        return self.diffusivity_prefactor_m2_s * math.exp(
            -self.activation_energy_ev
            / (units.BOLTZMANN_EV * temperature_k))

    def stress_diffusivity_at(self, temperature_k: float) -> float:
        """Korhonen stress diffusivity ``kappa = D * B * Omega / kT``."""
        kt_joule = units.BOLTZMANN_J * temperature_k
        return (self.diffusivity_at(temperature_k)
                * self.effective_modulus_pa * self.atomic_volume_m3
                / kt_joule)

    def wind_stress_gradient(self, current_density_a_m2: float,
                             temperature_k: float) -> float:
        """Electron-wind driving force ``G = e |Z*| rho j / Omega``.

        Units are Pa/m; the sign follows the sign of the current
        density (positive drives tension build-up at x = 0).
        """
        return (units.ELEMENTARY_CHARGE * self.effective_charge
                * self.resistivity_at(temperature_k)
                * current_density_a_m2 / self.atomic_volume_m3)

    def drift_velocity(self, current_density_a_m2: float,
                       temperature_k: float) -> float:
        """Electron-wind atomic drift velocity ``v_d = D F / kT``.

        This is the rate at which a fully developed void lengthens
        under a constant current density (m/s, signed like ``j``).
        """
        kt_joule = units.BOLTZMANN_J * temperature_k
        force = (units.ELEMENTARY_CHARGE * self.effective_charge
                 * self.resistivity_at(temperature_k)
                 * current_density_a_m2)
        return self.diffusivity_at(temperature_k) * force / kt_joule

    # -- vectorized (fleet) variants --------------------------------------

    def stress_diffusivities_at(self,
                                temperatures_k: np.ndarray) -> np.ndarray:
        """``kappa(T)`` for a whole temperature vector in one shot.

        Batched counterpart of :meth:`stress_diffusivity_at` used by
        the fleet aging states, where a per-core Python loop over the
        Arrhenius evaluation dominates the epoch cost.
        """
        temperatures_k = np.asarray(temperatures_k, dtype=float)
        kt_joule = units.BOLTZMANN_J * temperatures_k
        diffusivity = self.diffusivity_prefactor_m2_s * np.exp(
            -self.activation_energy_ev
            / (units.BOLTZMANN_EV * temperatures_k))
        return (diffusivity * self.effective_modulus_pa
                * self.atomic_volume_m3 / kt_joule)

    def drift_velocities(self, current_densities_a_m2: np.ndarray,
                         temperatures_k: np.ndarray) -> np.ndarray:
        """``v_d(j, T)`` for whole per-unit vectors in one shot.

        Batched counterpart of :meth:`drift_velocity` (signed like
        ``j``, elementwise).
        """
        current_densities_a_m2 = np.asarray(current_densities_a_m2,
                                            dtype=float)
        temperatures_k = np.asarray(temperatures_k, dtype=float)
        kt_joule = units.BOLTZMANN_J * temperatures_k
        delta = temperatures_k - self.reference_temperature_k
        resistivity = self.resistivity_ohm_m * (
            1.0 + self.tcr_per_k * delta)
        diffusivity = self.diffusivity_prefactor_m2_s * np.exp(
            -self.activation_energy_ev
            / (units.BOLTZMANN_EV * temperatures_k))
        force = (units.ELEMENTARY_CHARGE * self.effective_charge
                 * resistivity * current_densities_a_m2)
        return diffusivity * force / kt_joule


#: Dual-damascene copper, calibrated to the paper's accelerated test:
#: ~113 min to void nucleation and ~1.8 ohm of void-growth resistance
#: gain over ~8 h at 230 degC and 7.96 MA/cm^2 (Fig. 5).
COPPER = Material(
    name="dual-damascene Cu",
    resistivity_ohm_m=1.72e-8,
    tcr_per_k=0.00493,
    reference_temperature_k=units.celsius_to_kelvin(20.0),
    diffusivity_prefactor_m2_s=7.8e-5,
    activation_energy_ev=1.10,
    effective_charge=1.0,
    atomic_volume_m3=1.18e-29,
    effective_modulus_pa=2.8e10,
    critical_stress_pa=6.5e8,
)


@dataclass(frozen=True)
class Wire:
    """A straight interconnect segment subject to EM.

    Attributes:
        material: the interconnect metal.
        length_m / width_m / thickness_m: geometry.
        fresh_resistance_ohm: measured fresh resistance at the
            material's reference temperature.  The paper's probe-pad
            structure makes this slightly different from the pure
            geometric value, so it is specified, not derived.
        void_resistance_per_m: effective resistance added per metre of
            void length.  This is the slit-void/liner-shunt effective
            value; the default is calibrated so the Fig. 5 growth phase
            gains ~1.8 ohm over ~1.24 um of void.
        name: label used in reports.
    """

    material: Material = COPPER
    length_m: float = 2.673e-3
    width_m: float = 1.57e-6
    thickness_m: float = 0.8e-6
    fresh_resistance_ohm: float = 35.76
    void_resistance_per_m: float = 1.45e6
    name: str = "wire"

    def __post_init__(self) -> None:
        for field_name, value in {
                "length_m": self.length_m, "width_m": self.width_m,
                "thickness_m": self.thickness_m,
                "fresh_resistance_ohm": self.fresh_resistance_ohm,
                "void_resistance_per_m": self.void_resistance_per_m,
        }.items():
            if value <= 0.0:
                raise ValueError(f"{field_name} must be positive")

    @property
    def cross_section_m2(self) -> float:
        """Current-carrying cross-section area."""
        return self.width_m * self.thickness_m

    def resistance_at(self, temperature_k: float) -> float:
        """Fresh (void-free) wire resistance at a temperature."""
        delta = temperature_k - self.material.reference_temperature_k
        return self.fresh_resistance_ohm * (
            1.0 + self.material.tcr_per_k * delta)

    def current_for_density(self, current_density_a_m2: float) -> float:
        """Terminal current (A) that produces a given density (A/m^2)."""
        return current_density_a_m2 * self.cross_section_m2

    def density_for_current(self, current_a: float) -> float:
        """Current density (A/m^2) produced by a terminal current (A)."""
        return current_a / self.cross_section_m2


#: The paper's Fig. 3 test structure: M6 copper, 0.18 um process,
#: 2.673 mm x 1.57 um x 0.8 um, 35.76 ohm at room temperature.
PAPER_TEST_WIRE = Wire(name="Fig.3 M6 test wire (0.18um, Cu)")
