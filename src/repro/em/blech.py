"""The Blech (short-length) immortality criterion.

The paper notes that EM is conventionally "addressed by design rules
(e.g. metal width requirement) during the physical design phase".  The
most fundamental such rule is Blech's: in a confined line the back
stress that the electron wind builds up saturates at
``sigma = G * L / 2``; if that saturation stress stays below the void
nucleation threshold, the wire is *immortal* -- no void can ever
nucleate, no matter how long the current flows::

    j * L  <  (jL)_crit  =  2 * sigma_c * Omega / (e |Z*| rho)

This module provides the criterion, consistent with the same Korhonen
physics used by the solvers in this package (the steady state of
:class:`repro.em.korhonen.KorhonenSolver` *is* the Blech back-stress
profile).  It lets the benchmarks compare the design-rule approach
(keep segments short/wide enough to be immortal) against the paper's
active-recovery approach on the same footing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.em.line import EmStressCondition
from repro.em.wire import Material, Wire
from repro.errors import SimulationError


def blech_product_a_per_m(material: Material,
                          temperature_k: float) -> float:
    """The critical current-density x length product (A/m).

    Temperature enters through the resistivity in the wind force; the
    critical stress is treated as temperature independent (standard
    practice over normal operating ranges).
    """
    if temperature_k <= 0.0:
        raise SimulationError("temperature must be positive (kelvin)")
    wind_per_j = (units.ELEMENTARY_CHARGE * material.effective_charge
                  * material.resistivity_at(temperature_k)
                  / material.atomic_volume_m3)
    return 2.0 * material.critical_stress_pa / wind_per_j


def critical_length_m(material: Material,
                      current_density_a_m2: float,
                      temperature_k: float) -> float:
    """Longest immortal segment at a given current density."""
    if current_density_a_m2 == 0.0:
        return float("inf")
    return blech_product_a_per_m(material, temperature_k) \
        / abs(current_density_a_m2)


def saturation_stress_pa(wire: Wire,
                         condition: EmStressCondition) -> float:
    """Blocked-end stress after infinite time: ``|G| * L / 2``."""
    gradient = wire.material.wind_stress_gradient(
        abs(condition.current_density_a_m2), condition.temperature_k)
    return gradient * wire.length_m / 2.0


def is_immortal(wire: Wire, condition: EmStressCondition) -> bool:
    """True when the wire can never nucleate a void (Blech criterion)."""
    return saturation_stress_pa(wire, condition) \
        < wire.material.critical_stress_pa


@dataclass(frozen=True)
class BlechAssessment:
    """Immortality audit of one wire at one operating point.

    Attributes:
        wire: the assessed wire.
        condition: the operating point.
        jl_product_a_per_m: the wire's actual ``j * L`` product.
        jl_critical_a_per_m: the critical product at this temperature.
        immortal: whether the wire satisfies the criterion.
        stress_margin: ``1 - sigma_sat / sigma_c`` (negative when
            mortal; how far past the rule the wire operates).
    """

    wire: Wire
    condition: EmStressCondition
    jl_product_a_per_m: float
    jl_critical_a_per_m: float
    immortal: bool
    stress_margin: float

    def describe(self) -> str:
        """One-line summary for reports."""
        verdict = "immortal" if self.immortal else "mortal"
        return (f"{self.wire.name}: jL = "
                f"{self.jl_product_a_per_m:.3g} A/m vs critical "
                f"{self.jl_critical_a_per_m:.3g} A/m -> {verdict} "
                f"(stress margin {self.stress_margin:+.1%})")


def assess(wire: Wire, condition: EmStressCondition) -> BlechAssessment:
    """Full Blech audit of a wire at an operating point."""
    critical = blech_product_a_per_m(wire.material,
                                     condition.temperature_k)
    product = abs(condition.current_density_a_m2) * wire.length_m
    saturation = saturation_stress_pa(wire, condition)
    sigma_c = wire.material.critical_stress_pa
    return BlechAssessment(
        wire=wire,
        condition=condition,
        jl_product_a_per_m=product,
        jl_critical_a_per_m=critical,
        immortal=product < critical,
        stress_margin=1.0 - saturation / sigma_c)
