"""Via-separated interconnect chains (realistic PDN stripes).

A physical power-grid stripe is not one continuous diffusion domain:
vias and barrier layers segment it into independent EM domains (each
via is a blocking boundary).  That segmentation is exactly what the
Blech design rule exploits -- and what a deep-healing deployment has
to reason about, because a chain fails when its *weakest segment*
fails while short segments may be immortal outright.

:class:`InterconnectChain` composes per-segment lumped EM states into
one series element: shared current, summed resistance, first-segment
failure.  It supports the same signed-current stepping as
:class:`repro.em.line.EmLine`, so recovery schedules apply unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.em.blech import is_immortal
from repro.em.line import EmLineConfig, EmStressCondition
from repro.em.lumped import LumpedEmModel
from repro.em.wire import Wire
from repro.errors import SimulationError


@dataclass
class _SegmentState:
    """Lumped EM state of one chain segment."""

    wire: Wire
    immortal: bool
    progress_s: float = 0.0
    nucleated: bool = False
    void_reversible_m: float = 0.0
    void_locked_m: float = 0.0

    @property
    def total_void_m(self) -> float:
        return self.void_reversible_m + self.void_locked_m

    def delta_resistance_ohm(self) -> float:
        return self.wire.void_resistance_per_m * self.total_void_m


class InterconnectChain:
    """A series chain of via-separated EM segments.

    Args:
        segments: the wires in series (each an independent diffusion
            domain).
        reference: the condition whose nucleation time anchors the
            per-segment progress bookkeeping (same scheme as
            :class:`repro.system.aging.FleetEmState`).
        config: shared EM behavioural parameters.
    """

    def __init__(self, segments: Sequence[Wire],
                 reference: EmStressCondition,
                 config: Optional[EmLineConfig] = None):
        if not segments:
            raise SimulationError("a chain needs at least one segment")
        if reference.current_density_a_m2 <= 0.0:
            raise SimulationError(
                "reference condition must carry forward current")
        self.config = config or EmLineConfig()
        self.reference = reference
        self.segments: List[_SegmentState] = []
        material = segments[0].material
        for wire in segments:
            if wire.material is not material:
                raise SimulationError(
                    "all chain segments must share one material")
            self.segments.append(_SegmentState(
                wire=wire,
                immortal=is_immortal(wire, reference)))
        self._lumped = LumpedEmModel(segments[0],
                                     self.config.failure_fraction)
        self._ref_rate = (reference.current_density_a_m2 ** 2
                          * material.stress_diffusivity_at(
                              reference.temperature_k))
        self.time_s = 0.0

    # -- observables ----------------------------------------------------

    @property
    def n_segments(self) -> int:
        """Number of segments in the chain."""
        return len(self.segments)

    @property
    def n_immortal(self) -> int:
        """Segments that satisfy the Blech criterion at the reference."""
        return sum(1 for segment in self.segments if segment.immortal)

    def fresh_resistance_ohm(self, temperature_k: float) -> float:
        """Void-free series resistance at a temperature."""
        return sum(segment.wire.resistance_at(temperature_k)
                   for segment in self.segments)

    def resistance_ohm(self, temperature_k: float) -> float:
        """Series resistance including void damage."""
        return self.fresh_resistance_ohm(temperature_k) + sum(
            segment.delta_resistance_ohm()
            for segment in self.segments)

    def delta_resistance_ohm(self) -> float:
        """Total void-induced resistance increase."""
        return sum(segment.delta_resistance_ohm()
                   for segment in self.segments)

    def has_failed(self, temperature_k: float) -> bool:
        """True when any single segment crosses its failure threshold.

        Chains fail at the weakest segment: one voided segment starves
        everything downstream, so the per-segment criterion governs.
        """
        fraction = self.config.failure_fraction
        return any(
            segment.delta_resistance_ohm()
            >= fraction * segment.wire.resistance_at(temperature_k)
            for segment in self.segments)

    def worst_segment_index(self) -> int:
        """Index of the most-damaged segment."""
        damages = [segment.delta_resistance_ohm()
                   for segment in self.segments]
        return int(np.argmax(damages))

    # -- stepping ---------------------------------------------------------

    def apply(self, duration_s: float,
              condition: EmStressCondition) -> None:
        """Advance the whole chain under a shared signed current."""
        if duration_s < 0.0:
            raise SimulationError("duration must be non-negative")
        if duration_s == 0.0:
            return
        material = self.segments[0].wire.material
        j = condition.current_density_a_m2
        temp = condition.temperature_k
        rate = (j * j) * material.stress_diffusivity_at(temp) \
            / self._ref_rate
        signed_rate = rate if j >= 0.0 else -rate
        drift = abs(material.drift_velocity(j, temp))
        t_nuc_ref = self._lumped.nucleation_time(self.reference)
        lock_fraction = -np.expm1(
            -self.config.lock_rate_per_s * duration_s)
        for segment in self.segments:
            if segment.immortal:
                continue
            segment.progress_s = max(
                segment.progress_s + signed_rate * duration_s, 0.0)
            # Longer segments nucleate at the reference time; shorter
            # mortal segments behave the same in the semi-infinite
            # regime (nucleation is a boundary-layer phenomenon).
            if segment.progress_s >= t_nuc_ref:
                segment.nucleated = True
            if segment.nucleated and j > 0.0:
                segment.void_reversible_m += drift * duration_s
            elif j < 0.0 and segment.void_reversible_m > 0.0:
                healed = (self.config.recovery_boost * drift
                          * duration_s)
                segment.void_reversible_m = max(
                    segment.void_reversible_m - healed, 0.0)
            if segment.void_reversible_m > 0.0:
                locked = segment.void_reversible_m * lock_fraction
                segment.void_reversible_m -= locked
                segment.void_locked_m += locked
        self.time_s += duration_s


def segment_stripe(total_length_m: float, n_segments: int,
                   template: Wire) -> List[Wire]:
    """Cut a stripe of a given total length into equal via-separated
    segments with the template's cross-section and material.

    The per-segment fresh resistance scales with length from the
    template's resistance-per-length.
    """
    if total_length_m <= 0.0:
        raise SimulationError("total_length_m must be positive")
    if n_segments < 1:
        raise SimulationError("n_segments must be at least 1")
    from dataclasses import replace
    segment_length = total_length_m / n_segments
    resistance = (template.fresh_resistance_ohm
                  * segment_length / template.length_m)
    return [replace(template, length_m=segment_length,
                    fresh_resistance_ohm=resistance,
                    name=f"{template.name} [{index}]")
            for index in range(n_segments)]
