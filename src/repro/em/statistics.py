"""EM lifetime statistics: wire populations and weakest-link failure.

EM sign-off is statistical: a chip contains thousands of EM-exposed
segments whose geometry and temperature vary, and the chip fails when
its *weakest* wire fails.  The classical treatment models individual
wire TTFs as lognormal around Black's median and combines them with
weakest-link (series-system) statistics.

This module extends the paper's single-wire experiments to that
population view -- the form in which a deep-healing deployment decision
would actually be made: how much does a recovery schedule move the
chip-level t_0.1% point, not just one wire's median.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import brentq
from scipy.stats import norm

from repro.em.blacks import BlacksModel
from repro.em.korhonen import (
    KorhonenBatch,
    KorhonenConfig,
    KorhonenSolver,
    batch_bytes_per_wire,
)
from repro.em.line import EmStressCondition, PAPER_EM_STRESS
from repro.em.wire import Wire, PAPER_TEST_WIRE
from repro.errors import SimulationError
from repro.solvers import run_sweep


@dataclass(frozen=True)
class WirePopulationSpec:
    """Statistical description of a population of EM-exposed wires.

    Attributes:
        n_wires: number of independent EM-critical segments on a chip.
        median_ttf_s: lognormal median TTF of one wire at the
            operating point.
        sigma: lognormal shape parameter (log-space standard
            deviation); damascene Cu populations are typically 0.2-0.6.
    """

    n_wires: int
    median_ttf_s: float
    sigma: float

    def __post_init__(self) -> None:
        if self.n_wires < 1:
            raise SimulationError("n_wires must be at least 1")
        if self.median_ttf_s <= 0.0:
            raise SimulationError("median_ttf_s must be positive")
        if self.sigma <= 0.0:
            raise SimulationError("sigma must be positive")

    # -- single-wire distribution -----------------------------------------

    def wire_failure_probability(self, time_s: float) -> float:
        """CDF of one wire's lognormal TTF at ``time_s``."""
        if time_s < 0.0:
            raise SimulationError("time must be non-negative")
        if time_s == 0.0:
            return 0.0
        z = math.log(time_s / self.median_ttf_s) / self.sigma
        return float(norm.cdf(z))

    def wire_quantile(self, fraction: float) -> float:
        """Time by which ``fraction`` of single wires have failed."""
        if not 0.0 < fraction < 1.0:
            raise SimulationError("fraction must be in (0, 1)")
        return self.median_ttf_s * math.exp(
            self.sigma * float(norm.ppf(fraction)))

    # -- chip-level (weakest link) -----------------------------------------

    def chip_failure_probability(self, time_s: float) -> float:
        """Probability that at least one of the wires has failed.

        Series system: ``1 - (1 - F_wire(t)) ** n``.
        """
        survival = 1.0 - self.wire_failure_probability(time_s)
        if survival <= 0.0:
            return 1.0
        # log-space for numerical robustness at large n.
        return 1.0 - math.exp(self.n_wires * math.log(survival))

    def chip_quantile(self, fraction: float,
                      tolerance: float = 1e-6) -> float:
        """Time by which ``fraction`` of chips have failed.

        Found with Brent's method on the monotone chip CDF in
        log-time (superlinear convergence; the former fixed-step
        bisection burned up to 200 CDF evaluations per call).
        ``tolerance`` is the relative accuracy of the returned time.
        """
        if not 0.0 < fraction < 1.0:
            raise SimulationError("fraction must be in (0, 1)")
        # The chip CDF at the single-wire q-quantile is roughly
        # n * q, so bracket well below fraction / n_wires.
        low_q = min(1e-12, max(fraction / self.n_wires * 1e-3, 1e-300))
        low = self.wire_quantile(low_q)
        high = self.wire_quantile(1.0 - 1e-12)

        def excess(log_time: float) -> float:
            return self.chip_failure_probability(
                math.exp(log_time)) - fraction

        log_low, log_high = math.log(low), math.log(high)
        if excess(log_low) >= 0.0:
            return low
        if excess(log_high) <= 0.0:
            return high
        return math.exp(brentq(excess, log_low, log_high,
                               xtol=math.log1p(tolerance)))

    def chip_median_ttf_s(self) -> float:
        """Median chip lifetime (t50 of the weakest-link system)."""
        return self.chip_quantile(0.5)

    def scaled(self, ttf_factor: float) -> "WirePopulationSpec":
        """The same population with every TTF scaled by a factor.

        A deep-healing schedule that multiplies every wire's TTF by
        ``ttf_factor`` (e.g. the Fig. 7 nucleation-delay factor)
        shifts the whole lognormal without changing its shape.
        """
        if ttf_factor <= 0.0:
            raise SimulationError("ttf_factor must be positive")
        return WirePopulationSpec(self.n_wires,
                                  self.median_ttf_s * ttf_factor,
                                  self.sigma)


def population_from_blacks(blacks: BlacksModel, n_wires: int,
                           current_density_a_m2: float,
                           temperature_k: float,
                           sigma: float = 0.4) -> WirePopulationSpec:
    """Build a population around a Black's-equation median."""
    return WirePopulationSpec(
        n_wires=n_wires,
        median_ttf_s=blacks.ttf_s(current_density_a_m2, temperature_k),
        sigma=sigma)


def sample_population_ttf_matrix(spec: WirePopulationSpec,
                                 n_chips: int = 100,
                                 seed: int = 0) -> np.ndarray:
    """Monte Carlo per-wire TTFs for a whole fleet, in one draw.

    Returns the full ``(n_chips, n_wires)`` lognormal sample matrix --
    the batched form the fleet engine consumes when it needs wire-level
    detail (e.g. attributing a chip failure to a wire group), drawn as
    a single vectorized pass.  Row ``k`` is chip ``k``'s wire
    population; ``matrix.min(axis=1)`` recovers the weakest-link chip
    TTFs of :func:`sample_population_ttfs` bit-for-bit (same RNG
    stream, and ``exp`` is monotone so the min commutes with it).
    """
    if n_chips < 1:
        raise SimulationError("n_chips must be at least 1")
    rng = np.random.default_rng(seed)
    samples = rng.normal(math.log(spec.median_ttf_s), spec.sigma,
                         size=(n_chips, spec.n_wires))
    return np.exp(samples)


def sample_population_ttfs(spec: WirePopulationSpec,
                           n_chips: int = 100,
                           seed: int = 0) -> np.ndarray:
    """Monte Carlo chip TTFs (min over each chip's wire samples).

    Cross-checks the closed-form weakest-link quantiles; also useful
    when per-wire medians vary (pass a spec per group and combine, or
    use :func:`sample_mixed_population_ttfs` directly).
    """
    return sample_population_ttf_matrix(spec, n_chips, seed).min(axis=1)


def sample_mixed_population_ttfs(specs: Sequence[WirePopulationSpec],
                                 n_chips: int = 100,
                                 seed: int = 0) -> np.ndarray:
    """Chip TTFs for chips carrying several distinct wire groups.

    Real chips mix wire populations -- long power rails, short signal
    stubs, vias -- each with its own median and sigma.  This draws all
    groups of all chips as *one* ``(n_chips, total_wires)`` matrix
    (per-wire means/sigmas broadcast into a single vectorized normal
    draw) and takes the weakest link across every group, which is the
    series-system combination of the specs' individual chip CDFs.
    """
    if not specs:
        raise SimulationError("at least one wire group is required")
    if n_chips < 1:
        raise SimulationError("n_chips must be at least 1")
    log_medians = np.concatenate(
        [np.full(spec.n_wires, math.log(spec.median_ttf_s))
         for spec in specs])
    sigmas = np.concatenate(
        [np.full(spec.n_wires, spec.sigma) for spec in specs])
    rng = np.random.default_rng(seed)
    samples = rng.normal(log_medians, sigmas,
                         size=(n_chips, len(log_medians)))
    return np.exp(samples.min(axis=1))


def _sample_chip_chunk(task: "Tuple[WirePopulationSpec, int]",
                       seed_sequence: np.random.SeedSequence
                       ) -> np.ndarray:
    """Sweep worker: Monte Carlo TTFs for one chunk of chips."""
    spec, n_chips = task
    rng = np.random.default_rng(seed_sequence)
    samples = rng.normal(math.log(spec.median_ttf_s), spec.sigma,
                         size=(n_chips, spec.n_wires))
    return np.exp(samples.min(axis=1))


#: Below this many total lognormal draws (``n_chips * n_wires``) the
#: population sampler runs serially: vectorized numpy sampling clears
#: ~100M draws/s in-process, so under ~8e6 draws the ~100 ms of
#: process-pool startup and result pickling can only lose
#: (BENCH_solvers.json measured a pooled 10k x 64 sweep at 0.37x
#: serial).  Chunk *count* is the wrong gate here -- a sign-off sweep
#: always has many chunks; what decides pool profitability is the
#: work inside them.
_MIN_POOL_SAMPLES = 8_000_000


def sample_population_ttfs_parallel(spec: WirePopulationSpec,
                                    n_chips: int = 10000,
                                    seed: int = 0,
                                    max_workers: Optional[int] = None,
                                    chunk_chips: int = 256,
                                    min_tasks_for_pool: Optional[int]
                                    = None,
                                    on_error: str = "raise",
                                    retries: int = 0,
                                    progress=None,
                                    on_report=None) -> np.ndarray:
    """Monte Carlo chip TTFs over a process-pool sweep.

    The population is split into fixed ``chunk_chips``-sized chunks,
    each seeded from ``(seed, chunk index)`` via
    :func:`repro.solvers.run_sweep` -- so the returned array is
    byte-identical for a fixed seed *regardless of worker count*
    (``chunk_chips`` itself is part of the stream definition, which is
    also why the serial fallback keeps the same chunking).  By default
    the pool is only started once the total sample count
    (``n_chips * n_wires``) is large enough to amortize process
    startup (:data:`_MIN_POOL_SAMPLES`); pass ``min_tasks_for_pool``
    to override that work-aware gate with an explicit chunk-count
    threshold.

    Fault tolerance (``on_error``, ``retries``) and telemetry
    (``progress``, ``on_report``) are forwarded to
    :func:`repro.solvers.run_sweep`.  Under ``"skip"`` /
    ``"collect"`` the chips of failed chunks are *dropped* from the
    returned population (the per-chunk failure records live on the
    delivered :class:`~repro.solvers.SweepReport`), so quantiles of a
    degraded run are computed over the surviving chips only.
    """
    if n_chips < 1:
        raise SimulationError("n_chips must be at least 1")
    if chunk_chips < 1:
        raise SimulationError("chunk_chips must be at least 1")
    tasks = [(spec, min(chunk_chips, n_chips - start))
             for start in range(0, n_chips, chunk_chips)]
    if min_tasks_for_pool is None \
            and n_chips * spec.n_wires < _MIN_POOL_SAMPLES:
        # Serial and pooled runs are byte-identical, so the gate is
        # purely a performance decision.
        min_tasks_for_pool = len(tasks) + 1
    chunks = run_sweep(_sample_chip_chunk, tasks,
                       max_workers=max_workers, seed=seed,
                       min_tasks_for_pool=min_tasks_for_pool,
                       on_error=on_error, retries=retries,
                       progress=progress, on_report=on_report)
    arrays = [chunk for chunk in chunks
              if isinstance(chunk, np.ndarray)]
    if not arrays:
        return np.empty(0)
    return np.concatenate(arrays)


def healing_gain_at_quantile(baseline: WirePopulationSpec,
                             healed: WirePopulationSpec,
                             fraction: float = 0.001) -> float:
    """Lifetime gain at a sign-off quantile (default t_0.1%)."""
    return healed.chip_quantile(fraction) \
        / baseline.chip_quantile(fraction)


def sample_nucleation_ttfs_pde(
        n_wires: int,
        max_time_s: float,
        probe_step_s: float,
        *,
        wire: Wire = PAPER_TEST_WIRE,
        condition: EmStressCondition = PAPER_EM_STRESS,
        j_sigma: float = 0.1,
        seed: int = 0,
        config: Optional[KorhonenConfig] = None,
        engine: str = "batched",
        max_chunk_wires: Optional[int] = None,
        chunk_budget_bytes: Optional[int] = None) -> np.ndarray:
    """Per-wire void-nucleation times from the stress PDE itself.

    Where :class:`WirePopulationSpec` *assumes* a lognormal TTF
    distribution around Black's median, this sampler derives the
    spread mechanistically: each wire draws a lognormal current
    density ``j = j_nom * exp(j_sigma * z)`` (process variation in
    effective cross-section), its Korhonen stress field is integrated
    forward, and the nucleation time is the first probe instant at
    which the cathode stress reaches the material's critical stress.

    All wires share geometry and temperature, so they share one
    backward-Euler factorization; ``engine="batched"`` advances the
    whole population through a single multi-RHS back-substitution per
    step (:class:`~repro.em.korhonen.KorhonenBatch`), while
    ``engine="serial"`` loops a scalar
    :class:`~repro.em.korhonen.KorhonenSolver` over wires.  The two
    engines return bit-identical samples.

    Args:
        n_wires: population size.
        max_time_s: horizon; wires that have not nucleated by then
            report ``inf``.
        probe_step_s: interval between nucleation checks (the
            returned times are quantized to this grid, exactly as
            :meth:`repro.em.line.EmLine.time_to_nucleation` quantizes
            to its probe step).
        wire: shared geometry/material.
        condition: nominal stress condition (current, temperature).
        j_sigma: log-space sigma of the per-wire current densities.
        seed: RNG seed for the population draw.
        config: PDE discretization (default :class:`KorhonenConfig`).
        engine: ``"batched"`` (default) or ``"serial"``.
        max_chunk_wires: cap on wires resident in one
            :class:`KorhonenBatch` at a time.  The population draw
            still covers every wire up front (the RNG stream is
            unchanged), then contiguous wire slices run as separate
            batches.  Columns are independent, so chunked samples are
            bit-identical to the unchunked batch.  Batched engine only.
        chunk_budget_bytes: alternative cap expressed as a byte budget
            for the resident stress state; converted via
            :func:`repro.em.korhonen.batch_bytes_per_wire`.  When both
            caps are given the smaller chunk wins.

    Returns:
        ``(n_wires,)`` array of nucleation times in seconds.
    """
    if n_wires < 1:
        raise SimulationError("n_wires must be at least 1")
    if max_time_s <= 0.0:
        raise SimulationError("max_time_s must be positive")
    if probe_step_s <= 0.0 or probe_step_s > max_time_s:
        raise SimulationError(
            "probe_step_s must be positive and at most max_time_s")
    if j_sigma < 0.0:
        raise SimulationError("j_sigma must be non-negative")
    if engine not in ("batched", "serial"):
        raise ValueError("engine must be 'batched' or 'serial'")
    chunk = n_wires
    if max_chunk_wires is not None:
        if max_chunk_wires < 1:
            raise SimulationError("max_chunk_wires must be at least 1")
        chunk = min(chunk, int(max_chunk_wires))
    if chunk_budget_bytes is not None:
        per_wire = batch_bytes_per_wire(config)
        if chunk_budget_bytes < per_wire:
            raise SimulationError(
                f"chunk_budget_bytes={chunk_budget_bytes} is below the "
                f"{per_wire}-byte resident cost of a single wire")
        chunk = min(chunk, chunk_budget_bytes // per_wire)
    if chunk < n_wires and engine == "serial":
        raise SimulationError(
            "wire chunking applies to the batched engine only")

    rng = np.random.default_rng(seed)
    densities = condition.current_density_a_m2 \
        * np.exp(j_sigma * rng.standard_normal(n_wires))
    material = wire.material
    temp = condition.temperature_k
    kappa = material.stress_diffusivity_at(temp)
    gradients = np.array([material.wind_stress_gradient(j, temp)
                          for j in densities])
    critical = material.critical_stress_pa
    n_probes = int(math.ceil(max_time_s / probe_step_s - 1e-12))
    ttfs = np.full(n_wires, np.inf)

    if engine == "batched":
        def _run_slice(start: int, stop: int) -> None:
            # Columns never interact, so a wire slice in its own batch
            # retraces the exact trajectory it would in the full one.
            batch = KorhonenBatch(wire.length_m, stop - start, config)
            alive = np.arange(start, stop)
            alive_gradients = gradients[start:stop]
            for probe in range(1, n_probes + 1):
                batch.advance(probe_step_s, kappa, alive_gradients)
                crossed = batch.stress_at_start >= critical
                if np.any(crossed):
                    ttfs[alive[crossed]] = probe * probe_step_s
                    keep = ~crossed
                    if not np.any(keep):
                        return
                    # Compacting nucleated wires out keeps the batch
                    # doing exactly the work the serial loop's
                    # per-wire early exit would.
                    batch.retain(np.nonzero(keep)[0])
                    alive = alive[keep]
                    alive_gradients = alive_gradients[keep]

        for start in range(0, n_wires, chunk):
            _run_slice(start, min(start + chunk, n_wires))
        return ttfs

    solver = KorhonenSolver(wire.length_m, config)
    for index in range(n_wires):
        solver.reset()
        gradient = float(gradients[index])
        for probe in range(1, n_probes + 1):
            solver.advance(probe_step_s, kappa, gradient)
            if solver.stress[0] >= critical:
                ttfs[index] = probe * probe_step_s
                break
    return ttfs
